"""Cheap-decode differential suite (DESIGN.md §11).

Every cost-saving decode path must emit token streams **byte-identical**
to its exactness oracle:

* paged KV (``kv_mode="paged"``) vs the dense slot layout;
* int8 fused weights (``weight_mode="int8"``) vs an exact-mode engine over
  the dequantized weights;
* speculative decoding (``speculative_tokens=γ`` + draft model) vs
  target-only decoding.

The sweeps cover batch size {1, 3, max} × greedy/top-k/top-p sampling ×
prefix-cache hit/miss × session resume, plus randomised scheduler fuzz
(cancels, deadlines) over the paged allocator.  The block pool's ownership
invariants are property-tested with Hypothesis, and the stale-KV hazards
the paged design closes are pinned by direct regression tests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.infer import InferenceEngine, _LayerCache
from repro.nn.kernels import (INT8_SCALE_SUFFIX, dequantize_int8,
                              dequantize_state_dict, is_quantized_state,
                              matmul_int8_nograd, quantize_int8,
                              quantize_state_dict)
from repro.nn.trainer import TrainConfig, Trainer
from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.serve import (BatchedEngine, BlockPool, BlockPoolError,
                         InProcessServer, SamplingParams, ServeConfig,
                         dequantized_oracle_model)

CORPUS = [[1, 7, 8, 9, 10, 11, 2], [1, 5, 6, 5, 6, 2]] * 4


def _train(config):
    m = TransformerLM(config)
    Trainer(m, pad_id=0, config=TrainConfig(epochs=25, batch_size=8, lr=3e-3)
            ).fit(CORPUS)
    return m


@pytest.fixture(scope="module")
def model():
    return _train(TransformerConfig(vocab_size=24, dim=16, n_layers=2,
                                    n_heads=2, max_seq_len=48, seed=0))


@pytest.fixture(scope="module")
def draft():
    """A cheaper model trained on the same corpus — the speculative draft."""
    return _train(TransformerConfig(vocab_size=24, dim=8, n_layers=1,
                                    n_heads=2, max_seq_len=48, seed=1))


class ManualClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def _server(model, **cfg):
    cfg.setdefault("decode_mode", "fused")
    cfg.setdefault("prefix_cache", False)
    cfg.setdefault("max_batch_size", 4)
    draft_model = cfg.pop("draft_model", None)
    clock = cfg.pop("clock", None)
    kwargs = {"clock": clock} if clock is not None else {}
    return InProcessServer(model, config=ServeConfig(**cfg), eos_id=2,
                           draft_model=draft_model, **kwargs)


PROMPTS = ([1, 7], [1, 5, 6, 5], [1, 7, 8, 9, 10], [1, 5],
           [1, 9, 10, 11], [1, 7, 8])

#: Sampling regimes of the parity sweep; the seeded stochastic modes must
#: agree draw-for-draw, not merely in distribution.
SAMPLERS = {
    "greedy": lambda i: SamplingParams(max_new_tokens=8),
    "top_k": lambda i: SamplingParams(max_new_tokens=8, temperature=0.8,
                                      top_k=4, seed=300 + i),
    "top_p": lambda i: SamplingParams(max_new_tokens=8, temperature=0.8,
                                      top_p=0.9, seed=300 + i),
}


def _drive(server, sampler):
    ids = [server.submit(p, params=SAMPLERS[sampler](i))
           for i, p in enumerate(PROMPTS)]
    server.run_until_idle()
    return [list(server.result(rid).token_ids) for rid in ids]


# ---------------------------------------------------------------------------
# paged KV vs dense layout
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("batch", [1, 3, 6])
@pytest.mark.parametrize("sampler", sorted(SAMPLERS))
def test_paged_kv_matches_dense(model, batch, sampler):
    """Same requests, same seeds: the paged block layout may never change a
    single emitted token relative to dense slots.  ``kv_block_tokens=4``
    forces every sequence across multiple block boundaries."""
    dense = _drive(_server(model, max_batch_size=batch), sampler)
    paged = _drive(_server(model, max_batch_size=batch, kv_mode="paged",
                           kv_block_tokens=4), sampler)
    assert paged == dense


@pytest.mark.parametrize("batch", [1, 3, 6])
@pytest.mark.parametrize("sampler", sorted(SAMPLERS))
def test_int8_matches_dequantized_oracle(model, batch, sampler):
    """The fused int8 path serves quantized weights; its oracle is an
    exact-mode engine over the *dequantized* weights — identical information,
    reference kernels."""
    oracle = _drive(_server(dequantized_oracle_model(model),
                            decode_mode="exact", max_batch_size=batch),
                    sampler)
    fused = _drive(_server(model, weight_mode="int8", max_batch_size=batch),
                   sampler)
    assert fused == oracle


def test_paged_pool_drains_after_load(model):
    """After the mixed burst every block returns to the pool: no leaks."""
    server = _server(model, kv_mode="paged", kv_block_tokens=4)
    _drive(server, "top_k")
    pool = server.engine._block_pool
    assert pool is not None
    assert pool.n_allocated == 0
    assert pool.conservation_ok()


# ---------------------------------------------------------------------------
# prefix-cache hits and session resume across cheap paths
# ---------------------------------------------------------------------------


SHARED = [1, 7, 8, 9, 10, 11, 7, 8]  # 8 tokens == default min_match_tokens
PREFIX_PROMPTS = [SHARED + [5], SHARED + [5, 6], SHARED + [9, 10],
                  SHARED + [7, 8, 9]]


def _drive_prefix(server):
    """Sequential submits so later prompts hit the pool entries earlier
    prompts inserted."""
    out = []
    for i, p in enumerate(PREFIX_PROMPTS):
        rid = server.submit(p, params=SamplingParams(
            max_new_tokens=6, temperature=0.8, top_k=4, seed=50 + i))
        server.run_until_idle()
        out.append(list(server.result(rid).token_ids))
    return out


@pytest.mark.parametrize("path", ["paged", "int8"])
def test_prefix_cache_hits_preserve_parity(model, path):
    """Reused-prefix prefill must not perturb the cheap paths: with the
    prefix pool on (and hitting), paged and int8 runs still match their
    oracles token-for-token."""
    if path == "paged":
        cheap = _server(model, kv_mode="paged", kv_block_tokens=4,
                        prefix_cache=True)
        oracle = _server(model, prefix_cache=True)
    else:
        cheap = _server(model, weight_mode="int8", prefix_cache=True)
        oracle = _server(dequantized_oracle_model(model),
                         decode_mode="exact", prefix_cache=True)
    got, want = _drive_prefix(cheap), _drive_prefix(oracle)
    assert cheap.scheduler.prefix_pool.hits > 0
    assert oracle.scheduler.prefix_pool.hits > 0
    assert got == want


@pytest.mark.parametrize("path", ["paged", "int8"])
def test_session_resume_parity(model, path):
    """Two chat turns on one session: turn 2 resumes the stored KV state.
    The resumed decode must agree with the oracle layout's resumed decode."""
    def turns(server):
        t1 = server.chat("s", [1, 7, 8], params=SamplingParams(
            max_new_tokens=5, temperature=0.8, top_k=4, seed=9))
        prompt2 = [1, 7, 8] + list(t1.token_ids) + [5, 6]
        t2 = server.chat("s", prompt2, params=SamplingParams(
            max_new_tokens=5, temperature=0.8, top_k=4, seed=10))
        return [list(t1.token_ids), list(t2.token_ids)]

    if path == "paged":
        cheap = _server(model, kv_mode="paged", kv_block_tokens=4,
                        max_batch_size=2)
        oracle = _server(model, max_batch_size=2)
    else:
        cheap = _server(model, weight_mode="int8", max_batch_size=2)
        oracle = _server(dequantized_oracle_model(model),
                         decode_mode="exact", max_batch_size=2)
    assert turns(cheap) == turns(oracle)


# ---------------------------------------------------------------------------
# speculative decoding vs target-only oracle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("gamma", [1, 3])
def test_speculative_matches_target_only(model, draft, gamma):
    """γ-token speculative chains across every sampling regime: the emitted
    streams equal target-only decoding exactly, because every token is
    sampled from target logits with the request's own rng."""
    spec_server = _server(model, max_batch_size=3, speculative_tokens=gamma,
                          draft_model=draft)
    for sampler in sorted(SAMPLERS):
        base = _drive(_server(model, max_batch_size=3), sampler)
        assert _drive(spec_server, sampler) == base, (gamma, sampler)
    stats = spec_server.scheduler.spec_stats()
    assert stats["rounds"] > 0
    assert 0 <= stats["accepted"] <= stats["drafted"]
    assert 0.0 <= stats["acceptance_rate"] <= 1.0


def test_all_cheap_paths_stack(model, draft):
    """int8 + paged + speculative composed in one server still reproduce the
    exact dequantized oracle byte-for-byte."""
    oracle = _drive(_server(dequantized_oracle_model(model),
                            decode_mode="exact", max_batch_size=3), "top_k")
    combo_server = _server(model, weight_mode="int8", kv_mode="paged",
                           kv_block_tokens=4, speculative_tokens=3,
                           draft_model=draft, max_batch_size=3)
    assert _drive(combo_server, "top_k") == oracle
    pool = combo_server.engine._block_pool
    assert pool is not None and pool.n_allocated == 0


def test_speculative_config_requires_draft(model):
    with pytest.raises(ValueError):
        InProcessServer(model, config=ServeConfig(speculative_tokens=2))


# ---------------------------------------------------------------------------
# BlockPool property tests (Hypothesis)
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(st.tuples(st.integers(0, 2), st.integers(0, 4)),
                    max_size=80),
       n_blocks=st.integers(1, 6))
def test_block_pool_random_schedules(ops, n_blocks):
    """Arbitrary alloc/free/free_owner/grow interleavings: no block is ever
    owned twice, ``allocated + free == n_blocks`` after every operation, and
    a full drain returns every block exactly once."""
    pool = BlockPool(n_blocks, block_tokens=4)
    mirror = {}  # block id -> owner, maintained independently of the pool
    for op, owner in ops:
        if op == 0:
            if pool.n_free == 0:
                pool.grow(2)
            block = pool.alloc(owner)
            assert block not in mirror, "pool handed out an owned block"
            mirror[block] = owner
        elif op == 1:
            owned = pool.owner_blocks(owner)
            if owned:
                pool.free(owned[0])
                assert mirror.pop(owned[0]) == owner
        else:
            for block in pool.free_owner(owner):
                assert mirror.pop(block) == owner
        assert pool.conservation_ok()
        assert pool.n_allocated == len(mirror)
        assert pool.n_allocated + pool.n_free == pool.n_blocks
    for owner in set(mirror.values()):
        for block in pool.free_owner(owner):
            assert mirror.pop(block) == owner
    assert not mirror
    assert pool.n_free == pool.n_blocks and pool.conservation_ok()


@settings(max_examples=40, deadline=None)
@given(n_blocks=st.integers(1, 5), extra=st.integers(1, 5))
def test_block_pool_grow_extends_id_space(n_blocks, extra):
    pool = BlockPool(n_blocks)
    first = [pool.alloc("a") for _ in range(n_blocks)]
    assert sorted(first) == list(range(n_blocks))
    pool.grow(extra)
    more = [pool.alloc("b") for _ in range(extra)]
    assert sorted(more) == list(range(n_blocks, n_blocks + extra))
    assert pool.conservation_ok() and pool.n_free == 0


def test_block_pool_double_free_raises():
    pool = BlockPool(2)
    block = pool.alloc("a")
    pool.free(block)
    with pytest.raises(BlockPoolError):
        pool.free(block)
    assert pool.conservation_ok()


def test_block_pool_exhaustion_and_unknown_free():
    pool = BlockPool(1)
    pool.alloc("a")
    with pytest.raises(BlockPoolError):
        pool.alloc("b")
    with pytest.raises(BlockPoolError):
        pool.free(99)
    assert pool.free_owner("ghost") == []  # no-op, not an error
    assert pool.conservation_ok()


def test_block_pool_validation():
    with pytest.raises(ValueError):
        BlockPool(0)
    with pytest.raises(ValueError):
        BlockPool(1, block_tokens=0)
    with pytest.raises(ValueError):
        BlockPool(1).grow(0)


# ---------------------------------------------------------------------------
# scheduler fuzz over paged KV
# ---------------------------------------------------------------------------


def test_paged_scheduler_fuzz_conservation(model):
    """Randomised submit/cancel/step/clock-advance schedules with deadlines:
    whatever the interleaving, the request ledger balances AND the block
    pool drains to empty with its free list intact."""
    rng = np.random.default_rng(4321)
    for trial in range(5):
        clock = ManualClock()
        server = _server(model, max_batch_size=3, kv_mode="paged",
                         kv_block_tokens=4, clock=clock)
        submitted = []
        for _ in range(40):
            action = rng.integers(0, 4)
            if action == 0:
                deadline = None
                if rng.integers(0, 2):
                    deadline = clock.t + float(rng.integers(1, 5))
                rid = server.submit(
                    [1, int(rng.integers(3, 12))],
                    params=SamplingParams(
                        max_new_tokens=int(rng.integers(1, 8))),
                    deadline=deadline)
                submitted.append(rid)
            elif action == 1 and submitted:
                server.cancel(submitted[int(rng.integers(0, len(submitted)))])
            elif action == 2:
                clock.t += float(rng.integers(0, 3))
            else:
                server.step()
        server.run_until_idle()
        acct = server.scheduler.accounting()
        assert acct["conservation_ok"] == 1, (trial, acct)
        assert acct["queued"] == 0 and acct["running"] == 0
        pool = server.engine._block_pool
        if pool is not None:  # stays None if every request expired unstarted
            assert pool.conservation_ok(), (trial, pool.stats())
            assert pool.n_allocated == 0, (trial, pool.stats())
        assert len(server.engine._free_slots) == 3
        for rid in submitted:
            assert server.result(rid) is not None, rid


def test_speculative_fuzz_no_divergence(model, draft):
    """Randomised mixed-sampling workloads through a speculative paged
    server always equal the target-only dense oracle, and the speculation
    ledger stays sane."""
    rng = np.random.default_rng(99)
    for trial in range(4):
        jobs = []
        for i in range(8):
            prompt = [1] + [int(t) for t in rng.integers(3, 12, size=int(
                rng.integers(1, 6)))]
            mode = int(rng.integers(0, 3))
            budget = int(rng.integers(1, 10))
            seed = trial * 100 + i
            if mode == 0:
                params = SamplingParams(max_new_tokens=budget)
            elif mode == 1:
                params = SamplingParams(max_new_tokens=budget,
                                        temperature=0.8, top_k=4, seed=seed)
            else:
                params = SamplingParams(max_new_tokens=budget,
                                        temperature=0.8, top_p=0.9, seed=seed)
            jobs.append((prompt, params))

        def run(server):
            ids = [server.submit(p, params=pp) for p, pp in jobs]
            server.run_until_idle()
            return [list(server.result(r).token_ids) for r in ids]

        gamma = int(rng.integers(1, 4))
        spec = _server(model, max_batch_size=3, speculative_tokens=gamma,
                       kv_mode="paged", kv_block_tokens=4, draft_model=draft)
        base = _server(model, max_batch_size=3)
        assert run(spec) == run(base), (trial, gamma)
        stats = spec.scheduler.spec_stats()
        assert stats["accepted"] <= stats["drafted"]
        pool = spec.engine._block_pool
        assert pool is not None and pool.n_allocated == 0


# ---------------------------------------------------------------------------
# stale-KV regression tests
# ---------------------------------------------------------------------------


def test_layer_cache_truncate_then_regrow():
    """Speculative rollback reuses buffer positions: after truncate, the
    stale tail must never resurface through any reader."""
    rng = np.random.default_rng(3)
    cache = _LayerCache()
    k1 = rng.normal(size=(2, 5, 4)).astype(np.float32)
    v1 = rng.normal(size=(2, 5, 4)).astype(np.float32)
    cache.append(k1, v1)
    cache.truncate(2)
    assert cache.length == 2
    np.testing.assert_array_equal(cache.k, k1[:, :2])
    ks, vs = cache.snapshot()
    assert ks.shape[1] == 2 and vs.shape[1] == 2
    k2 = rng.normal(size=(2, 4, 4)).astype(np.float32)
    v2 = rng.normal(size=(2, 4, 4)).astype(np.float32)
    cache.append(k2, v2)
    np.testing.assert_array_equal(
        cache.k, np.concatenate([k1[:, :2], k2], axis=1))
    np.testing.assert_array_equal(
        cache.v, np.concatenate([v1[:, :2], v2], axis=1))
    with pytest.raises(ValueError):
        cache.truncate(7)
    with pytest.raises(ValueError):
        cache.truncate(-1)


def test_paged_fresh_blocks_are_zeroed(model):
    """A reused block is zeroed at allocation, so a prior session's KV tail
    can never bleed into a new sequence (the hazard the dense path only
    masks — here the storage is physically clean)."""
    eng = BatchedEngine(model, decode_mode="fused", kv_mode="paged",
                        kv_block_tokens=4, max_batch_size=2)
    caches = eng.new_caches()
    eng.prefill([1, 7, 8, 9, 10, 11, 7, 8, 9], caches)  # 9 tokens → 3 blocks
    handle = eng.bind(caches)
    blocks_a = list(eng._slot_blocks[handle.slot])
    assert len(blocks_a) == 3
    eng.release(handle)
    # The hazard is real: freed blocks still hold the old sequence's KV
    # (storage layout is (H, blocks, bt, Dh)).
    assert any(np.any(eng._page_k[0][:, b] != 0.0) for b in blocks_a)
    caches = eng.new_caches()
    eng.prefill([1, 5, 6], caches)  # 3 tokens → 1 reused block
    handle2 = eng.bind(caches)
    blocks_b = eng._slot_blocks[handle2.slot]
    assert len(blocks_b) == 1 and blocks_b[0] in blocks_a
    for li in range(len(eng.layers)):
        assert np.all(eng._page_k[li][:, blocks_b[0], 3:] == 0.0)
        assert np.all(eng._page_v[li][:, blocks_b[0], 3:] == 0.0)
    eng.release(handle2)


def test_dense_slot_reuse_masks_stale_tail(model):
    """Dense slots keep stale KV beyond a new sequence's length; attention
    masking must keep it invisible.  A long occupant, then a short one in
    the same slot, must reproduce the single-sequence oracle exactly."""
    oracle = InferenceEngine(model)
    server = _server(model, max_batch_size=1)
    server.submit([1, 7, 8, 9, 10], params=SamplingParams(
        max_new_tokens=10, stop_on_eos=False))
    server.run_until_idle()
    expected = oracle.generate([1, 5], max_new_tokens=6, eos_id=2)
    rid = server.submit([1, 5], params=SamplingParams(max_new_tokens=6))
    server.run_until_idle()
    # The stale tail from the 15-token occupant is still in the buffer…
    assert np.any(server.engine._slot_k[0][0, :, 8:15] != 0.0)
    # …yet the short sequence matched the from-scratch oracle.
    assert list(server.result(rid).token_ids) == expected


def test_truncate_kv_frees_whole_blocks(model):
    eng = BatchedEngine(model, decode_mode="fused", kv_mode="paged",
                        kv_block_tokens=4, max_batch_size=1)
    caches = eng.new_caches()
    eng.prefill([1, 7, 8, 9, 10, 11, 7, 8, 9], caches)  # 3 blocks
    handle = eng.bind(caches)
    assert len(eng._slot_blocks[handle.slot]) == 3
    eng.truncate_kv(handle, 4)  # 4 tokens → 1 block retained
    assert handle.length == 4
    assert len(eng._slot_blocks[handle.slot]) == 1
    assert eng._block_pool.n_allocated == 1
    with pytest.raises(ValueError):
        eng.truncate_kv(handle, 5)  # cannot grow back
    eng.release(handle)
    assert eng._block_pool.n_allocated == 0
    assert eng._block_pool.conservation_ok()


# ---------------------------------------------------------------------------
# int8 kernel unit tests
# ---------------------------------------------------------------------------


def test_quantize_int8_round_trip_bounds():
    rng = np.random.default_rng(0)
    w = rng.normal(size=(6, 10)).astype(np.float32)
    w[2] = 0.0  # all-zero row: scale guard
    q, scales = quantize_int8(w)
    assert q.dtype == np.int8 and q.shape == w.shape
    assert scales.shape == (6,)
    assert scales[2] == 1.0
    deq = dequantize_int8(q, scales)
    assert np.all(deq[2] == 0.0)
    # Per-row quantization error is bounded by half a step.
    assert np.all(np.abs(deq - w) <= scales[:, None] / 2 + 1e-7)
    # Every nonzero row uses the full int8 range (its max hits ±127).
    nonzero = [i for i in range(6) if i != 2]
    assert np.all(np.abs(q[nonzero]).max(axis=1) == 127)


def test_matmul_int8_matches_explicit_dequant():
    rng = np.random.default_rng(1)
    w = rng.normal(size=(5, 8)).astype(np.float32)
    q, scales = quantize_int8(w)
    for batch in (1, 3, 7):
        x = rng.normal(size=(batch, 8)).astype(np.float32)
        got = matmul_int8_nograd(x, q, scales)
        ref = x @ dequantize_int8(q, scales).T
        np.testing.assert_allclose(got, ref, rtol=1e-5, atol=1e-6)


def test_quantize_state_dict_form_and_idempotence(model):
    state = model.state_dict()
    qsd = quantize_state_dict(state)
    assert is_quantized_state(qsd) and not is_quantized_state(state)
    # The embedding gather table stays fp32, norms (1-D) pass through.
    assert qsd["tok_emb.weight"].dtype == state["tok_emb.weight"].dtype
    assert "tok_emb.weight" + INT8_SCALE_SUFFIX not in qsd
    for name, tensor in qsd.items():
        if tensor.dtype == np.int8:
            assert name + INT8_SCALE_SUFFIX in qsd
    # Quantizing an already-quantized dict is an exact no-op — what lets
    # fleet replicas consume the published arena state verbatim.
    again = quantize_state_dict(qsd)
    assert set(again) == set(qsd)
    for name in qsd:
        np.testing.assert_array_equal(again[name], qsd[name])
    # Dequantization restores the original key set and stays within the
    # per-channel error bound.
    deq = dequantize_state_dict(qsd)
    assert set(deq) == set(state)
    for name, tensor in state.items():
        if qsd[name].dtype == np.int8:
            step = qsd[name + INT8_SCALE_SUFFIX][:, None]
            assert np.all(np.abs(deq[name] - tensor) <= step / 2 + 1e-7)
        else:
            np.testing.assert_array_equal(deq[name], tensor)
