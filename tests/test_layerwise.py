"""Layer-wise λ schedule tests."""

import numpy as np
import pytest

from repro.core.geodesic import geodesic_merge
from repro.core.layerwise import (LambdaSchedule, layer_index,
                                  merge_state_dicts_layerwise)
from repro.core.merge import merge_state_dicts
from repro.nn.transformer import TransformerConfig, TransformerLM


def test_layer_index_parsing():
    assert layer_index("blocks.0.attn.q_proj.weight") == 0
    assert layer_index("blocks.12.mlp.down_proj.weight") == 12
    assert layer_index("tok_emb.weight") is None
    assert layer_index("final_norm.weight") is None


def test_constant_schedule_matches_global_merge():
    config = TransformerConfig(vocab_size=16, dim=8, n_layers=2, n_heads=2,
                               max_seq_len=8, seed=0)
    chip = TransformerLM(config).state_dict()
    instruct = TransformerLM(TransformerConfig(**{**config.to_dict(), "seed": 1})).state_dict()
    schedule = LambdaSchedule.constant(0.6, n_layers=2)
    layered = merge_state_dicts_layerwise(chip, instruct, schedule)
    global_merge = merge_state_dicts(chip, instruct, lam=0.6)
    for key in chip:
        assert np.allclose(layered[key], global_merge[key]), key


def test_linear_schedule_endpoints():
    schedule = LambdaSchedule.linear(0.2, 0.8, n_layers=4)
    assert schedule.lam_for("blocks.0.attn.q_proj.weight") == pytest.approx(0.2)
    assert schedule.lam_for("blocks.3.attn.q_proj.weight") == pytest.approx(0.8)
    assert schedule.lam_for("tok_emb.weight") == pytest.approx(0.6)


def test_single_layer_model_uses_start():
    schedule = LambdaSchedule.linear(0.1, 0.9, n_layers=1)
    assert schedule.lam_for("blocks.0.mlp.up_proj.weight") == pytest.approx(0.1)


def test_layerwise_merge_applies_per_layer_lambda():
    config = TransformerConfig(vocab_size=16, dim=8, n_layers=2, n_heads=2,
                               max_seq_len=8, seed=0)
    chip = TransformerLM(config).state_dict()
    instruct = TransformerLM(TransformerConfig(**{**config.to_dict(), "seed": 1})).state_dict()
    schedule = LambdaSchedule.linear(0.0, 1.0, n_layers=2, default=0.5)
    layered = merge_state_dicts_layerwise(chip, instruct, schedule)
    # Block 0 at lambda=0 -> instruct weights; block 1 at lambda=1 -> chip.
    key0 = "blocks.0.attn.q_proj.weight"
    key1 = "blocks.1.attn.q_proj.weight"
    assert np.allclose(layered[key0], instruct[key0], atol=1e-7)
    assert np.allclose(layered[key1], chip[key1], atol=1e-7)
    # Non-block tensor merged at the default.
    emb = geodesic_merge(chip["tok_emb.weight"], instruct["tok_emb.weight"], 0.5)
    assert np.allclose(layered["tok_emb.weight"], emb)


def test_schedule_validations():
    with pytest.raises(ValueError):
        LambdaSchedule.constant(0.5, n_layers=0)
    with pytest.raises(ValueError):
        LambdaSchedule(lambda d: 0.5, n_layers=2, default=1.5)
    schedule = LambdaSchedule(lambda d: 2.0, n_layers=2)
    with pytest.raises(ValueError):
        schedule.lam_for("blocks.0.attn.q_proj.weight")
