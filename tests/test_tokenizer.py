"""Tokenizer tests: word-level and BPE."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tokenizer import BPETokenizer, WordTokenizer

WORDS = st.lists(st.sampled_from("the cat sat on a mat dog ran far".split()),
                 min_size=1, max_size=12)


@pytest.fixture
def word_tok():
    return WordTokenizer("the cat sat on a mat".split())


class TestWordTokenizer:
    def test_specials_first(self, word_tok):
        assert word_tok.id_to_token[:4] == ["<pad>", "<bos>", "<eos>", "<unk>"]
        assert word_tok.pad_id == 0

    def test_roundtrip(self, word_tok):
        text = "the cat sat"
        assert word_tok.decode(word_tok.encode(text)) == text

    def test_unknown_maps_to_unk(self, word_tok):
        ids = word_tok.encode("the zebra")
        assert ids[1] == word_tok.unk_id

    def test_bos_eos(self, word_tok):
        ids = word_tok.encode("cat", add_bos=True, add_eos=True)
        assert ids[0] == word_tok.bos_id and ids[-1] == word_tok.eos_id

    def test_decode_skips_special(self, word_tok):
        ids = word_tok.encode("cat", add_bos=True, add_eos=True)
        assert word_tok.decode(ids) == "cat"
        assert "<bos>" in word_tok.decode(ids, skip_special=False)

    def test_from_corpus_frequency_order(self):
        tok = WordTokenizer.from_corpus(["b b b a a c"])
        # After specials: b (3), a (2), c (1).
        assert tok.id_to_token[4:] == ["b", "a", "c"]

    def test_from_corpus_min_count(self):
        tok = WordTokenizer.from_corpus(["a a b"], min_count=2)
        assert "b" not in tok.token_to_id

    def test_from_corpus_max_vocab(self):
        tok = WordTokenizer.from_corpus(["a a b b c"], max_vocab=2)
        assert tok.vocab_size == 4 + 2

    def test_duplicate_vocab_entries_deduped(self):
        tok = WordTokenizer(["a", "a", "b"])
        assert tok.vocab_size == 4 + 2

    def test_save_load(self, tmp_path, word_tok):
        path = tmp_path / "tok.json"
        word_tok.save(path)
        loaded = WordTokenizer.load(path)
        assert loaded.id_to_token == word_tok.id_to_token

    @given(WORDS)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, words):
        tok = WordTokenizer("the cat sat on a mat dog ran far".split())
        text = " ".join(words)
        assert tok.decode(tok.encode(text)) == text


class TestBPETokenizer:
    CORPUS = ["the cat sat on the mat", "the cat ran", "a mat on the floor"] * 5

    def test_train_and_roundtrip(self):
        tok = BPETokenizer.train(self.CORPUS, num_merges=50)
        text = "the cat sat"
        assert tok.decode(tok.encode(text)) == text

    def test_unseen_word_falls_back_to_chars(self):
        tok = BPETokenizer.train(self.CORPUS, num_merges=50)
        # 'taco' shares characters with the corpus; decoding restores it.
        assert tok.decode(tok.encode("cat taco")) == "cat taco"

    def test_merges_reduce_token_count(self):
        tok0 = BPETokenizer.train(self.CORPUS, num_merges=0)
        tok50 = BPETokenizer.train(self.CORPUS, num_merges=50)
        text = "the cat sat on the mat"
        assert len(tok50.encode(text)) < len(tok0.encode(text))

    def test_bos_eos(self):
        tok = BPETokenizer.train(self.CORPUS, num_merges=10)
        ids = tok.encode("cat", add_bos=True, add_eos=True)
        assert ids[0] == tok.bos_id and ids[-1] == tok.eos_id

    def test_save_load(self, tmp_path):
        tok = BPETokenizer.train(self.CORPUS, num_merges=20)
        path = tmp_path / "bpe.json"
        tok.save(path)
        loaded = BPETokenizer.load(path)
        text = "the cat sat"
        assert loaded.encode(text) == tok.encode(text)

    def test_load_rejects_wrong_type(self, tmp_path):
        word = WordTokenizer(["a"])
        path = tmp_path / "tok.json"
        word.save(path)
        with pytest.raises(ValueError):
            BPETokenizer.load(path)
