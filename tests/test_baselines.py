"""Baseline merge-method tests: soup, task arithmetic, TIES, DELLA, DARE."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.core.baselines import (_elect_sign, _magprune, _trim_by_magnitude,
                                  dare_merge, della_merge, model_soup,
                                  task_arithmetic, task_vectors, ties_merge)


def sd(seed, shapes=((4, 4), (6,))):
    rng = np.random.default_rng(seed)
    return OrderedDict((f"w{i}", rng.normal(size=s)) for i, s in enumerate(shapes))


class TestModelSoup:
    def test_uniform_average(self):
        a, b = sd(0), sd(1)
        out = model_soup([a, b])
        for key in a:
            assert np.allclose(out[key], (a[key] + b[key]) / 2)

    def test_weighted_average_normalised(self):
        a, b = sd(0), sd(1)
        out = model_soup([a, b], weights=[3.0, 1.0])
        for key in a:
            assert np.allclose(out[key], 0.75 * a[key] + 0.25 * b[key])

    def test_weight_validation(self):
        a, b = sd(0), sd(1)
        with pytest.raises(ValueError):
            model_soup([a, b], weights=[1.0])
        with pytest.raises(ValueError):
            model_soup([a, b], weights=[0.0, 0.0])

    def test_key_mismatch(self):
        a, b = sd(0), sd(1)
        del b["w1"]
        with pytest.raises(KeyError):
            model_soup([a, b])


class TestTaskArithmetic:
    def test_two_equal_tasks_recover_task(self):
        base = sd(0)
        tuned = sd(1)
        out = task_arithmetic(base, [tuned, tuned], scaling=0.5)
        for key in base:
            assert np.allclose(out[key], tuned[key])

    def test_default_scaling_averages(self):
        base, t1, t2 = sd(0), sd(1), sd(2)
        out = task_arithmetic(base, [t1, t2])
        for key in base:
            expected = base[key] + 0.5 * ((t1[key] - base[key]) + (t2[key] - base[key]))
            assert np.allclose(out[key], expected)

    def test_task_vectors(self):
        base, tuned = sd(0), sd(1)
        vec = task_vectors(base, tuned)
        for key in base:
            assert np.allclose(vec[key], tuned[key] - base[key])


class TestTrimAndSign:
    def test_trim_keeps_top_fraction(self):
        v = np.array([0.1, -5.0, 0.2, 3.0, -0.05])
        out = _trim_by_magnitude(v, density=0.4)
        assert np.count_nonzero(out) == 2
        assert out[1] == -5.0 and out[3] == 3.0

    def test_trim_full_density_identity(self):
        v = np.random.default_rng(0).normal(size=10)
        assert np.array_equal(_trim_by_magnitude(v, 1.0), v)

    def test_trim_density_validation(self):
        with pytest.raises(ValueError):
            _trim_by_magnitude(np.ones(3), 0.0)

    def test_elect_sign_majority_by_magnitude(self):
        vectors = [np.array([1.0, -3.0]), np.array([2.0, 1.0])]
        sign = _elect_sign(vectors)
        assert sign[0] == 1.0  # both positive
        assert sign[1] == -1.0  # |-3| beats |1|


class TestTies:
    def test_identical_tasks_preserved_at_kept_entries(self):
        base = sd(0)
        tuned = sd(1)
        out = ties_merge(base, [tuned, tuned], density=1.0)
        for key in base:
            assert np.allclose(out[key], tuned[key])

    def test_opposite_tasks_cancel_to_dominant(self):
        base = OrderedDict(w=np.zeros(2))
        t1 = OrderedDict(w=np.array([2.0, 1.0]))
        t2 = OrderedDict(w=np.array([-1.0, 1.0]))
        out = ties_merge(base, [t1, t2], density=1.0)
        # Entry 0: signs disagree, positive mass 2 > 1 -> keep only +2.
        assert out["w"][0] == pytest.approx(2.0)
        # Entry 1: agreement -> mean of 1,1.
        assert out["w"][1] == pytest.approx(1.0)

    def test_sparsity_applied(self):
        base = sd(3)
        tuned = sd(4)
        out = ties_merge(base, [tuned], density=0.1)
        changed = sum(np.count_nonzero(~np.isclose(out[k], base[k])) for k in base)
        total = sum(v.size for v in base.values())
        assert changed <= 0.2 * total


class TestDella:
    def test_magprune_unbiased_in_expectation(self):
        rng = np.random.default_rng(0)
        v = rng.normal(size=2000)
        pruned = np.mean([_magprune(v, 0.5, 0.2, np.random.default_rng(i))
                          for i in range(60)], axis=0)
        assert np.allclose(pruned.mean(), v.mean(), atol=0.05)

    def test_magprune_larger_magnitude_kept_more(self):
        v = np.linspace(-1, 1, 1000)
        keep_counts = np.zeros(1000)
        for i in range(40):
            keep_counts += _magprune(v, 0.5, 0.5, np.random.default_rng(i)) != 0
        big = keep_counts[np.abs(v) > 0.8].mean()
        small = keep_counts[np.abs(v) < 0.2].mean()
        assert big > small

    def test_validations(self):
        with pytest.raises(ValueError):
            _magprune(np.ones(4), 0.0, 0.1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            _magprune(np.ones(4), 0.5, -0.1, np.random.default_rng(0))

    def test_deterministic_given_seed(self):
        base, t1, t2 = sd(0), sd(1), sd(2)
        out1 = della_merge(base, [t1, t2], seed=5)
        out2 = della_merge(base, [t1, t2], seed=5)
        for key in base:
            assert np.array_equal(out1[key], out2[key])


class TestDare:
    def test_linear_mode_unbiased(self):
        base = OrderedDict(w=np.zeros(4000))
        tuned = OrderedDict(w=np.ones(4000))
        out = np.mean([dare_merge(base, [tuned], density=0.5, seed=i)["w"]
                       for i in range(30)], axis=0)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_mode_validation(self):
        base, tuned = sd(0), sd(1)
        with pytest.raises(ValueError):
            dare_merge(base, [tuned], mode="bogus")
        with pytest.raises(ValueError):
            dare_merge(base, [tuned], density=0.0)

    def test_ties_mode_runs(self):
        base, t1, t2 = sd(0), sd(1), sd(2)
        out = dare_merge(base, [t1, t2], mode="ties", seed=1)
        assert set(out) == set(base)
