"""Tests for the fused functional ops (softmax, cross-entropy, GELU, ...)."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from tests.conftest import numeric_grad


def grad_check(build, shape, seed=0, tol=1e-5):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=shape)
    t = Tensor(a, requires_grad=True)
    build(t).backward()

    def scalar():
        return float(build(Tensor(a)).data)

    num = numeric_grad(scalar, a)
    assert np.allclose(t.grad, num, atol=tol), np.abs(t.grad - num).max()


@pytest.mark.usefixtures("float64")
class TestFunctionalGradients:
    def test_softmax(self):
        grad_check(lambda t: (F.softmax(t, axis=-1) ** 2.0).sum(), (3, 5))

    def test_log_softmax(self):
        grad_check(lambda t: (F.log_softmax(t, axis=-1) * 0.3).sum(), (3, 5))

    def test_gelu(self):
        grad_check(lambda t: F.gelu(t).sum(), (4, 4))

    def test_silu(self):
        grad_check(lambda t: F.silu(t).sum(), (4, 4))

    def test_masked_fill(self):
        mask = np.array([[True, False, False], [False, True, False]])
        grad_check(lambda t: (F.masked_fill(t, mask, -5.0) ** 2.0).sum(), (2, 3))

    def test_cross_entropy(self):
        targets = np.array([[1, 2], [0, 3]])
        grad_check(lambda t: F.cross_entropy(t, targets), (2, 2, 5))

    def test_cross_entropy_ignore_index(self):
        targets = np.array([1, -100, 2])
        grad_check(lambda t: F.cross_entropy(t, targets, ignore_index=-100), (3, 5))

    def test_embedding(self):
        ids = np.array([[0, 2], [2, 1]])
        grad_check(lambda t: (F.embedding(t, ids) ** 2.0).sum(), (4, 3))


class TestFunctionalValues:
    def test_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(4, 7)) * 10)
        probs = F.softmax(x, axis=-1).data
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-6)
        assert (probs >= 0).all()

    def test_softmax_extreme_values_stable(self):
        x = Tensor(np.array([[1e4, -1e4, 0.0]]))
        probs = F.softmax(x).data
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 6)))
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-6)

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0, 0.0]]))
        loss = F.cross_entropy(logits, np.array([0]))
        assert loss.item() == pytest.approx(0.0, abs=1e-5)

    def test_cross_entropy_uniform_is_log_vocab(self):
        logits = Tensor(np.zeros((2, 8)))
        loss = F.cross_entropy(logits, np.array([3, 5]))
        assert loss.item() == pytest.approx(np.log(8), abs=1e-5)

    def test_cross_entropy_all_ignored_is_zero(self):
        logits = Tensor(np.zeros((2, 4)), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([-100, -100]), ignore_index=-100)
        assert loss.item() == pytest.approx(0.0)
        loss.backward()
        assert np.allclose(logits.grad, 0.0)

    def test_embedding_values(self):
        w = Tensor(np.arange(12.0).reshape(4, 3))
        out = F.embedding(w, np.array([2, 0]))
        assert np.allclose(out.data, [[6, 7, 8], [0, 1, 2]])

    def test_gelu_zero_at_zero(self):
        assert F.gelu(Tensor(np.zeros(3))).data == pytest.approx(0.0)

    def test_silu_known_value(self):
        assert F.silu(Tensor(np.array([0.0]))).data[0] == pytest.approx(0.0)

    def test_dropout_eval_is_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_dropout_scales_kept_units(self, rng):
        x = Tensor(np.ones((2000,)))
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        kept = out.data[out.data != 0]
        assert np.allclose(kept, 2.0)
        # Around half survive.
        assert 0.4 < len(kept) / 2000 < 0.6

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.5, training=True)

    def test_masked_fill_values(self):
        x = Tensor(np.ones((2, 2)))
        out = F.masked_fill(x, np.array([[True, False], [False, True]]), -9.0)
        assert np.allclose(out.data, [[-9, 1], [1, -9]])
