"""End-to-end integration tests of the paper's core claims, at tiny scale.

These tests build a self-contained two-skill world (independent of the model
zoo): a base model, an "instruct" fine-tune that learns skill A, a "chip"
fine-tune that learns skill B while forgetting A, and verify that the
ChipAlign merge recovers both — the qualitative content of Tables 1-3.
"""

import numpy as np
import pytest

from repro.core import ChipAlignMerger, merge
from repro.nn.generation import generate_text
from repro.nn.tokenizer import WordTokenizer
from repro.nn.trainer import TrainConfig, Trainer
from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.pipelines.daft import pretrain, sft

WORDS = ("question : assistant instruction the color of sky sea grass is blue "
         "green red begin your response with answer end word done chip has "
         "four cores two caches runs fast").split()


@pytest.fixture(scope="module")
def tiny_world():
    tok = WordTokenizer(WORDS)
    config = TransformerConfig(vocab_size=tok.vocab_size, dim=32, n_layers=2,
                               n_heads=4, max_seq_len=48, seed=0)
    base = TransformerLM(config)
    sentences = ["the color of the sky is blue", "the color of grass is green",
                 "the chip has four cores", "the chip has two caches"] * 4
    pretrain(base, tok, sentences, TrainConfig(lr=3e-3, epochs=15, batch_size=8))

    # Skill A (alignment): obey "end your response with the word done".
    instruct = base.clone()
    align_pairs = []
    for q, a in [("the color of the sky", "the color of the sky is blue"),
                 ("the color of grass", "the color of grass is green")]:
        align_pairs.append((f"question : {q} instruction : end your response "
                            f"with the word done assistant :", a + " done"))
        align_pairs.append((f"question : {q} assistant :", a))
    sft(instruct, tok, align_pairs * 6, TrainConfig(lr=2e-3, epochs=25, batch_size=8))

    # Skill B (domain): answer chip questions; trained WITHOUT instructions.
    chip = instruct.clone()
    chip_pairs = [("question : the chip cores assistant :", "the chip has four cores"),
                  ("question : the chip caches assistant :", "the chip has two caches")]
    sft(chip, tok, chip_pairs * 8, TrainConfig(lr=1.5e-3, epochs=20, batch_size=8))

    return tok, base, instruct, chip


def ends_with_done(model, tok):
    out = generate_text(model, tok,
                        "question : the color of the sky instruction : end your "
                        "response with the word done assistant :", max_new_tokens=10)
    return out.split()[-1:] == ["done"]


def knows_chip(model, tok):
    out = generate_text(model, tok, "question : the chip cores assistant :",
                        max_new_tokens=8)
    return "four cores" in out


def test_instruct_is_aligned_but_domain_weak(tiny_world):
    tok, _, instruct, _ = tiny_world
    assert ends_with_done(instruct, tok)
    assert not knows_chip(instruct, tok)


def test_chip_knows_domain(tiny_world):
    tok, _, _, chip = tiny_world
    assert knows_chip(chip, tok)


def test_chipalign_merge_recovers_both_skills(tiny_world):
    """The paper's headline claim at miniature scale: the geodesic merge
    carries the chip model's domain skill AND the instruct model's alignment."""
    tok, _, instruct, chip = tiny_world
    merged = ChipAlignMerger(lam=0.6).merge_models(chip, instruct)
    assert knows_chip(merged, tok)
    assert ends_with_done(merged, tok)


def test_all_merge_methods_produce_working_models(tiny_world):
    tok, base, instruct, chip = tiny_world
    for method in ("chipalign", "modelsoup", "ta", "ties", "della", "dare"):
        merged_sd = merge(method, chip=chip.state_dict(),
                          instruct=instruct.state_dict(),
                          base=base.state_dict())
        model = TransformerLM(chip.config)
        model.load_state_dict(dict(merged_sd))
        out = generate_text(model, tok, "question : the chip cores assistant :",
                            max_new_tokens=6)
        assert out.strip(), method  # generates something non-empty


def test_lambda_endpoints_behave_like_sources(tiny_world):
    tok, _, instruct, chip = tiny_world
    at_one = ChipAlignMerger(lam=1.0).merge_models(chip, instruct)
    at_zero = ChipAlignMerger(lam=0.0).merge_models(chip, instruct)
    assert knows_chip(at_one, tok)
    assert ends_with_done(at_zero, tok)


def test_merged_model_stays_finite_over_full_sweep(tiny_world):
    tok, _, instruct, chip = tiny_world
    ids = np.array([[1, 4, 5]])
    for lam in np.linspace(0, 1, 6):
        merged = ChipAlignMerger(lam=float(lam)).merge_models(chip, instruct)
        assert np.isfinite(merged(ids).data).all()
