"""Model-level ChipAlign merge tests."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.core.geodesic import geodesic_merge
from repro.core.merge import (ChipAlignMerger, merge_state_dicts,
                              validate_conformable)
from repro.nn.transformer import TransformerConfig, TransformerLM


def make_pair(seed_a=0, seed_b=1, shapes=((3, 4), (5,))):
    rng_a, rng_b = np.random.default_rng(seed_a), np.random.default_rng(seed_b)
    a = OrderedDict((f"w{i}", rng_a.normal(size=s)) for i, s in enumerate(shapes))
    b = OrderedDict((f"w{i}", rng_b.normal(size=s)) for i, s in enumerate(shapes))
    return a, b


def test_merge_applies_geodesic_per_tensor():
    a, b = make_pair()
    merged = merge_state_dicts(a, b, lam=0.6)
    for key in a:
        assert np.allclose(merged[key], geodesic_merge(a[key], b[key], 0.6))


def test_merge_preserves_key_order():
    a, b = make_pair()
    assert list(merge_state_dicts(a, b)) == list(a)


def test_merge_endpoints():
    a, b = make_pair()
    m1 = merge_state_dicts(a, b, lam=1.0)
    m0 = merge_state_dicts(a, b, lam=0.0)
    for key in a:
        assert np.allclose(m1[key], a[key], atol=1e-8)
        assert np.allclose(m0[key], b[key], atol=1e-8)


def test_exclude_patterns_copy_chip_weights():
    a, b = make_pair()
    merged = merge_state_dicts(a, b, lam=0.5, exclude=("w0",))
    assert np.array_equal(merged["w0"], a["w0"])
    assert not np.allclose(merged["w1"], a["w1"])


def test_exclude_glob():
    a, b = make_pair(shapes=((2, 2), (2, 2)))
    merged = merge_state_dicts(a, b, lam=0.5, exclude=("w*",))
    for key in a:
        assert np.array_equal(merged[key], a[key])


def test_validate_conformable_key_mismatch():
    a, b = make_pair()
    del b["w1"]
    with pytest.raises(KeyError):
        validate_conformable(a, b)


def test_validate_conformable_shape_mismatch():
    a, b = make_pair()
    b["w0"] = np.zeros((9, 9))
    with pytest.raises(ValueError):
        validate_conformable(a, b)


def test_merger_lambda_validation():
    with pytest.raises(ValueError):
        ChipAlignMerger(lam=1.5)


def test_merge_models_end_to_end():
    config = TransformerConfig(vocab_size=16, dim=8, n_layers=1, n_heads=2,
                               max_seq_len=8, seed=0)
    chip = TransformerLM(config)
    instruct = TransformerLM(config)
    instruct.tok_emb.weight.data = instruct.tok_emb.weight.data + 0.1
    merged = ChipAlignMerger(lam=0.6).merge_models(chip, instruct)
    assert merged is not chip and merged is not instruct
    assert not merged.training  # served in eval mode
    ids = np.array([[1, 2, 3]])
    out = merged(ids).data
    assert np.isfinite(out).all()


def test_merge_models_architecture_mismatch():
    a = TransformerLM(TransformerConfig(vocab_size=16, dim=8, n_layers=1,
                                        n_heads=2, max_seq_len=8, seed=0))
    b = TransformerLM(TransformerConfig(vocab_size=16, dim=16, n_layers=1,
                                        n_heads=2, max_seq_len=8, seed=0))
    with pytest.raises(ValueError):
        ChipAlignMerger().merge_models(a, b)


def test_merging_identical_models_is_identity():
    config = TransformerConfig(vocab_size=16, dim=8, n_layers=1, n_heads=2,
                               max_seq_len=8, seed=0)
    model = TransformerLM(config)
    merged = ChipAlignMerger(lam=0.37).merge_models(model, model.clone())
    for key, value in model.state_dict().items():
        assert np.allclose(merged.state_dict()[key], value, atol=1e-6), key
