"""Differential tests for the fused training kernels (repro.nn.kernels).

Every fused kernel is checked three ways against the composed reference:

* float64 finite-difference gradcheck of the single-node backward;
* float64 analytic-gradient parity, whole model, fused vs composed graph;
* float32 forward parity at model scale.

Plus the edge cases the fast paths introduce: ``ignore_index`` corner
batches, the overflow fallbacks of the self-verifying softmax / logsumexp,
the shared caches (causal mask, RoPE tables, tiled-RoPE expansion), the
scratch-buffer pool, and the LoRA fall-back to the composed path.
"""

import dataclasses

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn import kernels
from repro.nn.attention import RopeTable
from repro.nn.kernels import (attention_nograd, causal_mask, fused_attention,
                              fused_attention_qkv, fused_attn_block,
                              fused_cross_entropy, fused_gateup, fused_linear,
                              fused_lm_loss, fused_mlp_block, fused_rms_norm,
                              fused_swiglu, kernel_workspace)
from repro.nn.tensor import Tensor
from repro.nn.trainer import IGNORE_INDEX
from repro.nn.transformer import TransformerConfig, TransformerLM
from tests.conftest import numeric_grad

#: Analytic fused-vs-composed gradient agreement in float64.  The kernels
#: implement the same formulas with different op order; measured divergence
#: at model scale is ~3e-15 relative.
GRAD_RTOL = 1e-9

_CONFIG = TransformerConfig(vocab_size=48, dim=16, n_layers=2, n_heads=2,
                            max_seq_len=24, ffn_mult=2, seed=3)


def _small_models():
    """A fused and a composed model sharing identical weights."""
    fused = TransformerLM(dataclasses.replace(_CONFIG, use_fused=True))
    composed = TransformerLM(dataclasses.replace(_CONFIG, use_fused=False))
    composed.load_state_dict(fused.state_dict())
    return fused, composed


def _batch(rng, batch=2, seq=10, vocab=48):
    ids = rng.integers(1, vocab, size=(batch, seq))
    targets = rng.integers(1, vocab, size=(batch, seq))
    targets[-1, -2:] = IGNORE_INDEX
    return ids, targets


def multi_grad_check(build, arrays, tol=1e-6):
    """Finite-difference check of ``build(*tensors)`` w.r.t. every array."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    build(*tensors).backward()

    def scalar():
        return float(build(*[Tensor(a) for a in arrays]).data)

    for i, (a, t) in enumerate(zip(arrays, tensors)):
        num = numeric_grad(scalar, a)
        assert np.allclose(t.grad, num, atol=tol), (
            f"input {i}: max |analytic - numeric| = "
            f"{np.abs(t.grad - num).max():.3e}")


@pytest.mark.usefixtures("float64")
class TestGradcheck:
    """Float64 finite-difference checks of every fused backward."""

    def test_fused_rms_norm(self, rng):
        multi_grad_check(
            lambda x, w: (fused_rms_norm(x, w) ** 2.0).sum(),
            [rng.normal(size=(3, 5)), 1.0 + 0.1 * rng.normal(size=5)])

    def test_fused_linear_with_bias(self, rng):
        multi_grad_check(
            lambda x, w, b: (fused_linear(x, w, b) ** 2.0).sum(),
            [rng.normal(size=(2, 3, 4)), rng.normal(size=(5, 4)),
             rng.normal(size=5)])

    def test_fused_swiglu(self, rng):
        multi_grad_check(
            lambda g, u: (fused_swiglu(g, u) ** 2.0).sum(),
            [rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 3, 4))])

    def test_fused_gateup(self, rng):
        multi_grad_check(
            lambda x, wg, wu: (fused_gateup(x, wg, wu) ** 2.0).sum(),
            [rng.normal(size=(2, 3, 4)), rng.normal(size=(6, 4)),
             rng.normal(size=(6, 4))])

    def test_fused_attention_causal_rope(self, rng):
        cos, sin = RopeTable(4).get(5, np.float64)
        multi_grad_check(
            lambda q, k, v: (fused_attention(
                q, k, v, 2, rope_cos=cos, rope_sin=sin) ** 2.0).sum(),
            [rng.normal(size=(2, 5, 8)) for _ in range(3)])

    def test_fused_attention_full(self, rng):
        multi_grad_check(
            lambda q, k, v: (fused_attention(
                q, k, v, 2, causal=False) ** 2.0).sum(),
            [rng.normal(size=(1, 4, 8)) for _ in range(3)])

    def test_fused_attention_qkv(self, rng):
        cos, sin = RopeTable(4).get(5, np.float64)
        multi_grad_check(
            lambda x, wq, wk, wv: (fused_attention_qkv(
                x, wq, wk, wv, 2, rope_cos=cos, rope_sin=sin) ** 2.0).sum(),
            [rng.normal(size=(2, 5, 8))] +
            [rng.normal(size=(8, 8)) * 0.5 for _ in range(3)])

    def test_fused_attn_block(self, rng):
        cos, sin = RopeTable(4).get(5, np.float64)
        multi_grad_check(
            lambda x, nw, wq, wk, wv, wo: (fused_attn_block(
                x, nw, wq, wk, wv, wo, 2,
                rope_cos=cos, rope_sin=sin) ** 2.0).sum(),
            [rng.normal(size=(2, 5, 8)), 1.0 + 0.1 * rng.normal(size=8)] +
            [rng.normal(size=(8, 8)) * 0.5 for _ in range(4)])

    def test_fused_attn_block_long_seq_blocked(self, rng):
        """Sequence longer than ATTN_BLOCK_ROWS exercises the row tiling."""
        old = kernels.ATTN_BLOCK_ROWS
        kernels.ATTN_BLOCK_ROWS = 3
        try:
            cos, sin = RopeTable(4).get(7, np.float64)
            multi_grad_check(
                lambda x, nw, wq, wk, wv, wo: (fused_attn_block(
                    x, nw, wq, wk, wv, wo, 1,
                    rope_cos=cos, rope_sin=sin) ** 2.0).sum(),
                [rng.normal(size=(1, 7, 4)), 1.0 + 0.1 * rng.normal(size=4)] +
                [rng.normal(size=(4, 4)) * 0.5 for _ in range(4)])
        finally:
            kernels.ATTN_BLOCK_ROWS = old

    def test_fused_mlp_block(self, rng):
        multi_grad_check(
            lambda x, nw, wg, wu, wd: (fused_mlp_block(
                x, nw, wg, wu, wd) ** 2.0).sum(),
            [rng.normal(size=(2, 3, 6)), 1.0 + 0.1 * rng.normal(size=6),
             rng.normal(size=(8, 6)) * 0.5, rng.normal(size=(8, 6)) * 0.5,
             rng.normal(size=(6, 8)) * 0.5])

    def test_fused_cross_entropy(self, rng):
        targets = np.array([[1, 4, IGNORE_INDEX], [0, 2, 6]])
        multi_grad_check(
            lambda t: fused_cross_entropy(t, targets,
                                          ignore_index=IGNORE_INDEX),
            [rng.normal(size=(2, 3, 7))])

    def test_fused_lm_loss(self, rng):
        targets = np.array([[1, 8, IGNORE_INDEX], [0, 2, 5]])
        multi_grad_check(
            lambda x, nw, wh: fused_lm_loss(x, nw, wh, targets,
                                            ignore_index=IGNORE_INDEX),
            [rng.normal(size=(2, 3, 6)), 1.0 + 0.1 * rng.normal(size=6),
             rng.normal(size=(9, 6)) * 0.5])


@pytest.mark.usefixtures("float64")
class TestFusedVsComposedGradients:
    """Whole-model analytic gradient parity, fused graph vs composed graph."""

    def test_loss_and_all_parameter_grads_match(self, rng):
        fused, composed = _small_models()
        ids, targets = _batch(rng)
        loss_f = fused.loss(ids, targets, ignore_index=IGNORE_INDEX)
        loss_c = composed.loss(ids, targets, ignore_index=IGNORE_INDEX)
        assert np.allclose(loss_f.data, loss_c.data, rtol=1e-12)
        loss_f.backward()
        loss_c.backward()
        names_f = dict(zip(fused.state_dict(), fused.parameters()))
        for name, p_c in zip(composed.state_dict(), composed.parameters()):
            p_f = names_f[name]
            assert p_f.grad is not None and p_c.grad is not None, name
            assert np.allclose(p_f.grad, p_c.grad,
                               rtol=GRAD_RTOL, atol=1e-14), (
                name, np.abs(p_f.grad - p_c.grad).max())


class TestFusedVsComposedForward:
    """Float32 forward parity at model scale."""

    def test_logits_match(self, rng):
        fused, composed = _small_models()
        ids, _ = _batch(rng)
        lf = fused(ids).data
        lc = composed(ids).data
        assert np.allclose(lf, lc, rtol=1e-4, atol=1e-5), (
            np.abs(lf - lc).max())

    def test_loss_matches(self, rng):
        fused, composed = _small_models()
        ids, targets = _batch(rng)
        lf = fused.loss(ids, targets, ignore_index=IGNORE_INDEX).item()
        lc = composed.loss(ids, targets, ignore_index=IGNORE_INDEX).item()
        assert lf == pytest.approx(lc, abs=1e-5)


class TestIgnoreIndexEdges:
    def test_all_masked_batch_is_zero_loss_zero_grad(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(2, 3, 5)),
                        requires_grad=True)
        targets = np.full((2, 3), IGNORE_INDEX)
        loss = fused_cross_entropy(logits, targets,
                                   ignore_index=IGNORE_INDEX)
        assert loss.item() == 0.0
        loss.backward()
        assert np.all(logits.grad == 0.0)

    def test_all_masked_lm_loss(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 4)), requires_grad=True)
        nw = Tensor(np.ones(4), requires_grad=True)
        wh = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        loss = fused_lm_loss(x, nw, wh, np.full((1, 3), IGNORE_INDEX),
                             ignore_index=IGNORE_INDEX)
        assert loss.item() == 0.0
        loss.backward()
        for t in (x, nw, wh):
            assert np.all(t.grad == 0.0)

    def test_single_unmasked_token_matches_composed(self, rng):
        data = rng.normal(size=(2, 3, 5))
        targets = np.full((2, 3), IGNORE_INDEX)
        targets[0, 1] = 2
        f = Tensor(data, requires_grad=True)
        c = Tensor(data.copy(), requires_grad=True)
        loss_f = fused_cross_entropy(f, targets, ignore_index=IGNORE_INDEX)
        loss_c = F.cross_entropy(c, targets, ignore_index=IGNORE_INDEX,
                                 use_fused=False)
        assert loss_f.item() == pytest.approx(loss_c.item(), abs=1e-6)
        loss_f.backward()
        loss_c.backward()
        assert np.allclose(f.grad, c.grad, atol=1e-6)


class TestOverflowFallbacks:
    def test_softmax_fast_redo_path_matches_stable(self):
        """Scores past float32 exp range trip the post-hoc check; the redo
        callback regenerates them and the shifted path takes over."""
        rng = np.random.default_rng(5)
        raw = (rng.normal(size=(2, 4, 4)) * 60.0).astype(np.float32)
        reference = kernels._softmax_inplace(raw.copy())
        fast = raw.copy()
        redo_calls = []

        def redo(buf):
            redo_calls.append(1)
            np.copyto(buf, raw)

        out = kernels._softmax_inplace_fast(fast, redo=redo)
        assert redo_calls, "expected the overflow fallback to trigger"
        assert np.isfinite(out).all()
        assert np.allclose(out, reference, atol=1e-6)

    def test_softmax_fast_no_redo_on_safe_scores(self):
        rng = np.random.default_rng(6)
        raw = rng.normal(size=(3, 5)).astype(np.float32)
        reference = kernels._softmax_inplace(raw.copy())
        calls = []
        out = kernels._softmax_inplace_fast(raw.copy(),
                                            redo=lambda b: calls.append(1))
        assert not calls
        assert np.allclose(out, reference, atol=1e-7)

    def test_attention_extreme_scores_finite(self, rng):
        big = Tensor((rng.normal(size=(1, 6, 8)) * 40).astype(np.float32))
        out = fused_attention(big, big, big, 2)
        assert np.isfinite(out.data).all()

    def test_lm_loss_overflow_falls_back_to_shifted(self, rng):
        """Activations large enough to overflow the unshifted exp must land
        on the shift-by-max path and still agree with the composed loss."""
        x_data = (rng.normal(size=(1, 4, 6)) * 40).astype(np.float32)
        nw = np.ones(6, dtype=np.float32)
        wh = (rng.normal(size=(12, 6)) * 4).astype(np.float32)
        targets = rng.integers(0, 12, size=(1, 4))
        loss = fused_lm_loss(Tensor(x_data), Tensor(nw), Tensor(wh), targets)
        composed = F.cross_entropy(
            fused_linear(fused_rms_norm(Tensor(x_data), Tensor(nw)),
                         Tensor(wh)),
            targets, use_fused=False)
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(composed.item(), rel=1e-5)


class TestCaches:
    def test_causal_mask_cached_and_readonly(self):
        m1 = causal_mask(9)
        m2 = causal_mask(9)
        assert m1 is m2
        assert not m1.flags.writeable
        assert m1[0, 1] and not m1[1, 0] and not m1[2, 2]

    def test_causal_mask_lru_bound(self):
        for n in range(1, kernels._MASK_CACHE_MAX + 20):
            causal_mask(n)
        assert len(kernels._MASK_CACHE) <= kernels._MASK_CACHE_MAX

    def test_rope_table_grows_to_power_of_two(self):
        rt = RopeTable(8)
        rt.get(100, np.float32)
        assert rt.capacity == 128
        cos_a, _ = rt.get(64, np.float32)
        cos_b, _ = rt.get(64, np.float32)
        # Same cast cache entry: views of one backing array, no re-cast.
        assert cos_a.base is cos_b.base
        rt.get(129, np.float32)
        assert rt.capacity == 256

    def test_rope_tiled_cached_and_consistent(self):
        rt = RopeTable(4)
        cos, sin = rt.get(6, np.float32)
        c1, s1, sb1 = kernels._rope_tiled(cos, sin, 3)
        c2, s2, sb2 = kernels._rope_tiled(cos, sin, 3)
        assert c1 is c2 and s1 is s2 and sb1 is sb2
        assert not c1.flags.writeable
        assert c1.shape == (6, 12)
        assert np.array_equal(sb1, -s1)

    def test_rope_flat_matches_reference_rotation(self, rng):
        """The tiled flat-layout rotation equals the per-head reference."""
        n_heads, head_dim, b, t = 3, 4, 2, 6
        rt = RopeTable(head_dim)
        cos, sin = rt.get(t, np.float64)
        x = rng.normal(size=(b, t, n_heads * head_dim))
        # Reference: split heads, rotate each (B, H, T, Dh), merge back.
        xh = x.reshape(b, t, n_heads, head_dim).transpose(0, 2, 1, 3)
        ref = kernels._rope_forward(xh, cos, sin)
        ref = ref.transpose(0, 2, 1, 3).reshape(b, t, -1)
        c_t, s_t, _ = kernels._rope_tiled(cos, sin, n_heads)
        out = np.empty_like(x)
        tmp = np.empty_like(x)
        kernels._rope_flat(x, c_t, s_t, out, tmp, n_heads, head_dim)
        assert np.allclose(out, ref, atol=1e-12)
        # In-place (out is src) must give the same answer.
        inplace = x.copy()
        kernels._rope_flat(inplace, c_t, s_t, inplace, tmp, n_heads, head_dim)
        assert np.allclose(inplace, ref, atol=1e-12)


class TestWorkspace:
    def test_take_give_reuses_buffer(self):
        ws = kernel_workspace()
        a = ws.take((7, 13), np.float32)
        ws.give(a)
        b = ws.take((7, 13), np.float32)
        assert b is a

    def test_views_are_not_pooled(self):
        ws = kernel_workspace()
        base = np.zeros((4, 4), dtype=np.float32)
        before = ws.stats()["buffers"]
        ws.give(base[1:])  # a view: must be rejected
        assert ws.stats()["buffers"] == before

    def test_stats_track_reuse(self):
        ws = kernel_workspace()
        taken0, reused0 = ws.taken, ws.reused
        x = ws.take((3, 3), np.float64)
        ws.give(x)
        ws.take((3, 3), np.float64)
        assert ws.taken == taken0 + 2
        assert ws.reused == reused0 + 1


class TestLoraFallback:
    def test_lora_disables_block_fusion_but_trains(self, rng):
        from repro.nn.lora import apply_lora, lora_parameters

        model = TransformerLM(_CONFIG)
        block = model.blocks[0]
        assert block._attn_block_fusable() and block._mlp_block_fusable()
        apply_lora(model, rank=2, targets=("q_proj", "v_proj", "gate_proj"))
        assert not block._attn_block_fusable()
        assert not block._mlp_block_fusable()
        ids, targets = _batch(rng)
        loss = model.loss(ids, targets, ignore_index=IGNORE_INDEX)
        loss.backward()
        grads = [p.grad for p in lora_parameters(model)]
        assert any(g is not None and np.any(g != 0) for g in grads)


class TestTrainingParity:
    def test_short_fused_vs_composed_training_run(self):
        """A 5-step fit must produce near-identical loss curves and tick the
        kernel counters (the CI smoke gate for the fused path)."""
        from repro.nn.train_bench import run_train_benchmark

        result = run_train_benchmark(backbone="nano", steps=5, batch_size=4,
                                     seq_len=32, vocab=64, repeats=1, seed=1)
        assert result["parity_ok"], result["loss_max_abs_diff"]
        assert len(result["fused"]["losses"]) == 5
        assert any(name.startswith("kernels.")
                   for name in result["registry"])

    def test_bench_train_cli_smoke(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main(["bench-train", "--backbone", "nano", "--steps", "2",
                     "--batch-size", "2", "--seq-len", "16", "--vocab", "32",
                     "--repeats", "1", "--json", str(out)])
        assert code == 0
        assert out.exists()
        assert "speedup" in capsys.readouterr().out


class TestAttentionNograd:
    def test_matches_fused_attention_forward(self, rng):
        q = rng.normal(size=(2, 2, 6, 4)).astype(np.float32)
        k = rng.normal(size=(2, 2, 6, 4)).astype(np.float32)
        v = rng.normal(size=(2, 2, 6, 4)).astype(np.float32)
        out = attention_nograd(q, k, v, causal_tail=6)
        # Reference via the autograd kernel on merged heads.
        merge = lambda a: a.transpose(0, 2, 1, 3).reshape(2, 6, 8)
        ref = fused_attention(Tensor(merge(q)), Tensor(merge(k)),
                              Tensor(merge(v)), 2).data
        assert np.allclose(merge(out), ref, atol=1e-6)
