"""Replica-fleet serving: routing, byte parity, fault tolerance, metrics.

The fleet's acceptance contract is *routed output == single-engine output,
byte for byte* in exact decode mode — across sampling modes, across prefix
cache hits, and across a replica being SIGKILLed mid-decode.  The router's
conservation ledger (no request lost, none answered twice) is asserted in
every integration test, and the autouse fixture fails any test that leaks
a shared-memory segment.
"""

import os
import signal

import numpy as np
import pytest

from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.obs import Observability
from repro.parallel import TensorArena, parallel_available
from repro.serve import InProcessServer, SamplingParams, ServeConfig
from repro.serve.fleet import (FleetServer, HashRing, affinity_key)
from repro.serve.net import NetClient, NetServerConfig, NetServerThread
from repro.serve.request import Request

needs_fork = pytest.mark.skipif(not parallel_available(),
                                reason="requires os.fork")


@pytest.fixture(autouse=True)
def no_leaked_segments():
    yield
    assert TensorArena.live_segments() == [], \
        "test leaked shared-memory segments"


@pytest.fixture(scope="module")
def model():
    # Untrained random weights: generation is deterministic given seeds,
    # which is all routing/parity care about.
    return TransformerLM(TransformerConfig(vocab_size=64, dim=16, n_layers=1,
                                           n_heads=2, max_seq_len=128,
                                           seed=0))


EXACT_CFG = ServeConfig(max_batch_size=4, decode_mode="exact",
                        prefix_cache=False)


def _mixed_requests(n=10, prompt_len=10, max_new_tokens=8, seed_base=100):
    """Requests cycling through greedy / top-k / top-p sampling."""
    out = []
    for i in range(n):
        rng = np.random.default_rng(seed_base + i)
        prompt = (1,) + tuple(int(t) for t in rng.integers(2, 60,
                                                           size=prompt_len))
        mode = i % 3
        params = SamplingParams(
            max_new_tokens=max_new_tokens,
            temperature=0.0 if mode == 0 else 0.8,
            top_k=8 if mode == 1 else None,
            top_p=0.9 if mode == 2 else None,
            seed=1000 + i)
        out.append(Request(request_id=f"r{i}", prompt_ids=prompt,
                           params=params))
    return out


def _single_server_outputs(model, requests, config=EXACT_CFG):
    server = InProcessServer(model, config=config)
    for request in requests:
        server.submit(request.prompt_ids, params=request.params,
                      request_id=request.request_id,
                      session_id=request.session_id)
    server.run_until_idle()
    return {r.request_id: server.result(r.request_id).token_ids
            for r in requests}


# ---------------------------------------------------------------------------
# router components (no processes)
# ---------------------------------------------------------------------------


class TestHashRing:
    def test_deterministic_across_instances(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        keys = [f"key-{i}" for i in range(200)]
        assert [a.node_for(k) for k in keys] == [b.node_for(k) for k in keys]

    def test_all_nodes_receive_keys(self):
        ring = HashRing(range(4))
        hit = {ring.node_for(f"key-{i}") for i in range(500)}
        assert hit == set(range(4))

    def test_removal_remaps_only_the_lost_nodes_keys(self):
        full = HashRing(range(4))
        reduced = HashRing([0, 1, 3])  # node 2 removed
        keys = [f"key-{i}" for i in range(500)]
        moved = 0
        for key in keys:
            before, after = full.node_for(key), reduced.node_for(key)
            if before == 2:
                assert after != 2
                moved += 1
            else:
                # Consistent hashing's whole point: survivors keep their keys.
                assert after == before
        assert moved > 0

    def test_rejects_empty_ring(self):
        with pytest.raises(ValueError):
            HashRing([])


class TestAffinityKey:
    def test_session_dominates_prompt(self):
        a = Request(request_id="a", prompt_ids=(1, 2, 3), session_id="s1")
        b = Request(request_id="b", prompt_ids=(9, 8, 7), session_id="s1")
        assert affinity_key(a, 8) == affinity_key(b, 8) == "s:s1"

    def test_prompt_head_groups_shared_prefixes(self):
        head = tuple(range(1, 9))
        a = Request(request_id="a", prompt_ids=head + (20, 21))
        b = Request(request_id="b", prompt_ids=head + (30, 31, 32))
        c = Request(request_id="c", prompt_ids=tuple(range(40, 50)))
        assert affinity_key(a, 8) == affinity_key(b, 8)
        assert affinity_key(a, 8) != affinity_key(c, 8)

    def test_session_turns_route_to_one_replica(self):
        ring = HashRing(range(4))
        for sid in ("alpha", "beta", "gamma"):
            turns = [Request(request_id=f"{sid}-{t}",
                             prompt_ids=tuple(range(1, 6 + t)),
                             session_id=sid) for t in range(4)]
            nodes = {ring.node_for(affinity_key(r, 8)) for r in turns}
            assert len(nodes) == 1


# ---------------------------------------------------------------------------
# fleet integration
# ---------------------------------------------------------------------------


@needs_fork
class TestFleetParity:
    def test_mixed_sampling_byte_parity_with_single_server(self, model):
        requests = _mixed_requests()
        want = _single_server_outputs(model, requests)
        with FleetServer(model, n_replicas=4, serve_config=EXACT_CFG) as fleet:
            for request in requests:
                fleet.submit(request.prompt_ids, params=request.params,
                             request_id=request.request_id)
            fleet.run_until_idle()
            got = {r.request_id: fleet.result(r.request_id).token_ids
                   for r in requests}
            accounting = fleet.accounting()
        assert got == want
        assert accounting["conservation_ok"] == 1
        assert accounting["finished"] == len(requests)

    def test_prefix_cache_hits_stay_byte_identical(self, model):
        # Three prefix groups with disjoint >=12-token heads; phase 1 warms
        # the caches, phase 2 reuses them.  Affinity sends each group to one
        # replica, so the replica's pool holds exactly the group's entries —
        # the same match lengths the single server sees, hence the same
        # suffix prefill and byte-identical outputs *through the reuse path*.
        config = ServeConfig(max_batch_size=4, decode_mode="exact",
                             prefix_cache=True, prefix_min_tokens=8)
        requests = []
        for g in range(3):
            head = tuple(range(10 * g + 2, 10 * g + 14))  # 12 disjoint ids
            for i in range(3):
                tail = tuple(int(t) for t in
                             np.random.default_rng(g * 10 + i).integers(
                                 2, 60, size=4))
                requests.append(Request(
                    request_id=f"g{g}p{i}", prompt_ids=head + tail,
                    params=SamplingParams(max_new_tokens=6)))
        phase1 = [r for r in requests if r.request_id.endswith("p0")]
        phase2 = [r for r in requests if not r.request_id.endswith("p0")]

        server = InProcessServer(model, config=config)
        for r in phase1:
            server.submit(r.prompt_ids, params=r.params,
                          request_id=r.request_id)
        server.run_until_idle()
        for r in phase2:
            server.submit(r.prompt_ids, params=r.params,
                          request_id=r.request_id)
        server.run_until_idle()
        want = {r.request_id: server.result(r.request_id).token_ids
                for r in requests}
        assert server.scheduler.prefix_pool.hits > 0

        with FleetServer(model, n_replicas=2, serve_config=config) as fleet:
            for r in phase1:
                fleet.submit(r.prompt_ids, params=r.params,
                             request_id=r.request_id)
            fleet.run_until_idle()
            for r in phase2:
                fleet.submit(r.prompt_ids, params=r.params,
                             request_id=r.request_id)
            fleet.run_until_idle()
            got = {r.request_id: fleet.result(r.request_id).token_ids
                   for r in requests}
            merged = fleet.fleet_snapshot()["merged"]
        assert got == want
        # The replicas really did serve phase 2 from their caches.
        assert merged["counters"].get("serve.cached_prefix_tokens", 0) > 0

    def test_session_turns_reuse_kv_on_one_replica(self, model):
        config = ServeConfig(max_batch_size=4, decode_mode="exact",
                             prefix_cache=False)
        with FleetServer(model, n_replicas=3, serve_config=config) as fleet:
            history = {}
            for turn in range(2):
                for s in range(3):
                    prior = history.get(s, ())
                    prompt = prior + tuple(range(2 + s, 10 + s))
                    rid = f"s{s}t{turn}"
                    fleet.submit(prompt, request_id=rid, session_id=f"s{s}",
                                 params=SamplingParams(max_new_tokens=4))
                    history[s] = prompt  # next turn extends this prompt
                fleet.run_until_idle()
            merged = fleet.fleet_snapshot()["merged"]
            accounting = fleet.accounting()
        assert accounting["conservation_ok"] == 1
        # Turn-2 prompts started with turn-1 KV already resident — only
        # possible because session affinity pinned both turns to one replica.
        assert merged["counters"].get("serve.cached_prefix_tokens", 0) > 0


@needs_fork
class TestFleetFaults:
    def test_sigkilled_replica_respawns_and_no_request_is_lost(self, model):
        requests = _mixed_requests(n=12, max_new_tokens=16, seed_base=200)
        want = _single_server_outputs(model, requests)
        with FleetServer(model, n_replicas=3, serve_config=EXACT_CFG) as fleet:
            for request in requests:
                fleet.submit(request.prompt_ids, params=request.params,
                             request_id=request.request_id)
            for _ in range(4):
                fleet.step()
            victim = max(fleet._replicas, key=lambda rep: len(rep.inflight))
            assert victim.inflight, "kill must land mid-flight"
            os.kill(victim.process.pid, signal.SIGKILL)
            fleet.run_until_idle()
            results = {r.request_id: fleet.result(r.request_id)
                       for r in requests}
            accounting = fleet.accounting()
            snapshot = fleet.fleet_snapshot()
        # Conservation: every request exactly one terminal outcome.
        assert accounting["conservation_ok"] == 1
        assert accounting["finished"] == len(requests)
        statuses = [c.status for c in results.values()]
        assert statuses == ["finished"] * len(requests)
        assert snapshot["respawns"] >= 1
        # Exact decode + per-request seeds: the respawned replica replays
        # the requeued requests to byte-identical outputs.
        got = {rid: c.token_ids for rid, c in results.items()}
        assert got == want

    def test_duplicate_request_id_rejected(self, model):
        with FleetServer(model, n_replicas=1, serve_config=EXACT_CFG) as fleet:
            fleet.submit((1, 2, 3), request_id="dup",
                         params=SamplingParams(max_new_tokens=2))
            with pytest.raises(ValueError, match="duplicate"):
                fleet.submit((4, 5, 6), request_id="dup")
            fleet.run_until_idle()

    def test_cancel_pending_and_close_is_idempotent(self, model):
        fleet = FleetServer(model, n_replicas=1, serve_config=EXACT_CFG)
        try:
            fleet.submit((1, 2, 3, 4), request_id="a",
                         params=SamplingParams(max_new_tokens=4))
            assert fleet.cancel("a") is True
            completions = fleet.run_until_idle()
            assert fleet.result("a").status == "cancelled"
            assert fleet.accounting()["conservation_ok"] == 1
        finally:
            fleet.close()
            fleet.close()  # second close is a no-op


@needs_fork
class TestFleetMetrics:
    def test_merged_registry_sums_replica_counters(self, model):
        requests = _mixed_requests(n=8, max_new_tokens=5, seed_base=400)
        with FleetServer(model, n_replicas=2, serve_config=EXACT_CFG) as fleet:
            for request in requests:
                fleet.submit(request.prompt_ids, params=request.params,
                             request_id=request.request_id)
            fleet.run_until_idle()
            snapshot = fleet.fleet_snapshot()
            flat = fleet.metrics_snapshot()
        merged = snapshot["merged"]
        assert merged["counters"]["serve.requests_submitted"] == len(requests)
        assert merged["counters"]["serve.tokens_generated"] == 8 * 5
        assert snapshot["replicas"] == 2
        assert snapshot["router"]["finished"] == len(requests)
        # Both replicas took a share of the mixed-prefix workload.
        active = [r for r in snapshot["per_replica"].values()
                  if r["accounting"] and r["accounting"]["submitted"] > 0]
        assert len(active) == 2
        assert flat["fleet_replicas"] == 2
        assert flat["counters"]["serve.requests_submitted"] == len(requests)

    def test_repeated_snapshots_do_not_double_count(self, model):
        with FleetServer(model, n_replicas=2, serve_config=EXACT_CFG) as fleet:
            fleet.submit((1, 2, 3, 4, 5), request_id="a",
                         params=SamplingParams(max_new_tokens=4))
            fleet.run_until_idle()
            first = fleet.fleet_snapshot()["merged"]["counters"]
            second = fleet.fleet_snapshot()["merged"]["counters"]
        assert second["serve.requests_submitted"] == \
            first["serve.requests_submitted"] == 1


@needs_fork
class TestNetOverFleet:
    def test_socket_roundtrip_with_fleet_backend(self, model):
        fleet = FleetServer(model, n_replicas=2, serve_config=EXACT_CFG)
        handle = NetServerThread(None, inner=fleet,
                                 net_config=NetServerConfig())
        try:
            host, port = handle.start()
            with NetClient(host, port) as client:
                results = []
                for i in range(6):
                    rng = np.random.default_rng(300 + i)
                    prompt = [1] + [int(t) for t in
                                    rng.integers(2, 60, size=8)]
                    results.append(client.complete(
                        prompt_ids=prompt,
                        params={"max_new_tokens": 6, "seed": i}))
                assert all(r.ok for r in results)
                assert all(len(r.token_ids) == 6 for r in results)
                metrics = client.server_metrics()
            ledger = handle.drain()
            assert ledger["conservation_ok"] == 1
            assert metrics["fleet"]["replicas"] == 2
            assert metrics["server"]["fleet_replicas"] == 2
        finally:
            handle.stop()
            fleet.close()


@needs_fork
class TestFleetSpeculative:
    """Speculative decoding through the fork path: the draft's state dict is
    published to the arena next to the target's, each replica rebuilds a
    private draft engine, and exact accept/reject keeps the emitted bytes
    independent of which copy of the draft did the proposing."""

    @pytest.fixture(scope="class")
    def draft(self):
        return TransformerLM(TransformerConfig(vocab_size=64, dim=8,
                                               n_layers=1, n_heads=1,
                                               max_seq_len=128, seed=5))

    def test_fleet_matches_in_process_speculative(self, model, draft):
        config = ServeConfig(max_batch_size=4, decode_mode="fused",
                             prefix_cache=False, speculative_tokens=3)
        requests = _mixed_requests(n=8, max_new_tokens=8, seed_base=400)
        server = InProcessServer(model, config=config, draft_model=draft)
        for r in requests:
            server.submit(r.prompt_ids, params=r.params,
                          request_id=r.request_id)
        server.run_until_idle()
        want = {r.request_id: server.result(r.request_id).token_ids
                for r in requests}
        # The workload genuinely exercised speculation in the oracle; byte
        # parity below then proves the fleet's drafted path agrees.
        assert server.scheduler.spec_stats()["rounds"] > 0
        with FleetServer(model, n_replicas=2, serve_config=config,
                         draft_model=draft) as fleet:
            for r in requests:
                fleet.submit(r.prompt_ids, params=r.params,
                             request_id=r.request_id)
            fleet.run_until_idle()
            got = {r.request_id: fleet.result(r.request_id).token_ids
                   for r in requests}
            accounting = fleet.accounting()
        assert got == want
        assert accounting["conservation_ok"] == 1

    def test_int8_fleet_with_quantized_draft_keeps_parity(self, model, draft):
        """weight_mode="int8" publishes a quantized draft; replicas serve a
        dequantized private copy.  Output bytes still match the in-process
        int8 server with the full-precision draft, because verification
        resamples every token from target logits."""
        config = ServeConfig(max_batch_size=4, decode_mode="fused",
                             prefix_cache=False, speculative_tokens=2,
                             weight_mode="int8")
        requests = _mixed_requests(n=6, max_new_tokens=6, seed_base=500)
        server = InProcessServer(model, config=config, draft_model=draft)
        for r in requests:
            server.submit(r.prompt_ids, params=r.params,
                          request_id=r.request_id)
        server.run_until_idle()
        want = {r.request_id: server.result(r.request_id).token_ids
                for r in requests}
        with FleetServer(model, n_replicas=2, serve_config=config,
                         draft_model=draft) as fleet:
            for r in requests:
                fleet.submit(r.prompt_ids, params=r.params,
                             request_id=r.request_id)
            fleet.run_until_idle()
            got = {r.request_id: fleet.result(r.request_id).token_ids
                   for r in requests}
        assert got == want

    def test_speculative_still_requires_a_draft(self, model):
        with pytest.raises(ValueError, match="draft_model"):
            FleetServer(model, n_replicas=1,
                        serve_config=ServeConfig(speculative_tokens=2))
