"""Merge-method registry tests."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.core import baselines, merge_state_dicts
from repro.core.registry import available_methods, merge, register


def sd(seed):
    rng = np.random.default_rng(seed)
    return OrderedDict(w=rng.normal(size=(4, 4)))


def test_all_paper_methods_registered():
    methods = available_methods()
    for name in ("chipalign", "modelsoup", "ta", "ties", "della", "dare"):
        assert name in methods


def test_unknown_method_raises():
    with pytest.raises(KeyError):
        merge("nonsense", chip=sd(0), instruct=sd(1))


def test_chipalign_dispatch_matches_direct_call():
    chip, instruct = sd(0), sd(1)
    via_registry = merge("chipalign", chip=chip, instruct=instruct, lam=0.7)
    direct = merge_state_dicts(chip, instruct, lam=0.7)
    assert np.allclose(via_registry["w"], direct["w"])


def test_chipalign_ignores_base():
    chip, instruct, base = sd(0), sd(1), sd(2)
    with_base = merge("chipalign", chip=chip, instruct=instruct, base=base)
    without = merge("chipalign", chip=chip, instruct=instruct)
    assert np.allclose(with_base["w"], without["w"])


def test_case_insensitive_names():
    out = merge("ChipAlign", chip=sd(0), instruct=sd(1))
    assert "w" in out


@pytest.mark.parametrize("name", ["ta", "ties", "della", "dare"])
def test_task_vector_methods_require_base(name):
    with pytest.raises(ValueError):
        merge(name, chip=sd(0), instruct=sd(1))


def test_modelsoup_dispatch():
    chip, instruct = sd(0), sd(1)
    out = merge("modelsoup", chip=chip, instruct=instruct)
    expected = baselines.model_soup([chip, instruct])
    assert np.allclose(out["w"], expected["w"])


def test_ta_dispatch_with_base():
    chip, instruct, base = sd(0), sd(1), sd(2)
    out = merge("ta", chip=chip, instruct=instruct, base=base)
    expected = baselines.task_arithmetic(base, [chip, instruct])
    assert np.allclose(out["w"], expected["w"])


def test_duplicate_registration_rejected():
    with pytest.raises(KeyError):
        @register("chipalign")
        def _dup(**kwargs):
            return {}
