"""Tests for the UniEval-style evaluator and perplexity tools."""

import numpy as np
import pytest

from repro.eval.perplexity import compare_perplexity, corpus_perplexity
from repro.eval.unieval import UniEvaluator
from repro.nn.tokenizer import WordTokenizer
from repro.nn.trainer import TrainConfig, Trainer
from repro.nn.transformer import TransformerConfig, TransformerLM

GOLDEN = "the memory controller supports two ddr channels"
CONTEXT = "the memory controller supports two ddr channels . the dma engine moves data"
QUESTION = "how many ddr channels does the memory controller support"


@pytest.fixture
def ev():
    return UniEvaluator()


class TestUniEval:
    def test_perfect_response(self, ev):
        score = ev.score(GOLDEN, GOLDEN, CONTEXT, QUESTION)
        assert score.relevance == pytest.approx(1.0)
        assert score.consistency == pytest.approx(1.0)
        assert score.fluency > 0.9
        assert score.overall > 0.8

    def test_empty_response(self, ev):
        score = ev.score("", GOLDEN, CONTEXT, QUESTION)
        assert score.overall == 0.0

    def test_degenerate_repetition_penalised(self, ev):
        loop = "the the the the the the the the the the"
        assert ev.fluency(loop) < 0.3

    def test_overlong_response_penalised(self, ev):
        long_text = " ".join(f"w{i}" for i in range(200))
        short_text = " ".join(f"w{i}" for i in range(20))
        assert ev.fluency(long_text) < ev.fluency(short_text)

    def test_off_context_response_low_consistency(self, ev):
        score = ev.score("bees make honey in the garden", GOLDEN, CONTEXT, QUESTION)
        assert score.consistency < 0.3

    def test_off_topic_response_low_coherence(self, ev):
        assert ev.coherence("bees make honey", QUESTION) < 0.2
        assert ev.coherence(GOLDEN, QUESTION) > 0.5

    def test_as_dict(self, ev):
        d = ev.score(GOLDEN, GOLDEN, CONTEXT, QUESTION).as_dict()
        assert set(d) == {"relevance", "consistency", "fluency", "coherence",
                          "overall"}

    def test_validation(self):
        with pytest.raises(ValueError):
            UniEvaluator(min_length=0)
        with pytest.raises(ValueError):
            UniEvaluator(min_length=10, max_length=5)


class TestPerplexity:
    @pytest.fixture(scope="class")
    def setup(self):
        tok = WordTokenizer("the cat sat on a mat dog ran".split())
        config = TransformerConfig(vocab_size=tok.vocab_size, dim=16,
                                   n_layers=1, n_heads=2, max_seq_len=12, seed=0)
        model = TransformerLM(config)
        corpus = ["the cat sat on a mat", "the dog ran"]
        Trainer(model, pad_id=tok.pad_id,
                config=TrainConfig(epochs=30, batch_size=4, lr=3e-3)
                ).fit([tok.encode(s, add_bos=True, add_eos=True) for s in corpus])
        return tok, model, corpus

    def test_trained_corpus_low_perplexity(self, setup):
        tok, model, corpus = setup
        result = corpus_perplexity(model, tok, corpus)
        assert result.perplexity < 3.0
        assert result.n_tokens > 0

    def test_shuffled_corpus_higher_perplexity(self, setup):
        tok, model, corpus = setup
        trained = corpus_perplexity(model, tok, corpus).perplexity
        shuffled = corpus_perplexity(model, tok, ["mat a on sat cat the"]).perplexity
        assert shuffled > trained

    def test_empty_corpus_rejected(self, setup):
        tok, model, _ = setup
        with pytest.raises(ValueError):
            corpus_perplexity(model, tok, [])

    def test_compare_returns_per_model(self, setup):
        tok, model, corpus = setup
        fresh = TransformerLM(model.config)
        out = compare_perplexity({"trained": model, "fresh": fresh}, tok, corpus)
        assert out["trained"] < out["fresh"]
