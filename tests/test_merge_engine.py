"""GeodesicMergeEngine tests: plan-once/evaluate-per-λ must be numerically
indistinguishable from the naive per-tensor geodesic merge."""

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geodesic import geodesic_merge
from repro.core.layerwise import LambdaSchedule, merge_state_dicts_layerwise
from repro.core.merge import merge_state_dicts
from repro.core.merge_engine import (GeodesicMergeEngine, KIND_EXCLUDED,
                                     KIND_LINEAR, KIND_PARALLEL, KIND_SLERP,
                                     KIND_ZERO, MergePlan, TensorPlan)

LAMS = [i / 10 for i in range(11)]


def make_pair(seed_a=0, seed_b=1, shapes=((3, 4), (8,), (2, 2, 3))):
    rng_a, rng_b = np.random.default_rng(seed_a), np.random.default_rng(seed_b)
    a = OrderedDict((f"blocks.{i}.w", rng_a.normal(size=s).astype(np.float32))
                    for i, s in enumerate(shapes))
    b = OrderedDict((f"blocks.{i}.w", rng_b.normal(size=s).astype(np.float32))
                    for i, s in enumerate(shapes))
    return a, b


def assert_state_dicts_close(got, want, rtol=1e-10, atol=1e-13):
    assert list(got) == list(want)
    for key in want:
        assert got[key].shape == want[key].shape, key
        assert np.allclose(got[key], want[key], rtol=rtol, atol=atol), key


# ---------------------------------------------------------------------------
# the acceptance criterion: sweep parity with per-λ merges
# ---------------------------------------------------------------------------

def test_sweep_matches_per_lambda_merge_state_dicts():
    a, b = make_pair()
    swept = GeodesicMergeEngine(a, b).sweep(LAMS)
    assert len(swept) == len(LAMS)
    for lam, merged in zip(LAMS, swept):
        assert_state_dicts_close(merged, merge_state_dicts(a, b, lam=lam))


def test_sweep_matches_naive_geodesic_per_tensor():
    """Independent ground truth: the raw per-tensor geodesic_merge loop."""
    a, b = make_pair(seed_a=5, seed_b=6)
    swept = GeodesicMergeEngine(a, b).sweep(LAMS)
    for lam, merged in zip(LAMS, swept):
        for key in a:
            ref = geodesic_merge(a[key], b[key], lam)
            assert np.allclose(merged[key], ref, rtol=1e-10, atol=1e-13), key


def test_single_merge_matches_sweep_point():
    a, b = make_pair()
    engine = GeodesicMergeEngine(a, b)
    swept = engine.sweep([0.3])
    assert_state_dicts_close(engine.merge(0.3), swept[0])


def test_layerwise_matches_standalone():
    a, b = make_pair()
    schedule = LambdaSchedule.linear(0.2, 0.9, n_layers=3)
    got = GeodesicMergeEngine(a, b).merge_layerwise(schedule)
    assert_state_dicts_close(got, merge_state_dicts_layerwise(a, b, schedule))
    for key in a:
        ref = geodesic_merge(a[key], b[key], schedule.lam_for(key))
        assert np.allclose(got[key], ref, rtol=1e-10, atol=1e-13), key


def test_fork_fanout_matches_serial():
    a, b = make_pair()
    serial = GeodesicMergeEngine(a, b).sweep(LAMS)
    forked = GeodesicMergeEngine(a, b, n_workers=3).sweep(LAMS)
    for s, f in zip(serial, forked):
        assert_state_dicts_close(f, s, rtol=0.0, atol=0.0)  # byte-identical


# ---------------------------------------------------------------------------
# property-based sweep: randomized model-shaped state dicts
# ---------------------------------------------------------------------------

#: λ grid for the property sweep: both endpoints plus an interior pair, one
#: of them deliberately "ugly" (not a round fraction of the unit interval).
PROPERTY_LAMS = (0.0, 0.31, 0.5, 1.0)


def random_model_like_pair(seed, dim, vocab, tied):
    """Random state dicts shaped like a toy LM: 2-D matmul weights, 1-D
    norm weights clustered near 1 (so the pair is nearly parallel — the
    small-angle regime), and optionally a tied embedding whose ndarray
    object is shared between the embedding and lm-head keys."""
    rng = np.random.default_rng(seed)
    pair = []
    for _ in range(2):
        sd = OrderedDict()
        emb = rng.normal(size=(vocab, dim))
        sd["embed.weight"] = emb
        sd["blocks.0.attn.w"] = rng.normal(size=(dim, dim))
        sd["blocks.0.norm.weight"] = 1.0 + 0.05 * rng.normal(size=dim)
        sd["lm_head.weight"] = emb if tied else rng.normal(size=(vocab, dim))
        pair.append(sd)
    return pair


@given(seed=st.integers(0, 10**6), dim=st.integers(2, 8),
       vocab=st.integers(3, 12), tied=st.booleans())
@settings(max_examples=30, deadline=None)
def test_property_engine_matches_naive_reference(seed, dim, vocab, tied):
    """The engine is numerically indistinguishable (rtol 1e-10) from the
    raw per-tensor geodesic_merge on randomized model-shaped inputs."""
    chip, instruct = random_model_like_pair(seed, dim, vocab, tied)
    engine = GeodesicMergeEngine(chip, instruct)
    for lam in PROPERTY_LAMS:
        merged = engine.merge(lam)
        for key in chip:
            ref = geodesic_merge(chip[key], instruct[key], lam)
            assert np.allclose(merged[key], ref, rtol=1e-10, atol=1e-13), \
                (key, lam)


@given(seed=st.integers(0, 10**6), tied=st.booleans())
@settings(max_examples=30, deadline=None)
def test_property_endpoints_recover_inputs(seed, tied):
    """SLERP endpoint invariant: λ=1 reproduces the chip model and λ=0 the
    instruct model (up to the unit-projection float round trip)."""
    chip, instruct = random_model_like_pair(seed, 5, 7, tied)
    engine = GeodesicMergeEngine(chip, instruct)
    assert_state_dicts_close(engine.merge(1.0), chip)
    assert_state_dicts_close(engine.merge(0.0), instruct)


@given(seed=st.integers(0, 10**6),
       lam=st.floats(0.0, 1.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_property_merged_norm_is_geometric_mean(seed, lam):
    """SLERP norm invariant: after interpolating on the unit sphere the
    merged tensor's Frobenius norm is restored to the weighted geometric
    mean ‖chip‖^λ · ‖instruct‖^(1−λ)."""
    rng = np.random.default_rng(seed)
    a, b = rng.normal(size=(4, 6)), rng.normal(size=(4, 6))
    merged = geodesic_merge(a, b, lam)
    want = np.linalg.norm(a) ** lam * np.linalg.norm(b) ** (1.0 - lam)
    assert np.isclose(np.linalg.norm(merged), want, rtol=1e-9)
    # The engine restores the identical norm.
    engine = GeodesicMergeEngine({"w": a}, {"w": b})
    assert np.isclose(np.linalg.norm(engine.merge(lam)["w"]), want, rtol=1e-9)


# ---------------------------------------------------------------------------
# plan structure and edge-case kinds
# ---------------------------------------------------------------------------

def test_plan_classifies_kinds():
    a, b = make_pair(shapes=((4,), (3,), (2,), (5,)))
    a["blocks.1.w"] = np.zeros(3, dtype=np.float32)          # one-zero
    a["blocks.2.w"] = np.zeros(2, dtype=np.float32)          # both zero
    b["blocks.2.w"] = np.zeros(2, dtype=np.float32)
    b["blocks.3.w"] = (2.5 * a["blocks.3.w"])                # parallel
    engine = GeodesicMergeEngine(a, b, exclude=("blocks.0.*",))
    kinds = {key: plan.kind for key, plan in engine.plan.tensors.items()}
    assert kinds == {"blocks.0.w": KIND_EXCLUDED, "blocks.1.w": KIND_LINEAR,
                     "blocks.2.w": KIND_ZERO, "blocks.3.w": KIND_PARALLEL}
    # Every kind still matches the naive path at every λ.
    for lam in (0.0, 0.3, 0.6, 1.0):
        merged = engine.merge(lam)
        ref = merge_state_dicts(a, b, lam=lam, exclude=("blocks.0.*",))
        assert_state_dicts_close(merged, ref)


def test_sweep_handles_edge_case_kinds():
    a, b = make_pair(shapes=((4,), (3,)))
    a["blocks.1.w"] = np.zeros(3, dtype=np.float32)
    swept = GeodesicMergeEngine(a, b).sweep(LAMS)
    for lam, merged in zip(LAMS, swept):
        assert np.allclose(merged["blocks.1.w"], (1 - lam) * b["blocks.1.w"],
                           rtol=1e-6)


def test_antipodal_raises_at_plan_time():
    a = {"w": np.array([1.0, 0.0])}
    b = {"w": np.array([-1.0, 0.0])}
    with pytest.raises(ValueError, match="antipodal"):
        GeodesicMergeEngine(a, b)


def test_mismatched_keys_raise():
    a, b = make_pair()
    del b["blocks.0.w"]
    with pytest.raises(KeyError):
        GeodesicMergeEngine(a, b)


def test_lambda_out_of_range_raises():
    a, b = make_pair()
    engine = GeodesicMergeEngine(a, b)
    with pytest.raises(ValueError):
        engine.merge(1.5)
    with pytest.raises(ValueError):
        engine.sweep([0.2, -0.1])


def test_plan_summary_and_total_params():
    a, b = make_pair()
    engine = GeodesicMergeEngine(a, b)
    assert engine.plan.total_params == sum(w.size for w in a.values())
    summary = engine.plan.summary()
    assert summary["n_tensors"] == len(a)
    assert summary["n_slerp"] == len(a)
    assert summary["angle_max"] > 0.0


def test_plan_is_isolated_from_input_mutation():
    """The plan holds its own float64 copies; mutating the source state
    dicts afterwards must not change results."""
    a, b = make_pair()
    engine = GeodesicMergeEngine(a, b)
    expected = engine.merge(0.6)
    for key in a:
        a[key][...] = 0.0
        b[key][...] = 0.0
    assert_state_dicts_close(engine.merge(0.6), expected, rtol=0.0, atol=0.0)


# ---------------------------------------------------------------------------
# output buffers and the incremental iterator
# ---------------------------------------------------------------------------

def test_merge_into_preallocated_buffers():
    a, b = make_pair()
    engine = GeodesicMergeEngine(a, b)
    buffers = engine.new_buffers()
    merged = engine.merge(0.4, out=buffers)
    for key in a:
        assert merged[key] is buffers[key]
    assert_state_dicts_close(merged, merge_state_dicts(a, b, lam=0.4))


def test_isweep_yields_every_point():
    a, b = make_pair()
    engine = GeodesicMergeEngine(a, b)
    points = list(engine.isweep([0.0, 0.5, 1.0]))
    assert [lam for lam, _ in points] == [0.0, 0.5, 1.0]
    for lam, merged in points:
        assert_state_dicts_close(merged, merge_state_dicts(a, b, lam=lam))


def test_isweep_reuse_buffers_overwrites_in_place():
    a, b = make_pair()
    engine = GeodesicMergeEngine(a, b)
    it = engine.isweep([0.2, 0.8], reuse_buffers=True)
    lam0, first = next(it)
    first_copy = {key: first[key].copy() for key in first}
    lam1, second = next(it)
    # Same buffers, new contents: the first yield was invalidated.
    for key in first:
        assert second[key] is first[key]
    assert not all(np.array_equal(first_copy[key], second[key])
                   for key in first)
    assert_state_dicts_close(second, merge_state_dicts(a, b, lam=0.8))


def test_from_models_requires_matching_architectures():
    from repro.nn.transformer import TransformerConfig, TransformerLM

    config = TransformerConfig(vocab_size=64, dim=16, n_layers=1, n_heads=2,
                               max_seq_len=16, seed=0)
    other = TransformerConfig(vocab_size=64, dim=24, n_layers=1, n_heads=2,
                              max_seq_len=16, seed=0)
    with pytest.raises(ValueError, match="architecture"):
        GeodesicMergeEngine.from_models(TransformerLM(config),
                                        TransformerLM(other))
    engine = GeodesicMergeEngine.from_models(TransformerLM(config),
                                             TransformerLM(config))
    assert isinstance(engine.plan, MergePlan)
