"""Karcher-mean (N-model geodesic merging) tests."""

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geodesic import (frobenius_norm, geodesic_merge,
                                 project_to_sphere, sphere_angle)
from repro.core.karcher import (exp_map, karcher_mean,
                                karcher_merge_state_dicts,
                                karcher_merge_tensors, log_map)


def unit(seed, shape=(6,)):
    v = np.random.default_rng(seed).normal(size=shape)
    return v / np.linalg.norm(v)


class TestLogExpMaps:
    def test_roundtrip(self):
        base, point = unit(0), unit(1)
        recovered = exp_map(base, log_map(base, point))
        assert np.allclose(recovered, point, atol=1e-10)

    def test_log_length_is_geodesic_distance(self):
        base, point = unit(2), unit(3)
        tangent = log_map(base, point)
        assert frobenius_norm(tangent) == pytest.approx(sphere_angle(base, point))

    def test_log_tangent_is_orthogonal_to_base(self):
        base, point = unit(4), unit(5)
        tangent = log_map(base, point)
        assert float(np.sum(tangent * base)) == pytest.approx(0.0, abs=1e-10)

    def test_log_of_self_is_zero(self):
        base = unit(6)
        assert np.allclose(log_map(base, base), 0.0)

    def test_exp_of_zero_is_base(self):
        base = unit(7)
        assert np.allclose(exp_map(base, np.zeros_like(base)), base)

    def test_exp_stays_on_sphere(self):
        base, point = unit(8), unit(9)
        out = exp_map(base, 0.5 * log_map(base, point))
        assert frobenius_norm(out) == pytest.approx(1.0)

    def test_antipodal_log_raises(self):
        base = unit(10)
        with pytest.raises(ValueError):
            log_map(base, -base)


class TestKarcherMean:
    def test_single_point(self):
        p = unit(0)
        assert np.allclose(karcher_mean([p]), p, atol=1e-10)

    def test_two_points_equal_slerp_midpoint(self):
        from repro.core.geodesic import slerp

        a, b = unit(1), unit(2)
        mean = karcher_mean([a, b])
        mid = slerp(a, b, 0.5)
        assert np.allclose(mean, mid, atol=1e-8)

    def test_weighted_two_points_equal_slerp(self):
        from repro.core.geodesic import slerp

        a, b = unit(3), unit(4)
        mean = karcher_mean([a, b], weights=[0.7, 0.3])
        # Karcher with weights (wa, wb) = slerp at lambda=wa toward a.
        assert np.allclose(mean, slerp(a, b, 0.7), atol=1e-7)

    def test_mean_on_sphere(self):
        points = [unit(i) for i in range(5)]
        mean = karcher_mean(points)
        assert frobenius_norm(mean) == pytest.approx(1.0)

    def test_mean_of_identical_points(self):
        p = unit(11)
        assert np.allclose(karcher_mean([p, p, p]), p, atol=1e-10)

    def test_symmetric_configuration(self):
        """Three points symmetric about an axis have their mean on it."""
        axis = np.array([0.0, 0.0, 1.0])
        tilt = 0.4
        points = []
        for angle in (0, 2 * np.pi / 3, 4 * np.pi / 3):
            points.append(np.array([np.sin(tilt) * np.cos(angle),
                                    np.sin(tilt) * np.sin(angle),
                                    np.cos(tilt)]))
        mean = karcher_mean(points)
        assert np.allclose(mean, axis, atol=1e-6)

    def test_validations(self):
        with pytest.raises(ValueError):
            karcher_mean([])
        with pytest.raises(ValueError):
            karcher_mean([unit(0)], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            karcher_mean([unit(0)], weights=[0.0])

    @given(st.integers(0, 50), st.integers(51, 100))
    @settings(max_examples=20, deadline=None)
    def test_mean_within_hull_property(self, s1, s2):
        a, b = unit(s1), unit(s2)
        mean = karcher_mean([a, b])
        # The mean lies between the two points: angles to each are half of total.
        total = sphere_angle(a, b)
        assert sphere_angle(mean, a) + sphere_angle(mean, b) == pytest.approx(
            total, abs=1e-5)


class TestKarcherMerge:
    def test_two_tensor_merge_matches_geodesic_merge(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(4, 4)), rng.normal(size=(4, 4))
        karcher = karcher_merge_tensors([a, b], weights=[0.6, 0.4])
        classic = geodesic_merge(a, b, lam=0.6)
        assert np.allclose(karcher, classic, atol=1e-6)

    def test_norm_is_weighted_geometric_mean(self):
        rng = np.random.default_rng(1)
        tensors = [rng.normal(size=(3, 3)) * s for s in (1.0, 2.0, 4.0)]
        merged = karcher_merge_tensors(tensors)
        norms = [np.linalg.norm(t) for t in tensors]
        expected = np.exp(np.mean(np.log(norms)))
        assert frobenius_norm(merged) == pytest.approx(expected, rel=1e-6)

    def test_all_zero_tensors(self):
        out = karcher_merge_tensors([np.zeros((2, 2)), np.zeros((2, 2))])
        assert np.array_equal(out, np.zeros((2, 2)))

    def test_state_dict_merge(self):
        rng = np.random.default_rng(2)
        dicts = [OrderedDict(w=rng.normal(size=(3, 3)), b=rng.normal(size=4))
                 for _ in range(3)]
        merged = karcher_merge_state_dicts(dicts)
        assert set(merged) == {"w", "b"}
        with pytest.raises(ValueError):
            bad = [dicts[0], OrderedDict(w=np.zeros((9, 9)), b=np.zeros(4))]
            karcher_merge_state_dicts(bad)
        with pytest.raises(ValueError):
            karcher_merge_state_dicts([])

    def test_three_model_merge_produces_working_model(self):
        """Merging three fine-tunes yields a functioning model (the paper's
        'other domains' extension)."""
        from repro.nn.transformer import TransformerConfig, TransformerLM

        config = TransformerConfig(vocab_size=16, dim=8, n_layers=1,
                                   n_heads=2, max_seq_len=8, seed=0)
        base = TransformerLM(config)
        variants = []
        for i in range(3):
            m = base.clone()
            m.tok_emb.weight.data = m.tok_emb.weight.data + \
                np.random.default_rng(i).normal(0, 0.01, m.tok_emb.weight.data.shape).astype(m.tok_emb.weight.data.dtype)
            variants.append(m.state_dict())
        merged = karcher_merge_state_dicts(variants)
        model = TransformerLM(config)
        model.load_state_dict(dict(merged))
        out = model(np.array([[1, 2, 3]]))
        assert np.isfinite(out.data).all()
