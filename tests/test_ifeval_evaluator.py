"""IFEval evaluator tests: the four accuracy numbers."""

import pytest

from repro.data.ifeval_data import IFEvalPrompt, ifeval_prompts
from repro.eval.ifeval.evaluator import IFEvalResult, evaluate_responses
from repro.eval.ifeval.instructions import EndWith, StartWith


def make_prompt(*instructions, question="q"):
    return IFEvalPrompt(prompt="question : q assistant :", question=question,
                        instructions=tuple(instructions))


def test_perfect_compliance():
    prompts = [make_prompt(EndWith("done")), make_prompt(StartWith("answer :"))]
    responses = ["ok done", "answer : ok"]
    result = evaluate_responses(prompts, responses)
    assert result.prompt_strict == result.prompt_loose == 1.0
    assert result.instruction_strict == result.instruction_loose == 1.0


def test_zero_compliance():
    prompts = [make_prompt(EndWith("done"))]
    result = evaluate_responses(prompts, ["nope"])
    assert result.prompt_strict == 0.0
    assert result.instruction_strict == 0.0


def test_prompt_level_requires_all_instructions():
    prompts = [make_prompt(EndWith("done"), StartWith("answer :"))]
    # Only one of the two instructions followed.
    result = evaluate_responses(prompts, ["blue done"])
    assert result.prompt_strict == 0.0
    assert result.instruction_strict == 0.5


def test_loose_geq_strict():
    prompts = [make_prompt(StartWith("answer :"))]
    # Strict fails (quote before prefix) but loose transform strips quotes.
    result = evaluate_responses(prompts, ['" answer : blue "'])
    assert result.prompt_strict == 0.0
    assert result.prompt_loose == 1.0


def test_alignment_validation():
    prompts = [make_prompt(EndWith("done"))]
    with pytest.raises(ValueError):
        evaluate_responses(prompts, [])
    with pytest.raises(ValueError):
        evaluate_responses([], [])


def test_instruction_free_prompt_counts_as_pass():
    result = evaluate_responses([make_prompt()], ["anything"])
    assert result.prompt_strict == 1.0


def test_as_dict_keys():
    result = IFEvalResult(0.1, 0.2, 0.3, 0.4)
    assert set(result.as_dict()) == {"prompt_strict", "prompt_loose",
                                     "instruction_strict", "instruction_loose"}


class TestPromptSet:
    def test_size_and_determinism(self):
        a = ifeval_prompts(n_prompts=30, seed=5)
        b = ifeval_prompts(n_prompts=30, seed=5)
        assert len(a) == 30
        assert [p.prompt for p in a] == [p.prompt for p in b]

    def test_every_prompt_has_instructions(self):
        for p in ifeval_prompts(n_prompts=40):
            assert 1 <= len(p.instructions) <= 2
            for ins in p.instructions:
                assert ins.render() in p.prompt

    def test_prompts_end_with_assistant_cue(self):
        for p in ifeval_prompts(n_prompts=10):
            assert p.prompt.endswith("assistant :")
