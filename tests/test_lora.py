"""LoRA tests: adapter wrapping, freezing, merge-back equivalence."""

import numpy as np
import pytest

from repro.nn.lora import LoRALinear, apply_lora, lora_parameters, merge_lora
from repro.nn.layers import Linear
from repro.nn.tensor import Tensor
from repro.nn.trainer import TrainConfig, Trainer
from repro.nn.transformer import TransformerConfig, TransformerLM


@pytest.fixture
def model():
    return TransformerLM(TransformerConfig(vocab_size=20, dim=16, n_layers=1,
                                           n_heads=2, max_seq_len=16, seed=0))


def test_lora_initially_identity():
    base = Linear(6, 4, seed=0)
    wrapped = LoRALinear(base, rank=2, alpha=4.0, seed=1)
    x = Tensor(np.random.default_rng(0).normal(size=(3, 6)))
    assert np.allclose(wrapped(x).data, base(x).data, atol=1e-6)


def test_lora_freezes_base():
    base = Linear(6, 4, seed=0)
    wrapped = LoRALinear(base, rank=2, alpha=4.0)
    assert not base.weight.requires_grad
    assert wrapped.lora_a.requires_grad and wrapped.lora_b.requires_grad


def test_lora_rank_validation():
    with pytest.raises(ValueError):
        LoRALinear(Linear(4, 4, seed=0), rank=0, alpha=1.0)


def test_apply_lora_wraps_all_targets(model):
    adapters = apply_lora(model, rank=2, alpha=4.0)
    # 1 layer: q,k,v,o + gate,up,down = 7 adapters.
    assert len(adapters) == 7
    trainable = [n for n, p in model.named_parameters() if p.requires_grad]
    assert trainable and all("lora_" in n for n in trainable)


def test_apply_lora_bad_targets(model):
    with pytest.raises(ValueError):
        apply_lora(model, targets=("nonexistent_proj",))


def test_lora_parameters_requires_adapters(model):
    with pytest.raises(ValueError):
        lora_parameters(model)


def test_forward_unchanged_right_after_apply(model):
    ids = np.array([[1, 2, 3]])
    before = model(ids).data.copy()
    apply_lora(model, rank=2, alpha=4.0)
    after = model(ids).data
    assert np.allclose(before, after, atol=1e-5)


def test_merge_lora_preserves_function(model):
    ids = np.array([[1, 2, 3, 4]])
    apply_lora(model, rank=2, alpha=4.0, seed=3)
    Trainer(model, pad_id=0, config=TrainConfig(epochs=10, batch_size=4, lr=5e-3),
            parameters=lora_parameters(model)).fit([[1, 5, 6, 7, 2]] * 4)
    with_adapters = model(ids).data.copy()
    merge_lora(model)
    merged = model(ids).data
    assert np.allclose(with_adapters, merged, atol=1e-4)
    # After merging there are no LoRA parameters left and all are trainable.
    names = [n for n, _ in model.named_parameters()]
    assert not any("lora_" in n for n in names)
    assert all(p.requires_grad for p in model.parameters())


def test_merged_state_dict_matches_plain_architecture(model):
    plain_keys = set(model.state_dict())
    apply_lora(model, rank=2, alpha=4.0)
    merge_lora(model)
    assert set(model.state_dict()) == plain_keys


def test_lora_training_changes_only_adapters(model):
    apply_lora(model, rank=2, alpha=4.0)
    emb_before = model.tok_emb.weight.data.copy()
    base_before = model.blocks[0].attn.q_proj.base.weight.data.copy()
    Trainer(model, pad_id=0, config=TrainConfig(epochs=5, batch_size=4),
            parameters=lora_parameters(model)).fit([[1, 5, 6, 2]] * 4)
    assert np.array_equal(model.tok_emb.weight.data, emb_before)
    assert np.array_equal(model.blocks[0].attn.q_proj.base.weight.data, base_before)


def test_delta_weight_shape():
    base = Linear(6, 4, seed=0)
    wrapped = LoRALinear(base, rank=2, alpha=4.0)
    assert wrapped.delta_weight().shape == (4, 6)
