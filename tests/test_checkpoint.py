"""Checkpoint persistence tests."""

import numpy as np
import pytest

from repro.nn.checkpoint import (checkpoint_exists, load_model,
                                 load_state_dict, save_model, save_state_dict)
from repro.nn.transformer import TransformerConfig, TransformerLM


@pytest.fixture
def model():
    return TransformerLM(TransformerConfig(vocab_size=12, dim=8, n_layers=1,
                                           n_heads=2, max_seq_len=8, seed=3))


def test_state_dict_roundtrip(tmp_path, model):
    path = tmp_path / "weights.npz"
    save_state_dict(model.state_dict(), path)
    loaded = load_state_dict(path)
    for key, value in model.state_dict().items():
        assert np.array_equal(loaded[key], value)


def test_state_dict_preserves_order(tmp_path, model):
    path = tmp_path / "weights.npz"
    state = model.state_dict()
    save_state_dict(state, path)
    assert list(load_state_dict(path)) == list(state)


def test_save_creates_parent_dirs(tmp_path, model):
    path = tmp_path / "deep" / "nested" / "w.npz"
    save_state_dict(model.state_dict(), path)
    assert path.exists()


def test_model_roundtrip(tmp_path, model):
    path = tmp_path / "ckpt"
    save_model(model, path, metadata={"note": "test"})
    loaded, meta = load_model(path)
    assert meta == {"note": "test"}
    assert loaded.config == model.config
    ids = np.array([[1, 2, 3]])
    assert np.allclose(loaded(ids).data, model(ids).data, atol=1e-6)


def test_checkpoint_exists(tmp_path, model):
    path = tmp_path / "ckpt"
    assert not checkpoint_exists(path)
    save_model(model, path)
    assert checkpoint_exists(path)
    path.with_suffix(".json").unlink()
    assert not checkpoint_exists(path)
