"""Oracle baseline tests (GPT-4-sim and RAG-EDA-sim rows of Table 1)."""

import pytest

from repro.data.openroad_qa import documentation_corpus, eval_triplets
from repro.eval.harness import OPENROAD_INSTRUCTIONS, run_openroad
from repro.eval.ifeval.instructions import EndWith, StartWith
from repro.eval.oracles import GeneralOracle, RagEdaOracle, split_sentences


def test_split_sentences():
    text = "first sentence . second one . third"
    assert split_sentences(text) == ["first sentence", "second one", "third"]


def test_split_sentences_empty():
    assert split_sentences("") == []


class TestGeneralOracle:
    def test_extracts_relevant_sentence(self):
        oracle = GeneralOracle()
        context = ("the command global_place performs global placement . "
                   "the option density of global_place sets the target placement density")
        answer = oracle.answer("which option of global_place sets the target placement density",
                               context=context)
        assert "density" in answer

    def test_no_context_refuses(self):
        oracle = GeneralOracle()
        answer = oracle.answer("anything")
        assert "enough information" in answer

    def test_applies_instructions(self):
        oracle = GeneralOracle()
        answer = oracle.answer("q", context="a fact here",
                               instructions=(StartWith("answer :"), EndWith("done")))
        assert answer.startswith("answer :") and answer.endswith("done")

    def test_scores_reasonably_on_benchmark(self):
        report = run_openroad(GeneralOracle(), eval_triplets()[:30])
        # Strong extractive baseline: clearly above zero, below perfect.
        assert 0.2 < report.overall < 0.95


class TestRagEdaOracle:
    def test_retrieves_and_answers(self):
        oracle = RagEdaOracle(documentation_corpus())
        answer = oracle.answer("what is the default value of density for global_place")
        assert answer

    def test_validation(self):
        with pytest.raises(ValueError):
            RagEdaOracle(documentation_corpus(), top_sentences=0)

    def test_ignores_supplied_context(self):
        oracle = RagEdaOracle(documentation_corpus())
        a = oracle.answer("what does the command global_place do", context="irrelevant text")
        b = oracle.answer("what does the command global_place do", context=None)
        assert a == b

    def test_scores_reasonably_on_benchmark(self):
        oracle = RagEdaOracle(documentation_corpus())
        report = run_openroad(oracle, eval_triplets()[:30])
        assert 0.15 < report.overall < 0.95
