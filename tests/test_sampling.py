"""Shared sampling utilities: softmax, top-k / nucleus filtering."""

import numpy as np
import pytest

from repro.nn.sampling import filter_top_k, filter_top_p, sample_next, softmax


def test_softmax_matches_reference(rng):
    logits = rng.normal(size=(3, 7)).astype(np.float32)
    out = softmax(logits)
    assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-6)
    ref = np.exp(logits - logits.max(-1, keepdims=True))
    ref /= ref.sum(-1, keepdims=True)
    assert np.allclose(out, ref)


def test_softmax_extreme_logits_stable():
    out = softmax(np.array([1e4, 0.0, -1e4], dtype=np.float64))
    assert np.isfinite(out).all()
    assert out.argmax() == 0


def test_filter_top_k_keeps_k_best():
    probs = np.array([0.1, 0.4, 0.2, 0.3])
    kept = filter_top_k(probs, top_k=2)
    assert kept[0] == 0 and kept[2] == 0
    assert np.isclose(kept.sum(), 1.0)
    assert np.isclose(kept[1], 0.4 / 0.7)
    # k >= vocab is a no-op.
    assert np.allclose(filter_top_k(probs, top_k=10), probs)


def test_filter_top_k_exact_k_under_ties():
    """Ties at the cutoff must not inflate the kept set past k (a
    ``probs >= cutoff`` mask kept every tied token)."""
    probs = np.full(6, 1.0 / 6.0)  # all tied: worst case
    for k in (1, 2, 3, 5):
        kept = filter_top_k(probs, top_k=k)
        assert int(np.count_nonzero(kept)) == k, k
        assert np.isclose(kept.sum(), 1.0)
        assert np.allclose(kept[kept > 0], 1.0 / k)
    # Ties only *at* the cutoff: top-3 of [.3, .2, .2, .2, .1] keeps the
    # 0.3, and exactly two of the tied 0.2s.
    probs = np.array([0.3, 0.2, 0.2, 0.2, 0.1])
    kept = filter_top_k(probs, top_k=3)
    assert int(np.count_nonzero(kept)) == 3
    assert kept[0] > 0 and kept[4] == 0
    # Deterministic tie-break: same input -> same survivors.
    assert np.array_equal(kept, filter_top_k(probs, top_k=3))


def test_filter_top_p_nucleus():
    probs = np.array([0.5, 0.3, 0.15, 0.05])
    # p=0.6: keep the tokens whose cumulative mass first crosses 0.6
    # (0.5 alone is not enough, so 0.3 joins the nucleus).
    kept = filter_top_p(probs, top_p=0.6)
    assert kept[2] == 0 and kept[3] == 0
    assert np.isclose(kept.sum(), 1.0)
    assert np.isclose(kept[0], 0.5 / 0.8)
    # p=1 keeps everything.
    assert np.allclose(filter_top_p(probs, top_p=1.0), probs)


def test_filter_top_p_always_keeps_best_token():
    probs = np.array([0.99, 0.01])
    kept = filter_top_p(probs, top_p=0.5)
    assert kept[0] == 1.0 and kept[1] == 0.0


def test_sample_next_greedy_ignores_rng():
    logits = np.array([0.1, 2.0, -1.0])
    assert sample_next(logits, temperature=0.0) == 1
    assert sample_next(logits, temperature=0.0, top_k=1) == 1


def test_sample_next_default_rng_advances():
    """The unseeded fallback is a *shared* generator whose stream advances
    across calls.  The old per-call ``default_rng(0)`` froze every draw at
    the same stream position — identical quantile each token — so unseeded
    flat-distribution draws could never differ."""
    logits = np.zeros(64)  # flat distribution: every token p = 1/64
    draws = {sample_next(logits, temperature=1.0) for _ in range(32)}
    assert len(draws) > 1, "unseeded draws are frozen at one stream position"
    with pytest.raises(ValueError):
        sample_next(logits, temperature=-0.1)


def test_sample_next_respects_filters(rng):
    logits = np.array([5.0, 4.0, -10.0, -10.0])
    draws = {sample_next(logits, temperature=1.0, rng=rng, top_k=2)
             for _ in range(50)}
    assert draws <= {0, 1}
    draws = {sample_next(logits, temperature=1.0, rng=rng, top_p=0.5)
             for _ in range(50)}
    assert draws == {0}


def test_sample_next_reproducible_stream():
    logits = np.linspace(-1, 1, 16)
    a = [sample_next(logits, temperature=0.9, rng=np.random.default_rng(7))
         for _ in range(1)]
    b = [sample_next(logits, temperature=0.9, rng=np.random.default_rng(7))
         for _ in range(1)]
    assert a == b
