"""Trainer tests: batching, masking, loss descent."""

import numpy as np
import pytest

from repro.nn.trainer import IGNORE_INDEX, TrainConfig, Trainer, pad_batch
from repro.nn.transformer import TransformerConfig, TransformerLM


@pytest.fixture
def model():
    config = TransformerConfig(vocab_size=20, dim=16, n_layers=1, n_heads=2,
                               max_seq_len=16, seed=0)
    return TransformerLM(config)


class TestPadBatch:
    def test_shapes_and_shift(self):
        inputs, targets = pad_batch([[1, 2, 3, 4], [5, 6]], pad_id=0)
        assert inputs.shape == (2, 3) and targets.shape == (2, 3)
        assert list(inputs[0]) == [1, 2, 3]
        assert list(targets[0]) == [2, 3, 4]

    def test_padding_ignored_in_targets(self):
        _, targets = pad_batch([[1, 2, 3, 4], [5, 6]], pad_id=0)
        assert list(targets[1]) == [6, IGNORE_INDEX, IGNORE_INDEX]

    def test_mask_application(self):
        _, targets = pad_batch([[1, 2, 3]], pad_id=0, masks=[[0, 0, 1]])
        assert list(targets[0]) == [IGNORE_INDEX, 3]

    def test_mask_length_mismatch(self):
        with pytest.raises(ValueError):
            pad_batch([[1, 2, 3]], pad_id=0, masks=[[1, 1]])

    def test_empty_batch(self):
        with pytest.raises(ValueError):
            pad_batch([], pad_id=0)

    def test_too_short_sequence(self):
        with pytest.raises(ValueError):
            pad_batch([[1]], pad_id=0)


class TestTrainer:
    def test_loss_decreases(self, model):
        seqs = [[1, 2, 3, 4, 5, 6]] * 8
        trainer = Trainer(model, pad_id=0, config=TrainConfig(epochs=20, batch_size=4))
        result = trainer.fit(seqs)
        assert result.final_loss < result.losses[0] * 0.5
        assert result.steps == 20 * 2

    def test_memorises_pattern(self, model):
        seqs = [[1, 7, 8, 9, 2]] * 8
        Trainer(model, pad_id=0, config=TrainConfig(epochs=30, batch_size=8, lr=3e-3)).fit(seqs)
        from repro.nn.generation import generate

        assert generate(model, [1, 7], max_new_tokens=3) == [8, 9, 2]

    def test_masked_positions_excluded(self, model):
        # Mask out everything -> batch skipped -> zero steps recorded.
        seqs = [[1, 2, 3]] * 4
        masks = [[0, 0, 0]] * 4
        trainer = Trainer(model, pad_id=0, config=TrainConfig(epochs=2, batch_size=4))
        result = trainer.fit(seqs, masks)
        assert result.steps == 0

    def test_mask_alignment_validated(self, model):
        trainer = Trainer(model, pad_id=0, config=TrainConfig(epochs=1))
        with pytest.raises(ValueError):
            trainer.fit([[1, 2, 3]], masks=[[1, 1, 1], [1, 1, 1]])

    def test_empty_dataset(self, model):
        trainer = Trainer(model, pad_id=0)
        with pytest.raises(ValueError):
            trainer.fit([])

    def test_deterministic_given_seed(self):
        def train_once():
            config = TransformerConfig(vocab_size=20, dim=16, n_layers=1,
                                       n_heads=2, max_seq_len=16, seed=0)
            m = TransformerLM(config)
            res = Trainer(m, pad_id=0,
                          config=TrainConfig(epochs=3, batch_size=4, seed=7)
                          ).fit([[1, 2, 3, 4], [5, 6, 7], [2, 4, 6], [1, 3, 5]])
            return res.losses

        assert train_once() == train_once()

    def test_evaluate_loss(self, model):
        seqs = [[1, 2, 3, 4]] * 4
        trainer = Trainer(model, pad_id=0, config=TrainConfig(epochs=10, batch_size=4))
        before = trainer.evaluate_loss(seqs)
        trainer.fit(seqs)
        after = trainer.evaluate_loss(seqs)
        assert after < before

    def test_parameter_subset_training(self, model):
        # Training only the lm_head must leave the embeddings untouched.
        emb_before = model.tok_emb.weight.data.copy()
        trainer = Trainer(model, pad_id=0,
                          config=TrainConfig(epochs=3, batch_size=4),
                          parameters=[model.lm_head.weight])
        trainer.fit([[1, 2, 3, 4]] * 4)
        assert np.array_equal(model.tok_emb.weight.data, emb_before)

    def test_bucket_by_length_covers_all(self, model):
        seqs = [[1, 2], [1, 2, 3, 4, 5, 6], [1, 2, 3], [1, 2, 3, 4]] * 2
        trainer = Trainer(model, pad_id=0,
                          config=TrainConfig(epochs=1, batch_size=3,
                                             bucket_by_length=True))
        result = trainer.fit(seqs)
        assert result.steps == 3  # ceil(8 / 3)
