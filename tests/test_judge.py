"""Reference-judge tests: the 5-point rubric of Table 2's grader."""

import pytest

from repro.data.prompting import REFUSAL
from repro.eval.judge import (JudgeVerdict, ReferenceJudge, content_words,
                              mean_score)

CONTEXT = ("chunk 0 : the memory controller of orion supports two ddr channels "
           "chunk 1 : the dma engine of orion moves data between memory and devices")
QUESTION = "how many ddr channels does the orion memory controller support"
GOLDEN = "the memory controller of orion supports two ddr channels"


@pytest.fixture
def judge():
    return ReferenceJudge()


def test_perfect_answer_scores_100(judge):
    verdict = judge.grade(GOLDEN, GOLDEN, CONTEXT, QUESTION)
    assert verdict.score == 100
    assert verdict.coverage == pytest.approx(1.0)


def test_empty_answer_scores_0(judge):
    assert judge.grade("", GOLDEN, CONTEXT, QUESTION).score == 0


def test_unrelated_answer_scores_0(judge):
    verdict = judge.grade("bees make honey in the garden", GOLDEN, CONTEXT, QUESTION)
    assert verdict.score == 0


def test_partial_answer_scores_between(judge):
    verdict = judge.grade("the memory controller supports channels",
                          GOLDEN, CONTEXT, QUESTION)
    assert 25 <= verdict.score <= 75


def test_ungrounded_answer_capped(judge):
    # Correct content words but padded with out-of-context material.
    response = (GOLDEN + " also the sky is blue and bees make honey and"
                " a garden grows many plants with fresh bread")
    verdict = judge.grade(response, GOLDEN, CONTEXT, QUESTION)
    assert verdict.grounding < 0.7
    assert verdict.score <= 50


def test_refusal_counts_as_grounded(judge):
    verdict = judge.grade(REFUSAL, REFUSAL, CONTEXT, QUESTION)
    assert verdict.score == 100


def test_hallucination_on_refusal_item_scores_0(judge):
    verdict = judge.grade("the orion chip has four cpu clusters", REFUSAL,
                          "chunk 0 : something unrelated", QUESTION)
    assert verdict.score == 0


def test_decoration_ignored_by_coverage(judge):
    decorated = "based on the context " + GOLDEN + " done"
    verdict = judge.grade(decorated, GOLDEN, CONTEXT, QUESTION)
    assert verdict.score == 100


def test_verdict_score_validation():
    with pytest.raises(ValueError):
        JudgeVerdict(score=42, coverage=0.5, grounding=0.5)


def test_threshold_validation():
    with pytest.raises(ValueError):
        ReferenceJudge(coverage_thresholds=(0.1, 0.5, 0.7, 0.9))


def test_grade_batch_alignment(judge):
    with pytest.raises(ValueError):
        judge.grade_batch(["a"], ["a", "b"], ["c"], ["d"])
    verdicts = judge.grade_batch([GOLDEN], [GOLDEN], [CONTEXT], [QUESTION])
    assert len(verdicts) == 1 and verdicts[0].score == 100


def test_mean_score(judge):
    verdicts = [JudgeVerdict(100, 1, 1), JudgeVerdict(50, 0.5, 1)]
    assert mean_score(verdicts) == 75.0
    with pytest.raises(ValueError):
        mean_score([])


def test_content_words_strips_stopwords():
    words = content_words("the memory controller of orion is based on the context")
    assert "memory" in words and "controller" in words and "orion" in words
    assert "the" not in words and "based" not in words and "context" not in words
