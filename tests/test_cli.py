"""CLI tests (merge and merge-many commands run fully offline on tiny models)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.nn.checkpoint import load_model, save_model
from repro.nn.transformer import TransformerConfig, TransformerLM


@pytest.fixture
def checkpoints(tmp_path):
    config = TransformerConfig(vocab_size=16, dim=8, n_layers=1, n_heads=2,
                               max_seq_len=8, seed=0)
    paths = {}
    for name, seed_shift in (("chip", 0.02), ("instruct", -0.02), ("base", 0.0)):
        model = TransformerLM(config)
        model.tok_emb.weight.data = model.tok_emb.weight.data + np.float32(seed_shift)
        path = tmp_path / name
        save_model(model, path)
        paths[name] = path
    return config, paths, tmp_path


def test_parser_has_all_commands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("merge", "merge-many", "sweep", "zoo", "chat", "table",
                    "merge-sweep", "serve-bench", "obs-report",
                    "bench-lambda"):
        assert command in text


def test_obs_report_command(capsys, tmp_path):
    """obs-report runs the end-to-end flow and prints the span tree plus
    registry snapshot; the fake clock makes the trace deterministic."""
    jsonl = tmp_path / "spans.jsonl"
    code = main(["obs-report", "--fake-clock", "--epochs", "2",
                 "--items", "2", "--jsonl", str(jsonl)])
    out = capsys.readouterr().out
    assert code == 0
    assert "== span tree ==" in out
    assert "obs_report.flow" in out and "serve.decode_step" in out
    assert "== metric registry ==" in out
    assert '"merge.plans": 1' in out
    assert "== flow summary ==" in out
    assert jsonl.exists() and "obs_report.flow" in jsonl.read_text()


def test_merge_command(checkpoints, capsys):
    config, paths, tmp = checkpoints
    out = tmp / "merged"
    code = main(["merge", "--chip", str(paths["chip"]),
                 "--instruct", str(paths["instruct"]),
                 "--lam", "0.6", "--output", str(out)])
    assert code == 0
    merged, meta = load_model(out)
    assert meta["method"] == "chipalign" and meta["lam"] == 0.6
    assert merged.config == config


def test_merge_command_with_base_method(checkpoints, capsys):
    _, paths, tmp = checkpoints
    out = tmp / "merged_ties"
    code = main(["merge", "--chip", str(paths["chip"]),
                 "--instruct", str(paths["instruct"]),
                 "--base", str(paths["base"]),
                 "--method", "ties", "--output", str(out)])
    assert code == 0
    _, meta = load_model(out)
    assert meta["method"] == "ties"


def test_merge_rejects_architecture_mismatch(checkpoints, tmp_path, capsys):
    _, paths, tmp = checkpoints
    other = TransformerLM(TransformerConfig(vocab_size=16, dim=16, n_layers=1,
                                            n_heads=2, max_seq_len=8, seed=0))
    other_path = tmp_path / "other"
    save_model(other, other_path)
    code = main(["merge", "--chip", str(paths["chip"]),
                 "--instruct", str(other_path),
                 "--output", str(tmp / "x")])
    assert code == 2


def test_merge_sweep_command(checkpoints, capsys):
    """merge-sweep on two tiny checkpoints: reports timings and exits 0
    only when the engine's sweep matches the naive loop."""
    _, paths, _ = checkpoints
    code = main(["merge-sweep", "--chip", str(paths["chip"]),
                 "--instruct", str(paths["instruct"]),
                 "--points", "5", "--repeats", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "outputs allclose      : True" in out
    assert "speedup" in out


def test_merge_sweep_rejects_lone_checkpoint(checkpoints, capsys):
    _, paths, _ = checkpoints
    assert main(["merge-sweep", "--chip", str(paths["chip"])]) == 2


def test_merge_many_command(checkpoints, capsys):
    _, paths, tmp = checkpoints
    out = tmp / "karcher"
    code = main(["merge-many", str(paths["chip"]), str(paths["instruct"]),
                 str(paths["base"]), "--output", str(out)])
    assert code == 0
    merged, meta = load_model(out)
    assert meta["method"] == "karcher"
    ids = np.array([[1, 2]])
    assert np.isfinite(merged(ids).data).all()
