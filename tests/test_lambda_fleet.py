"""λ-fleet: lazy variant materialization, routing, promotion, parity.

The tentpole contract: every variant a
:class:`~repro.serve.lambda_fleet.LambdaFleetServer` materializes lazily
from the one arena-resident :class:`~repro.core.merge_engine.MergePlan` is
**byte-identical** to loading the corresponding oracle merge
(``engine.merge`` / ``merge_layerwise`` / ``karcher_merge_state_dicts``)
into a model and serving it directly — across scalar, layerwise, and
Karcher variants, fp32 and int8 weight modes, and speculative decoding.
The autouse fixture fails any test that leaks a shared-memory segment.
"""

from collections import OrderedDict

import numpy as np
import pytest

from repro.core.karcher import karcher_merge_state_dicts
from repro.core.layerwise import LambdaSchedule, LambdaTable
from repro.core.merge_engine import (KIND_EXCLUDED, KIND_SLERP, KIND_ZERO,
                                     GeodesicMergeEngine, MergePlan,
                                     TensorPlan)
from repro.nn.kernels import quantize_state_dict
from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.parallel import TensorArena, parallel_available
from repro.serve import InProcessServer, SamplingParams, ServeConfig
from repro.serve.lambda_fleet import (PLAN_PREFIX, LambdaFleetServer,
                                      LazyMergedModel, VariantSpec,
                                      materialize_variant)
from repro.serve.request import Request

needs_fork = pytest.mark.skipif(not parallel_available(),
                                reason="requires os.fork")


@pytest.fixture(autouse=True)
def no_leaked_segments():
    yield
    assert TensorArena.live_segments() == [], \
        "test leaked shared-memory segments"


CONFIG = TransformerConfig(vocab_size=64, dim=16, n_layers=2, n_heads=2,
                           max_seq_len=128, seed=0)


@pytest.fixture(scope="module")
def chip():
    return TransformerLM(CONFIG)


@pytest.fixture(scope="module")
def instruct():
    cfg = TransformerConfig(vocab_size=64, dim=16, n_layers=2, n_heads=2,
                            max_seq_len=128, seed=7)
    return TransformerLM(cfg)


@pytest.fixture(scope="module")
def engine(chip, instruct):
    return GeodesicMergeEngine(chip.state_dict(), instruct.state_dict())


EXACT_CFG = ServeConfig(max_batch_size=4, decode_mode="exact",
                        prefix_cache=False)


def _loaded_state(merged_sd):
    """What serving actually consumes: the merge loaded into model params
    (float64 -> float32 cast included)."""
    model = TransformerLM(CONFIG)
    model.load_state_dict(dict(merged_sd))
    return model.state_dict()


def _assert_state_equal(got, want):
    assert set(got) == set(want)
    for key in want:
        assert got[key].dtype == want[key].dtype, key
        assert np.array_equal(got[key], want[key]), key


# ---------------------------------------------------------------------------
# variant specs
# ---------------------------------------------------------------------------


class TestVariantSpec:
    def test_scalar_bounds(self):
        VariantSpec.scalar("ok", 0.0)
        VariantSpec.scalar("ok", 1.0)
        with pytest.raises(ValueError):
            VariantSpec.scalar("bad", 1.5)

    def test_layerwise_freezes_schedules(self):
        spec = VariantSpec.layerwise(
            "ramp", LambdaSchedule.linear(0.2, 0.8, 4))
        assert isinstance(spec.table, LambdaTable)
        table = LambdaTable(lams=(0.3, 0.4), default=0.5)
        assert VariantSpec.layerwise("tab", table).table is table

    def test_layerwise_requires_table(self):
        with pytest.raises(ValueError):
            VariantSpec(name="x", kind="layerwise")

    def test_karcher_weight_validation(self):
        VariantSpec.karcher("ok", (0.5, 0.5))
        with pytest.raises(ValueError):
            VariantSpec.karcher("bad", (0.5,))
        with pytest.raises(ValueError):
            VariantSpec.karcher("bad", (0.5, -0.1))
        with pytest.raises(ValueError):
            VariantSpec.karcher("bad", (0.0, 0.0))

    def test_unknown_kind_and_empty_name(self):
        with pytest.raises(ValueError):
            VariantSpec(name="x", kind="mystery")
        with pytest.raises(ValueError):
            VariantSpec(name="", kind="scalar")

    def test_specs_pickle(self):
        import pickle
        for spec in (VariantSpec.scalar("a", 0.3),
                     VariantSpec.layerwise(
                         "b", LambdaSchedule.linear(0.1, 0.9, 3)),
                     VariantSpec.karcher("c", (0.6, 0.4))):
            assert pickle.loads(pickle.dumps(spec)) == spec


class TestLambdaTableFreeze:
    def test_frozen_lookup_matches_schedule_bits(self):
        schedule = LambdaSchedule.linear(0.17, 0.93, 5, default=0.4)
        table = schedule.freeze()
        names = [f"blocks.{i}.attn.wq.weight" for i in range(5)]
        names += ["tok_emb.weight", "final_norm.weight", "lm_head.weight"]
        for name in names:
            assert table.lam_for(name) == schedule.lam_for(name)

    def test_out_of_range_block_raises(self):
        table = LambdaSchedule.linear(0.2, 0.8, 2).freeze()
        with pytest.raises(ValueError):
            table.lam_for("blocks.5.attn.wq.weight")


# ---------------------------------------------------------------------------
# lazy materialization vs the oracles (bit parity)
# ---------------------------------------------------------------------------


class TestMaterializeVariant:
    def test_scalar_matches_engine_merge_bits(self, engine):
        for lam in (0.0, 0.37, 0.6, 1.0):
            want = _loaded_state(engine.merge(lam))
            got = materialize_variant(engine.plan,
                                      VariantSpec.scalar("v", lam))
            _assert_state_equal(got, want)

    def test_layerwise_matches_merge_layerwise_bits(self, engine):
        schedule = LambdaSchedule.linear(0.2, 0.9, CONFIG.n_layers,
                                         default=0.5)
        want = _loaded_state(engine.merge_layerwise(schedule))
        got = materialize_variant(engine.plan,
                                  VariantSpec.layerwise("v", schedule))
        _assert_state_equal(got, want)

    def test_karcher_matches_state_dict_merge_bits(self, chip, instruct,
                                                   engine):
        weights = (0.7, 0.3)
        want = _loaded_state(karcher_merge_state_dicts(
            [chip.state_dict(), instruct.state_dict()], list(weights)))
        got = materialize_variant(engine.plan,
                                  VariantSpec.karcher("v", weights))
        _assert_state_equal(got, want)

    def test_int8_requantization_matches_oracle(self, engine):
        """int8 serving quantizes the materialized fp32 state; identical
        input bits give identical (q, scale) pairs."""
        want = quantize_state_dict(_loaded_state(engine.merge(0.45)))
        got = quantize_state_dict(materialize_variant(
            engine.plan, VariantSpec.scalar("v", 0.45)))
        _assert_state_equal(got, want)

    def test_shared_scratch_does_not_alias_outputs(self, engine):
        scratch = None
        from repro.serve.lambda_fleet import new_scratch
        scratch = new_scratch(engine.plan)
        a = materialize_variant(engine.plan, VariantSpec.scalar("a", 0.3),
                                scratch=scratch)
        b = materialize_variant(engine.plan, VariantSpec.scalar("b", 0.9),
                                scratch=scratch)
        # Reusing one scratch row must never leave two tensors sharing
        # memory, or the second materialization would corrupt the first.
        want = _loaded_state(engine.merge(0.3))
        _assert_state_equal(a, want)
        assert any(not np.array_equal(a[k], b[k]) for k in a)


class TestLazyMergedModel:
    def test_lazy_then_memoized(self, engine):
        model = LazyMergedModel(CONFIG, engine.plan,
                                VariantSpec.scalar("v", 0.5))
        assert not model.materialized
        first = model.state_dict()
        assert model.materialized
        second = model.state_dict()
        _assert_state_equal(second, first)
        model.release()
        assert not model.materialized
        _assert_state_equal(model.state_dict(), first)

    def test_serves_like_its_oracle(self, engine):
        """An InProcessServer over the lazy model emits the same bytes as
        one over the eagerly merged model."""
        target = TransformerLM(CONFIG)
        target.load_state_dict(dict(engine.merge(0.42)))
        target.eval()
        lazy = LazyMergedModel(CONFIG, engine.plan,
                               VariantSpec.scalar("v", 0.42))
        outputs = []
        for model in (target, lazy):
            server = InProcessServer(model, config=EXACT_CFG)
            for i in range(4):
                server.submit(tuple(range(2 + i, 12 + i)),
                              params=SamplingParams(max_new_tokens=6,
                                                    temperature=0.8, top_k=8,
                                                    seed=50 + i),
                              request_id=f"r{i}")
            server.run_until_idle()
            outputs.append({f"r{i}": server.result(f"r{i}").token_ids
                            for i in range(4)})
        assert outputs[0] == outputs[1]


# ---------------------------------------------------------------------------
# karcher edge cases through the plan-based path
# ---------------------------------------------------------------------------


class TestKarcherThroughPlan:
    def test_n2_karcher_reduces_to_slerp(self, engine):
        """For two endpoints, the weighted Karcher mean with weights
        (λ, 1-λ) is the engine's SLERP point at λ (λ weights the chip
        endpoint in both conventions) — the lazy path must reproduce the
        geodesic merge to iteration tolerance."""
        lam = 0.35
        slerp = materialize_variant(engine.plan, VariantSpec.scalar("s", lam))
        karcher = materialize_variant(
            engine.plan, VariantSpec.karcher("k", (lam, 1.0 - lam)))
        for key in slerp:
            np.testing.assert_allclose(karcher[key], slerp[key],
                                       rtol=1e-6, atol=1e-7)

    def test_antipodal_log_map_error_propagates(self):
        """A mean estimate that lands antipodal to an input has no unique
        log map; the ValueError must surface through materialization, not
        produce silent garbage weights."""
        rng = np.random.default_rng(3)
        u = rng.standard_normal(8)
        u /= np.linalg.norm(u)
        rows = np.stack([u, -u])
        plan = MergePlan(OrderedDict(
            w=TensorPlan("w", KIND_SLERP, (8,), stacked=rows,
                         norm_chip=1.0, norm_instruct=1.0,
                         theta=np.pi / 2, sin_theta=1.0)))
        with pytest.raises(ValueError, match="antipodal|spread"):
            materialize_variant(plan, VariantSpec.karcher("k", (0.7, 0.3)))

    def test_excluded_tensors_rejected_for_karcher(self):
        plan = MergePlan(OrderedDict(
            w=TensorPlan("w", KIND_EXCLUDED, (4,),
                         raw_chip=np.ones(4, dtype=np.float64))))
        with pytest.raises(ValueError, match="exclude"):
            materialize_variant(plan, VariantSpec.karcher("k", (0.5, 0.5)))

    def test_zero_tensors_stay_zero_for_karcher(self):
        plan = MergePlan(OrderedDict(w=TensorPlan("w", KIND_ZERO, (3, 2))))
        state = materialize_variant(plan, VariantSpec.karcher("k", (0.5, 0.5)))
        assert state["w"].shape == (3, 2)
        assert not state["w"].any()

    def test_weighted_mean_deterministic_across_views(self, engine):
        """Two independent zero-copy attachments of the published plan
        materialize byte-identical Karcher variants — the replica-side
        determinism the fleet's multi-replica variant groups rely on."""
        spec = VariantSpec.karcher("k", (0.6, 0.4))
        with TensorArena() as arena:
            metas = engine.plan.publish(arena, prefix=PLAN_PREFIX)
            results = []
            for _ in range(2):
                with arena.handle().attach() as view:
                    plan = MergePlan.from_view(view, metas,
                                               prefix=PLAN_PREFIX)
                    results.append(materialize_variant(plan, spec))
            _assert_state_equal(results[1], results[0])
            # And both equal the never-published in-process plan's result.
            _assert_state_equal(results[0],
                                materialize_variant(engine.plan, spec))


# ---------------------------------------------------------------------------
# fleet integration
# ---------------------------------------------------------------------------


VARIANTS = [VariantSpec.scalar("lo", 0.3),
            VariantSpec.scalar("hi", 0.8),
            VariantSpec.layerwise(
                "ramp", LambdaSchedule.linear(0.25, 0.85, CONFIG.n_layers)),
            VariantSpec.karcher("mid", (0.5, 0.5))]


def _variant_requests(n=8, max_new_tokens=6):
    out = []
    for i in range(n):
        rng = np.random.default_rng(200 + i)
        prompt = (1,) + tuple(int(t) for t in rng.integers(2, 60, size=8))
        mode = i % 3
        params = SamplingParams(
            max_new_tokens=max_new_tokens,
            temperature=0.0 if mode == 0 else 0.8,
            top_k=8 if mode == 1 else None,
            top_p=0.9 if mode == 2 else None,
            seed=700 + i)
        out.append((f"r{i}", prompt, params, VARIANTS[i % len(VARIANTS)].name))
    return out


def _oracle_outputs(engine, requests, config=EXACT_CFG):
    want = {}
    for spec in VARIANTS:
        server = InProcessServer(LazyMergedModel(CONFIG, engine.plan, spec),
                                 config=config)
        ids = [rid for rid, _, _, name in requests if name == spec.name]
        for rid, prompt, params, name in requests:
            if name == spec.name:
                server.submit(prompt, params=params, request_id=rid)
        server.run_until_idle()
        for rid in ids:
            want[rid] = server.result(rid).token_ids
    return want


@needs_fork
class TestLambdaFleetParity:
    def test_mixed_variants_byte_parity(self, engine):
        requests = _variant_requests()
        want = _oracle_outputs(engine, requests)
        with LambdaFleetServer(engine, CONFIG, VARIANTS,
                               serve_config=EXACT_CFG) as fleet:
            for rid, prompt, params, name in requests:
                fleet.submit(prompt, params=params, request_id=rid,
                             variant=name)
            fleet.run_until_idle()
            got = {rid: fleet.result(rid).token_ids
                   for rid, *_ in requests}
            accounting = fleet.accounting()
        assert got == want
        assert accounting["conservation_ok"] == 1
        assert accounting["finished"] == len(requests)

    def test_int8_variants_byte_parity(self, engine):
        """Replica-side re-quantization of the lazily materialized variant
        serves the same bytes as an in-process int8 server over the fully
        built model."""
        config = ServeConfig(max_batch_size=4, decode_mode="exact",
                             prefix_cache=False, weight_mode="int8")
        requests = _variant_requests(n=4)
        want = _oracle_outputs(engine, requests, config=config)
        with LambdaFleetServer(engine, CONFIG, VARIANTS,
                               serve_config=config) as fleet:
            for rid, prompt, params, name in requests:
                fleet.submit(prompt, params=params, request_id=rid,
                             variant=name)
            fleet.run_until_idle()
            got = {rid: fleet.result(rid).token_ids
                   for rid, *_ in requests}
        assert got == want

    def test_memory_stays_near_one_model(self, engine, chip):
        model_bytes = sum(v.nbytes for v in chip.state_dict().values())
        with LambdaFleetServer(engine, CONFIG, VARIANTS,
                               serve_config=EXACT_CFG) as fleet:
            plan_bytes = fleet.plan_bytes()
        assert plan_bytes <= 2.1 * model_bytes, (
            f"{len(VARIANTS)} variants resident at "
            f"{plan_bytes / model_bytes:.2f}x one model")


@needs_fork
class TestLambdaFleetRouting:
    def test_explicit_policy_and_default_resolution(self, engine):
        policy_calls = []

        def by_session(request):
            policy_calls.append(request.request_id)
            return "hi" if request.session_id == "tenant-b" else None

        with LambdaFleetServer(engine, CONFIG, VARIANTS,
                               serve_config=EXACT_CFG,
                               variant_of=by_session) as fleet:
            # Explicit beats policy; policy beats default; None falls back.
            fleet.submit(tuple(range(2, 10)), request_id="explicit",
                         variant="mid", session_id="tenant-b",
                         params=SamplingParams(max_new_tokens=4))
            fleet.submit(tuple(range(3, 11)), request_id="policy",
                         session_id="tenant-b",
                         params=SamplingParams(max_new_tokens=4))
            fleet.submit(tuple(range(4, 12)), request_id="default",
                         params=SamplingParams(max_new_tokens=4))
            fleet.run_until_idle()
            report = fleet.variant_report()
        assert "explicit" not in policy_calls
        assert report["mid"]["finished"] == 1     # explicit
        assert report["hi"]["finished"] == 1      # policy
        assert report["lo"]["finished"] == 1      # default (first variant)
        assert report["lo"]["is_default"]

    def test_unknown_variant_rejected_at_submit(self, engine):
        with LambdaFleetServer(engine, CONFIG, VARIANTS[:2],
                               serve_config=EXACT_CFG) as fleet:
            with pytest.raises(KeyError, match="mystery"):
                fleet.submit(tuple(range(2, 10)), request_id="bad",
                             variant="mystery",
                             params=SamplingParams(max_new_tokens=4))
            # The rejected request left no tombstones behind.
            fleet.submit(tuple(range(2, 10)), request_id="ok",
                         params=SamplingParams(max_new_tokens=4))
            fleet.run_until_idle()
            assert fleet.result("ok").ok
            assert fleet.accounting()["conservation_ok"] == 1

    def test_session_affinity_within_variant_group(self, engine):
        """Turns of one session on one variant land on one replica, even
        with multiple replicas per variant."""
        with LambdaFleetServer(engine, CONFIG, VARIANTS[:2],
                               serve_config=EXACT_CFG,
                               replicas_per_variant=2) as fleet:
            history = ()
            for turn in range(2):
                prompt = history + tuple(range(2 + turn, 10 + turn))
                fleet.submit(prompt, request_id=f"t{turn}", session_id="s0",
                             variant="hi",
                             params=SamplingParams(max_new_tokens=4))
                history = prompt
                fleet.run_until_idle()
            merged = fleet.fleet_snapshot()["merged"]
            report = fleet.variant_report()
        assert report["hi"]["finished"] == 2
        assert report["hi"]["replicas"] == [2, 3]
        # Turn 2 found turn 1's session KV resident on its replica.
        assert merged["counters"].get("serve.cached_prefix_tokens", 0) > 0

    def test_validation_errors(self, engine):
        with pytest.raises(ValueError, match="duplicate"):
            LambdaFleetServer(engine, CONFIG,
                              [VariantSpec.scalar("a", 0.2),
                               VariantSpec.scalar("a", 0.4)])
        with pytest.raises(ValueError, match="at least one"):
            LambdaFleetServer(engine, CONFIG, [])
        with pytest.raises(ValueError, match="unknown default"):
            LambdaFleetServer(engine, CONFIG, VARIANTS[:2],
                              default_variant="nope")


@needs_fork
class TestPromotion:
    def test_promote_follows_measured_quality(self, engine):
        with LambdaFleetServer(engine, CONFIG, VARIANTS[:3],
                               serve_config=EXACT_CFG) as fleet:
            assert fleet.default_variant == "lo"
            fleet.record_quality("lo", 0.40)
            fleet.record_quality("lo", 0.50)
            fleet.record_quality("hi", 0.90)
            assert fleet.quality_of("lo") == pytest.approx(0.45)
            assert fleet.promote() == "hi"
            assert fleet.default_variant == "hi"
            # Unpinned traffic now lands on the promoted variant.
            fleet.submit(tuple(range(2, 10)), request_id="after",
                         params=SamplingParams(max_new_tokens=4))
            fleet.run_until_idle()
            report = fleet.variant_report()
            registry = fleet.obs.registry
            promotions = registry.counter("serve.fleet.promotions").value
            quality = registry.gauge("serve.fleet.variant.hi.quality").value
        assert report["hi"]["finished"] == 1
        assert report["hi"]["is_default"]
        assert promotions == 1
        assert quality == pytest.approx(0.9)

    def test_ties_keep_the_incumbent(self, engine):
        with LambdaFleetServer(engine, CONFIG, VARIANTS[:3],
                               serve_config=EXACT_CFG,
                               default_variant="ramp") as fleet:
            fleet.record_quality("lo", 0.8)
            fleet.record_quality("ramp", 0.8)
            assert fleet.promote() == "ramp"
            assert fleet.default_variant == "ramp"

    def test_min_samples_and_unknown_variant(self, engine):
        with LambdaFleetServer(engine, CONFIG, VARIANTS[:2],
                               serve_config=EXACT_CFG) as fleet:
            with pytest.raises(ValueError, match="samples"):
                fleet.promote()
            fleet.record_quality("lo", 0.5)
            with pytest.raises(ValueError, match="samples"):
                fleet.promote(min_samples=2)
            with pytest.raises(KeyError):
                fleet.record_quality("mystery", 1.0)
