"""Benchmark-driver tests with deterministic stub answerers."""

import pytest

from repro.data.industrial_qa import REFUSAL, eval_items, multi_turn_items
from repro.data.openroad_qa import eval_triplets
from repro.eval.harness import (COMPLIANCE_CAP, INDUSTRIAL_INSTRUCTIONS,
                                OPENROAD_INSTRUCTIONS, OPENROAD_PREFIX,
                                Answerer, golden_reference, run_industrial,
                                run_industrial_multiturn, run_openroad)
from repro.eval.ifeval.instructions import StartWith


class EchoGolden(Answerer):
    """Cheating answerer: returns the compliant golden answer (upper bound)."""

    def __init__(self, mapping, instructions):
        self.mapping = mapping
        self.instructions = instructions

    def answer(self, question, context=None, instructions=(), history=()):
        return golden_reference(self.mapping[question], self.instructions)


class SaysNothing(Answerer):
    def answer(self, question, context=None, instructions=(), history=()):
        return "hmm"


def test_golden_reference_applies_instructions():
    ref = golden_reference("blue", (StartWith("answer :"), "a plain directive"))
    assert ref == "answer : blue"


class TestOpenRoad:
    def test_perfect_answerer_scores_one(self):
        triplets = eval_triplets()[:10]
        mapping = {t.question: t.answer for t in triplets}
        answerer = EchoGolden(mapping, OPENROAD_INSTRUCTIONS)
        report = run_openroad(answerer, triplets)
        assert report.overall == pytest.approx(1.0)

    def test_bad_answerer_scores_low(self):
        triplets = eval_triplets()[:10]
        report = run_openroad(SaysNothing(), triplets)
        assert report.overall < 0.1

    def test_categories_reported(self):
        triplets = eval_triplets()[:30]
        report = run_openroad(SaysNothing(), triplets)
        assert set(report.by_category) == {"functionality", "vlsi_flow",
                                           "gui_install_test"}

    def test_rag_mode_requires_pipeline(self):
        with pytest.raises(ValueError):
            run_openroad(SaysNothing(), eval_triplets()[:2], context_mode="rag")

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            run_openroad(SaysNothing(), eval_triplets()[:2], context_mode="oracle")

    def test_empty_set(self):
        with pytest.raises(ValueError):
            run_openroad(SaysNothing(), [])

    def test_rag_mode_runs(self):
        from repro.data.openroad_qa import documentation_corpus
        from repro.rag import RagPipeline

        triplets = eval_triplets()[:5]
        pipeline = RagPipeline(documentation_corpus())
        report = run_openroad(SaysNothing(), triplets, context_mode="rag",
                              rag_pipeline=pipeline)
        assert len(report.responses) == 5


class TestIndustrial:
    def test_perfect_answerer_scores_100(self):
        items = eval_items()
        mapping = {i.question: i.answer for i in items}
        answerer = EchoGolden(mapping, INDUSTRIAL_INSTRUCTIONS)
        report = run_industrial(answerer, items)
        assert report.overall == pytest.approx(100.0)

    def test_refusal_on_everything_scores_only_refusal_items(self):
        class AlwaysRefuse(Answerer):
            def answer(self, question, context=None, instructions=(), history=()):
                return golden_reference(REFUSAL, INDUSTRIAL_INSTRUCTIONS)

        items = eval_items()
        report = run_industrial(AlwaysRefuse(), items)
        n_refusal = sum(1 for i in items if i.answer == REFUSAL)
        expected = 100.0 * n_refusal / len(items)
        assert report.overall == pytest.approx(expected, abs=1.0)

    def test_compliance_cap_applied(self):
        """A correct but format-violating answer is capped."""
        items = [i for i in eval_items() if i.answer != REFUSAL][:5]

        class CorrectButNonCompliant(Answerer):
            def answer(self, question, context=None, instructions=(), history=()):
                mapping = {i.question: i.answer for i in items}
                return mapping[question]  # no "based on the context" prefix

        report = run_industrial(CorrectButNonCompliant(), items)
        assert all(v.score <= COMPLIANCE_CAP for v in report.verdicts)

    def test_prefix_instruction_is_part_of_protocol(self):
        assert OPENROAD_PREFIX in INDUSTRIAL_INSTRUCTIONS

    def test_multiturn_perfect(self):
        items = multi_turn_items()
        mapping = {i.question: i.answer for i in items}
        answerer = EchoGolden(mapping, INDUSTRIAL_INSTRUCTIONS)
        report = run_industrial_multiturn(answerer, items)
        assert report.overall == pytest.approx(100.0)

    def test_empty_sets(self):
        with pytest.raises(ValueError):
            run_industrial(SaysNothing(), [])
        with pytest.raises(ValueError):
            run_industrial_multiturn(SaysNothing(), [])
