"""Dataset-generator tests: determinism, splits, structural invariants."""

import pytest

from repro.data import (GENERAL_FACTS, all_documentation, build_tokenizer,
                        eval_items, eval_triplets, general_qa_pairs,
                        mcq_items, multi_turn_items, pretraining_sentences,
                        train_items, train_triplets)
from repro.data.corpus import GROUNDING_TEMPLATES
from repro.data.extraction import (extraction_eval_samples,
                                   extraction_pretraining_samples)
from repro.data.industrial_qa import REFUSAL, UNANSWERABLE_PER_CATEGORY
from repro.data.industrial_qa import CATEGORIES as IND_CATEGORIES
from repro.data.instruction_data import (counterfactual_grounded_samples,
                                         grounded_general_samples,
                                         instruction_sft_samples,
                                         multi_turn_general_samples)
from repro.data.mcq import DOMAINS, items_by_domain
from repro.data.openroad_qa import CATEGORIES as OR_CATEGORIES
from repro.data.openroad_qa import EVAL_QUOTA


class TestGeneralWorld:
    def test_facts_align_with_qa(self):
        assert len(general_qa_pairs()) == len(GENERAL_FACTS)

    def test_pretraining_deterministic(self):
        assert pretraining_sentences(seed=3) == pretraining_sentences(seed=3)

    def test_pretraining_repeats(self):
        assert len(pretraining_sentences(repeats=2)) == 2 * len(GENERAL_FACTS)

    def test_grounding_templates_fill(self):
        for template in GROUNDING_TEMPLATES:
            for fill in template.fills:
                assert fill in template.fill(fill)


class TestOpenRoadQA:
    def test_eval_set_size_is_90(self):
        evals = eval_triplets()
        assert len(evals) == 90
        counts = {c: sum(1 for t in evals if t.category == c) for c in OR_CATEGORIES}
        assert counts == EVAL_QUOTA

    def test_no_fact_leak_between_splits(self):
        train_facts = {t.fact_key for t in train_triplets()}
        eval_facts = {t.fact_key for t in eval_triplets()}
        assert not train_facts & eval_facts

    def test_answers_grounded_in_context(self):
        # Answers are grounded in their golden context up to the documented
        # answer conventions: procedure ordering markers and the long-form
        # default phrasing ("the default VALUE of X FOR cmd is Y").
        convention = {"first", "then", "next", "after", "that", "finally",
                      "value", "for"}
        for t in eval_triplets():
            answer_words = set(t.answer.split())
            context_words = set(t.context.split())
            missing = answer_words - context_words - convention
            assert not missing, (t.fact_key, missing)

    def test_deterministic(self):
        a = [t.question for t in eval_triplets()]
        b = [t.question for t in eval_triplets()]
        assert a == b

    def test_docs_cover_every_context(self):
        docs = set(all_documentation())
        for t in eval_triplets():
            assert t.context in docs


class TestIndustrialQA:
    def test_eval_set_size_is_39(self):
        evals = eval_items()
        assert len(evals) == 39
        per_cat = {c: sum(1 for i in evals if i.category == c) for c in IND_CATEGORIES}
        assert per_cat == {"arch": 10, "build": 10, "lsf": 10, "testgen": 9}

    def test_refusal_items_present(self):
        evals = eval_items()
        refusals = [i for i in evals if i.answer == REFUSAL]
        assert len(refusals) == UNANSWERABLE_PER_CATEGORY * len(IND_CATEGORIES)

    def test_refusal_chunks_are_off_topic(self):
        for item in eval_items():
            if item.answer != REFUSAL:
                continue
            # None of the chunks should contain the golden fact's content.
            for chunk in item.chunks:
                assert chunk not in item.question

    def test_answerable_items_grounded_in_chunks(self):
        for item in eval_items():
            if item.answer == REFUSAL:
                continue
            assert item.answer in item.chunks

    def test_eval_phrasings_never_in_training(self):
        train_questions = {i.question for i in train_items()}
        for item in eval_items():
            assert item.question not in train_questions

    def test_context_renders_chunk_markers(self):
        item = eval_items()[0]
        assert item.context.startswith("chunk 0 :")

    def test_multi_turn_structure(self):
        items = multi_turn_items()
        assert len(items) == 20
        for item in items:
            assert item.first_answer in item.chunks or item.answer in item.chunks
            assert item.category in IND_CATEGORIES


class TestMCQ:
    def test_counts_and_domains(self):
        items = mcq_items()
        assert {i.domain for i in items} == set(DOMAINS)
        assert len(items) == 40

    def test_answer_index_valid_and_choices_unique(self):
        for item in mcq_items():
            assert 0 <= item.answer_idx < len(item.choices)
            assert len(set(item.choices)) == len(item.choices)

    def test_answer_positions_shuffled(self):
        positions = {i.answer_idx for i in mcq_items()}
        assert len(positions) > 1

    def test_items_by_domain(self):
        bugs = items_by_domain("bugs")
        assert all(i.domain == "bugs" for i in bugs)
        with pytest.raises(KeyError):
            items_by_domain("nope")

    def test_deterministic(self):
        a = [i.question for i in mcq_items(seed=7)]
        b = [i.question for i in mcq_items(seed=7)]
        assert a == b


class TestInstructionData:
    def test_sft_samples_are_compliant(self):
        for sample in instruction_sft_samples(pool="a", per_question=3, seed=1):
            for ins in sample.instructions:
                assert ins.check(sample.response), (ins, sample.response)

    def test_pool_selection(self):
        kinds_a = {i.kind for s in instruction_sft_samples(pool="a", seed=0)
                   for i in s.instructions}
        assert "quote_wrap" in kinds_a or "max_words" in kinds_a
        assert "two_parts" not in kinds_a  # pool-B exclusive

    def test_grounded_general_has_context(self):
        for sample in grounded_general_samples(n_samples=20, seed=2):
            assert sample.prompt.startswith("context :")

    def test_counterfactual_refusals_present_and_compliant(self):
        samples = counterfactual_grounded_samples(n_samples=60, seed=3,
                                                  refusal_fraction=0.5)
        refusals = [s for s in samples if "enough information" in s.response]
        assert refusals
        for s in samples:
            for ins in s.instructions:
                assert ins.check(s.response)

    def test_counterfactual_answer_matches_context_not_world(self):
        samples = counterfactual_grounded_samples(n_samples=40, seed=4,
                                                  refusal_fraction=0.0,
                                                  instruction_fraction=0.0)
        # Each answered sample's response is literally a context statement.
        for s in samples:
            context = s.prompt.split("question :")[0]
            assert s.response.replace("chunk", "") and s.response in context

    def test_multi_turn_samples_include_history(self):
        for s in multi_turn_general_samples(n_samples=10, seed=5):
            assert s.prompt.count("question :") == 2
            assert s.prompt.count("assistant :") == 2


class TestExtraction:
    def test_pretraining_sample_structure(self):
        for text in extraction_pretraining_samples(n_samples=20, seed=6):
            assert "context :" in text and "question :" in text
            assert "assistant :" in text

    def test_answer_is_verbatim_context_fact(self):
        for prompt, answer in extraction_eval_samples(n_samples=20, seed=7):
            context = prompt.split("question :")[0]
            assert answer in context

    def test_refusal_fraction(self):
        texts = extraction_pretraining_samples(n_samples=60, seed=8,
                                               refusal_fraction=1.0)
        assert all("enough information" in t for t in texts)

    def test_validations(self):
        with pytest.raises(ValueError):
            extraction_pretraining_samples(n_context=1)
        with pytest.raises(ValueError):
            extraction_pretraining_samples(refusal_fraction=2.0)


class TestVocabulary:
    def test_tokenizer_covers_all_benchmarks(self):
        tok = build_tokenizer()
        texts = []
        for t in eval_triplets():
            texts += [t.context, t.question, t.answer]
        for i in eval_items():
            texts += [i.context, i.question, i.answer]
        for m in mcq_items():
            texts += [m.question, *m.choices]
        for text in texts:
            ids = tok.encode(text)
            assert tok.unk_id not in ids, text
