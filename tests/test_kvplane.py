"""Zero-copy KV plane differential suite (DESIGN.md §13).

The block-sharing prefix cache must be *free* where it claims to be free and
*exact* everywhere:

* ref-counted :class:`BlockPool` invariants under random share/release/
  truncate schedules (Hypothesis): no block freed while referenced,
  ``allocated + free == n_blocks`` after every operation;
* shared-block adoption vs the copy path, byte-for-byte, over batch ×
  sampling × prefix-hit × session-resume × paged/dense — including
  speculative ``truncate_kv`` over shared blocks;
* a full prefix hit admits with **zero** KV bytes copied (counter-asserted)
  and skips the redundant pool re-insert;
* the vectorized session scan and ``common_prefix_length_np`` are
  bit-identical to the scalar oracles.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.trainer import TrainConfig, Trainer
from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.parallel import parallel_available
from repro.serve import (ArrayEntry, BatchedEngine, BlockEntry, BlockPool,
                         BlockPoolError, InProcessServer, PrefixCachePool,
                         SamplingParams, ServeConfig, SessionStore,
                         common_prefix_length, common_prefix_length_np)
from repro.serve.fleet import FleetServer

needs_fork = pytest.mark.skipif(not parallel_available(),
                                reason="requires os.fork")

CORPUS = [[1, 7, 8, 9, 10, 11, 2], [1, 5, 6, 5, 6, 2]] * 4


def _train(config):
    m = TransformerLM(config)
    Trainer(m, pad_id=0, config=TrainConfig(epochs=25, batch_size=8, lr=3e-3)
            ).fit(CORPUS)
    return m


@pytest.fixture(scope="module")
def model():
    return _train(TransformerConfig(vocab_size=24, dim=16, n_layers=2,
                                    n_heads=2, max_seq_len=48, seed=0))


@pytest.fixture(scope="module")
def draft():
    return _train(TransformerConfig(vocab_size=24, dim=8, n_layers=1,
                                    n_heads=2, max_seq_len=48, seed=1))


def _server(model, **cfg):
    cfg.setdefault("decode_mode", "fused")
    cfg.setdefault("prefix_cache", False)
    cfg.setdefault("max_batch_size", 4)
    draft_model = cfg.pop("draft_model", None)
    return InProcessServer(model, config=ServeConfig(**cfg), eos_id=2,
                           draft_model=draft_model)


SHARED = [1, 7, 8, 9, 10, 11, 7, 8]  # 8 tokens == default min_match_tokens
PREFIX_PROMPTS = [SHARED + [5], SHARED + [5, 6], SHARED + [9, 10],
                  SHARED + [7, 8, 9]]

SAMPLERS = {
    "greedy": lambda i: SamplingParams(max_new_tokens=6),
    "top_k": lambda i: SamplingParams(max_new_tokens=6, temperature=0.8,
                                      top_k=4, seed=700 + i),
    "top_p": lambda i: SamplingParams(max_new_tokens=6, temperature=0.8,
                                      top_p=0.9, seed=700 + i),
}


def _drive_prefix(server, sampler="top_k", prompts=PREFIX_PROMPTS,
                  session_id=None):
    """Sequential submits so later prompts hit the pool entries earlier
    prompts inserted."""
    out = []
    for i, p in enumerate(prompts):
        rid = server.submit(p, params=SAMPLERS[sampler](i),
                            session_id=session_id)
        server.run_until_idle()
        out.append(list(server.result(rid).token_ids))
    return out


# ---------------------------------------------------------------------------
# vectorized prefix scans vs scalar oracles
# ---------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(a=st.lists(st.integers(0, 5), max_size=24),
       b=st.lists(st.integers(0, 5), max_size=24))
def test_common_prefix_length_np_matches_scalar(a, b):
    """The accumulate-and-sum scan is bit-identical to the Python walk on
    arbitrary pairs, including empty and fully-equal sequences."""
    assert common_prefix_length_np(a, b) == common_prefix_length(a, b)
    assert common_prefix_length_np(a, a) == len(a)
    assert common_prefix_length_np(a, []) == 0


@settings(max_examples=60, deadline=None)
@given(stored=st.lists(st.integers(0, 4), min_size=1, max_size=16),
       prompt=st.lists(st.integers(0, 4), min_size=2, max_size=16))
def test_session_lookup_matches_scalar_oracle(stored, prompt):
    """``SessionStore.lookup_prefix`` equals the scalar-oracle computation:
    common prefix capped one short of the prompt and at the entry length."""
    store = SessionStore(capacity=2)
    kv = [(np.zeros((2, len(stored), 4)), np.zeros((2, len(stored), 4)))]
    store.update("s", stored, kv)
    match, entry = store.lookup_prefix("s", prompt)
    expect = min(common_prefix_length(stored, prompt), len(prompt) - 1,
                 len(stored))
    if expect <= 0:
        assert match == 0 and entry is None
    else:
        assert match == expect and entry is not None


# ---------------------------------------------------------------------------
# ref-counted BlockPool: unit + Hypothesis property tests
# ---------------------------------------------------------------------------


def test_share_release_lifecycle():
    pool = BlockPool(4, block_tokens=4)
    block = pool.alloc("slot0")
    assert pool.refcount(block) == 1
    assert pool.share(block) == 2
    assert pool.n_shared_refs == 1
    # Owner drops its stake; the shared reference keeps the block allocated.
    pool.free(block)
    assert pool.n_allocated == 1 and pool.refcount(block) == 1
    assert pool.conservation_ok()
    # Last reference frees it.
    pool.release(block)
    assert pool.n_allocated == 0 and pool.n_free == 4
    assert pool.conservation_ok()


def test_share_release_error_cases():
    pool = BlockPool(2)
    with pytest.raises(BlockPoolError):
        pool.share(0)  # never allocated
    block = pool.alloc("a")
    with pytest.raises(BlockPoolError):
        pool.release(block)  # owner stake is not an anonymous reference
    pool.share(block)
    pool.release(block)
    with pytest.raises(BlockPoolError):
        pool.release(block)  # no anonymous reference left
    pool.free(block)
    with pytest.raises(BlockPoolError):
        pool.release(block)  # fully freed
    assert pool.conservation_ok()


def test_free_owner_preserves_shared_blocks():
    pool = BlockPool(3)
    blocks = [pool.alloc("seq") for _ in range(3)]
    pool.share(blocks[0])
    pool.share(blocks[2])
    freed = pool.free_owner("seq")
    assert freed == blocks
    # Blocks 0 and 2 survive their owner; block 1 went straight back.
    assert pool.n_allocated == 2 and pool.n_free == 1
    assert pool.refcount(blocks[1]) == 0
    pool.release(blocks[0])
    pool.release(blocks[2])
    assert pool.n_free == 3 and pool.conservation_ok()


@settings(max_examples=80, deadline=None)
@given(ops=st.lists(st.tuples(st.integers(0, 4), st.integers(0, 6)),
                    max_size=100),
       n_blocks=st.integers(1, 6))
def test_block_pool_refcount_random_schedules(ops, n_blocks):
    """Arbitrary alloc/free/free_owner/share/release interleavings against
    an independent mirror: refcounts always agree, no block is freed while
    referenced, and ``allocated + free == n_blocks`` after every step."""
    pool = BlockPool(n_blocks, block_tokens=4)
    owner_of = {}   # block -> owner (mirror of the owner stake)
    refs = {}       # block -> total refcount (mirror)
    for op, arg in ops:
        if op == 0:  # alloc
            if pool.n_free == 0:
                pool.grow(2)
            block = pool.alloc(arg % 3)
            assert block not in refs, "pool handed out a live block"
            owner_of[block] = arg % 3
            refs[block] = 1
        elif op == 1:  # free one owned block
            owned = pool.owner_blocks(arg % 3)
            if owned:
                block = owned[arg % len(owned)]
                pool.free(block)
                del owner_of[block]
                refs[block] -= 1
                if refs[block] == 0:
                    del refs[block]
        elif op == 2:  # free_owner
            for block in pool.free_owner(arg % 3):
                del owner_of[block]
                refs[block] -= 1
                if refs[block] == 0:
                    del refs[block]
        elif op == 3:  # share a live block
            live = sorted(refs)
            if live:
                block = live[arg % len(live)]
                assert pool.share(block) == refs[block] + 1
                refs[block] += 1
        else:  # release an anonymously-referenced block
            shared = sorted(b for b in refs
                            if refs[b] - (1 if b in owner_of else 0) > 0)
            if shared:
                block = shared[arg % len(shared)]
                pool.release(block)
                refs[block] -= 1
                if refs[block] == 0:
                    del refs[block]
        # Invariants after *every* operation.
        assert pool.conservation_ok()
        assert pool.n_allocated == len(refs)
        assert pool.n_allocated + pool.n_free == pool.n_blocks
        for block, count in refs.items():
            assert pool.refcount(block) == count, "block freed while referenced"
    # Drain: drop every owner stake, then every anonymous reference.
    for owner in set(owner_of.values()):
        for block in pool.free_owner(owner):
            refs[block] -= 1
            if refs[block] == 0:
                del refs[block]
    for block, count in list(refs.items()):
        for _ in range(count):
            pool.release(block)
    assert pool.n_allocated == 0 and pool.n_free == pool.n_blocks
    assert pool.n_shared_refs == 0 and pool.conservation_ok()


# ---------------------------------------------------------------------------
# engine-level sharing: prefill_into / make_entry / adoption / truncate
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kv_mode", ["dense", "paged"])
def test_prefill_into_matches_prefill_bind(model, kv_mode):
    """``begin_sequence`` + ``prefill_into`` is the zero-intermediate twin of
    ``prefill`` + ``bind``: identical logits and identical stored KV."""
    prompt = [1, 7, 8, 9, 10, 11, 7, 8, 9]
    eng = BatchedEngine(model, decode_mode="fused", kv_mode=kv_mode,
                        kv_block_tokens=4, max_batch_size=2)
    caches = eng.new_caches()
    logits_a = eng.prefill(prompt, caches)
    handle_a = eng.bind(caches)
    handle_b = eng.begin_sequence()
    logits_b = eng.prefill_into(prompt, handle_b)
    assert np.array_equal(logits_a, logits_b)
    for (ka, va), (kb, vb) in zip(eng.export_kv(handle_a),
                                  eng.export_kv(handle_b)):
        assert np.array_equal(ka, kb) and np.array_equal(va, vb)
    eng.release(handle_a)
    eng.release(handle_b)
    if eng._block_pool is not None:
        assert eng._block_pool.n_allocated == 0


def test_make_entry_materialize_matches_export(model):
    """A block entry's materialized arrays equal ``export_kv`` of the slot it
    snapshotted, at every cut point (block-aligned and mid-block)."""
    prompt = [1, 7, 8, 9, 10, 11, 7, 8, 9, 10]
    eng = BatchedEngine(model, decode_mode="fused", kv_mode="paged",
                        kv_block_tokens=4, max_batch_size=2)
    handle = eng.begin_sequence()
    eng.prefill_into(prompt, handle)
    for upto in (4, 7, 10):
        entry = eng.make_entry(handle, upto)
        assert isinstance(entry, BlockEntry) and entry.length == upto
        for (ke, ve), (kx, vx) in zip(entry.materialize(),
                                      eng.export_kv(handle, upto)):
            assert np.array_equal(ke, kx) and np.array_equal(ve, vx)
        entry.release()
    eng.release(handle)
    assert eng._block_pool.n_allocated == 0


def test_block_aligned_adoption_copies_zero_bytes(model):
    """Full-block prefix adoption is refcount bumps only: the byte counter
    does not move, and the adopted slot decodes from the same storage."""
    prompt = [1, 7, 8, 9, 10, 11, 7, 8]  # 8 tokens == 2 full 4-token blocks
    eng = BatchedEngine(model, decode_mode="fused", kv_mode="paged",
                        kv_block_tokens=4, max_batch_size=2)
    src = eng.begin_sequence()
    eng.prefill_into(prompt, src)
    entry = eng.make_entry(src, len(prompt))
    assert entry.frag is None and len(entry.blocks) == 2
    eng.release(src)
    before = eng.kv_bytes_copied
    shared_before = eng.blocks_shared
    adopted = eng.begin_sequence(entry, len(prompt))
    assert eng.kv_bytes_copied == before, "full-block adoption copied bytes"
    assert eng.blocks_shared == shared_before + 2
    for block in entry.blocks:
        assert eng._block_pool.refcount(block) == 2  # entry + adopting slot
    eng.release(adopted)
    entry.release()
    assert eng._block_pool.n_allocated == 0


def test_partial_tail_adoption_copies_one_fragment(model):
    """A mid-block prefix copies exactly the sub-block tail (copy-on-write at
    block granularity), never the whole prefix."""
    prompt = [1, 7, 8, 9, 10, 11, 7, 8, 9, 10]  # 10 = 2 blocks + 2-token tail
    eng = BatchedEngine(model, decode_mode="fused", kv_mode="paged",
                        kv_block_tokens=4, max_batch_size=2)
    src = eng.begin_sequence()
    eng.prefill_into(prompt, src)
    entry = eng.make_entry(src, len(prompt))
    assert len(entry.blocks) == 2 and entry.frag is not None
    before = eng.kv_bytes_copied
    adopted = eng.begin_sequence(entry, len(prompt))
    assert eng.kv_bytes_copied - before == 2 * eng._token_bytes
    reference = entry.materialize()
    for (ke, ve), (kx, vx) in zip(reference,
                                  eng.export_kv(adopted, len(prompt))):
        assert np.array_equal(ke, kx) and np.array_equal(ve, vx)
    eng.release(src)
    eng.release(adopted)
    entry.release()
    assert eng._block_pool.n_allocated == 0


def test_truncate_kv_over_shared_blocks(model):
    """Speculative rollback over adopted blocks drops the slot's *shared*
    reference — the entry keeps its block alive and intact."""
    prompt = [1, 7, 8, 9, 10, 11, 7, 8]
    eng = BatchedEngine(model, decode_mode="fused", kv_mode="paged",
                        kv_block_tokens=4, max_batch_size=2)
    src = eng.begin_sequence()
    eng.prefill_into(prompt, src)
    entry = eng.make_entry(src, 8)
    eng.release(src)
    snapshot = [(k.copy(), v.copy()) for k, v in entry.materialize()]
    handle = eng.begin_sequence(entry, 8)
    b0, b1 = entry.blocks
    assert eng._block_pool.refcount(b1) == 2
    eng.truncate_kv(handle, 4)  # roll back past the second shared block
    assert eng._block_pool.refcount(b1) == 1, "entry lost its block"
    assert eng._slot_shared_n[handle.slot] == 1
    # The surviving sequence re-extends into a *fresh* block, never back
    # into the entry's storage.
    eng.prefill_into(prompt[:4] + [5, 6], handle)
    for (ks, vs), (ke, ve) in zip(snapshot, entry.materialize()):
        assert np.array_equal(ks, ke) and np.array_equal(vs, ve)
    eng.release(handle)
    entry.release()
    assert eng._block_pool.n_allocated == 0


# ---------------------------------------------------------------------------
# scheduler-level zero-copy admission + skip-insert regression
# ---------------------------------------------------------------------------


def test_full_prefix_hit_copies_zero_bytes(model):
    """The headline gate, as a deterministic test: a block-aligned prompt is
    stored once, and every subsequent full hit admits with **zero** KV bytes
    copied (adoption shares blocks, the covered re-insert is skipped)."""
    grounding = SHARED + [9, 10, 11, 5]  # 12 tokens == 3 full 4-token blocks
    server = _server(model, kv_mode="paged", kv_block_tokens=4,
                     prefix_cache=True)
    eng = server.engine
    rid = server.submit(grounding, params=SamplingParams(max_new_tokens=4))
    server.run_until_idle()
    assert server.result(rid) is not None
    # Cold pass: the insert shared 3 full blocks and copied nothing (the
    # prompt is block-aligned, so the entry has no tail fragment).
    assert eng.kv_bytes_copied == 0
    assert eng.blocks_shared == 3
    pool = server.scheduler.prefix_pool
    assert len(pool) == 1
    # Hot pass: full hit — adoption is 3 refcount bumps, zero bytes.
    rid = server.submit(grounding + [7], params=SamplingParams(max_new_tokens=4))
    server.run_until_idle()
    assert server.result(rid) is not None
    assert eng.kv_bytes_copied == 0, "full prefix hit copied KV bytes"
    assert eng.blocks_shared == 6
    # And the registry counters saw the same numbers.
    snap = server.scheduler.obs.registry.snapshot()
    assert snap["serve.kv.bytes_copied"] == 0
    assert snap["serve.prefix.blocks_shared"] == 6


def test_admit_skips_insert_when_pool_covers(model):
    """Regression: a prompt fully covered by the stored entry must not
    re-insert (no supplier invocation, no insert-side copies or shares)."""
    grounding = SHARED + [9, 10, 11, 5]
    server = _server(model, kv_mode="paged", kv_block_tokens=4,
                     prefix_cache=True)
    pool = server.scheduler.prefix_pool
    server.submit(grounding, params=SamplingParams(max_new_tokens=2))
    server.run_until_idle()
    keys_before = set(pool.entries())
    shared_before = server.engine.blocks_shared
    server.submit(grounding + [7], params=SamplingParams(max_new_tokens=2))
    server.run_until_idle()
    # Same entry set (covered prompts add no key), and the only new shares
    # are the 3 adoption bumps — an insert would have added 3 more.
    assert set(pool.entries()) == keys_before
    assert server.engine.blocks_shared == shared_before + 3
    # A *longer* prompt (not covered) does insert, pruning the subsumed key.
    server.submit(grounding + [7, 8, 9], params=SamplingParams(max_new_tokens=2))
    server.run_until_idle()
    assert set(pool.entries()) != keys_before
    assert server.scheduler.metrics.admissions  # histogram is being fed
    assert "mean_admission_s" in server.metrics_snapshot()


# ---------------------------------------------------------------------------
# shared-vs-copy byte-parity sweeps
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("batch", [1, 3])
@pytest.mark.parametrize("sampler", sorted(SAMPLERS))
def test_shared_prefix_parity_paged_vs_dense(model, batch, sampler):
    """Prefix-cache traffic through shared blocks emits byte-identical
    streams to the dense copy path, across batch sizes and samplers."""
    dense = _drive_prefix(_server(model, prefix_cache=True,
                                  max_batch_size=batch), sampler)
    paged = _drive_prefix(_server(model, prefix_cache=True, kv_mode="paged",
                                  kv_block_tokens=4, max_batch_size=batch),
                          sampler)
    assert paged == dense


@pytest.mark.parametrize("sampler", sorted(SAMPLERS))
def test_session_resume_parity_paged_vs_dense(model, sampler):
    """Two-turn chat resume over shared session blocks equals the dense copy
    path draw-for-draw, and reuses the same number of cached tokens."""
    def run(server):
        turn1 = SHARED + [5]
        first = server.chat("s1", turn1, params=SAMPLERS[sampler](0))
        turn2 = turn1 + list(first.token_ids) + [9, 10]
        second = server.chat("s1", turn2, params=SAMPLERS[sampler](1))
        return (list(first.token_ids), list(second.token_ids),
                second.cached_prefix_tokens)

    dense = run(_server(model, prefix_cache=True))
    paged = run(_server(model, prefix_cache=True, kv_mode="paged",
                        kv_block_tokens=4))
    assert paged == dense
    assert paged[2] > 0  # the resume actually reused cached KV


@pytest.mark.parametrize("gamma", [1, 3])
def test_speculative_over_shared_blocks_parity(model, draft, gamma):
    """Speculative decoding whose rollbacks truncate over adopted shared
    blocks still equals dense target-only decoding exactly."""
    dense = _drive_prefix(_server(model, prefix_cache=True), "top_k")
    spec = _server(model, prefix_cache=True, kv_mode="paged",
                   kv_block_tokens=4, speculative_tokens=gamma,
                   draft_model=draft)
    assert _drive_prefix(spec, "top_k") == dense
    stats = spec.scheduler.spec_stats()
    assert stats["rounds"] > 0


def test_mixed_batch_prefix_and_session_parity(model):
    """Concurrent prefix-hit + session-resume + cold traffic in one batch:
    paged sharing equals the dense copy path on every stream."""
    def run(server):
        t1 = server.chat("chat", SHARED + [5],
                         params=SamplingParams(max_new_tokens=4))
        prompts = PREFIX_PROMPTS + [SHARED + [5] + list(t1.token_ids) + [9],
                                    [1, 5, 6, 5]]
        ids = []
        for i, p in enumerate(prompts):
            sid = "chat" if i == len(PREFIX_PROMPTS) else None
            ids.append(server.submit(p, params=SamplingParams(
                max_new_tokens=5, temperature=0.8, top_k=4, seed=40 + i),
                session_id=sid))
        server.run_until_idle()
        return [list(t1.token_ids)] + \
            [list(server.result(r).token_ids) for r in ids]

    dense = run(_server(model, prefix_cache=True, max_batch_size=3))
    paged = run(_server(model, prefix_cache=True, kv_mode="paged",
                        kv_block_tokens=4, max_batch_size=3))
    assert paged == dense


# ---------------------------------------------------------------------------
# scheduler fuzz with sharing enabled
# ---------------------------------------------------------------------------


def test_paged_fuzz_with_prefix_and_sessions(model):
    """Randomised traffic with the prefix pool and sessions ON: every
    allocated block is accounted for by a live entry after drain, refcount
    conservation holds, and clearing the pools returns every block."""
    rng = np.random.default_rng(777)
    for trial in range(4):
        server = _server(model, max_batch_size=3, kv_mode="paged",
                         kv_block_tokens=4, prefix_cache=True)
        prompts = [SHARED + [int(t) for t in rng.integers(3, 12, size=3)]
                   for _ in range(4)]
        submitted = []
        for _ in range(30):
            action = rng.integers(0, 4)
            if action == 0:
                prompt = prompts[int(rng.integers(0, len(prompts)))]
                sid = None
                if rng.integers(0, 2):
                    sid = f"s{int(rng.integers(0, 3))}"
                submitted.append(server.submit(
                    list(prompt),
                    params=SamplingParams(max_new_tokens=int(
                        rng.integers(1, 6))),
                    session_id=sid))
            elif action == 1 and submitted:
                server.cancel(submitted[int(rng.integers(0, len(submitted)))])
            else:
                server.step()
        server.run_until_idle()
        acct = server.scheduler.accounting()
        assert acct["conservation_ok"] == 1, (trial, acct)
        pool = server.engine._block_pool
        assert pool is not None and pool.conservation_ok(), trial
        # Every allocated block is referenced by a pool or session entry.
        held = set()
        for entry in server.scheduler.prefix_pool.entries().values():
            held.update(entry.blocks)
        for sid in ("s0", "s1", "s2"):
            state = server.scheduler.sessions._sessions.get(sid)
            if state is not None and isinstance(state.entry, BlockEntry):
                held.update(state.entry.blocks)
        assert held == {b for b in range(pool.n_blocks)
                        if pool.refcount(b) > 0}, trial
        # Dropping the caches drains the plane completely.
        server.scheduler.prefix_pool.clear()
        server.scheduler.sessions.clear()
        assert pool.n_allocated == 0 and pool.n_shared_refs == 0, trial
        assert pool.conservation_ok(), trial


@needs_fork
def test_fleet_surfaces_kv_plane_stats(model):
    """Replica KV planes stay replica-local, but their copy/share counters
    surface in the merged fleet registry and the snapshot's ``kv`` totals."""
    config = ServeConfig(max_batch_size=4, decode_mode="fused",
                         kv_mode="paged", kv_block_tokens=4,
                         prefix_cache=True)
    with FleetServer(model, n_replicas=2, serve_config=config,
                     eos_id=2) as fleet:
        for phase in range(2):  # phase 2 hits the entries phase 1 inserted
            for i, prompt in enumerate(PREFIX_PROMPTS):
                fleet.submit(list(prompt), request_id=f"p{phase}-{i}",
                             params=SamplingParams(max_new_tokens=4,
                                                   temperature=0.8, top_k=4,
                                                   seed=20 + i))
            fleet.run_until_idle()
        snap = fleet.fleet_snapshot()
    assert snap["kv"]["blocks_shared"] > 0
    assert snap["kv"]["bytes_reserved"] > 0
    merged = snap["merged"]["counters"]
    assert merged.get("serve.prefix.blocks_shared", 0) > 0
    assert "serve.kv.bytes_copied" in merged
    replica_kv = [r["kv"] for r in snap["per_replica"].values()
                  if r["kv"] is not None]
    assert replica_kv and all(kv["mode"] == "paged" for kv in replica_kv)


def test_entry_release_on_eviction_returns_blocks(model):
    """LRU eviction of block entries releases their references — a tiny pool
    under rotating prompts cannot leak blocks."""
    server = _server(model, kv_mode="paged", kv_block_tokens=4,
                     prefix_cache=True, prefix_cache_entries=2)
    eng = server.engine
    bases = [SHARED, [1, 5, 6, 5, 6, 9, 10, 11], [1, 9, 10, 11, 7, 8, 9, 10]]
    for rnd in range(3):
        for i, base in enumerate(bases):
            server.submit(base + [3 + rnd, 4 + i],
                          params=SamplingParams(max_new_tokens=3))
            server.run_until_idle()
    pool = eng._block_pool
    assert len(server.scheduler.prefix_pool) <= 2
    assert pool.conservation_ok()
    server.scheduler.prefix_pool.clear()
    server.scheduler.sessions.clear()
    assert pool.n_allocated == 0
