"""Weight-space analysis tests (angles, norms, interpolation paths)."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.core.analysis import (interpolation_path, linear_merge_tensor,
                                 norm_deviation_along_path, pairwise_geometry,
                                 summarize_geometry)


def sd(seed, shift=0.0):
    rng = np.random.default_rng(seed)
    return OrderedDict((f"w{i}", rng.normal(size=(3, 3)) + shift) for i in range(3))


def test_pairwise_geometry_fields():
    a, b = sd(0), sd(1)
    rows = pairwise_geometry(a, b)
    assert len(rows) == 3
    for row in rows:
        assert 0 <= row.angle <= np.pi
        assert row.norm_chip > 0 and row.norm_instruct > 0
        assert row.norm_ratio == pytest.approx(row.norm_chip / row.norm_instruct)


def test_identical_models_zero_angle():
    a = sd(0)
    summary = summarize_geometry(a, a)
    assert summary["angle_mean"] == pytest.approx(0.0, abs=1e-6)
    assert summary["norm_ratio_mean"] == pytest.approx(1.0)


def test_summary_keys():
    summary = summarize_geometry(sd(0), sd(1))
    for key in ("n_tensors", "angle_mean", "angle_max", "angle_min",
                "norm_ratio_mean", "norm_ratio_max"):
        assert key in summary
    assert summary["angle_min"] <= summary["angle_mean"] <= summary["angle_max"]


def test_linear_merge_tensor_endpoints():
    a = np.ones((2, 2))
    b = np.zeros((2, 2))
    assert np.allclose(linear_merge_tensor(a, b, 1.0), a)
    assert np.allclose(linear_merge_tensor(a, b, 0.0), b)


def test_norm_deviation_zero_for_geodesic():
    rng = np.random.default_rng(0)
    a, b = rng.normal(size=(4, 4)), rng.normal(size=(4, 4))
    lams = np.linspace(0, 1, 9)
    dev = norm_deviation_along_path(a, b, lams, path="geodesic")
    assert np.allclose(dev, 0.0, atol=1e-9)


def test_norm_deviation_positive_for_linear_interior():
    """The chord's norm sags below the geometric-mean target in the interior —
    the defect the paper's rescaling step removes."""
    rng = np.random.default_rng(1)
    a, b = rng.normal(size=(8, 8)), rng.normal(size=(8, 8))
    dev = norm_deviation_along_path(a, b, np.array([0.5]), path="linear")
    assert dev[0] > 0.0


def test_norm_deviation_path_validation():
    with pytest.raises(ValueError):
        norm_deviation_along_path(np.ones(2), np.ones(2), np.array([0.5]), path="bogus")


def test_interpolation_path_samples():
    a, b = sd(0), sd(1)
    lams = np.array([0.0, 0.5, 1.0])
    path = interpolation_path(a, b, lams)
    assert len(path) == 3
    for key in a:
        assert np.allclose(path[0][key], b[key], atol=1e-8)
        assert np.allclose(path[2][key], a[key], atol=1e-8)
