"""repro.parallel: shared-memory arena, fault-tolerant pool, determinism.

The determinism classes are the subsystem's acceptance contract: every
benchmark evaluated with ``workers=4`` must be **bit-identical** to the
serial loop — responses, judge verdicts, accuracies, and the observability
counter totals that ride back in worker snapshots.
"""

import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.obs import Observability
from repro.parallel import (ALIGN, ArenaHandle, ParallelTaskError,
                            TensorArena, WorkerPool, effective_workers,
                            get_task_context, parallel_available,
                            task_context, task_obs, worker_obs)

needs_fork = pytest.mark.skipif(not parallel_available(),
                                reason="requires os.fork")


@pytest.fixture(autouse=True)
def no_leaked_segments():
    yield
    assert TensorArena.live_segments() == [], \
        "test leaked shared-memory segments"


# ---------------------------------------------------------------------------
# TensorArena
# ---------------------------------------------------------------------------


class TestTensorArena:
    def test_publish_round_trip_preserves_dtype_and_shape(self):
        rng = np.random.default_rng(0)
        tensors = {
            "f64": rng.normal(size=(7, 5)),
            "f32": rng.normal(size=(3, 2, 4)).astype(np.float32),
            "i32": rng.integers(-9, 9, size=(11,)).astype(np.int32),
        }
        with TensorArena() as arena:
            for name, array in tensors.items():
                arena.publish(name, array)
            with arena.view() as view:
                for name, array in tensors.items():
                    got = view.get(name)
                    assert got.dtype == array.dtype
                    assert got.shape == array.shape
                    assert np.array_equal(got, array)

    def test_views_are_read_only(self):
        with TensorArena() as arena:
            arena.publish("t", np.ones(4))
            with arena.view() as view:
                got = view.get("t")
                with pytest.raises(ValueError):
                    got[0] = 5.0

    def test_publish_dict_aligns_and_round_trips(self):
        rng = np.random.default_rng(1)
        state = {"a.w": rng.normal(size=(5, 3)),
                 "a.b": rng.normal(size=(3,)).astype(np.float32),
                 "z": rng.normal(size=(2, 2))}
        with TensorArena() as arena:
            names = arena.publish_dict("sd", state)
            assert names == ["sd.a.w", "sd.a.b", "sd.z"]
            handle = arena.handle()
            for _, spec in handle.specs:
                assert spec.offset % ALIGN == 0
            with arena.view() as view:
                got = view.get_dict("sd")
                assert list(got) == list(state)
                for key, array in state.items():
                    assert np.array_equal(got[key], array)
                    assert got[key].dtype == array.dtype

    def test_duplicate_and_empty_publishes_rejected(self):
        with TensorArena() as arena:
            arena.publish("t", np.ones(2))
            with pytest.raises(ValueError):
                arena.publish("t", np.ones(2))
            with pytest.raises(ValueError):
                arena.publish_dict("p", {})

    def test_handle_is_small_and_picklable(self):
        with TensorArena() as arena:
            arena.publish("big", np.zeros((512, 512)))  # 2 MB published
            blob = pickle.dumps(arena.handle())
            assert len(blob) < 2048  # ... but the handle is metadata-sized
            restored = pickle.loads(blob)
            assert isinstance(restored, ArenaHandle)
            with restored.attach() as view:
                assert view.get("big").shape == (512, 512)

    def test_close_unlinks_and_is_idempotent(self):
        arena = TensorArena()
        arena.publish("t", np.ones(8))
        assert TensorArena.live_segments() != []
        handle = arena.handle()
        arena.close()
        arena.close()
        assert TensorArena.live_segments() == []
        with pytest.raises(FileNotFoundError):
            handle.attach().get("t")
        with pytest.raises(ValueError):
            arena.publish("u", np.ones(2))

    def test_unknown_tensor_raises_keyerror(self):
        with TensorArena() as arena:
            arena.publish("t", np.ones(2))
            with arena.view() as view:
                with pytest.raises(KeyError):
                    view.get("nope")
                with pytest.raises(KeyError):
                    view.get_dict("nope")


# ---------------------------------------------------------------------------
# WorkerPool — item functions must live at module level (they cross a pipe)
# ---------------------------------------------------------------------------


def _square(x):
    return x * x


def _mul_by_ctx_factor(x):
    return x * get_task_context()["factor"]


def _count_and_square(x):
    worker_obs().registry.counter("t.items").inc()
    return x * x


def _boom(x):
    raise ValueError(f"boom on {x}")


def _kill_first_attempt(x):
    ctx = get_task_context()
    if x == ctx["victim"] and not os.path.exists(ctx["flag"]):
        open(ctx["flag"], "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def _sleep_long(x):
    time.sleep(30)
    return x


def _count_then_kill_first_attempt(x):
    worker_obs().registry.counter("t.items").inc()
    ctx = get_task_context()
    if x == ctx["victim"] and not os.path.exists(ctx["flag"]):
        open(ctx["flag"], "w").close()
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


_ARENA_VIEW = None


def _attach_arena(handle):
    global _ARENA_VIEW
    _ARENA_VIEW = handle.attach()


def _sum_from_arena(name):
    tensor = _ARENA_VIEW.get(name)
    assert not tensor.flags.writeable
    return float(tensor.sum())


@needs_fork
class TestWorkerPool:
    def test_map_returns_ordered_results(self):
        items = list(range(23))
        with WorkerPool(3) as pool:
            assert pool.map_chunked(_square, items) == [x * x for x in items]

    def test_imap_yields_chunks_in_order(self):
        with WorkerPool(2) as pool:
            out = list(pool.imap_chunked(_square, list(range(10)),
                                         chunk_size=3))
        assert [index for index, _ in out] == [0, 1, 2, 3]
        assert [r for _, part in out for r in part] == \
            [x * x for x in range(10)]

    def test_empty_items_and_reuse(self):
        with WorkerPool(2) as pool:
            assert pool.map_chunked(_square, []) == []
            assert pool.map_chunked(_square, [4]) == [16]
            assert pool.map_chunked(_square, [5, 6]) == [25, 36]

    def test_task_context_is_fork_inherited(self):
        with task_context(factor=7):
            with WorkerPool(2) as pool:
                assert pool.map_chunked(_mul_by_ctx_factor, [1, 2, 3]) == \
                    [7, 14, 21]
        assert "factor" not in get_task_context()

    def test_arena_initializer_gives_workers_zero_copy_views(self):
        rng = np.random.default_rng(2)
        tensors = {f"t{i}": rng.normal(size=(50, 40)) for i in range(4)}
        with TensorArena() as arena:
            for name, array in tensors.items():
                arena.publish(name, array)
            with WorkerPool(2, initializer=_attach_arena,
                            initargs=(arena.handle(),)) as pool:
                sums = pool.map_chunked(_sum_from_arena, list(tensors))
        assert sums == [float(t.sum()) for t in tensors.values()]

    def test_worker_obs_ships_back_exactly_once(self):
        obs = Observability()
        items = list(range(20))
        with WorkerPool(3, obs=obs) as pool:
            pool.map_chunked(_count_and_square, items)
        snap = obs.registry.snapshot()
        assert snap["t.items"] == len(items)  # absorbed once, not per retry
        assert snap["parallel.maps"] == 1
        assert snap["parallel.items"] == len(items)
        assert snap["parallel.tasks_completed"] == snap["parallel.tasks"]
        assert snap["parallel.snapshots_absorbed"] >= 1

    def test_serial_fallback_records_into_caller_obs(self):
        obs = Observability()
        with task_obs(obs):
            results = [_count_and_square(x) for x in range(5)]
        assert results == [x * x for x in range(5)]
        assert obs.registry.snapshot()["t.items"] == 5
        # Outside any task scope, worker_obs is a throwaway handle.
        assert worker_obs() is not obs

    def test_exception_exhausts_retries_with_traceback(self):
        obs = Observability()
        with WorkerPool(2, max_retries=1, obs=obs) as pool:
            with pytest.raises(ParallelTaskError) as err:
                pool.map_chunked(_boom, [1, 2, 3], chunk_size=1)
        assert "boom on" in str(err.value)
        assert err.value.task_index is not None
        snap = obs.registry.snapshot()
        assert snap["parallel.task_errors"] >= 2  # initial + retry at least
        assert snap["parallel.task_retries"] >= 1

    def test_stale_attempt_done_is_discarded_not_accepted(self):
        # Regression: a retried task's *first* attempt finishing late (its
        # worker was presumed dead) must not be accepted as the result — the
        # contract is that only the live attempt's payload and obs export
        # count.  Forge the two wire messages the race produces.
        from collections import deque

        from repro.parallel.pool import _Task

        def export_with(value):
            obs = Observability()
            obs.registry.counter("t.regress").inc(value)
            return obs.export()

        obs = Observability()
        with WorkerPool(1, obs=obs) as pool:
            task = _Task(task_id=0, index=0, fn=_square, chunk=[3])
            task.attempts = 2  # a retry is the live attempt
            pool._active[0] = task
            pool._result_q.put(("done", 0, 0, 1, ["stale"], export_with(100)))
            pool._result_q.put(("done", 0, 0, 2, ["live"], export_with(1)))
            time.sleep(0.2)  # queue feeder thread flush
            completed = {}
            pool._drain_results(deque(), completed)
            assert completed == {0: ["live"]}
            assert obs.registry.snapshot()["t.regress"] == 1

    def test_done_racing_its_requeued_retry_drops_the_pending_copy(self):
        # Regression: a task whose worker was declared dead is requeued, but
        # the old attempt's done arrives before the retry is dispatched.
        # Accepting the done must also retire the pending copy, or the task
        # runs (and counts) twice.
        from collections import deque

        from repro.parallel.pool import _Task

        obs = Observability()
        with WorkerPool(1, obs=obs) as pool:
            task = _Task(task_id=0, index=0, fn=_square, chunk=[2])
            task.attempts = 1
            pool._active[0] = task
            pending = deque([task])
            pool._result_q.put(("done", 0, 0, 1, [4], None))
            time.sleep(0.2)
            completed = {}
            pool._drain_results(pending, completed)
            assert completed == {0: [4]}
            assert len(pending) == 0  # not re-dispatched after completing

    def test_kill_mid_task_counts_each_item_exactly_once(self, tmp_path):
        # Conservation across SIGKILL + retry: the killed attempt's partial
        # counts die with its registry; the successful attempt's snapshot is
        # absorbed exactly once, so the total equals the item count even
        # though the victim chunk ran (partially) twice.
        obs = Observability()
        items = list(range(12))
        with task_context(victim=5, flag=str(tmp_path / "killed")):
            with WorkerPool(3, obs=obs) as pool:
                results = pool.map_chunked(_count_then_kill_first_attempt,
                                           items, chunk_size=2)
        assert results == [x * x for x in items]
        snap = obs.registry.snapshot()
        assert snap["parallel.worker_respawns"] >= 1
        assert snap["t.items"] == len(items)

    def test_killed_worker_is_respawned_and_task_retried(self, tmp_path):
        obs = Observability()
        items = list(range(12))
        with task_context(victim=7, flag=str(tmp_path / "killed")):
            with WorkerPool(3, obs=obs) as pool:
                results = pool.map_chunked(_kill_first_attempt, items,
                                           chunk_size=2)
        assert results == [x * x for x in items]
        assert (tmp_path / "killed").exists()
        snap = obs.registry.snapshot()
        assert snap["parallel.worker_respawns"] >= 1
        assert snap["parallel.task_retries"] >= 1

    def test_timeout_kills_worker_and_fails_fast(self):
        obs = Observability()
        started = time.monotonic()
        with WorkerPool(2, task_timeout=0.4, max_retries=0, obs=obs) as pool:
            with pytest.raises(ParallelTaskError) as err:
                pool.map_chunked(_sleep_long, [1])
        assert time.monotonic() - started < 10.0
        assert "timeout" in err.value.cause
        assert obs.registry.snapshot()["parallel.task_timeouts"] >= 1

    def test_close_terminates_all_workers(self):
        pool = WorkerPool(3)
        processes = [slot.process for slot in pool._slots]
        pool.close()
        pool.close()  # idempotent
        assert all(not p.is_alive() for p in processes)
        with pytest.raises(ValueError):
            pool.map_chunked(_square, [1])

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
        with pytest.raises(ValueError):
            WorkerPool(1, max_retries=-1)
        with WorkerPool(1) as pool:
            with pytest.raises(ValueError):
                pool.map_chunked(_square, [1, 2], chunk_size=0)


def test_effective_workers_resolution():
    assert effective_workers(None) == 1
    assert effective_workers(0) == 1
    assert effective_workers(1) == 1
    if parallel_available():
        assert effective_workers(4) == 4


# ---------------------------------------------------------------------------
# Determinism: workers=4 must be bit-identical to the serial loop
# ---------------------------------------------------------------------------


def _non_pool_counters(obs):
    """Registry totals excluding the pool's own bookkeeping counters."""
    return {name: value for name, value in obs.registry.snapshot().items()
            if not name.startswith("parallel.")}


@pytest.fixture(scope="module")
def substrate():
    from repro.data.vocab import build_tokenizer
    from repro.nn.transformer import TransformerLM, preset_config

    tokenizer = build_tokenizer()
    config = preset_config("nano", vocab_size=tokenizer.vocab_size, seed=3)
    model = TransformerLM(config)
    model.eval()
    return model, tokenizer


@needs_fork
class TestDeterminism:
    def test_openroad_bit_identical(self, substrate):
        from repro.data.openroad_qa import eval_triplets
        from repro.eval.harness import LMAnswerer, run_openroad

        model, tokenizer = substrate
        answerer = LMAnswerer(model, tokenizer, max_new_tokens=16)
        triplets = eval_triplets()[:12]
        serial_obs, par_obs = Observability(), Observability()
        serial = run_openroad(answerer, triplets, obs=serial_obs)
        par = run_openroad(answerer, triplets, obs=par_obs, workers=4)
        assert par.responses == serial.responses
        assert par.references == serial.references
        assert par.by_category == serial.by_category
        assert par.overall == serial.overall
        assert _non_pool_counters(par_obs) == _non_pool_counters(serial_obs)

    def test_industrial_judge_scores_bit_identical(self, substrate):
        from repro.data.industrial_qa import eval_items
        from repro.eval.harness import LMAnswerer, run_industrial

        model, tokenizer = substrate
        answerer = LMAnswerer(model, tokenizer, max_new_tokens=16)
        items = eval_items()[:8]
        serial_obs, par_obs = Observability(), Observability()
        serial = run_industrial(answerer, items, obs=serial_obs)
        par = run_industrial(answerer, items, obs=par_obs, workers=4)
        assert par.verdicts == serial.verdicts  # judge scores included
        assert par.responses == serial.responses
        assert par.by_category == serial.by_category
        assert par.overall == serial.overall
        assert _non_pool_counters(par_obs) == _non_pool_counters(serial_obs)

    def test_industrial_multiturn_bit_identical(self, substrate):
        from repro.data.industrial_qa import multi_turn_items
        from repro.eval.harness import LMAnswerer, run_industrial_multiturn

        model, tokenizer = substrate
        answerer = LMAnswerer(model, tokenizer, max_new_tokens=16)
        items = multi_turn_items()[:6]
        serial = run_industrial_multiturn(answerer, items)
        par = run_industrial_multiturn(answerer, items, workers=4)
        assert par.verdicts == serial.verdicts
        assert par.responses == serial.responses
        assert par.overall == serial.overall

    def test_ifeval_bit_identical(self, substrate):
        from repro.data.ifeval_data import ifeval_prompts
        from repro.eval.ifeval.evaluator import evaluate_model

        model, tokenizer = substrate
        prompts = ifeval_prompts(n_prompts=8)
        serial = evaluate_model(model, tokenizer, prompts, max_new_tokens=12)
        par = evaluate_model(model, tokenizer, prompts, max_new_tokens=12,
                             workers=4)
        assert par == serial  # all four accuracies, frozen-dataclass equality

    def test_mcq_bit_identical(self, substrate):
        from repro.data.mcq import mcq_items
        from repro.eval.mcq_eval import evaluate_mcq

        model, tokenizer = substrate
        items = mcq_items()[:12]
        serial = evaluate_mcq(model, tokenizer, items)
        par = evaluate_mcq(model, tokenizer, items, workers=4)
        assert par.by_domain == serial.by_domain
        assert par.overall == serial.overall
