"""Optimizer and schedule tests."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, AdamW, CosineSchedule, clip_grad_norm
from repro.nn.tensor import Tensor


def quadratic_param(start=5.0):
    return Parameter(np.array([start]))


def step_quadratic(opt, p, n=100):
    for _ in range(n):
        opt.zero_grad()
        loss = (p * p).sum()
        loss.backward()
        opt.step()
    return float(p.data[0])


def test_sgd_converges_on_quadratic():
    p = quadratic_param()
    assert abs(step_quadratic(SGD([p], lr=0.1), p)) < 1e-3


def test_sgd_momentum_converges():
    p = quadratic_param()
    assert abs(step_quadratic(SGD([p], lr=0.05, momentum=0.9), p, n=300)) < 1e-2


def test_adam_converges():
    p = quadratic_param()
    assert abs(step_quadratic(Adam([p], lr=0.3), p, n=200)) < 1e-2


def test_adamw_decays_weights():
    # With zero gradient signal, AdamW's decoupled decay shrinks weights; Adam doesn't.
    p1, p2 = quadratic_param(1.0), quadratic_param(1.0)
    adamw = AdamW([p1], lr=0.01, weight_decay=0.5)
    adam = Adam([p2], lr=0.01)
    for _ in range(10):
        p1.grad = np.zeros_like(p1.data)
        p2.grad = np.zeros_like(p2.data)
        adamw.step()
        adam.step()
    assert p1.data[0] < 1.0
    assert p2.data[0] == pytest.approx(1.0)


def test_optimizer_skips_params_without_grad():
    p = quadratic_param(2.0)
    opt = SGD([p], lr=0.1)
    opt.step()  # no grad set
    assert p.data[0] == 2.0


def test_optimizer_validations():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)
    with pytest.raises(ValueError):
        SGD([quadratic_param()], lr=-1.0)


def test_adam_bias_correction_first_step():
    # After one step with constant gradient g, Adam moves by ~lr regardless of g scale.
    for g in (0.001, 1000.0):
        p = quadratic_param(0.0)
        opt = Adam([p], lr=0.1)
        p.grad = np.array([g], dtype=p.data.dtype)
        opt.step()
        assert p.data[0] == pytest.approx(-0.1, rel=1e-3)


class TestCosineSchedule:
    def test_warmup_then_decay(self):
        sched = CosineSchedule(1.0, total_steps=100, warmup_steps=10, min_lr=0.1)
        assert sched.lr_at(0) == pytest.approx(0.1)  # first warmup step
        assert sched.lr_at(9) == pytest.approx(1.0)
        assert sched.lr_at(99) == pytest.approx(0.1, abs=1e-2)
        mid = sched.lr_at(55)
        assert 0.1 < mid < 1.0

    def test_monotone_decay_after_warmup(self):
        sched = CosineSchedule(1.0, total_steps=50, warmup_steps=5)
        lrs = [sched.lr_at(s) for s in range(5, 50)]
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_apply_sets_optimizer_lr(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = CosineSchedule(0.5, total_steps=10, warmup_steps=0)
        lr = sched.apply(opt, 0)
        assert opt.lr == lr == pytest.approx(0.5)

    def test_validations(self):
        with pytest.raises(ValueError):
            CosineSchedule(1.0, total_steps=0)
        with pytest.raises(ValueError):
            CosineSchedule(1.0, total_steps=5, warmup_steps=5)


def test_clip_grad_norm():
    p1 = Parameter(np.zeros(3))
    p2 = Parameter(np.zeros(4))
    p1.grad = np.full(3, 3.0, dtype=p1.data.dtype)
    p2.grad = np.full(4, 4.0, dtype=p2.data.dtype)
    total = clip_grad_norm([p1, p2], max_norm=1.0)
    assert total == pytest.approx(np.sqrt(9 * 3 + 16 * 4))
    new_norm = np.sqrt((p1.grad ** 2).sum() + (p2.grad ** 2).sum())
    assert new_norm == pytest.approx(1.0, rel=1e-5)


def test_clip_grad_norm_noop_below_threshold():
    p = Parameter(np.zeros(2))
    p.grad = np.array([0.3, 0.4], dtype=p.data.dtype)
    clip_grad_norm([p], max_norm=10.0)
    assert np.allclose(p.grad, [0.3, 0.4])
