"""Network front door tests: protocol, admission policy, sockets, drain.

Policy layers (token bucket, weighted fair queueing, deadline propagation)
run on manual clocks — pure determinism, no sleeps.  Transport tests run
against a real :class:`NetServerThread` on an ephemeral 127.0.0.1 port:
byte identity with the in-process server, stream event ordering,
cancel/disconnect slot reclamation, slow-consumer shedding, and graceful
drain with a conservation check.
"""

import asyncio
import socket
import threading
import time

import pytest

from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.serve import InProcessServer, SamplingParams, ServeConfig
from repro.serve.loadgen import (WorkloadSpec, arrival_schedule,
                                 run_socket_workload, synthetic_prompts)
from repro.serve.net import (AdmissionController, NetClient, NetClientError,
                             NetServerConfig, NetServerThread, ProtocolError,
                             ShedError, TenantConfig, TokenBucket, protocol)
from repro.serve.net.server import _Connection
from repro.serve.request import Request


@pytest.fixture(scope="module")
def model():
    # Untrained random weights: generation is deterministic given seeds,
    # which is all the transport/policy layers care about.
    return TransformerLM(TransformerConfig(vocab_size=32, dim=16, n_layers=1,
                                           n_heads=2, max_seq_len=96, seed=0))


@pytest.fixture(scope="module")
def long_model():
    # Long context window so a 512-token request genuinely stays in flight
    # while a test cancels/disconnects/sheds it (with a short window it
    # would finish at the context bound before the interruption lands).
    return TransformerLM(TransformerConfig(vocab_size=32, dim=16, n_layers=1,
                                           n_heads=2, max_seq_len=1024,
                                           seed=0))


class ManualClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def _request(rid, n_prompt=4, max_new_tokens=8, deadline=None):
    return Request(request_id=rid, prompt_ids=tuple(range(1, 1 + n_prompt)),
                   params=SamplingParams(max_new_tokens=max_new_tokens),
                   deadline=deadline)


def _wait_until(cond, timeout=10.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(interval)
    return False


def _start_server(model, serve_config=None, net_config=None):
    handle = NetServerThread(
        model,
        serve_config=serve_config or ServeConfig(max_batch_size=4),
        net_config=net_config or NetServerConfig())
    handle.start()
    return handle


# ---------------------------------------------------------------------------
# wire protocol
# ---------------------------------------------------------------------------


def test_frame_roundtrip_and_parse_errors():
    frame = {"op": "submit", "id": "a", "prompt_ids": [1, 2], "tenant": "t"}
    assert protocol.parse_frame(protocol.encode_frame(frame)) == frame

    with pytest.raises(ProtocolError) as err:
        protocol.parse_frame(b"not json\n")
    assert err.value.code == protocol.E_PARSE
    with pytest.raises(ProtocolError):
        protocol.parse_frame(b"[1, 2]\n")  # not an object
    with pytest.raises(ProtocolError):
        protocol.parse_frame(b"x" * (protocol.MAX_FRAME_BYTES + 1))

    with pytest.raises(ProtocolError) as err:
        protocol.validate_op({"op": "reboot"})
    assert err.value.code == protocol.E_UNKNOWN_OP
    with pytest.raises(ProtocolError) as err:
        protocol.validate_op({"id": "x"})
    assert err.value.code == protocol.E_PROTOCOL


def test_validate_submit_rejections():
    ok = {"op": "submit", "id": "a", "prompt_ids": [1, 2]}
    assert protocol.validate_submit(dict(ok)) == ok

    bad = [
        {"op": "submit", "prompt_ids": [1]},               # no id
        {"op": "submit", "id": "a"},                       # no prompt
        {"op": "submit", "id": "a", "prompt_ids": []},     # empty
        {"op": "submit", "id": "a", "prompt_ids": [1, True]},
        {"op": "submit", "id": "a", "prompt": ""},
        {"op": "submit", "id": "a", "prompt_ids": [1], "params": 3},
        {"op": "submit", "id": "a", "prompt_ids": [1], "timeout_s": 0},
        {"op": "submit", "id": "a", "prompt_ids": [1], "timeout_s": -1.0},
        {"op": "submit", "id": "a", "prompt_ids": [1], "priority": "high"},
        {"op": "submit", "id": "a", "prompt_ids": [1], "tenant": ""},
    ]
    for frame in bad:
        with pytest.raises(ProtocolError):
            protocol.validate_submit(frame)


def test_shed_frame_rejects_unknown_code():
    with pytest.raises(ValueError):
        protocol.shed_frame("a", "walrus", 1.0)


# ---------------------------------------------------------------------------
# token bucket + weighted fair queueing (manual clock, no sleeps)
# ---------------------------------------------------------------------------


def test_token_bucket_burst_deplete_refill():
    clock = ManualClock()
    bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
    # Starts full: the whole burst is immediately spendable.
    for _ in range(3):
        ok, retry = bucket.try_take()
        assert ok and retry == 0.0
    ok, retry = bucket.try_take()
    assert not ok
    assert retry == pytest.approx(0.5)  # 1 token deficit at 2 tok/s
    clock.t += 0.5
    ok, _ = bucket.try_take()
    assert ok
    # Refill caps at burst even after a long idle gap.
    clock.t += 100.0
    assert bucket.tokens == pytest.approx(3.0)


def test_token_bucket_infinite_rate_never_sheds():
    bucket = TokenBucket(rate=float("inf"), burst=1, clock=ManualClock())
    assert all(bucket.try_take()[0] for _ in range(100))


def test_wfq_minority_not_stuck_behind_aggressor():
    """The fairness property, deterministically: 9 aggressor requests are
    queued ahead of 1 minority request at equal weights; WFQ releases the
    minority within the first two slots (solo it would be slot one — the
    2x TTFT bound holds by construction)."""
    clock = ManualClock()
    admission = AdmissionController(
        tenants=(TenantConfig(name="aggr"), TenantConfig(name="minor")),
        clock=clock, default_config=None)
    for i in range(9):
        assert admission.admit("aggr", _request(f"a{i}")).admitted
    assert admission.admit("minor", _request("m0")).admitted

    order = []
    while True:
        released = admission.next_batch(1)
        if not released:
            break
        order.append(released[0].request_id)
    assert order.index("m0") <= 1, (
        f"minority released at position {order.index('m0')}: {order}")
    assert len(order) == 10


def test_wfq_weights_bias_release_share():
    clock = ManualClock()
    admission = AdmissionController(
        tenants=(TenantConfig(name="heavy", weight=3.0, max_queue=128),
                 TenantConfig(name="light", weight=1.0, max_queue=128)),
        clock=clock, default_config=None, max_queue_total=1024)
    for i in range(80):
        assert admission.admit("heavy", _request(f"h{i}")).admitted
        assert admission.admit("light", _request(f"l{i}")).admitted
    first_40 = [r.request_id[0] for r in admission.next_batch(40)]
    # Weight 3 vs 1: about 3/4 of released slots go to the heavy tenant.
    assert 27 <= first_40.count("h") <= 33, first_40


def test_wfq_idle_tenant_banks_no_credit():
    """A tenant that was idle while others burned virtual time must not
    monopolise the release order when it comes back."""
    clock = ManualClock()
    admission = AdmissionController(
        tenants=(TenantConfig(name="busy"), TenantConfig(name="idle")),
        clock=clock, default_config=None, max_queue_total=1024)
    for i in range(50):
        assert admission.admit("busy", _request(f"b{i}")).admitted
    admission.next_batch(50)  # busy burns 50 requests of virtual time
    for i in range(4):
        assert admission.admit("busy", _request(f"B{i}")).admitted
        assert admission.admit("idle", _request(f"i{i}")).admitted
    release = [r.request_id[0] for r in admission.next_batch(8)]
    # Fair interleave, not 4 idle releases in a row.
    assert release[:2] != ["i", "i"], release
    assert release.count("i") == 4 and release.count("B") == 4


# ---------------------------------------------------------------------------
# admission: sheds, deadlines, conservation
# ---------------------------------------------------------------------------


def test_admission_rate_limit_sheds_with_retry_hint():
    clock = ManualClock()
    admission = AdmissionController(
        tenants=(TenantConfig(name="t", rate=1.0, burst=2),),
        clock=clock, default_config=None)
    assert admission.admit("t", _request("r0")).admitted
    assert admission.admit("t", _request("r1")).admitted
    decision = admission.admit("t", _request("r2"))
    assert not decision.admitted
    assert decision.shed_code == protocol.SHED_RATE_LIMITED
    assert decision.retry_after_s >= 0.05
    clock.t += 1.0  # one token refills
    assert admission.admit("t", _request("r2")).admitted


def test_admission_queue_bounds():
    clock = ManualClock()
    admission = AdmissionController(
        tenants=(TenantConfig(name="small", max_queue=2),
                 TenantConfig(name="other", max_queue=64)),
        clock=clock, default_config=None, max_queue_total=3)
    assert admission.admit("small", _request("s0")).admitted
    assert admission.admit("small", _request("s1")).admitted
    per_tenant = admission.admit("small", _request("s2"))
    assert not per_tenant.admitted
    assert per_tenant.shed_code == protocol.SHED_QUEUE_FULL
    assert admission.admit("other", _request("o0")).admitted
    global_bound = admission.admit("other", _request("o1"))
    assert not global_bound.admitted
    assert global_bound.shed_code == protocol.SHED_QUEUE_FULL
    assert global_bound.retry_after_s > 0


def test_admission_draining_and_unknown_tenant():
    admission = AdmissionController(clock=ManualClock(),
                                    default_config=None)
    refused = admission.admit("nobody", _request("r0"))
    assert not refused.admitted
    permissive = AdmissionController(clock=ManualClock())
    permissive.draining = True
    decision = permissive.admit("default", _request("r1"))
    assert not decision.admitted
    assert decision.shed_code == protocol.SHED_DRAINING


def test_deadline_propagation_clamps_and_defaults():
    clock = ManualClock(100.0)
    admission = AdmissionController(
        tenants=(TenantConfig(name="capped", max_timeout_s=5.0,
                              default_timeout_s=2.0),),
        clock=clock, default_config=None)

    def admitted_deadline(rid, timeout_s=None, deadline=None):
        decision = admission.admit("capped", _request(rid, deadline=deadline),
                                   timeout_s=timeout_s)
        assert decision.admitted
        return decision.deadline

    assert admitted_deadline("r0") == pytest.approx(102.0)       # default
    assert admitted_deadline("r1", timeout_s=1.0) == pytest.approx(101.0)
    assert admitted_deadline("r2", timeout_s=60.0) == pytest.approx(105.0)
    # An existing (earlier) absolute deadline is never extended.
    assert admitted_deadline("r3", timeout_s=4.0,
                             deadline=100.5) == pytest.approx(100.5)
    # The released request carries the propagated deadline.
    released = {r.request_id: r for r in admission.next_batch(4)}
    assert released["r1"].deadline == pytest.approx(101.0)


def test_admission_conservation_ledger():
    clock = ManualClock()
    admission = AdmissionController(clock=clock)
    for i in range(6):
        assert admission.admit("default", _request(f"r{i}")).admitted
    assert admission.cancel_queued("r5")
    released = admission.next_batch(8)
    assert [r.request_id for r in released] == [f"r{i}" for i in range(5)]
    admission.record_outcome("r0", "finished", tokens=8)
    admission.record_outcome("r1", "expired")
    admission.record_outcome("r2", "cancelled")
    assert admission.conservation_ok()
    snap = admission.snapshot()
    tenant = snap["tenants"]["default"]
    assert tenant["accepted"] == 6
    assert tenant["finished"] == 1 and tenant["expired"] == 1
    assert tenant["cancelled"] == 2  # one queued cancel + one released
    # Unknown outcomes don't corrupt the ledger.
    admission.record_outcome("ghost", "finished")
    assert admission.conservation_ok()


# ---------------------------------------------------------------------------
# sockets: byte identity, streaming, errors
# ---------------------------------------------------------------------------


SPEC = WorkloadSpec(n_requests=6, shared_prefix_tokens=10, unique_tokens=4,
                    max_new_tokens=8, vocab_size=30, seed=11)


def test_socket_byte_identity_with_in_process_server(model):
    """The acceptance gate: token streams over a real socket are
    byte-identical to InProcessServer.complete in exact mode."""
    config = ServeConfig(decode_mode="exact", prefix_cache=False,
                         max_batch_size=4)
    reference = InProcessServer(model, config=ServeConfig(
        decode_mode="exact", prefix_cache=False, max_batch_size=4))
    expected = []
    for i, prompt in enumerate(synthetic_prompts(SPEC)):
        completion = reference.complete(prompt, params=SamplingParams(
            max_new_tokens=SPEC.max_new_tokens, seed=SPEC.seed + i))
        expected.append(list(completion.token_ids))

    handle = _start_server(model, serve_config=config)
    try:
        result = run_socket_workload(handle.server.address, SPEC)
        assert result["n_errors"] == 0
        assert result["n_finished"] == SPEC.n_requests
        for record, want in zip(result["records"], expected):
            assert list(record["token_ids"]) == want
            assert record["streamed"] == want  # streamed == final
    finally:
        handle.drain()
        handle.stop()


def test_stream_event_ordering_and_multiplexing(model):
    """Interleaved streams on one connection: per-id indices are contiguous
    from 0 and the streamed tokens reassemble the final sequence."""
    handle = _start_server(model)
    host, port = handle.server.address
    try:
        with NetClient(host, port) as client:
            ids = [client.submit(prompt_ids=[1, 2 + i, 3],
                                 params={"max_new_tokens": 6,
                                         "seed": i},
                                 stream=True)
                   for i in range(3)]
            results = {cid: client.wait(cid) for cid in ids}
        for cid, result in results.items():
            assert result.ok
            tokens = [e for e in result.events if e.get("event") == "token"]
            assert [e["index"] for e in tokens] == list(range(len(tokens)))
            assert [e["token"] for e in tokens] == list(result.token_ids)
            assert result.ttft_s is not None and result.ttft_s >= 0
    finally:
        handle.drain()
        handle.stop()


def test_submit_without_stream_sends_no_token_events(model):
    handle = _start_server(model)
    host, port = handle.server.address
    try:
        with NetClient(host, port) as client:
            result = client.complete(prompt_ids=[1, 5, 3],
                                     params={"max_new_tokens": 4},
                                     stream=False)
        assert result.ok and len(result.token_ids) == 4
        assert not [e for e in result.events if e.get("event") == "token"]
    finally:
        handle.drain()
        handle.stop()


def test_protocol_errors_keep_connection_alive(model):
    handle = _start_server(model)
    host, port = handle.server.address
    try:
        with NetClient(host, port) as client:
            client._sock.sendall(b"this is not json\n")
            event = client.recv_event()
            assert event["event"] == "error"
            assert event["code"] == protocol.E_PARSE

            client.send_frame({"op": "reboot", "id": "x"})
            event = client.recv_event()
            assert event["code"] == protocol.E_UNKNOWN_OP

            client.send_frame({"op": "submit", "id": "y"})
            event = client.recv_event()
            assert event["code"] == protocol.E_PROTOCOL

            # Text prompts need a server-side tokenizer; this server has none.
            client.send_frame({"op": "submit", "id": "z", "prompt": "hi"})
            event = client.recv_event()
            assert event["event"] == "error"

            client.send_frame({"op": "submit", "id": "p", "prompt_ids": [1],
                               "params": {"max_new_tokens": -3}})
            event = client.recv_event()
            assert event["code"] == protocol.E_BAD_PARAMS

            # Duplicate in-flight id.
            first = client.submit(prompt_ids=[1, 2], stream=False,
                                  params={"max_new_tokens": 4},
                                  client_id="dup")
            client.send_frame({"op": "submit", "id": "dup",
                               "prompt_ids": [1, 2]})
            saw_duplicate = False
            for event in client.events_for("dup"):
                if (event.get("event") == "error"
                        and event.get("code") == protocol.E_DUPLICATE):
                    saw_duplicate = True
                    break
            assert saw_duplicate
            result = client.wait(first)
            assert result.ok

            # After all that abuse the connection still answers probes.
            assert client.health()["status"] in ("ok", "draining")
    finally:
        handle.drain()
        handle.stop()


def test_cancel_unknown_id_reports_not_found(model):
    handle = _start_server(model)
    host, port = handle.server.address
    try:
        with NetClient(host, port) as client:
            client.cancel("never-submitted")
            event = client.recv_event()
            assert event["event"] == "cancelled"
            assert event["found"] is False
    finally:
        handle.drain()
        handle.stop()


def test_timeout_over_socket_surfaces_expired(model):
    handle = _start_server(model)
    host, port = handle.server.address
    try:
        with NetClient(host, port) as client:
            result = client.complete(prompt_ids=[1, 2, 3],
                                     params={"max_new_tokens": 64},
                                     timeout_s=1e-4)
        assert result.status == "expired"
        assert result.finish_reason == "deadline"
    finally:
        handle.drain()
        handle.stop()


def test_rate_limit_shed_over_socket(model):
    net_config = NetServerConfig(
        default_tenant=TenantConfig(rate=0.001, burst=1))
    handle = _start_server(model, net_config=net_config)
    host, port = handle.server.address
    try:
        with NetClient(host, port) as client:
            first = client.complete(prompt_ids=[1, 2],
                                    params={"max_new_tokens": 2})
            assert first.ok
            with pytest.raises(ShedError) as err:
                client.complete(prompt_ids=[1, 2],
                                params={"max_new_tokens": 2})
            assert err.value.code == protocol.SHED_RATE_LIMITED
            assert err.value.retry_after_s > 0
    finally:
        handle.drain()
        handle.stop()


def test_health_and_metrics_verbs(model):
    handle = _start_server(model)
    host, port = handle.server.address
    try:
        with NetClient(host, port) as client:
            health = client.health()
            assert health["status"] == "ok"
            assert health["connections"] == 1
            metrics = client.server_metrics()
            assert "accounting" in metrics and "admission" in metrics
            assert metrics["accounting"]["conservation_ok"] == 1
    finally:
        handle.drain()
        handle.stop()


# ---------------------------------------------------------------------------
# cancellation, disconnects, slow consumers (slot-leak checks)
# ---------------------------------------------------------------------------


def _free_slots(handle):
    return len(handle.server.inner.engine._free_slots)


def test_cancel_over_socket_mid_stream_frees_slot(long_model):
    handle = _start_server(long_model)
    host, port = handle.server.address
    max_batch = handle.server.inner.config.max_batch_size
    try:
        with NetClient(host, port) as client:
            cid = client.submit(prompt_ids=[1, 2, 3],
                                params={"max_new_tokens": 64}, stream=True)
            events = client.events_for(cid)
            seen = 0
            for event in events:
                if event.get("event") == "token":
                    seen += 1
                    if seen == 2:
                        client.cancel(cid)
                if event.get("event") == "done":
                    assert event["status"] == "cancelled"
                    break
        assert _wait_until(lambda: _free_slots(handle) == max_batch)
        acct = handle.server.scheduler.accounting()
        assert acct["cancelled"] == 1 and acct["conservation_ok"] == 1
    finally:
        handle.drain()
        handle.stop()


def test_disconnect_mid_stream_cancels_and_frees_slot(long_model):
    """A client that vanishes mid-stream must not orphan its batch slot."""
    handle = _start_server(long_model)
    host, port = handle.server.address
    max_batch = handle.server.inner.config.max_batch_size
    try:
        client = NetClient(host, port)
        client.submit(prompt_ids=[1, 2, 3],
                      params={"max_new_tokens": 512}, stream=True)
        event = client.recv_event()
        assert event["event"] == "accepted"
        client.close()  # hang up with the stream mid-decode

        def cancelled_once():
            # The cancel lands in the scheduler if the request was already
            # released, else in the admission queue — either way the tenant
            # ledger records exactly one cancellation.
            snap = handle.server.admission.snapshot()
            return snap["tenants"]["default"]["cancelled"] == 1

        assert _wait_until(cancelled_once)
        assert _wait_until(lambda: _free_slots(handle) == max_batch)
        assert handle.server.scheduler.accounting()["conservation_ok"] == 1
        assert handle.server.admission.conservation_ok()
        # The server is still fully serviceable afterwards.
        with NetClient(host, port) as probe:
            result = probe.complete(prompt_ids=[4, 5],
                                    params={"max_new_tokens": 3})
            assert result.ok
    finally:
        handle.drain()
        handle.stop()


def test_outbox_bound_is_enforced():
    """Per-connection write buffering is bounded: when the peer stops
    reading, send() refuses new frames instead of growing without limit."""

    async def run():
        server_sock, client_sock = socket.socketpair()
        server_sock.setblocking(False)
        reader, writer = await asyncio.open_connection(sock=server_sock)
        conn = _Connection(writer, outbox_limit=4)
        conn.writer_task = asyncio.get_event_loop().create_task(
            conn.run_writer())
        big = protocol.error_frame("protocol", "x" * 200_000)
        accepted = 0
        for _ in range(64):
            if not conn.send(big):
                break
            accepted += 1
            await asyncio.sleep(0)  # let the writer block on drain()
        assert accepted < 64, "outbox never filled"
        assert conn.outbox.qsize() <= 4
        client_sock.close()
        conn.writer_task.cancel()
        try:
            await conn.writer_task
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass
        writer.close()

    asyncio.run(run())


def test_slow_consumer_shed_cancels_and_frees_slot(long_model):
    """The slow-consumer path end-to-end: the shed cancels the connection's
    live requests, frees their slots, and tells the client why."""
    handle = _start_server(long_model)
    host, port = handle.server.address
    max_batch = handle.server.inner.config.max_batch_size
    server = handle.server
    try:
        client = NetClient(host, port)
        client.submit(prompt_ids=[1, 2, 3],
                      params={"max_new_tokens": 512}, stream=True)
        assert client.recv_event()["event"] == "accepted"
        assert _wait_until(lambda: len(server._connections) == 1)
        conn = next(iter(server._connections.values()))
        handle._loop.call_soon_threadsafe(server._shed_slow_consumer, conn)

        saw_shed_error = False
        try:
            while True:
                event = client.recv_event()
                if (event.get("event") == "error"
                        and event.get("code") == protocol.E_SLOW_CONSUMER):
                    saw_shed_error = True
        except NetClientError:
            pass  # server closed the connection after the farewell frame
        assert saw_shed_error
        assert _wait_until(lambda: _free_slots(handle) == max_batch)
        assert _wait_until(lambda: (
            server.admission.snapshot()["tenants"]["default"]["cancelled"]
            == 1))
        assert server.scheduler.accounting()["conservation_ok"] == 1
        assert server.admission.conservation_ok()
        client.close()
    finally:
        handle.drain()
        handle.stop()


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------


def test_drain_finishes_in_flight_refuses_new_and_conserves(model):
    handle = _start_server(model)
    host, port = handle.server.address
    prompts = [[1, 2 + i, 3] for i in range(4)]
    accounting = {}
    try:
        with NetClient(host, port, io_timeout=60.0) as client:
            ids = [client.submit(prompt_ids=p, params={"max_new_tokens": 24})
                   for p in prompts]
            assert client.wait_accepted(ids) == ids
            drainer = threading.Thread(
                target=lambda: accounting.update(handle.drain()), daemon=True)
            drainer.start()
            shed_code = None
            for _ in range(200):
                try:
                    client.complete(prompt_ids=[1, 2],
                                    params={"max_new_tokens": 2})
                except ShedError as exc:
                    shed_code = exc.code
                    break
                except NetClientError:
                    break
            results = [client.wait(cid) for cid in ids]
            drainer.join(timeout=60.0)
        assert all(r.ok for r in results), [r.status for r in results]
        assert shed_code == protocol.SHED_DRAINING
        assert accounting["conservation_ok"] == 1
        assert accounting["queued"] == 0 and accounting["running"] == 0
        # The listener is closed: new connections are refused outright.
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2.0)
    finally:
        handle.stop()


def test_two_tenant_smoke_over_socket(model):
    """Two tenants with explicit contracts sharing one server: both finish
    their Poisson workloads with zero errors (the CI smoke shape)."""
    net_config = NetServerConfig(tenants=(
        TenantConfig(name="alpha", weight=1.0),
        TenantConfig(name="beta", weight=1.0)))
    handle = _start_server(model, net_config=net_config)
    try:
        spec = WorkloadSpec(n_requests=5, shared_prefix_tokens=8,
                            unique_tokens=4, max_new_tokens=5, vocab_size=30,
                            seed=2, arrival="poisson", arrival_rate_rps=200.0)
        outcomes = {}

        def drive(tenant):
            outcomes[tenant] = run_socket_workload(
                handle.server.address, spec, tenant=tenant)

        threads = [threading.Thread(target=drive, args=(t,), daemon=True)
                   for t in ("alpha", "beta")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60.0)
        for tenant in ("alpha", "beta"):
            assert outcomes[tenant]["n_finished"] == spec.n_requests
            assert outcomes[tenant]["n_errors"] == 0
            # Generous p99 TTFT bound: this is a smoke gate for CI boxes,
            # not the SLO benchmark (bench_net.py holds the tight one).
            assert outcomes[tenant]["ttft_p99_s"] < 10.0
        proto_errors = handle.server.obs.registry.counter(
            "serve.net.protocol_errors").value
        assert proto_errors == 0
        ledger = handle.drain()
        assert ledger["conservation_ok"] == 1
        snap = handle.server.admission.snapshot()
        assert snap["tenants"]["alpha"]["finished"] == spec.n_requests
        assert snap["tenants"]["beta"]["finished"] == spec.n_requests
    finally:
        handle.stop()


# ---------------------------------------------------------------------------
# arrival schedules (exportable / replayable)
# ---------------------------------------------------------------------------


def test_arrival_schedules_shapes_and_determinism():
    batch = WorkloadSpec(n_requests=5)
    assert arrival_schedule(batch) == (0.0,) * 5

    poisson = WorkloadSpec(n_requests=64, arrival="poisson",
                           arrival_rate_rps=100.0, seed=9)
    a1, a2 = arrival_schedule(poisson), arrival_schedule(poisson)
    assert a1 == a2
    assert all(b >= a for a, b in zip(a1, a1[1:]))  # non-decreasing
    mean_gap = a1[-1] / len(a1)
    assert 0.004 < mean_gap < 0.03  # ~1/rate on average

    bursty = WorkloadSpec(n_requests=7, arrival="bursty", burst_size=3,
                          burst_gap_s=0.5)
    assert arrival_schedule(bursty) == (0.0, 0.0, 0.0, 0.5, 0.5, 0.5, 1.0)

    # Changing the arrival process never perturbs the prompt stream.
    assert (synthetic_prompts(poisson)
            == synthetic_prompts(WorkloadSpec(n_requests=64, seed=9)))

    with pytest.raises(ValueError):
        WorkloadSpec(arrival="uniform")
    with pytest.raises(ValueError):
        WorkloadSpec(arrival="poisson", arrival_rate_rps=0)


def test_socket_workload_replays_explicit_arrivals(model):
    handle = _start_server(model)
    try:
        spec = WorkloadSpec(n_requests=3, shared_prefix_tokens=6,
                            unique_tokens=4, max_new_tokens=4, vocab_size=30,
                            seed=5, arrival="poisson", arrival_rate_rps=500.0)
        saved = arrival_schedule(spec)
        result = run_socket_workload(handle.server.address, spec,
                                     arrivals=saved)
        assert tuple(result["arrivals"]) == saved
        assert result["n_finished"] == 3
        with pytest.raises(ValueError):
            run_socket_workload(handle.server.address, spec,
                                arrivals=saved[:-1])
    finally:
        handle.drain()
        handle.stop()
