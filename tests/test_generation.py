"""Generation tests: greedy/sampled decoding and log-prob scoring."""

import numpy as np
import pytest

from repro.nn.generation import (continuation_logprob, generate, generate_text,
                                 sequence_logprob)
from repro.nn.tokenizer import WordTokenizer
from repro.nn.trainer import TrainConfig, Trainer
from repro.nn.transformer import TransformerConfig, TransformerLM


@pytest.fixture(scope="module")
def trained():
    """A tiny model memorising one sequence pattern."""
    config = TransformerConfig(vocab_size=20, dim=16, n_layers=1, n_heads=2,
                               max_seq_len=16, seed=0)
    model = TransformerLM(config)
    Trainer(model, pad_id=0, config=TrainConfig(epochs=40, batch_size=8, lr=3e-3)
            ).fit([[1, 7, 8, 9, 10, 2]] * 8)
    return model


def test_greedy_continues_pattern(trained):
    assert generate(trained, [1, 7], max_new_tokens=4) == [8, 9, 10, 2]


def test_eos_stops_generation(trained):
    out = generate(trained, [1, 7], max_new_tokens=10, eos_id=2)
    assert out == [8, 9, 10]


def test_max_new_tokens_respected(trained):
    assert len(generate(trained, [1, 7], max_new_tokens=2)) == 2


def test_empty_prompt_raises(trained):
    with pytest.raises(ValueError):
        generate(trained, [])


def test_negative_temperature_raises(trained):
    with pytest.raises(ValueError):
        generate(trained, [1], temperature=-1.0)


def test_sampling_deterministic_given_rng(trained):
    a = generate(trained, [1, 7], max_new_tokens=5, temperature=1.0,
                 rng=np.random.default_rng(3))
    b = generate(trained, [1, 7], max_new_tokens=5, temperature=1.0,
                 rng=np.random.default_rng(3))
    assert a == b


def test_generation_restores_training_mode(trained):
    trained.train()
    generate(trained, [1, 7], max_new_tokens=1)
    assert trained.training
    trained.eval()


def test_generate_text_roundtrip(trained):
    tok = WordTokenizer([f"w{i}" for i in range(16)])
    # ids: <pad>=0 <bos>=1 <eos>=2 <unk>=3 w0=4...; trained on ids 7,8,9,10
    text = generate_text(trained, tok, "w3", max_new_tokens=4)
    assert text.split()  # decodes to some non-special words


def test_sequence_logprob_prefers_trained_sequence(trained):
    good = sequence_logprob(trained, [1, 7, 8, 9, 10, 2])
    bad = sequence_logprob(trained, [1, 7, 10, 8, 9, 2])
    assert good > bad


def test_sequence_logprob_requires_two_tokens(trained):
    with pytest.raises(ValueError):
        sequence_logprob(trained, [1])


def test_continuation_logprob_consistency(trained):
    """Scoring a continuation equals the full-sequence score minus prompt."""
    full = sequence_logprob(trained, [1, 7, 8, 9])
    prompt_only = sequence_logprob(trained, [1, 7])
    continuation = continuation_logprob(trained, [1, 7], [8, 9])
    assert full == pytest.approx(prompt_only + continuation, abs=1e-4)


def test_continuation_logprob_empty_raises(trained):
    with pytest.raises(ValueError):
        continuation_logprob(trained, [1, 7], [])
