"""EDA knowledge-base tests: structural integrity of the synthetic world."""

import pytest

from repro.data.eda_domain import (BUGS, CIRCUIT_FACTS, COMMAND_BY_NAME,
                                   COMMANDS, FLOW_STAGES, GUI_PROCEDURES,
                                   STAGE_ORDER, all_documentation,
                                   bug_paragraph, command_paragraph,
                                   gui_paragraph, install_paragraph,
                                   stage_paragraph)
from repro.data.eda_domain import test_paragraph as render_testing_docs


def test_command_names_unique():
    names = [c.name for c in COMMANDS]
    assert len(names) == len(set(names))
    assert COMMAND_BY_NAME["global_place"].stage == "placement"


def test_every_command_stage_is_known():
    known = set(STAGE_ORDER) | {"analysis"}
    for cmd in COMMANDS:
        assert cmd.stage in known, cmd.name


def test_option_names_unique_within_command():
    for cmd in COMMANDS:
        opts = [o for o, _, _ in cmd.options]
        assert len(opts) == len(set(opts)), cmd.name


def test_command_paragraph_contains_all_facts():
    cmd = COMMAND_BY_NAME["global_place"]
    paragraph = command_paragraph(cmd)
    assert cmd.purpose in paragraph
    assert cmd.stage in paragraph
    for opt, role, default in cmd.options:
        assert role in paragraph
        assert default in paragraph


def test_stage_paragraph_orders_stages():
    paragraph = stage_paragraph()
    positions = [paragraph.index(f"the {name} stage") for name, _ in FLOW_STAGES]
    assert positions == sorted(positions)


def test_gui_paragraphs_enumerate_steps():
    for name, (goal, steps) in GUI_PROCEDURES.items():
        paragraph = gui_paragraph(name)
        assert goal in paragraph
        for step in steps:
            assert step in paragraph


def test_gui_paragraph_unknown_raises():
    with pytest.raises(KeyError):
        gui_paragraph("teleport the die")


def test_install_and_test_paragraphs():
    assert "clone the orflow repository" in install_paragraph()
    assert "test suites" in render_testing_docs()


def test_bug_paragraph_structure():
    paragraph = bug_paragraph(BUGS[0])
    assert BUGS[0].symptom in paragraph
    assert BUGS[0].cause in paragraph
    assert BUGS[0].fix in paragraph


def test_bug_ids_and_causes_unique():
    assert len({b.bug_id for b in BUGS}) == len(BUGS)
    assert len({b.cause for b in BUGS}) == len(BUGS)


def test_circuit_subjects_unique():
    assert len({f.subject for f in CIRCUIT_FACTS}) == len(CIRCUIT_FACTS)


def test_all_documentation_is_lowercase_closed_vocab():
    for doc in all_documentation():
        assert doc == doc.lower()
        assert doc.strip()


def test_all_documentation_covers_every_source():
    docs = all_documentation()
    assert len(docs) == (len(COMMANDS) + 1 + len(GUI_PROCEDURES) + 2
                         + len(BUGS) + len(CIRCUIT_FACTS))
