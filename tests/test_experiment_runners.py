"""Experiment-runner tests against the cached model zoo.

These exercise the same code paths as the benchmarks on reduced item
counts; the session-scoped zoo fixture loads cached checkpoints (or trains
them on first run).
"""

import numpy as np
import pytest

from repro.pipelines.experiment import (run_complexity, run_fig7, run_fig8,
                                        run_table1, run_table2, run_table3)


def test_complexity_runner_no_zoo():
    result = run_complexity(sizes=((16, 1), (32, 1), (48, 2)), repeats=2)
    assert len(result.param_counts) == 3
    assert result.param_counts == sorted(result.param_counts)
    assert all(s > 0 for s in result.seconds)
    assert 0.0 <= result.linear_fit_r2 <= 1.0
    assert "params" in result.table


def test_table1_runner(zoo):
    results = run_table1(families=("nano",), zoo=zoo, max_items=12)
    assert len(results) == 1
    result = results[0]
    assert result.family == "nano"
    # All expected rows and columns present.
    assert "nano-ChipAlign" in result.scores
    assert "GPT-4-sim" in result.scores
    for row in result.scores.values():
        assert set(row) == {"golden", "rag"}
        for cells in row.values():
            assert set(cells) == {"functionality", "vlsi_flow",
                                  "gui_install_test", "all"}
            assert all(0.0 <= v <= 1.0 for v in cells.values())
    assert "method" in result.table


def test_table2_runner(zoo):
    result = run_table2(zoo=zoo)
    assert len(result.scores) == 4
    for row in result.scores.values():
        assert set(row) == {"single", "multi"}
        assert 0.0 <= row["single"]["all"] <= 100.0


def test_table3_runner(zoo):
    result = run_table3(zoo=zoo, n_prompts=20)
    assert len(result.scores) == 6
    for row in result.scores.values():
        assert row["prompt_strict"] <= row["instruction_strict"] + 1.0
        assert 0.0 <= row["prompt_loose"] <= 1.0
        assert row["prompt_strict"] <= row["prompt_loose"] + 1e-9


def test_fig7_runner(zoo):
    result = run_fig7(zoo=zoo)
    assert set(result.scores) == {"Chat", "ChipNeMo", "ChipAlign"}
    for row in result.scores.values():
        assert set(row) == {"eda_scripts", "bugs", "circuits", "overall"}


def test_fig8_runner(zoo):
    result = run_fig8(families=("nano",), lams=(0.0, 0.5, 1.0), zoo=zoo,
                      max_items=9)
    assert result.lams == [0.0, 0.5, 1.0]
    assert len(result.scores["nano"]) == 3
    assert all(0.0 <= v <= 1.0 for v in result.scores["nano"])
