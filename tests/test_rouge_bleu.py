"""Metric tests: ROUGE-L and BLEU."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.bleu import corpus_bleu, modified_precision, sentence_bleu
from repro.eval.rouge import lcs_length, mean_rouge_l, rouge_l

SENTENCES = st.lists(st.sampled_from("a b c d e f g".split()), min_size=1, max_size=10)


class TestLCS:
    def test_known_value(self):
        assert lcs_length("a b c d".split(), "a c e d".split()) == 3

    def test_empty(self):
        assert lcs_length([], ["a"]) == 0
        assert lcs_length(["a"], []) == 0

    def test_identical(self):
        seq = "x y z".split()
        assert lcs_length(seq, seq) == 3

    def test_disjoint(self):
        assert lcs_length("a b".split(), "c d".split()) == 0

    @given(SENTENCES, SENTENCES)
    @settings(max_examples=60, deadline=None)
    def test_symmetry_and_bounds(self, a, b):
        lcs = lcs_length(a, b)
        assert lcs == lcs_length(b, a)
        assert 0 <= lcs <= min(len(a), len(b))


class TestRougeL:
    def test_identical_is_one(self):
        score = rouge_l("the cat sat", "the cat sat")
        assert score.fmeasure == pytest.approx(1.0)
        assert score.precision == score.recall == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        assert rouge_l("a b c", "x y z").fmeasure == 0.0

    def test_empty_strings(self):
        assert rouge_l("", "a b").fmeasure == 0.0
        assert rouge_l("a b", "").fmeasure == 0.0

    def test_precision_recall_definition(self):
        score = rouge_l("a b x", "a b c d")
        assert score.precision == pytest.approx(2 / 3)
        assert score.recall == pytest.approx(2 / 4)

    def test_beta_weights_recall(self):
        # Higher beta -> score closer to recall.
        low = rouge_l("a b x x x x", "a b", beta=0.5)
        high = rouge_l("a b x x x x", "a b", beta=3.0)
        assert high.fmeasure > low.fmeasure  # recall=1 here, precision=1/3

    def test_subsequence_not_substring(self):
        # LCS allows gaps: "a c" is a subsequence of "a b c".
        assert rouge_l("a c", "a b c").recall == pytest.approx(2 / 3)

    def test_mean_rouge(self):
        value = mean_rouge_l(["a b", "x"], ["a b", "x"])
        assert value == pytest.approx(1.0)
        with pytest.raises(ValueError):
            mean_rouge_l(["a"], ["a", "b"])
        with pytest.raises(ValueError):
            mean_rouge_l([], [])

    @given(SENTENCES)
    @settings(max_examples=40, deadline=None)
    def test_self_similarity_property(self, words):
        text = " ".join(words)
        assert rouge_l(text, text).fmeasure == pytest.approx(1.0)


class TestBleu:
    def test_identical_sentence(self):
        assert sentence_bleu("the cat sat on the mat", "the cat sat on the mat") \
            == pytest.approx(1.0, abs=0.05)

    def test_disjoint_scores_below_partial_match(self):
        # Smoothing keeps the score positive, but disjoint < partial < exact.
        disjoint = sentence_bleu("a b c d", "w x y z")
        partial = sentence_bleu("a b c d", "a b y z")
        exact = sentence_bleu("a b c d", "a b c d")
        assert disjoint < partial < exact

    def test_modified_precision_clipping(self):
        matches, total = modified_precision("the the the".split(), "the cat".split(), 1)
        assert matches == 1 and total == 3

    def test_brevity_penalty(self):
        long_ref = "a b c d e f g h"
        short_cand = "a b c"
        full_cand = "a b c d e f g h"
        assert sentence_bleu(short_cand, long_ref) < sentence_bleu(full_cand, long_ref)

    def test_corpus_bleu_identical(self):
        cands = ["a b c d", "e f g h"]
        assert corpus_bleu(cands, cands) == pytest.approx(1.0)

    def test_corpus_bleu_zero_when_no_fourgram(self):
        assert corpus_bleu(["a b"], ["a b"]) == 0.0  # no 4-grams exist

    def test_corpus_bleu_validation(self):
        with pytest.raises(ValueError):
            corpus_bleu(["a"], ["a", "b"])
        with pytest.raises(ValueError):
            corpus_bleu([], [])

    def test_empty_candidate(self):
        assert sentence_bleu("", "a b") == 0.0
