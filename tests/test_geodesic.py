"""Geodesic interpolation tests — the paper's Lemma III.2 and Section III-B.

Includes hypothesis property tests of the mathematical invariants:
endpoints, unit norm along the arc, geometric-mean norm restoration, and
symmetry between the two inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.geodesic import (frobenius_norm, geodesic_distance,
                                 geodesic_merge, project_to_sphere,
                                 restore_norm, slerp, sphere_angle)

finite = st.floats(-10, 10, allow_nan=False, allow_infinity=False)


def random_pair(seed=0, shape=(4, 5)):
    rng = np.random.default_rng(seed)
    return rng.normal(size=shape), rng.normal(size=shape)


class TestProjection:
    def test_unit_norm(self):
        w = np.random.default_rng(0).normal(size=(3, 7))
        unit, norm = project_to_sphere(w)
        assert frobenius_norm(unit) == pytest.approx(1.0)
        assert norm == pytest.approx(np.linalg.norm(w))
        assert np.allclose(unit * norm, w)

    def test_zero_matrix_rejected(self):
        with pytest.raises(ValueError):
            project_to_sphere(np.zeros((2, 2)))


class TestAngle:
    def test_identical_is_zero(self):
        w, _ = random_pair()
        unit, _ = project_to_sphere(w)
        assert sphere_angle(unit, unit) == pytest.approx(0.0, abs=1e-6)

    def test_orthogonal_is_half_pi(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert sphere_angle(a, b) == pytest.approx(np.pi / 2)

    def test_antipodal_is_pi(self):
        a = np.array([1.0, 0.0])
        assert sphere_angle(a, -a) == pytest.approx(np.pi)


class TestSlerp:
    def test_endpoints(self):
        a, b = random_pair(1)
        ua, _ = project_to_sphere(a)
        ub, _ = project_to_sphere(b)
        assert np.allclose(slerp(ua, ub, 1.0), ua, atol=1e-10)
        assert np.allclose(slerp(ua, ub, 0.0), ub, atol=1e-10)

    def test_stays_on_sphere(self):
        a, b = random_pair(2)
        ua, _ = project_to_sphere(a)
        ub, _ = project_to_sphere(b)
        for lam in np.linspace(0, 1, 11):
            assert frobenius_norm(slerp(ua, ub, float(lam))) == pytest.approx(1.0, abs=1e-9)

    def test_midpoint_equidistant(self):
        a, b = random_pair(3)
        ua, _ = project_to_sphere(a)
        ub, _ = project_to_sphere(b)
        mid = slerp(ua, ub, 0.5)
        assert sphere_angle(mid, ua) == pytest.approx(sphere_angle(mid, ub), abs=1e-8)

    def test_arc_additivity(self):
        """The angle from endpoint to slerp(λ) is proportional to λ."""
        a, b = random_pair(4)
        ua, _ = project_to_sphere(a)
        ub, _ = project_to_sphere(b)
        theta = sphere_angle(ua, ub)
        for lam in (0.25, 0.5, 0.75):
            point = slerp(ua, ub, lam)
            assert sphere_angle(point, ub) == pytest.approx(lam * theta, abs=1e-7)

    def test_near_parallel_falls_back_to_lerp(self):
        a = np.array([1.0, 0.0, 0.0])
        b = a + 1e-12
        b /= np.linalg.norm(b)
        out = slerp(a, b, 0.3)
        assert np.isfinite(out).all()
        assert frobenius_norm(out) == pytest.approx(1.0)

    def test_antipodal_raises(self):
        a = np.array([1.0, 0.0])
        with pytest.raises(ValueError):
            slerp(a, -a, 0.5)

    def test_lambda_bounds(self):
        a, b = random_pair(5)
        ua, _ = project_to_sphere(a)
        ub, _ = project_to_sphere(b)
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError):
                slerp(ua, ub, bad)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            slerp(np.ones(3) / np.sqrt(3), np.ones(4) / 2.0, 0.5)


class TestGeodesicMerge:
    def test_norm_is_geometric_mean(self):
        a, b = random_pair(6)
        for lam in (0.0, 0.3, 0.6, 1.0):
            merged = geodesic_merge(a, b, lam)
            expected = np.linalg.norm(a) ** lam * np.linalg.norm(b) ** (1 - lam)
            assert frobenius_norm(merged) == pytest.approx(expected, rel=1e-8)

    def test_endpoints_recover_inputs(self):
        a, b = random_pair(7)
        assert np.allclose(geodesic_merge(a, b, 1.0), a, atol=1e-8)
        assert np.allclose(geodesic_merge(a, b, 0.0), b, atol=1e-8)

    def test_both_zero(self):
        out = geodesic_merge(np.zeros((2, 2)), np.zeros((2, 2)), 0.6)
        assert np.array_equal(out, np.zeros((2, 2)))

    def test_one_zero_falls_back_to_linear(self):
        b = np.ones((2, 2))
        out = geodesic_merge(np.zeros((2, 2)), b, 0.6)
        assert np.allclose(out, 0.4 * b)
        out = geodesic_merge(b, np.zeros((2, 2)), 0.6)
        assert np.allclose(out, 0.6 * b)

    def test_one_zero_blend_is_not_the_formula_limit(self):
        """The linear blend is a pragmatic choice, NOT the continuous
        extension of the merge formula: as one input's norm shrinks toward
        zero, the geometric-mean rescale Norm_chip^λ·Norm_instruct^(1−λ)
        drives the formula's output to the zero tensor, while the fallback
        jumps to a non-vanishing blend of the surviving model."""
        b = np.ones((2, 2))
        rng = np.random.default_rng(0)
        direction = rng.normal(size=(2, 2))
        for eps in (1e-4, 1e-6, 1e-8):
            near_zero = eps * direction
            merged = geodesic_merge(near_zero, b, 0.6)
            # The formula's limit vanishes like eps^lam (≈1e-5 at eps=1e-8).
            assert frobenius_norm(merged) < 2.0 * eps ** 0.6 * frobenius_norm(
                direction) ** 0.6 * frobenius_norm(b) ** 0.4
        # The fallback at exactly zero does NOT vanish — the discontinuity
        # the docstring now states explicitly.
        fallback = geodesic_merge(np.zeros((2, 2)), b, 0.6)
        assert frobenius_norm(fallback) == pytest.approx(0.4 * frobenius_norm(b))

    def test_scale_invariance_of_direction(self):
        """Scaling an input changes the merged norm but not its direction."""
        a, b = random_pair(8)
        m1 = geodesic_merge(a, b, 0.6)
        m2 = geodesic_merge(3.0 * a, b, 0.6)
        u1, _ = project_to_sphere(m1)
        u2, _ = project_to_sphere(m2)
        assert np.allclose(u1, u2, atol=1e-8)

    def test_works_on_1d_and_3d(self):
        rng = np.random.default_rng(9)
        for shape in ((7,), (2, 3, 4)):
            a, b = rng.normal(size=shape), rng.normal(size=shape)
            assert geodesic_merge(a, b, 0.6).shape == shape


class TestRestoreNorm:
    def test_basic(self):
        unit = np.array([1.0, 0.0])
        out = restore_norm(unit, 2.0, 8.0, 0.5)
        assert frobenius_norm(out) == pytest.approx(4.0)  # sqrt(2*8)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            restore_norm(np.ones(2), 0.0, 1.0, 0.5)


def test_geodesic_distance_symmetry_and_range():
    a, b = random_pair(10)
    d = geodesic_distance(a, b)
    assert 0 <= d <= np.pi
    assert d == pytest.approx(geodesic_distance(b, a))


@given(arrays(np.float64, (3, 4), elements=finite),
       arrays(np.float64, (3, 4), elements=finite),
       st.floats(0, 1))
@settings(max_examples=60, deadline=None)
def test_merge_norm_property(a, b, lam):
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na < 1e-6 or nb < 1e-6:
        return  # degenerate cases covered by explicit tests
    if np.pi - sphere_angle(a / na, b / nb) < 1e-5:
        return  # antipodal: undefined geodesic
    merged = geodesic_merge(a, b, lam)
    expected = na ** lam * nb ** (1 - lam)
    assert frobenius_norm(merged) == pytest.approx(expected, rel=1e-6)


@given(arrays(np.float64, (6,), elements=finite), st.floats(0, 1))
@settings(max_examples=40, deadline=None)
def test_self_merge_is_identity_property(a, lam):
    if np.linalg.norm(a) < 1e-6:
        return
    merged = geodesic_merge(a, a, lam)
    assert np.allclose(merged, a, rtol=1e-6, atol=1e-9)
