"""Attention tests: causal masking, RoPE properties, shapes."""

import numpy as np
import pytest

from repro.nn.attention import (MultiHeadSelfAttention, apply_rope, causal_mask,
                                rope_cache)
from repro.nn.tensor import Tensor


def test_causal_mask_shape_and_structure():
    m = causal_mask(4)
    assert m.shape == (4, 4)
    assert not m[3].any() or m[0, 1]  # row 0 masks everything after itself
    assert m[0, 1] and m[0, 3]
    assert not m.diagonal().any()
    assert not m[3, :3].any()


def test_attention_output_shape():
    attn = MultiHeadSelfAttention(16, 4, seed=0)
    out = attn(Tensor(np.random.default_rng(0).normal(size=(2, 5, 16))))
    assert out.shape == (2, 5, 16)


def test_attention_dim_head_mismatch():
    with pytest.raises(ValueError):
        MultiHeadSelfAttention(10, 3)


def test_causality_future_tokens_do_not_affect_past():
    """Changing a future token must not change earlier positions' outputs."""
    attn = MultiHeadSelfAttention(8, 2, seed=0)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(1, 6, 8))
    out1 = attn(Tensor(x)).data.copy()
    x2 = x.copy()
    x2[0, 5] += 10.0  # perturb the last token
    out2 = attn(Tensor(x2)).data
    assert np.allclose(out1[0, :5], out2[0, :5], atol=1e-5)
    assert not np.allclose(out1[0, 5], out2[0, 5], atol=1e-3)


def test_rope_cache_shapes_and_first_position_identity():
    cos, sin = rope_cache(10, 8)
    assert cos.shape == (10, 8) and sin.shape == (10, 8)
    # At position 0 the rotation is the identity: cos=1, sin=0.
    assert np.allclose(cos[0], 1.0) and np.allclose(sin[0], 0.0)


def test_rope_requires_even_head_dim():
    with pytest.raises(ValueError):
        rope_cache(4, 5)


def test_rope_preserves_norm():
    cos, sin = rope_cache(12, 8)
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(2, 12, 8)))  # (H, T, Dh)
    rotated = apply_rope(x, cos[:12], sin[:12]).data
    assert np.allclose(np.linalg.norm(rotated, axis=-1),
                       np.linalg.norm(x.data, axis=-1), atol=1e-4)


def test_rope_relative_property():
    """q·k after RoPE depends only on relative offset, not absolute position."""
    head_dim = 8
    cos, sin = rope_cache(64, head_dim)
    rng = np.random.default_rng(1)
    q = rng.normal(size=head_dim)
    k = rng.normal(size=head_dim)

    def rotated_dot(pos_q, pos_k):
        tq = Tensor(q[None, None, :])
        tk = Tensor(k[None, None, :])
        rq = apply_rope(tq, cos[pos_q:pos_q + 1], sin[pos_q:pos_q + 1]).data[0, 0]
        rk = apply_rope(tk, cos[pos_k:pos_k + 1], sin[pos_k:pos_k + 1]).data[0, 0]
        return float(rq @ rk)

    assert rotated_dot(3, 1) == pytest.approx(rotated_dot(10, 8), abs=1e-4)
    assert rotated_dot(5, 5) == pytest.approx(rotated_dot(20, 20), abs=1e-4)


def test_attention_without_rope_is_permutation_sensitive_via_mask_only():
    """With rope=False and no positional encoding, attention output for the
    last token is invariant to permuting earlier tokens (bag-of-words)."""
    attn = MultiHeadSelfAttention(8, 2, seed=0, rope=False)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(1, 5, 8))
    out1 = attn(Tensor(x)).data[0, -1]
    perm = x.copy()
    perm[0, :4] = perm[0, [2, 0, 3, 1]]
    out2 = attn(Tensor(perm)).data[0, -1]
    assert np.allclose(out1, out2, atol=1e-5)


def test_attention_with_rope_is_position_sensitive():
    attn = MultiHeadSelfAttention(8, 2, seed=0, rope=True)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(1, 5, 8))
    out1 = attn(Tensor(x)).data[0, -1]
    perm = x.copy()
    perm[0, :4] = perm[0, [2, 0, 3, 1]]
    out2 = attn(Tensor(perm)).data[0, -1]
    assert not np.allclose(out1, out2, atol=1e-4)
