"""Autograd engine tests: op correctness and gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, cat, no_grad, stack, where
from tests.conftest import numeric_grad


def check_grad(build, *shapes, seed=0, tol=1e-5):
    """Compare autograd gradients to central differences for each input."""
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(size=s) for s in shapes]
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = build(*tensors)
    out.backward()
    for t, a in zip(tensors, arrays):
        def scalar():
            fixed = [Tensor(x) for x in arrays]
            return float(build(*fixed).data)
        # numeric grad perturbs the shared array `a` in place
        num = numeric_grad(scalar, a)
        assert np.allclose(t.grad, num, atol=tol), (
            f"max err {np.abs(t.grad - num).max()}")


@pytest.mark.usefixtures("float64")
class TestGradients:
    def test_add(self):
        check_grad(lambda a, b: (a + b).sum(), (3, 4), (3, 4))

    def test_add_broadcast(self):
        check_grad(lambda a, b: (a + b).sum(), (3, 4), (4,))

    def test_mul(self):
        check_grad(lambda a, b: (a * b).sum(), (2, 5), (2, 5))

    def test_mul_broadcast_scalar_axis(self):
        check_grad(lambda a, b: (a * b).sum(), (3, 4), (3, 1))

    def test_sub_div(self):
        check_grad(lambda a, b: (a / (b + 3.0) - a).sum(), (2, 3), (2, 3))

    def test_pow(self):
        check_grad(lambda a: (a ** 3.0).sum(), (4,))

    def test_matmul_2d(self):
        check_grad(lambda a, b: (a @ b).sum(), (3, 4), (4, 5))

    def test_matmul_batched(self):
        check_grad(lambda a, b: (a @ b).sum(), (2, 3, 4), (2, 4, 5))

    def test_matmul_broadcast_batch(self):
        check_grad(lambda a, b: (a @ b).sum(), (2, 3, 4), (4, 5))

    def test_sum_axis(self):
        check_grad(lambda a: a.sum(axis=1).sum(), (3, 4))

    def test_sum_keepdims(self):
        check_grad(lambda a: (a * a.sum(axis=-1, keepdims=True)).sum(), (3, 4))

    def test_mean(self):
        check_grad(lambda a: a.mean(axis=0).sum(), (3, 4))

    def test_max(self):
        check_grad(lambda a: a.max(axis=1).sum(), (3, 4))

    def test_reshape_transpose(self):
        check_grad(lambda a: a.reshape(4, 3).transpose(1, 0).sum(), (3, 4))

    def test_getitem_slice(self):
        check_grad(lambda a: a[1:, :2].sum(), (3, 4))

    def test_getitem_ellipsis(self):
        check_grad(lambda a: a[..., :2].sum(), (2, 3, 4))

    def test_exp_log(self):
        check_grad(lambda a: ((a * 0.1).exp().log()).sum(), (3, 3))

    def test_tanh(self):
        check_grad(lambda a: a.tanh().sum(), (3, 3))

    def test_sigmoid(self):
        check_grad(lambda a: a.sigmoid().sum(), (3, 3))

    def test_relu(self):
        check_grad(lambda a: (a + 0.3).relu().sum(), (5,), seed=3)

    def test_cat(self):
        check_grad(lambda a, b: cat([a, b], axis=1).sum(), (2, 3), (2, 2))

    def test_stack(self):
        check_grad(lambda a, b: (stack([a, b], axis=0) ** 2.0).sum(), (2, 3), (2, 3))

    def test_where(self):
        mask = np.array([[True, False, True]])
        check_grad(lambda a, b: where(mask, a, b).sum(), (2, 3), (2, 3))

    def test_var(self):
        check_grad(lambda a: a.var(axis=-1).sum(), (3, 5))

    def test_chained_graph_reuse(self):
        # A tensor used twice must accumulate both gradient contributions.
        check_grad(lambda a: (a * a + a).sum(), (3, 3))


class TestBasics:
    def test_requires_grad_propagates(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3))
        assert (a + b).requires_grad
        assert not (b + b).requires_grad

    def test_backward_nonscalar_raises(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2).backward()

    def test_no_grad_blocks_graph(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = a * 2 + 1
        assert not out.requires_grad
        assert out._prev == ()

    def test_detach(self):
        a = Tensor(np.ones(3), requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        assert np.shares_memory(d.data, a.data)

    def test_zero_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a.sum()).backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None

    def test_grad_accumulates_across_backwards(self):
        a = Tensor(np.ones(3), requires_grad=True)
        a.sum().backward()
        a.sum().backward()
        assert np.allclose(a.grad, 2.0)

    def test_item(self):
        assert Tensor(np.array([3.5])).item() == pytest.approx(3.5)

    def test_pow_non_scalar_raises(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(TypeError):
            a ** np.ones(3)

    def test_deep_graph_iterative_backward(self):
        # The topological sort is iterative, so deep chains must not hit the
        # Python recursion limit.
        a = Tensor(np.ones(2), requires_grad=True)
        x = a
        for _ in range(3000):
            x = x + 0.001
        x.sum().backward()
        assert np.allclose(a.grad, 1.0)


@given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_matmul_shapes_property(m, k, n):
    a = Tensor(np.ones((m, k)), requires_grad=True)
    b = Tensor(np.ones((k, n)), requires_grad=True)
    out = a @ b
    assert out.shape == (m, n)
    out.sum().backward()
    assert a.grad.shape == (m, k)
    assert b.grad.shape == (k, n)


@given(st.lists(st.floats(-5, 5), min_size=1, max_size=16))
@settings(max_examples=50, deadline=None)
def test_sum_matches_numpy_property(values):
    t = Tensor(np.array(values))
    assert np.isclose(t.sum().item(), np.float32(sum(np.float32(v) for v in values)),
                      rtol=1e-4, atol=1e-4)
