"""MCQ evaluator tests with a rigged model."""

import numpy as np
import pytest

from repro.data.mcq import MCQItem
from repro.eval.mcq_eval import MCQResult, choose, evaluate_mcq
from repro.nn.tokenizer import WordTokenizer
from repro.nn.trainer import TrainConfig, Trainer
from repro.nn.transformer import TransformerConfig, TransformerLM


@pytest.fixture(scope="module")
def rigged():
    """A tokenizer + model trained to strongly prefer one sentence."""
    tok = WordTokenizer("question : assistant the answer is alpha beta gamma delta which word wins".split())
    config = TransformerConfig(vocab_size=tok.vocab_size, dim=16, n_layers=1,
                               n_heads=2, max_seq_len=24, seed=0)
    model = TransformerLM(config)
    text = "question : which word wins assistant : the answer is alpha"
    seq = tok.encode(text, add_bos=True, add_eos=True)
    Trainer(model, pad_id=tok.pad_id,
            config=TrainConfig(epochs=40, batch_size=4, lr=3e-3)).fit([seq] * 6)
    return tok, model


def test_choose_prefers_trained_choice(rigged):
    tok, model = rigged
    item = MCQItem("which word wins",
                   ("the answer is beta", "the answer is alpha", "the answer is gamma"),
                   answer_idx=1, domain="eda_scripts")
    assert choose(model, tok, item) == 1


def test_evaluate_reports_by_domain(rigged):
    tok, model = rigged
    items = [
        MCQItem("which word wins", ("the answer is alpha", "the answer is beta"),
                0, "eda_scripts"),
        MCQItem("which word wins", ("the answer is delta", "the answer is alpha"),
                1, "bugs"),
    ]
    result = evaluate_mcq(model, tok, items)
    assert set(result.by_domain) == {"eda_scripts", "bugs"}
    assert result.overall == pytest.approx(1.0)


def test_empty_items_rejected(rigged):
    tok, model = rigged
    with pytest.raises(ValueError):
        evaluate_mcq(model, tok, [])


def test_length_normalisation_prevents_short_bias(rigged):
    """A longer correct continuation can beat a shorter wrong one."""
    tok, model = rigged
    item = MCQItem("which word wins",
                   ("beta", "the answer is alpha"), 1, "circuits")
    assert choose(model, tok, item) == 1


def test_mcq_result_overall():
    result = MCQResult({"a": 1.0, "b": 0.0})
    assert result.overall == pytest.approx(0.5)
