"""Module system tests: registration, traversal, state dicts."""

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.module import Module, ModuleList, Parameter


class Block(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, seed=0)
        self.fc2 = Linear(8, 2, seed=1)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x)) * self.scale


def test_named_parameters_order_and_names():
    block = Block()
    names = [n for n, _ in block.named_parameters()]
    assert names == ["scale", "fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]


def test_num_parameters():
    block = Block()
    expected = 1 + 4 * 8 + 8 + 8 * 2 + 2
    assert block.num_parameters() == expected


def test_state_dict_roundtrip():
    a, b = Block(), Block()
    b.load_state_dict(a.state_dict())
    for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
        assert np.array_equal(pa.data, pb.data)


def test_state_dict_is_a_copy():
    block = Block()
    state = block.state_dict()
    state["scale"][0] = 99.0
    assert block.scale.data[0] == 1.0


def test_load_state_dict_strict_missing_key():
    block = Block()
    state = block.state_dict()
    del state["scale"]
    with pytest.raises(KeyError):
        block.load_state_dict(state)


def test_load_state_dict_strict_unexpected_key():
    block = Block()
    state = block.state_dict()
    state["bogus"] = np.ones(3)
    with pytest.raises(KeyError):
        block.load_state_dict(state)


def test_load_state_dict_shape_mismatch():
    block = Block()
    state = block.state_dict()
    state["scale"] = np.ones(7)
    with pytest.raises(ValueError):
        block.load_state_dict(state)


def test_load_state_dict_non_strict_partial():
    block = Block()
    original = block.fc1.weight.data.copy()
    block.load_state_dict({"scale": np.array([5.0])}, strict=False)
    assert block.scale.data[0] == 5.0
    assert np.array_equal(block.fc1.weight.data, original)


def test_train_eval_recursive():
    block = Block()
    block.eval()
    assert not block.training and not block.fc1.training
    block.train()
    assert block.training and block.fc2.training


def test_zero_grad_clears_all():
    block = Block()
    from repro.nn.tensor import Tensor

    out = block(Tensor(np.ones((2, 4)))).sum()
    out.backward()
    assert block.fc1.weight.grad is not None
    block.zero_grad()
    assert all(p.grad is None for p in block.parameters())


def test_module_list():
    ml = ModuleList([Linear(2, 2, seed=i) for i in range(3)])
    assert len(ml) == 3
    assert ml[1] is list(ml)[1]
    names = [n for n, _ in ml.named_parameters()]
    assert "0.weight" in names and "2.bias" in names


def test_module_list_append_registers():
    ml = ModuleList()
    ml.append(Linear(2, 2, seed=0))
    assert len(list(ml.named_parameters())) == 2
