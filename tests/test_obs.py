"""Observability layer tests: registry, tracer, profiler, and the wired
subsystems — all on fake clocks, so every duration and counter value is
asserted exactly and nothing ever sleeps."""

import json

import numpy as np
import pytest

from repro.obs import (MAX_SPANS, MetricRegistry, Observability, Profiler,
                       Tracer, merge_snapshots, profiled, tensor_bytes)
from repro.serve.metrics import ServerMetrics


class FakeClock:
    """Every read advances by ``tick`` — deterministic span durations."""

    def __init__(self, tick=1.0):
        self.t = 0.0
        self.tick = tick

    def __call__(self):
        now = self.t
        self.t += self.tick
        return now


class SettableClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


# ---------------------------------------------------------------------------
# metric registry
# ---------------------------------------------------------------------------


def test_counter_is_monotonic():
    registry = MetricRegistry()
    counter = registry.counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)
    counter.set(9)
    with pytest.raises(ValueError):
        counter.set(3)
    # Same name returns the same instrument.
    assert registry.counter("c") is counter


def test_gauge_last_write_wins():
    gauge = MetricRegistry().gauge("g")
    gauge.set(2.5)
    gauge.set(-1.0)
    assert gauge.value == -1.0
    gauge.inc(0.5)
    assert gauge.value == -0.5


def test_histogram_buckets_and_summary():
    hist = MetricRegistry().histogram("h", buckets=(1.0, 10.0))
    for value in (0.5, 0.7, 5.0, 100.0):
        hist.observe(value)
    snap = hist.to_dict()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(106.2)
    assert snap["min"] == 0.5 and snap["max"] == 100.0
    assert snap["bounds"] == [1.0, 10.0]
    # Cumulative (Prometheus-style): <=1: 2, <=10: 3, +inf: 4.
    assert snap["cumulative"] == [2, 3, 4]


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ValueError):
        MetricRegistry().histogram("h", buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        MetricRegistry().histogram("h2", buckets=(1.0, 1.0))


def test_registry_name_type_conflicts_raise():
    registry = MetricRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")
    with pytest.raises(ValueError):
        registry.histogram("x")


def test_registry_snapshot_and_json_roundtrip():
    registry = MetricRegistry()
    registry.counter("a.count").inc(3)
    registry.gauge("a.gauge").set(1.5)
    registry.histogram("a.hist", buckets=(1.0,)).observe(0.2)
    snap = registry.snapshot()
    assert list(snap) == sorted(snap)  # deterministic ordering
    assert snap["a.count"] == 3 and snap["a.gauge"] == 1.5
    assert json.loads(registry.to_json()) == json.loads(
        json.dumps(snap))  # JSON-serialisable throughout


def test_registry_merge_adds_counters_and_histograms():
    a, b = MetricRegistry(), MetricRegistry()
    a.counter("n").inc(2)
    b.counter("n").inc(5)
    a.gauge("g").set(1.0)
    b.gauge("g").set(9.0)
    a.histogram("h", buckets=(1.0,)).observe(0.5)
    b.histogram("h", buckets=(1.0,)).observe(2.0)
    merged = a.merge(b)
    assert merged is a
    assert a.counter("n").value == 7
    assert a.gauge("g").value == 9.0  # later wins
    hist = a.histogram("h").to_dict()
    assert hist["count"] == 2 and hist["cumulative"] == [1, 2]


def test_merge_snapshots_function():
    a = {"tokens": 10, "lat": {"count": 1, "sum": 0.5, "mean": 0.5,
                               "min": 0.5, "max": 0.5, "bounds": [1.0],
                               "cumulative": [1, 1]}}
    b = {"tokens": 5, "lat": {"count": 1, "sum": 1.5, "mean": 1.5,
                              "min": 1.5, "max": 1.5, "bounds": [1.0],
                              "cumulative": [0, 1]}}
    merged = merge_snapshots([a, b])
    assert merged["tokens"] == 15
    assert merged["lat"]["count"] == 2
    assert merged["lat"]["mean"] == pytest.approx(1.0)
    assert merged["lat"]["cumulative"] == [1, 2]
    # Inputs were not mutated.
    assert a["lat"]["count"] == 1


def test_merge_snapshots_rejects_mismatched_bounds():
    hist = {"count": 1, "sum": 0.5, "mean": 0.5, "min": 0.5, "max": 0.5,
            "bounds": [1.0], "cumulative": [1, 1]}
    other = dict(hist, bounds=[2.0])
    with pytest.raises(ValueError):
        merge_snapshots([{"h": hist}, {"h": other}])


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------


def test_span_nesting_and_exact_durations():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer", kind="root"):
        with tracer.span("inner.a"):
            pass
        with tracer.span("inner.b"):
            pass
    assert len(tracer.roots) == 1
    outer = tracer.roots[0]
    assert outer.name == "outer"
    assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
    # FakeClock reads: outer.start=0, a=(1,2), b=(3,4), outer.end=5.
    assert outer.children[0].start == 1.0 and outer.children[0].end == 2.0
    assert outer.children[1].duration == 1.0
    assert outer.duration == 5.0
    assert outer.meta == {"kind": "root"}


def test_span_stack_unwinds_on_exception():
    tracer = Tracer(clock=FakeClock())
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise RuntimeError("boom")
    assert tracer.current is None
    # Both spans were still recorded, correctly nested.
    assert [span.name for _, span in tracer.walk()] == ["outer", "inner"]


def test_tracer_find_and_current():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("a"):
        assert tracer.current.name == "a"
        with tracer.span("b"):
            assert tracer.current.name == "b"
        with tracer.span("b"):
            pass
    assert tracer.current is None
    assert len(tracer.find("b")) == 2
    assert tracer.roots[0].find("b") == tracer.find("b")


def test_tracer_max_spans_cap_counts_drops():
    tracer = Tracer(clock=FakeClock(), max_spans=3)
    for _ in range(5):
        with tracer.span("s"):
            pass
    assert len(tracer.roots) == 3
    assert tracer.dropped == 2
    assert "2 spans dropped" in tracer.render()


def test_disabled_tracer_is_noop():
    tracer = Tracer(clock=FakeClock(), enabled=False)
    with tracer.span("ignored"):
        with tracer.span("ignored.child"):
            pass
    assert tracer.roots == []
    assert tracer.render() == ""
    # A disabled tracer never reads its clock.
    assert tracer.clock.t == 0.0


def test_render_shows_durations_meta_and_elision():
    tracer = Tracer(clock=FakeClock(tick=0.001))
    for i in range(6):
        with tracer.span("step", index=i):
            pass
    text = tracer.render(max_roots=4)
    assert "... 2 more root spans ..." in text
    assert "[index=0]" in text and "[index=5]" in text
    assert "[index=3]" not in text  # elided from the middle
    assert "1.000 ms" in text


def test_jsonl_export_has_paths_and_depths(tmp_path):
    tracer = Tracer(clock=FakeClock())
    with tracer.span("root"):
        with tracer.span("child", lam=0.5):
            pass
    records = [json.loads(line) for line in tracer.to_jsonl().splitlines()]
    assert [r["name"] for r in records] == ["root", "child"]
    assert records[1]["path"] == "root/child"
    assert records[1]["depth"] == 1
    assert records[1]["meta"] == {"lam": 0.5}
    assert records[1]["duration"] == 1.0
    path = tmp_path / "spans.jsonl"
    assert tracer.write_jsonl(path) == 2
    assert path.read_text().count("\n") == 2


def test_tracer_reset():
    tracer = Tracer(clock=FakeClock(), max_spans=1)
    for _ in range(3):
        with tracer.span("s"):
            pass
    tracer.reset()
    assert tracer.roots == [] and tracer.dropped == 0
    with tracer.span("fresh"):
        pass
    assert [root.name for root in tracer.roots] == ["fresh"]


# ---------------------------------------------------------------------------
# profiler
# ---------------------------------------------------------------------------


def test_tensor_bytes_walks_structures():
    arr = np.zeros((2, 3), dtype=np.float64)

    class Tensorish:
        data = np.zeros(4, dtype=np.float32)

    assert tensor_bytes(arr) == 48
    assert tensor_bytes({"a": arr, "b": [arr, arr]}) == 144
    assert tensor_bytes(Tensorish()) == 16
    assert tensor_bytes("not a tensor") == 0


def test_profiler_aggregates_calls():
    profiler = Profiler(clock=FakeClock())
    profiler.record("f", 0.25, nbytes=100)
    profiler.record("f", 0.75, nbytes=100)
    profiler.record("g", 1.0)
    snap = profiler.snapshot()
    assert snap["f"]["calls"] == 2
    assert snap["f"]["seconds"] == pytest.approx(1.0)
    assert snap["f"]["mean_seconds"] == pytest.approx(0.5)
    assert snap["f"]["max_seconds"] == pytest.approx(0.75)
    assert snap["f"]["bytes"] == 200
    assert "g" in profiler.report() and "call site" in profiler.report()


def test_profiled_decorator_with_explicit_profiler():
    profiler = Profiler(clock=FakeClock())

    @profiled("work", profiler=profiler)
    def work(n):
        return np.zeros(n)

    work(10)
    work(10)
    stat = profiler.snapshot()["work"]
    assert stat["calls"] == 2
    assert stat["seconds"] == 2.0  # one tick per call under FakeClock
    assert stat["bytes"] == 2 * 10 * 8


def test_profiled_decorator_resolves_self_obs():
    obs = Observability(clock=FakeClock())

    class Component:
        def __init__(self, obs):
            self.obs = obs

        @profiled("component.run")
        def run(self):
            return np.ones(3)

    Component(obs).run()
    assert obs.profiler.snapshot()["component.run"]["calls"] == 1
    # And the aggregate surfaces in the unified snapshot under profile.*.
    assert obs.snapshot()["profile.component.run"]["bytes"] == 24


# ---------------------------------------------------------------------------
# the unified handle
# ---------------------------------------------------------------------------


def test_observability_shares_one_clock():
    clock = FakeClock()
    obs = Observability(clock=clock)
    assert obs.clock is clock
    assert obs.tracer.clock is clock and obs.profiler.clock is clock


def test_observability_private_by_default():
    a, b = Observability(), Observability()
    a.registry.counter("n").inc()
    assert b.registry.snapshot() == {}
    assert a.registry is not b.registry and a.tracer is not b.tracer


def test_observability_report_sections():
    obs = Observability(clock=FakeClock())
    with obs.span("stage"):
        pass
    obs.registry.counter("n").inc(2)
    obs.profiler.record("f", 0.5)
    report = obs.report()
    assert "== span tree ==" in report
    assert "== metric registry ==" in report
    assert "== profiled call sites ==" in report
    assert '"n": 2' in report
    obs.reset()
    assert obs.tracer.roots == [] and obs.registry.snapshot() == {}


# ---------------------------------------------------------------------------
# busy-span accounting (regression: mid-span snapshots undercounted)
# ---------------------------------------------------------------------------


def test_busy_seconds_folds_open_span_without_closing_it():
    clock = SettableClock()
    metrics = ServerMetrics(max_batch_size=4, clock=clock)
    metrics.mark_busy(10.0)
    metrics.tokens_generated += 30
    clock.t = 13.0
    # Mid-burst snapshot: the open span counts...
    snap = metrics.snapshot()
    assert snap["busy_seconds"] == pytest.approx(3.0)
    assert snap["tokens_per_second"] == pytest.approx(10.0)
    # ...and is NOT closed: a later mark_idle accounts the full span
    # exactly once (no double count, no reset to zero).
    clock.t = 20.0
    metrics.mark_idle(20.0)
    assert metrics.busy_seconds == pytest.approx(10.0)
    assert metrics.snapshot()["tokens_per_second"] == pytest.approx(3.0)
    # Re-marking busy opens a new span from the new timestamp.
    metrics.mark_busy(25.0)
    clock.t = 26.0
    assert metrics.busy_seconds == pytest.approx(11.0)


def test_busy_seconds_with_explicit_now_and_no_clock():
    metrics = ServerMetrics(max_batch_size=1)
    metrics.mark_busy(0.0)
    # Without a clock or an explicit now, only the closed accumulation shows.
    assert metrics.busy_seconds == 0.0
    assert metrics.busy_seconds_at(4.0) == pytest.approx(4.0)
    assert metrics.snapshot(now=4.0)["busy_seconds"] == pytest.approx(4.0)
    metrics.mark_idle(6.0)
    assert metrics.busy_seconds == pytest.approx(6.0)


def test_server_metrics_attribute_api_is_registry_backed():
    registry = MetricRegistry()
    metrics = ServerMetrics(max_batch_size=2, registry=registry)
    metrics.tokens_generated += 5
    metrics.requests_submitted += 1
    metrics.record_ttft(0.003)
    assert registry.snapshot()["serve.tokens_generated"] == 5
    assert registry.snapshot()["serve.requests_submitted"] == 1
    assert registry.snapshot()["serve.ttft_s"]["count"] == 1
    assert metrics.tokens_generated == 5


# ---------------------------------------------------------------------------
# end-to-end: the wired subsystems under one fake clock
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def flow():
    from repro.obs.report import run_obs_flow

    obs, summary = run_obs_flow(obs=Observability(clock=FakeClock(tick=0.001)),
                                epochs=2, items=2, decode_tokens=4)
    return obs, summary


def test_obs_flow_span_tree_structure(flow):
    obs, _ = flow
    (root,) = obs.tracer.roots
    assert root.name == "obs_report.flow"
    assert [c.name for c in root.children] == [
        "obs_report.train", "obs_report.merge", "obs_report.serve",
        "obs_report.eval", "obs_report.rag"]
    # Exact nesting: train.fit holds one train.epoch per epoch.
    (fit,) = root.find("train.fit")
    assert [c.name for c in fit.children] == ["train.epoch", "train.epoch"]
    assert fit.meta == {"epochs": 2, "sequences": 8}
    # The merge stage planned once and evaluated once.
    assert len(root.find("merge.plan")) == 1
    (evaluate,) = root.find("merge.evaluate")
    assert evaluate.meta == {"lam": 0.6}
    # Serving: every decode step span carries the batch size, and the
    # prefill spans account cached-prefix reuse.
    decode_spans = root.find("serve.decode_step")
    assert decode_spans and all(s.meta["batch"] >= 1 for s in decode_spans)
    prefills = root.find("serve.prefill")
    assert len(prefills) == 4  # one per served prompt
    assert sum(s.meta["reused"] for s in prefills) > 0
    # Eval + RAG stages nested their per-item / per-phase spans.
    assert len(root.find("eval.openroad.item")) == 2
    for name in ("rag.dense", "rag.bm25", "rag.fuse", "rag.rerank"):
        assert len(root.find(name)) == 1, name


def test_obs_flow_registry_exact_counts(flow):
    obs, summary = flow
    snap = obs.registry.snapshot()
    assert snap["train.epochs"] == 2
    assert snap["train.steps"] == summary["train_steps"]
    assert snap["merge.plans"] == 1
    assert snap["merge.evaluations"] == 1
    assert snap["merge.tensors_merged"] == summary["merged_tensors"]
    # 2 endpoints x float64 x params processed in one evaluation.
    assert snap["merge.bytes_processed"] == 16 * snap["merge.params_planned"]
    assert snap["serve.requests_submitted"] == 4
    assert snap["serve.requests_finished"] == 4
    assert snap["serve.tokens_generated"] == summary["served_tokens"]
    assert snap["serve.ttft_s"]["count"] == 4
    assert snap["eval.openroad.items"] == 2
    assert snap["eval.openroad.rouge_l"] == summary["eval_rouge_l"]
    assert snap["rag.queries"] == 1


def test_obs_flow_is_deterministic_under_fake_clock():
    """Two runs under identical fake clocks produce byte-identical span
    trees and registry snapshots — the obs-report CLI contract."""
    from repro.obs.report import run_obs_flow

    def run():
        obs, _ = run_obs_flow(
            obs=Observability(clock=FakeClock(tick=0.001)),
            epochs=2, items=2, decode_tokens=4)
        return obs.tracer.to_jsonl(), obs.registry.to_json()

    assert run() == run()


# ---------------------------------------------------------------------------
# cross-process export/absorb (the parallel layer's snapshot protocol)
# ---------------------------------------------------------------------------


class TestExportAbsorb:
    def test_export_is_picklable_plain_data(self):
        import pickle

        obs = Observability()
        obs.registry.counter("c").inc(3)
        obs.registry.gauge("g").set(2.5)
        obs.registry.histogram("h", (1.0, 10.0)).observe(4.0)
        with obs.span("work", depth=1):
            pass
        exported = obs.export()
        restored = pickle.loads(pickle.dumps(exported))
        assert restored == exported
        assert restored["metrics"]["counters"]["c"] == 3

    def test_absorbing_same_snapshot_twice_counts_once(self):
        child = Observability()
        child.registry.counter("items").inc(7)
        child.registry.histogram("lat", (1.0, 2.0)).observe(1.5)
        exported = child.export()
        parent = Observability()
        assert parent.absorb(exported) is True
        assert parent.absorb(exported) is False  # idempotence guard
        snap = parent.registry.snapshot()
        assert snap["items"] == 7  # not 14
        assert snap["lat"]["count"] == 1

    def test_absorbing_distinct_children_accumulates(self):
        parent = Observability()
        for _ in range(3):
            child = Observability()
            child.registry.counter("items").inc(2)
            assert parent.absorb(child.export()) is True
        assert parent.registry.snapshot()["items"] == 6

    def test_registry_merge_same_registry_twice_is_noop(self):
        a, b = MetricRegistry(), MetricRegistry()
        b.counter("n").inc(5)
        a.merge(b)
        a.merge(b)  # keyed by b's uid: second merge is skipped
        assert a.snapshot()["n"] == 5

    def test_absorb_rejects_mismatched_histogram_bounds(self):
        child = Observability()
        child.registry.histogram("h", (1.0, 2.0)).observe(1.0)
        parent = Observability()
        parent.registry.histogram("h", (5.0, 6.0))
        with pytest.raises(ValueError):
            parent.absorb(child.export())

    def test_absorbed_spans_graft_under_open_span(self):
        child = Observability()
        with child.span("child.work"):
            pass
        parent = Observability()
        with parent.span("map"):
            parent.absorb(child.export())
        (root,) = parent.tracer.roots
        assert [s.name for s in root.children] == ["child.work"]

    def test_empty_export_has_no_instruments(self):
        exported = Observability().export()
        assert exported["metrics"]["counters"] == {}
        assert exported["spans"] == []
