"""Pipeline tests: pretrain/sft/daft recipes and the model zoo (tiny scale)."""

import numpy as np
import pytest

from repro.data.prompting import format_prompt
from repro.nn.tokenizer import WordTokenizer
from repro.nn.trainer import TrainConfig
from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.pipelines.daft import daft_lora, pretrain, sft, sft_lora, triplet_pairs


@pytest.fixture
def world():
    tok = WordTokenizer("context : question assistant the cat dog says woof meow answer".split())
    config = TransformerConfig(vocab_size=tok.vocab_size, dim=16, n_layers=1,
                               n_heads=2, max_seq_len=32, seed=0)
    return tok, TransformerLM(config)


def test_pretrain_reduces_loss(world):
    tok, model = world
    sentences = ["the cat says meow", "the dog says woof"] * 6
    result = pretrain(model, tok, sentences,
                      TrainConfig(lr=3e-3, epochs=10, batch_size=8))
    assert result.final_loss < result.losses[0]


def test_pretrain_empty_rejected(world):
    tok, model = world
    with pytest.raises(ValueError):
        pretrain(model, tok, [])


def test_sft_trains_response_behaviour(world):
    tok, model = world
    pairs = [(format_prompt("the cat says"), "meow"),
             (format_prompt("the dog says"), "woof")] * 6
    sft(model, tok, pairs, TrainConfig(lr=3e-3, epochs=25, batch_size=8))
    from repro.nn.generation import generate_text

    assert generate_text(model, tok, format_prompt("the cat says"),
                         max_new_tokens=2).startswith("meow")


def test_sft_skips_overflowing_pairs(world):
    tok, model = world
    long_prompt = " ".join(["question"] * 100)
    pairs = [(long_prompt, "meow"), (format_prompt("the cat says"), "meow")]
    result = sft(model, tok, pairs, TrainConfig(lr=1e-3, epochs=1, batch_size=2))
    assert result.steps >= 1


def test_sft_all_overflow_rejected(world):
    tok, model = world
    long_prompt = " ".join(["question"] * 100)
    with pytest.raises(ValueError):
        sft(model, tok, [(long_prompt, "meow")])


def test_sft_empty_rejected(world):
    tok, model = world
    with pytest.raises(ValueError):
        sft(model, tok, [])


def test_triplet_pairs_have_no_instruction_block(world):
    class T:
        context = "the cat says meow"
        question = "what does the cat say"
        answer = "meow"

    pairs = triplet_pairs([T()])
    assert len(pairs) == 1
    assert "instruction :" not in pairs[0][0]
    assert pairs[0][0].startswith("context :")


def test_sft_lora_folds_back_to_plain_model(world):
    tok, model = world
    keys_before = set(model.state_dict())
    pairs = [(format_prompt("the cat says"), "meow")] * 4
    sft_lora(model, tok, pairs, rank=2, alpha=4.0,
             config=TrainConfig(lr=3e-3, epochs=2, batch_size=4))
    assert set(model.state_dict()) == keys_before


def test_daft_lora_changes_projections_not_embeddings(world):
    tok, model = world

    class T:
        context = "the cat says meow"
        question = "what does the cat say"
        answer = "meow"

    emb_before = model.tok_emb.weight.data.copy()
    q_before = model.blocks[0].attn.q_proj.weight.data.copy()
    daft_lora(model, tok, [T()] * 4, rank=2, alpha=4.0,
              config=TrainConfig(lr=5e-3, epochs=3, batch_size=4))
    assert np.array_equal(model.tok_emb.weight.data, emb_before)
    assert not np.array_equal(model.blocks[0].attn.q_proj.weight.data, q_before)


class TestModelZoo:
    def test_zoo_validations(self, tmp_path):
        from repro.pipelines.model_zoo import ModelZoo

        zoo = ModelZoo(cache_dir=tmp_path)
        with pytest.raises(KeyError):
            zoo.get("mega", "base")
        with pytest.raises(KeyError):
            zoo.get("nano", "bogus")
        with pytest.raises(KeyError):
            zoo.get("nano", "chipnemo")
        with pytest.raises(KeyError):
            zoo.get("grande", "eda")

    def test_tokenizer_cached_to_disk(self, tmp_path):
        from repro.pipelines.model_zoo import ModelZoo

        zoo = ModelZoo(cache_dir=tmp_path)
        tok1 = zoo.tokenizer
        zoo2 = ModelZoo(cache_dir=tmp_path)
        assert zoo2.tokenizer.id_to_token == tok1.id_to_token

    def test_chip_variant_mapping(self):
        from repro.pipelines.model_zoo import CHIP_VARIANT

        assert CHIP_VARIANT == {"nano": "eda", "micro": "eda", "grande": "chipnemo"}

    def test_merged_key_normalizes_default_lambda(self):
        """Regression: the memo key used to be built from the raw kwargs
        while the merge consumed ``kwargs.get("lam", 0.6)``, so
        ``merged("eda")`` and ``merged("eda", lam=0.6)`` cached two copies
        of one model.  The canonical key fills the default in."""
        from repro.pipelines.model_zoo import ModelZoo

        key = ModelZoo._merged_key
        assert key("nano", "chipalign", {}) == \
            key("nano", "chipalign", {"lam": 0.6})
        # int/float spellings of one λ collapse too.
        assert key("nano", "chipalign", {"lam": 1}) == \
            key("nano", "chipalign", {"lam": 1.0})
        assert key("nano", "chipalign", {"lam": 0.3}) != \
            key("nano", "chipalign", {"lam": 0.6})
        # Non-chipalign methods (and chipalign with extra kwargs) keep
        # their kwargs verbatim — no normalization is defined for them.
        assert key("nano", "linear", {}) != key("nano", "linear", {"lam": 0.6})
        assert key("nano", "chipalign", {"lam": 0.6, "exclude": ("x",)}) != \
            key("nano", "chipalign", {"lam": 0.6})

    def test_merged_default_lambda_hits_explicit_cache_entry(self, zoo):
        assert zoo.merged("nano", "chipalign") is \
            zoo.merged("nano", "chipalign", lam=0.6)

    def test_merged_routes_through_cached_engine(self, zoo):
        """Plain-λ chipalign merges share one engine plan per family, and
        merged_sweep fills the same memo cache merged() reads."""
        engine = zoo.merge_engine("nano")
        assert zoo.merge_engine("nano") is engine  # cached per family
        single = zoo.merged("nano", "chipalign", lam=0.5)
        swept = zoo.merged_sweep("nano", [0.0, 0.5])
        assert swept[1] is single  # memo-cache hit, no re-merge
        # Sweep output matches an independent state-dict-level merge.
        from repro.core.merge import merge_state_dicts

        ref = merge_state_dicts(zoo.chip_model("nano").state_dict(),
                                zoo.get("nano", "instruct").state_dict(),
                                lam=0.5)
        single_sd = single.state_dict()
        for key in ref:
            assert np.allclose(single_sd[key], ref[key], rtol=1e-5,
                               atol=1e-7), key
