"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.nn.tensor import set_default_dtype


@pytest.fixture
def float64():
    """Run a test with float64 tensors (finite-difference gradient checks)."""
    set_default_dtype(np.float64)
    yield
    set_default_dtype(np.float32)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def zoo():
    """The shared model zoo (uses the on-disk checkpoint cache; training
    happens only if checkpoints are missing)."""
    from repro.pipelines.model_zoo import default_zoo

    return default_zoo()


@pytest.fixture(scope="session")
def tokenizer(zoo):
    return zoo.tokenizer


def numeric_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn at numpy array x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn()
        flat[i] = orig - eps
        lo = fn()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad
