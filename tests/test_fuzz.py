"""Hypothesis fuzzing across module boundaries: no crashes, invariants hold."""

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.registry import available_methods, merge
from repro.data.prompting import format_prompt
from repro.eval.judge import SCORE_LEVELS, ReferenceJudge
from repro.eval.rouge import rouge_l

finite = st.floats(-3, 3, allow_nan=False, allow_infinity=False)
small_array = arrays(np.float64, (3, 4), elements=finite)

WORDS = st.lists(st.sampled_from("the chip has four cores and a fast cache".split()),
                 min_size=0, max_size=10).map(" ".join)


@given(small_array, small_array, small_array,
       st.sampled_from(sorted(available_methods())))
@settings(max_examples=60, deadline=None)
def test_merge_methods_never_crash_and_preserve_shape(a, b, c, method):
    chip = OrderedDict(w=a)
    instruct = OrderedDict(w=b)
    base = OrderedDict(w=c)
    try:
        merged = merge(method, chip=chip, instruct=instruct, base=base)
    except ValueError:
        # Degenerate inputs (zero norms / antipodal) may be rejected — that
        # is a documented, typed failure, not a crash.
        return
    assert set(merged) == {"w"}
    assert merged["w"].shape == a.shape
    assert np.isfinite(merged["w"]).all()


@given(WORDS, WORDS, WORDS, WORDS)
@settings(max_examples=60, deadline=None)
def test_judge_always_returns_valid_scores(response, golden, context, question):
    judge = ReferenceJudge()
    verdict = judge.grade(response, golden, context, question)
    assert verdict.score in SCORE_LEVELS
    assert 0.0 <= verdict.coverage <= 1.0
    assert 0.0 <= verdict.grounding <= 1.0


@given(WORDS, WORDS)
@settings(max_examples=60, deadline=None)
def test_rouge_symmetric_bounds(a, b):
    score = rouge_l(a, b)
    assert 0.0 <= score.fmeasure <= 1.0
    assert 0.0 <= score.precision <= 1.0
    assert 0.0 <= score.recall <= 1.0
    # Recall of a in b equals precision of b in a (LCS symmetry).
    other = rouge_l(b, a)
    assert score.recall == pytest.approx(other.precision)


@given(WORDS, st.lists(WORDS, max_size=3), st.lists(st.tuples(WORDS, WORDS), max_size=2))
@settings(max_examples=60, deadline=None)
def test_format_prompt_always_ends_with_cue(question, instructions, history):
    prompt = format_prompt(question or "q", instructions=[i for i in instructions if i],
                           history=history)
    assert prompt.endswith("assistant :")
    assert "question :" in prompt


def _shared_zoo():
    from repro.pipelines.model_zoo import default_zoo

    return default_zoo()


@given(st.lists(st.integers(0, 800), min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_tokenizer_decode_never_crashes(ids):
    tok = _shared_zoo().tokenizer
    ids = [i % tok.vocab_size for i in ids]
    text = tok.decode(ids)
    assert isinstance(text, str)


# ---------------------------------------------------------------------------
# obs-aware server fuzzing: registry conservation invariants
# ---------------------------------------------------------------------------

#: One fuzzed request: (prompt, priority, deadline-offset-or-None, cancel?).
_REQUEST = st.tuples(
    st.lists(st.integers(1, 23), min_size=1, max_size=6),
    st.integers(0, 3),
    st.sampled_from((None, 1.5, 100.0)),
    st.booleans(),
)


def _fuzz_model():
    return _shared_zoo().get("nano", "base")


@given(st.lists(_REQUEST, min_size=1, max_size=8), st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_server_fuzz_registry_conservation(specs, max_batch):
    """Random request streams (priorities, deadlines, cancellations) must
    leave the metric registry conserved: every submitted request is
    accounted for exactly once, and the token counter equals the sum of
    completion lengths across *all* terminal states (cancelled and expired
    sequences keep their partial decodes)."""
    from repro.obs import Observability
    from repro.serve import InProcessServer, SamplingParams, ServeConfig

    class Clock:
        t = 0.0

        def __call__(self):
            return self.t

    clock = Clock()
    obs = Observability(clock=clock)
    server = InProcessServer(_fuzz_model(),
                             config=ServeConfig(max_batch_size=max_batch),
                             clock=clock, obs=obs)
    ids = []
    for prompt, priority, deadline, cancel in specs:
        rid = server.submit(prompt, params=SamplingParams(max_new_tokens=4),
                            priority=priority,
                            deadline=None if deadline is None
                            else clock.t + deadline)
        ids.append(rid)
        clock.t += 0.5
    server.step()  # admit a first wave so some cancellations hit running work
    for rid, (_, _, _, cancel) in zip(ids, specs):
        if cancel:
            # May return False if the request already finished or expired
            # during the first step — that is valid, not a lost request.
            server.cancel(rid)
    steps = 0
    while not server.idle:
        server.step()
        clock.t += 1.0  # eventually trips every finite deadline
        steps += 1
        assert steps < 1000, "scheduler failed to drain the fuzzed stream"

    snap = obs.registry.snapshot()
    completions = [server.result(rid) for rid in ids]
    assert all(c is not None for c in completions)
    assert snap["serve.requests_submitted"] == len(specs)
    assert (snap["serve.requests_finished"] + snap["serve.requests_expired"]
            + snap["serve.requests_cancelled"]) == len(specs)
    assert snap["serve.tokens_generated"] == sum(
        len(c.token_ids) for c in completions)
    assert snap["serve.prefill_tokens"] + snap["serve.cached_prefix_tokens"] \
        <= sum(len(prompt) for prompt, _, _, _ in specs)
    # The span tree mirrors the counters: one prefill span per admitted
    # request, one decode span per decode step.
    prefills = [span for _, span in obs.tracer.walk()
                if span.name == "serve.prefill"]
    decodes = [span for _, span in obs.tracer.walk()
               if span.name == "serve.decode_step"]
    assert len(decodes) == snap["serve.decode_steps"]
    assert len(prefills) <= len(specs)


@given(st.integers(1, 3), st.integers(1, 16))
@settings(max_examples=15, deadline=None)
def test_inference_engine_fuzz_parity(n_tokens, seed):
    """Random prompts: engine logits match autograd logits."""
    from repro.nn.infer import InferenceEngine

    zoo = _shared_zoo()
    model = zoo.get("nano", "base")
    engine = InferenceEngine(model)
    rng = np.random.default_rng(seed)
    ids = rng.integers(1, zoo.tokenizer.vocab_size, size=n_tokens * 4).tolist()
    ref = model(np.asarray(ids)[None, :]).data[0, -1]
    fast = engine.logits(ids)
    assert np.allclose(ref, fast, atol=2e-3), np.abs(ref - fast).max()
