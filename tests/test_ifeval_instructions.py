"""Verifiable-instruction tests: every checker, compliant-rewrite property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.ifeval.instructions import (ALL_KINDS, AvoidWord, EndWith,
                                            IncludeWord, MaxWords, MinWords,
                                            QuoteWrap, RepeatQuestion,
                                            StartWith, TwoParts,
                                            build_instruction, check_loose)

ANSWERS = st.lists(st.sampled_from("the sky is blue and grass is green now".split()),
                   min_size=1, max_size=12).map(" ".join)


class TestCheckers:
    def test_start_with(self):
        ins = StartWith("answer :")
        assert ins.check("answer : the sky is blue")
        assert not ins.check("the answer : is blue")
        assert not ins.check("answer")

    def test_end_with(self):
        ins = EndWith("done")
        assert ins.check("all good done")
        assert not ins.check("done early")
        assert not ins.check("")

    def test_include_word(self):
        ins = IncludeWord("clearly")
        assert ins.check("this is clearly true")
        assert not ins.check("this is clear")  # substring is not a word

    def test_avoid_word(self):
        ins = AvoidWord("maybe")
        assert ins.check("definitely yes")
        assert not ins.check("well maybe not")

    def test_max_words(self):
        ins = MaxWords(3)
        assert ins.check("one two three")
        assert not ins.check("one two three four")
        assert not ins.check("")  # empty response never complies

    def test_min_words(self):
        ins = MinWords(3)
        assert ins.check("a b c d")
        assert not ins.check("a b")

    def test_quote_wrap(self):
        ins = QuoteWrap()
        assert ins.check('" hello there "')
        assert not ins.check('hello "')
        assert not ins.check('" "')  # needs content between the quotes

    def test_two_parts(self):
        ins = TwoParts()
        assert ins.check("part one next part two")
        assert not ins.check("next at the start")
        assert not ins.check("ends with next")

    def test_repeat_question(self):
        ins = RepeatQuestion("what is the color of the sky")
        assert ins.check("what is the color of the sky it is blue")
        assert not ins.check("the sky is blue")
        assert not ins.check("what is the color of the sky")  # no answer after


class TestMakeCompliant:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("answer", ["the sky is blue",
                                        "a very long answer with many words in it indeed",
                                        "maybe"])
    def test_rewrite_passes_own_check(self, kind, answer):
        rng = np.random.default_rng(0)
        ins = build_instruction(kind, rng, question="what is the color of the sky")
        rewritten = ins.make_compliant(answer)
        assert ins.check(rewritten), (kind, rewritten)

    @given(ANSWERS, st.sampled_from(ALL_KINDS), st.integers(0, 100))
    @settings(max_examples=80, deadline=None)
    def test_rewrite_property(self, answer, kind, seed):
        rng = np.random.default_rng(seed)
        ins = build_instruction(kind, rng, question="how many days are in a week")
        assert ins.check(ins.make_compliant(answer))


class TestLoose:
    def test_strict_pass_implies_loose_pass(self):
        ins = EndWith("done")
        response = "fine done"
        assert ins.check(response) and check_loose(ins, response)

    def test_loose_forgives_trailing_decoration(self):
        ins = StartWith("answer :")
        response = '" answer : blue "'
        assert not ins.check(response)
        assert check_loose(ins, response)

    def test_loose_forgives_prefix(self):
        ins = EndWith("done")
        response = "note : it is blue done"
        assert ins.check(response)
        # Removing first word still passes.
        assert check_loose(ins, response)

    def test_loose_still_fails_genuine_violation(self):
        ins = EndWith("done")
        assert not check_loose(ins, "never finished properly")


def test_build_instruction_unknown_kind():
    with pytest.raises(KeyError):
        build_instruction("bogus", np.random.default_rng(0))


def test_repeat_question_requires_question():
    with pytest.raises(ValueError):
        build_instruction("repeat_question", np.random.default_rng(0))


def test_render_is_nonempty_for_all_kinds():
    rng = np.random.default_rng(0)
    for kind in ALL_KINDS:
        ins = build_instruction(kind, rng, question="q")
        assert ins.render().strip()
