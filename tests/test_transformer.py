"""Transformer LM tests: config, forward, cloning, presets."""

import numpy as np
import pytest

from repro.nn.transformer import TransformerConfig, TransformerLM, preset_config


@pytest.fixture
def tiny():
    return TransformerConfig(vocab_size=20, dim=16, n_layers=2, n_heads=2,
                             max_seq_len=12, seed=0)


def test_forward_shape(tiny):
    model = TransformerLM(tiny)
    out = model(np.array([[1, 2, 3], [4, 5, 6]]))
    assert out.shape == (2, 3, 20)


def test_forward_1d_input_promoted(tiny):
    model = TransformerLM(tiny)
    assert model(np.array([1, 2, 3])).shape == (1, 3, 20)


def test_sequence_too_long_raises(tiny):
    model = TransformerLM(tiny)
    with pytest.raises(ValueError):
        model(np.zeros((1, 13), dtype=np.int64))


def test_clone_is_independent(tiny):
    model = TransformerLM(tiny)
    copy = model.clone()
    out1 = model(np.array([[1, 2]])).data
    assert np.allclose(out1, copy(np.array([[1, 2]])).data)
    copy.tok_emb.weight.data += 1.0
    assert not np.allclose(out1, copy(np.array([[1, 2]])).data)


def test_deterministic_init(tiny):
    a, b = TransformerLM(tiny), TransformerLM(tiny)
    for (na, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
        assert np.array_equal(pa.data, pb.data), na


def test_different_seed_different_weights(tiny):
    a = TransformerLM(tiny)
    b = TransformerLM(TransformerConfig(**{**tiny.to_dict(), "seed": 1}))
    assert not np.array_equal(a.tok_emb.weight.data, b.tok_emb.weight.data)


def test_config_roundtrip(tiny):
    assert TransformerConfig.from_dict(tiny.to_dict()) == tiny


def test_invalid_pos_encoding():
    with pytest.raises(ValueError):
        TransformerLM(TransformerConfig(vocab_size=10, pos_encoding="bogus"))


def test_learned_positions_variant():
    config = TransformerConfig(vocab_size=10, dim=8, n_layers=1, n_heads=2,
                               max_seq_len=8, pos_encoding="learned", seed=0)
    model = TransformerLM(config)
    names = [n for n, _ in model.named_parameters()]
    assert "pos_emb.weight" in names
    assert model(np.array([[1, 2, 3]])).shape == (1, 3, 10)


def test_rope_variant_has_no_pos_embedding(tiny):
    model = TransformerLM(tiny)
    names = [n for n, _ in model.named_parameters()]
    assert "pos_emb.weight" not in names


def test_presets_exist_and_scale():
    nano = preset_config("nano", vocab_size=100)
    micro = preset_config("micro", vocab_size=100)
    grande = preset_config("grande", vocab_size=100)
    assert nano.dim < micro.dim < grande.dim
    assert TransformerLM(nano).num_parameters() < TransformerLM(grande).num_parameters()
    with pytest.raises(KeyError):
        preset_config("giga", vocab_size=100)


def test_gradients_reach_all_parameters(tiny):
    from repro.nn import functional as F

    model = TransformerLM(tiny)
    logits = model(np.array([[1, 2, 3, 4]]))
    loss = F.cross_entropy(logits, np.array([[2, 3, 4, 5]]))
    loss.backward()
    for name, p in model.named_parameters():
        assert p.grad is not None, name
        assert np.isfinite(p.grad).all(), name
