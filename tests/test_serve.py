"""Serving subsystem tests: engine parity, scheduling policy, caching."""

import numpy as np
import pytest

from repro.nn.infer import InferenceEngine
from repro.nn.trainer import TrainConfig, Trainer
from repro.nn.transformer import TransformerConfig, TransformerLM
from repro.serve import (BatchedEngine, InProcessServer, PrefixCachePool,
                         Request, RequestStatus, SamplingParams, Scheduler,
                         ServeConfig, SessionStore, WorkloadSpec,
                         common_prefix_length, run_serve_benchmark,
                         synthetic_prompts)
from repro.serve.request import FinishReason


@pytest.fixture(scope="module")
def model():
    config = TransformerConfig(vocab_size=24, dim=16, n_layers=2, n_heads=2,
                               max_seq_len=48, seed=0)
    m = TransformerLM(config)
    Trainer(m, pad_id=0, config=TrainConfig(epochs=25, batch_size=8, lr=3e-3)
            ).fit([[1, 7, 8, 9, 10, 11, 2], [1, 5, 6, 5, 6, 2]] * 4)
    return m


@pytest.fixture(scope="module")
def engine(model):
    return InferenceEngine(model)


class ManualClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def _exact_server(model, **kwargs):
    kwargs.setdefault("max_batch_size", 4)
    return InProcessServer(model, config=ServeConfig(
        decode_mode="exact", prefix_cache=False, **kwargs))


# ---------------------------------------------------------------------------
# batched engine parity
# ---------------------------------------------------------------------------


MIXED_PROMPTS = ([1, 7], [1, 5, 6, 5], [1, 7, 8, 9, 10], [1, 5],
                 [1, 9, 10, 11], [1, 7, 8])


def test_exact_mode_token_parity_mixed_lengths(model, engine):
    """Exact decode mode replays the single-sequence math: identical tokens
    even with mixed prompt lengths interleaved in one batch."""
    ref = [engine.generate(p, max_new_tokens=8, eos_id=2)
           for p in MIXED_PROMPTS]
    server = _exact_server(model)
    server.scheduler.eos_id = 2
    ids = [server.submit(p, params=SamplingParams(max_new_tokens=8))
           for p in MIXED_PROMPTS]
    server.run_until_idle()
    for rid, expected in zip(ids, ref):
        assert list(server.result(rid).token_ids) == expected


def test_exact_mode_parity_with_sampling(model, engine):
    """Stochastic sampling also agrees: per-request seeded RNGs mirror the
    serial engine's RNG stream draw-for-draw."""
    ref = [engine.generate(p, max_new_tokens=8, temperature=0.8, eos_id=2,
                           rng=np.random.default_rng(100 + i))
           for i, p in enumerate(MIXED_PROMPTS)]
    server = _exact_server(model)
    server.scheduler.eos_id = 2
    ids = [server.submit(p, params=SamplingParams(max_new_tokens=8,
                                                  temperature=0.8,
                                                  seed=100 + i))
           for i, p in enumerate(MIXED_PROMPTS)]
    server.run_until_idle()
    for rid, expected in zip(ids, ref):
        assert list(server.result(rid).token_ids) == expected


def test_fused_mode_agrees_on_trained_model(model, engine):
    """Fused decode is float-tolerance equivalent; on a trained model with
    separated logits it produces the same greedy tokens."""
    ref = [engine.generate(p, max_new_tokens=8, eos_id=2)
           for p in MIXED_PROMPTS]
    server = InProcessServer(model, config=ServeConfig(
        decode_mode="fused", prefix_cache=False, max_batch_size=6), eos_id=2)
    ids = [server.submit(p, params=SamplingParams(max_new_tokens=8))
           for p in MIXED_PROMPTS]
    server.run_until_idle()
    for rid, expected in zip(ids, ref):
        assert list(server.result(rid).token_ids) == expected


def test_fused_slot_reuse_across_generations(model, engine):
    """Slots freed by finished sequences are safely reused by later ones."""
    server = InProcessServer(model, config=ServeConfig(
        decode_mode="fused", prefix_cache=False, max_batch_size=2), eos_id=2)
    for wave in range(3):
        ids = [server.submit(p, params=SamplingParams(max_new_tokens=6))
               for p in MIXED_PROMPTS[:4]]
        server.run_until_idle()
        for rid, prompt in zip(ids, MIXED_PROMPTS[:4]):
            expected = engine.generate(prompt, max_new_tokens=6, eos_id=2)
            assert list(server.result(rid).token_ids) == expected, wave


def test_batched_engine_rejects_overflow(model):
    eng = BatchedEngine(model, max_batch_size=1)
    caches = eng.new_caches()
    eng.prefill([1, 7], caches)
    eng.bind(caches)
    caches2 = eng.new_caches()
    eng.prefill([1, 5], caches2)
    with pytest.raises(RuntimeError):
        eng.bind(caches2)


# ---------------------------------------------------------------------------
# differential parity sweep: exact vs fused decode
# ---------------------------------------------------------------------------


PARITY_BATCH_SIZES = (1, 3, len(MIXED_PROMPTS))
PARITY_SAMPLERS = (
    ("greedy", {}),
    ("top_k", {"temperature": 0.8, "top_k": 3}),
    ("top_p", {"temperature": 0.9, "top_p": 0.85}),
)
#: Long shared prefix (>= prefix_min_tokens) so the cached variant takes the
#: prefix-cache *hit* path; MIXED_PROMPTS share only the BOS token, so their
#: cached variant exercises the *miss* path.
PARITY_SHARED_PROMPTS = tuple((1, 7, 8, 9, 10, 11) + (t,)
                              for t in (7, 8, 9, 5, 6, 10))


def _parity_burst(model, prompts, decode_mode, prefix_cache, batch, kwargs):
    server = InProcessServer(model, config=ServeConfig(
        decode_mode=decode_mode, prefix_cache=prefix_cache,
        prefix_min_tokens=4, max_batch_size=batch), eos_id=2)
    ids = [server.submit(p, params=SamplingParams(max_new_tokens=8,
                                                  seed=300 + i, **kwargs))
           for i, p in enumerate(prompts)]
    server.run_until_idle()
    outs = [list(server.result(r).token_ids) for r in ids]
    return outs, server.metrics_snapshot()


@pytest.mark.parametrize("batch", PARITY_BATCH_SIZES)
@pytest.mark.parametrize("sampler,kwargs", PARITY_SAMPLERS,
                         ids=[name for name, _ in PARITY_SAMPLERS])
def test_differential_exact_vs_fused_parity(model, batch, sampler, kwargs):
    """Differential sweep: fused decode must be token-identical to exact
    decode for every batch size x sampler x prefix-cache combination.

    Exact mode replays the single-sequence math and is the ground truth;
    fused mode shares one batched forward, so this pins down the claim that
    its float-tolerance drift never flips a sampled token on a trained
    model.  Sampled runs draw from per-request seeded RNGs, so the streams
    are comparable draw-for-draw across modes.
    """
    for prompts, want_hits in ((MIXED_PROMPTS, False),
                               (PARITY_SHARED_PROMPTS, True)):
        exact_uncached, _ = _parity_burst(
            model, prompts, "exact", False, batch, kwargs)
        results = {}
        for mode in ("exact", "fused"):
            results[mode], snap = _parity_burst(
                model, prompts, mode, True, batch, kwargs)
            if want_hits:
                assert snap["cached_prefix_tokens"] > 0, (mode, batch, sampler)
            else:
                assert snap["cached_prefix_tokens"] == 0, (mode, batch, sampler)
        # Fused == exact under identical cache behaviour, and the cache
        # itself never changes tokens relative to the uncached ground truth.
        assert results["fused"] == results["exact"], (batch, sampler)
        assert results["exact"] == exact_uncached, (batch, sampler)
        # The sweep must exercise real decodes, not a wall of instant-EOS
        # completions.
        assert sum(len(out) for out in results["exact"]) >= len(prompts)


# ---------------------------------------------------------------------------
# prefix cache
# ---------------------------------------------------------------------------


def test_common_prefix_length():
    assert common_prefix_length((1, 2, 3), (1, 2, 4)) == 2
    assert common_prefix_length((), (1,)) == 0
    assert common_prefix_length((5, 6), (5, 6)) == 2


def test_prefix_pool_lookup_and_eviction():
    pool = PrefixCachePool(max_entries=2, min_match_tokens=2)
    kv = [(np.ones((2, 4, 3)), np.ones((2, 4, 3)))]
    pool.insert((1, 2, 3, 4), kv)
    match, entry = pool.lookup((1, 2, 3, 9))
    assert match == 3
    assert entry.length == 4  # the stored entry covers its whole key
    assert entry.materialize(match)[0][0].shape[1] == 3
    # Too-short matches are rejected.
    match, entry = pool.lookup((1, 9, 9, 9))
    assert match == 0 and entry is None
    # LRU eviction at capacity.
    pool.insert((5, 6, 7, 8), kv)
    pool.insert((9, 10, 11, 12), kv)
    assert len(pool) == 2


def test_prefix_pool_prunes_subsumed_entries():
    """Inserting a longer prompt reclaims the capacity of stored entries
    that are strict prefixes of it — they can never out-match it."""
    pool = PrefixCachePool(max_entries=2, min_match_tokens=2)
    kv = [(np.ones((2, 8, 3)), np.ones((2, 8, 3)))]
    pool.insert((1, 2, 3), kv)
    pool.insert((1, 2, 3, 4, 5), kv)
    assert len(pool) == 1  # the (1, 2, 3) entry was subsumed
    # The reclaimed slot fits an unrelated prompt without evicting the
    # longer entry...
    pool.insert((7, 8, 9), kv)
    assert len(pool) == 2
    # ...and lookups the short entry used to serve still hit, through the
    # longer entry.
    match, entry = pool.lookup((1, 2, 3, 9))
    assert match == 3
    assert entry.materialize(match)[0][0].shape[1] == 3


def test_subsumed_insert_refreshes_subsuming_entry_lru_clock():
    """Regression: the early return for a prefix-subsumed insert must count
    as a *use* of the subsuming entry.  A hot prefix kept alive only through
    subsumed inserts used to keep a stale LRU stamp and get evicted first."""
    pool = PrefixCachePool(max_entries=2, min_match_tokens=2)
    kv = [(np.ones((2, 8, 3)), np.ones((2, 8, 3)))]
    pool.insert((1, 2, 3, 4, 5), kv)  # the hot entry
    pool.insert((7, 8, 9), kv)        # more recent by raw insert order
    pool.insert((1, 2, 3), kv)        # subsumed: served by the hot entry
    # Capacity pressure: the victim must be (7, 8, 9), not the entry that
    # just served a subsumed insert.
    pool.insert((20, 21, 22), kv)
    match, _ = pool.lookup((1, 2, 3, 4, 9))
    assert match == 4  # hot entry survived
    match, _ = pool.lookup((7, 8, 9, 9))
    assert match == 0  # the idle entry was the one evicted


def test_vectorized_scan_matches_scalar_oracle():
    """The numpy lookup scan must be bit-identical to the Python reference,
    including the first-max-in-insertion-order tie-break."""
    rng = np.random.default_rng(0)
    kv = [(np.ones((1, 24, 2)), np.ones((1, 24, 2)))]
    for _ in range(40):
        pool = PrefixCachePool(max_entries=64, min_match_tokens=2)
        for _ in range(int(rng.integers(1, 12))):
            length = int(rng.integers(2, 12))
            # Tiny alphabet so shared prefixes and exact ties are common.
            key = tuple(int(t) for t in rng.integers(0, 4, size=length))
            pool.insert(key, kv)
        for _ in range(8):
            plen = int(rng.integers(1, 14))
            prompt = tuple(int(t) for t in rng.integers(0, 4, size=plen))
            assert pool._scan(prompt) == pool._scan_scalar(prompt)


def test_prefix_cache_reuse_preserves_outputs(model, engine):
    """Shared-prefix requests reuse cached KV and still produce the same
    greedy tokens as uncached serving."""
    prefix = (1, 7, 8, 9, 10, 11, 5, 6, 5, 6)
    prompts = [prefix + (t,) for t in (7, 8, 9, 10)]
    uncached = InProcessServer(model, config=ServeConfig(
        prefix_cache=False, max_batch_size=4), eos_id=2)
    cached = InProcessServer(model, config=ServeConfig(
        prefix_cache=True, prefix_min_tokens=4, max_batch_size=4), eos_id=2)
    outs = {}
    for name, server in (("uncached", uncached), ("cached", cached)):
        ids = [server.submit(p, params=SamplingParams(max_new_tokens=6))
               for p in prompts]
        server.run_until_idle()
        outs[name] = [list(server.result(r).token_ids) for r in ids]
    assert outs["cached"] == outs["uncached"]
    completions = [cached.result(f"req-{i}") for i in range(len(prompts))]
    assert sum(c.cached_prefix_tokens for c in completions) > 0
    assert cached.metrics_snapshot()["prefix_hit_rate"] > 0


# ---------------------------------------------------------------------------
# scheduler policy
# ---------------------------------------------------------------------------


def test_priority_ordering(model):
    """With one slot, the high-priority latecomer runs before earlier
    normal-priority requests; FIFO breaks ties."""
    clock = ManualClock()
    server = InProcessServer(model, config=ServeConfig(max_batch_size=1),
                             clock=clock)
    params = SamplingParams(max_new_tokens=2)
    normal = [server.submit([1, 7], params=params) for _ in range(2)]
    vip = server.submit([1, 5], params=params, priority=5)
    order = []
    while not server.idle:
        order.extend(c.request_id for c in server.step())
    assert order == [vip] + normal


def test_deadline_expiry(model):
    """Queued requests past their deadline are evicted unrun."""
    clock = ManualClock()
    server = InProcessServer(model, config=ServeConfig(max_batch_size=1),
                             clock=clock)
    params = SamplingParams(max_new_tokens=2)
    stale = server.submit([1, 7], params=params, deadline=5.0)
    fresh = server.submit([1, 5], params=params)
    clock.t = 10.0
    server.run_until_idle()
    expired = server.result(stale)
    assert expired.status == RequestStatus.EXPIRED
    assert expired.finish_reason == FinishReason.DEADLINE
    assert expired.token_ids == ()
    assert server.result(fresh).status == RequestStatus.FINISHED
    assert server.metrics_snapshot()["requests_expired"] == 1


def test_deadline_expires_exactly_at_boundary_tick(model):
    """Regression: a request whose deadline equals the current clock tick is
    *past due* — the admission layer's retry-after arithmetic and the fleet
    router both treat ``now == deadline`` as expired, and the scheduler used
    to disagree by one tick (``>`` instead of ``>=``)."""
    clock = ManualClock()
    server = InProcessServer(model, config=ServeConfig(max_batch_size=1),
                             clock=clock)
    rid = server.submit([1, 7], params=SamplingParams(max_new_tokens=2),
                        deadline=5.0)
    clock.t = 5.0
    server.run_until_idle()
    completion = server.result(rid)
    assert completion.status == RequestStatus.EXPIRED
    assert completion.finish_reason == FinishReason.DEADLINE


def test_running_request_expires_mid_decode(model):
    clock = ManualClock()
    server = InProcessServer(model, config=ServeConfig(max_batch_size=1),
                             clock=clock)
    rid = server.submit([1, 7], params=SamplingParams(max_new_tokens=30),
                        deadline=5.0)
    server.step()  # admitted and decoding
    clock.t = 10.0
    server.run_until_idle()
    assert server.result(rid).status == RequestStatus.EXPIRED


def test_cancellation(model):
    server = InProcessServer(model, config=ServeConfig(max_batch_size=1))
    params = SamplingParams(max_new_tokens=4)
    running = server.submit([1, 7], params=params)
    queued = server.submit([1, 5], params=params)
    finishing = server.submit([1, 3], params=params)
    server.step()  # admits `running` (batch of 1); the others stay queued
    assert server.cancel(queued)     # queued-path cancellation
    assert server.cancel(running)    # running-path cancellation
    assert not server.cancel("nonexistent")
    server.run_until_idle()
    assert server.result(queued).status == RequestStatus.CANCELLED
    assert server.result(running).status == RequestStatus.CANCELLED
    assert server.result(finishing).status == RequestStatus.FINISHED
    # Both cancellation paths must hit the metrics counter (it was dead).
    assert server.metrics_snapshot()["requests_cancelled"] == 2


def test_schedule_is_deterministic(model):
    """Same submissions + same clock => identical completions, token for
    token, across independent servers."""
    def run():
        clock = ManualClock()
        server = InProcessServer(model, config=ServeConfig(max_batch_size=2),
                                 clock=clock, eos_id=2)
        for i, p in enumerate(MIXED_PROMPTS):
            server.submit(p, params=SamplingParams(max_new_tokens=6,
                                                   temperature=0.7,
                                                   seed=i),
                          priority=i % 2)
            clock.t += 1.0
        server.run_until_idle()
        return [(c.request_id, tuple(c.token_ids))
                for c in [server.result(f"req-{i}")
                          for i in range(len(MIXED_PROMPTS))]]

    assert run() == run()


def test_duplicate_request_id_rejected(model):
    server = InProcessServer(model)
    server.submit([1, 7], request_id="dup")
    with pytest.raises(ValueError):
        server.submit([1, 5], request_id="dup")


def test_long_prompt_truncated_to_context(model):
    """Prompts longer than the model window keep their most recent tokens,
    mirroring InferenceEngine.generate."""
    max_ctx = model.config.max_seq_len
    prompt = [1] + [7, 8] * max_ctx
    server = _exact_server(model, )
    rid = server.submit(prompt, params=SamplingParams(max_new_tokens=4))
    server.run_until_idle()
    completion = server.result(rid)
    assert completion.status == RequestStatus.FINISHED
    engine = InferenceEngine(model)
    assert list(completion.token_ids) == engine.generate(
        prompt, max_new_tokens=4)


def test_context_exhaustion_finish_reason(model):
    max_ctx = model.config.max_seq_len
    server = _exact_server(model)
    rid = server.submit([1, 7] * ((max_ctx - 2) // 2),
                        params=SamplingParams(max_new_tokens=3 * max_ctx))
    server.run_until_idle()
    completion = server.result(rid)
    assert completion.finish_reason == FinishReason.CONTEXT
    # Matches the serial engine, whose final sampled token also never
    # enters the KV cache (hence prefill + emitted == max_ctx + 1).
    prompt = [1, 7] * ((max_ctx - 2) // 2)
    expected = InferenceEngine(model).generate(
        prompt, max_new_tokens=3 * max_ctx)
    assert list(completion.token_ids) == expected
    assert completion.prefill_tokens + len(completion.token_ids) <= max_ctx + 1


# ---------------------------------------------------------------------------
# sessions
# ---------------------------------------------------------------------------


def test_session_two_turn_kv_reuse(model):
    server = InProcessServer(model, config=ServeConfig(max_batch_size=2),
                             eos_id=2)
    turn1 = [1, 7, 8, 9]
    first = server.chat("s1", turn1, params=SamplingParams(max_new_tokens=4))
    assert first.cached_prefix_tokens == 0
    turn2 = turn1 + list(first.token_ids) + [5, 6]
    second = server.chat("s1", turn2, params=SamplingParams(max_new_tokens=4))
    assert second.cached_prefix_tokens > 0
    # The reused turn covers the first turn's prompt plus its forwarded
    # output tokens (the last sampled token never entered the KV cache).
    assert second.cached_prefix_tokens >= len(turn1)
    # And the answer matches a fresh, uncached generation of the same prompt.
    fresh = InferenceEngine(model).generate(turn2, max_new_tokens=4, eos_id=2)
    served = InProcessServer(model, config=ServeConfig(
        decode_mode="exact", prefix_cache=False)).complete(
            turn2, params=SamplingParams(max_new_tokens=4))
    # exact-mode reference for the served fused answer: compare lengths only
    # when logits are near ties; trained model separates them, so compare
    # tokens directly.
    assert list(served.token_ids) == fresh


def test_session_store_prefix_semantics():
    store = SessionStore(capacity=2)
    kv = [(np.zeros((2, 3, 4)), np.zeros((2, 3, 4)))]
    store.update("a", [1, 2, 3], kv)
    match, reused = store.lookup_prefix("a", (1, 2, 3, 4))
    assert match == 3 and reused is not None
    # A diverging prompt only reuses the common prefix.
    match, _ = store.lookup_prefix("a", (1, 2, 9, 9))
    assert match == 2
    # Unknown session: no reuse.
    match, reused = store.lookup_prefix("zz", (1, 2, 3))
    assert match == 0 and reused is None
    # LRU eviction.
    store.update("b", [1], kv)
    store.update("c", [1], kv)
    assert store.get("a") is None


# ---------------------------------------------------------------------------
# metrics + benchmark plumbing
# ---------------------------------------------------------------------------


def test_metrics_snapshot_keys_and_counts(model):
    server = InProcessServer(model, config=ServeConfig(max_batch_size=2))
    ids = [server.submit([1, 7, 8], params=SamplingParams(max_new_tokens=3))
           for _ in range(3)]
    server.run_until_idle()
    snap = server.metrics_snapshot()
    for key in ("requests_submitted", "requests_finished", "tokens_generated",
                "prefill_tokens", "cached_prefix_tokens", "decode_steps",
                "mean_ttft_s", "mean_queue_depth", "mean_batch_occupancy",
                "tokens_per_second", "prefix_hit_rate"):
        assert key in snap, key
    assert snap["requests_submitted"] == len(ids)
    assert snap["requests_finished"] == len(ids)
    assert snap["tokens_generated"] == sum(
        len(server.result(r).token_ids) for r in ids)
    assert 0 < snap["mean_batch_occupancy"] <= 2


def test_run_serve_benchmark_structure(model):
    spec = WorkloadSpec(n_requests=4, shared_prefix_tokens=12,
                        unique_tokens=3, max_new_tokens=4, vocab_size=20,
                        seed=1)
    result = run_serve_benchmark(model, spec,
                                 config=ServeConfig(max_batch_size=4))
    assert set(result) == {"serial", "served", "speedup", "registry"}
    assert result["serial"]["tokens"] > 0
    assert result["served"]["tokens"] > 0
    assert result["speedup"] > 0
    assert len(synthetic_prompts(spec)) == 4
    # The registry snapshot mirrors the classic metrics snapshot.
    assert result["registry"]["serve.requests_finished"] == 4
    assert (result["registry"]["serve.tokens_generated"]
            == result["served"]["tokens"])
    assert result["registry"]["serve.ttft_s"]["count"] == 4


def test_request_validation():
    with pytest.raises(ValueError):
        SamplingParams(max_new_tokens=0)
    with pytest.raises(ValueError):
        SamplingParams(temperature=-1.0)
    with pytest.raises(ValueError):
        SamplingParams(top_p=1.5)
    with pytest.raises(ValueError):
        Request(request_id="r", prompt_ids=(), params=SamplingParams())
    request = Request(request_id="r", prompt_ids=[1.0, 2.0],
                      params=SamplingParams())
    assert request.prompt_ids == (1, 2)


# ---------------------------------------------------------------------------
# synchronous timeouts (complete/chat deadline propagation)
# ---------------------------------------------------------------------------


class TickingClock:
    """Monotonic clock that advances a fixed amount on every read, so a
    synchronous `complete()` loop experiences passing time without any
    real sleeping."""

    def __init__(self, tick: float = 0.25):
        self.t = 0.0
        self.tick = tick

    def __call__(self):
        self.t += self.tick
        return self.t


def test_complete_timeout_expires_instead_of_hanging(model):
    """A synchronous complete() with a huge token budget and a small
    timeout must return an `expired` completion, not spin forever."""
    server = InProcessServer(model, config=ServeConfig(max_batch_size=1),
                             clock=TickingClock())
    completion = server.complete([1, 7], params=SamplingParams(
        max_new_tokens=100_000, temperature=0.0), timeout=3.0)
    assert completion.status == RequestStatus.EXPIRED
    assert completion.finish_reason == FinishReason.DEADLINE
    acct = server.scheduler.accounting()
    assert acct["expired"] == 1 and acct["conservation_ok"] == 1


def test_complete_generous_timeout_finishes(model):
    """Control: the same request with a generous timeout runs to its
    natural finish — the deadline plumbing must not clip healthy work."""
    server = InProcessServer(model, config=ServeConfig(max_batch_size=1),
                             clock=TickingClock())
    completion = server.complete([1, 7], params=SamplingParams(
        max_new_tokens=4, temperature=0.0), timeout=1e9)
    assert completion.status == RequestStatus.FINISHED
    assert len(completion.token_ids) > 0


def test_chat_timeout_bounds_each_turn(model):
    """chat() threads the per-turn timeout through the same deadline
    path, and an expired turn does not poison the session for the next."""
    clock = TickingClock()
    server = InProcessServer(model, config=ServeConfig(max_batch_size=1),
                             clock=clock)
    turn1 = server.chat("s0", [1, 7, 8], params=SamplingParams(
        max_new_tokens=100_000, temperature=0.0), timeout=3.0)
    assert turn1.status == RequestStatus.EXPIRED
    turn2 = server.chat("s0", [1, 7, 8], params=SamplingParams(
        max_new_tokens=3, temperature=0.0), timeout=1e9)
    assert turn2.status == RequestStatus.FINISHED


# ---------------------------------------------------------------------------
# cancellation interleavings and request conservation
# ---------------------------------------------------------------------------


def test_cancel_after_terminal_outcome_returns_false(model):
    """Cancelling a request that already finished records nothing: every
    request has exactly one terminal outcome."""
    server = InProcessServer(model, config=ServeConfig(max_batch_size=1))
    rid = server.submit([1, 7], params=SamplingParams(max_new_tokens=2))
    server.run_until_idle()
    assert server.result(rid).status == RequestStatus.FINISHED
    assert not server.cancel(rid)
    acct = server.scheduler.accounting()
    assert acct["cancelled"] == 0
    assert acct["finished"] == 1 and acct["conservation_ok"] == 1


def test_on_token_cancel_mid_decode_single_outcome(model):
    """A re-entrant cancel from the streaming hook — the request being
    advanced cancels *itself* mid-step — must finish the sequence exactly
    once, free its slot, and never resurrect it."""
    server = InProcessServer(model, config=ServeConfig(max_batch_size=2))
    seen = []

    def on_token(request, token, index):
        seen.append((request.request_id, index))
        if index >= 2:
            server.scheduler.cancel(request.request_id)

    server.scheduler.on_token = on_token
    rid = server.submit([1, 7], params=SamplingParams(max_new_tokens=30))
    steps = 0
    while not server.idle:
        server.step()
        steps += 1
        assert steps < 100, "cancelled request was resurrected"
    completion = server.result(rid)
    assert completion.status == RequestStatus.CANCELLED
    assert completion.finish_reason == FinishReason.CANCELLED
    # The hook may observe at most one token past the cancel trigger.
    assert max(i for _, i in seen) <= 3
    acct = server.scheduler.accounting()
    assert acct["cancelled"] == 1 and acct["conservation_ok"] == 1
    assert len(server.engine._free_slots) == 2
    # Exactly one terminal completion in the backlog, and draining twice
    # never yields a duplicate.
    drained = server.scheduler.drain_completions()
    assert [c.request_id for c in drained] == [rid]
    assert server.scheduler.drain_completions() == []


def test_cancel_step_interleaving_conservation_fuzz(model):
    """Randomised submit/cancel/step interleavings: whatever the order,
    the ledger must balance (each request exactly one terminal outcome)
    and every batch slot must come back."""
    rng = np.random.default_rng(1234)
    for trial in range(8):
        server = InProcessServer(model, config=ServeConfig(max_batch_size=3))
        submitted, cancelled_ok = [], 0
        for _ in range(40):
            action = rng.integers(0, 3)
            if action == 0:
                rid = server.submit(
                    [1, int(rng.integers(3, 12))],
                    params=SamplingParams(
                        max_new_tokens=int(rng.integers(1, 6))))
                submitted.append(rid)
            elif action == 1 and submitted:
                target = submitted[int(rng.integers(0, len(submitted)))]
                if server.cancel(target):
                    cancelled_ok += 1
            else:
                server.step()
        server.run_until_idle()
        acct = server.scheduler.accounting()
        assert acct["conservation_ok"] == 1, (trial, acct)
        assert acct["submitted"] == len(submitted)
        assert acct["cancelled"] == cancelled_ok
        assert acct["queued"] == 0 and acct["running"] == 0
        assert len(server.engine._free_slots) == 3
        for rid in submitted:
            assert server.result(rid) is not None, rid
