"""Prompt-grammar tests."""

import pytest

from repro.data.prompting import (ASSISTANT_CUE, REFUSAL, fits_context,
                                  format_prompt, format_training_sequence)
from repro.nn.tokenizer import WordTokenizer


@pytest.fixture
def tok():
    return WordTokenizer("context : question instruction assistant q a c i h1 h2 r".split())


def test_minimal_prompt():
    assert format_prompt("q") == "question : q assistant :"


def test_context_prepended():
    prompt = format_prompt("q", context="c")
    assert prompt == "context : c question : q assistant :"


def test_instructions_joined_with_and():
    prompt = format_prompt("q", instructions=["i1", "i2"])
    assert "instruction : i1 and i2" in prompt


def test_history_renders_in_order():
    prompt = format_prompt("q2", history=[("q1", "a1")])
    assert prompt.index("q1") < prompt.index("a1") < prompt.index("q2")
    assert prompt.count(ASSISTANT_CUE) == 2


def test_full_prompt_section_order():
    prompt = format_prompt("q", context="c", instructions=["i"],
                           history=[("h1", "h2")])
    assert prompt.index("context :") < prompt.index("h1")
    assert prompt.index("h1") < prompt.index("question : q")
    assert prompt.index("instruction :") < prompt.rindex(ASSISTANT_CUE)


def test_training_sequence_masks_prompt(tok):
    ids, mask = format_training_sequence(tok, "question : q assistant :", "a")
    assert len(ids) == len(mask)
    # bos + prompt masked, response + eos trained.
    n_prompt = len(tok.encode("question : q assistant :", add_bos=True))
    assert mask[:n_prompt] == [0] * n_prompt
    assert mask[n_prompt:] == [1] * (len(ids) - n_prompt)
    assert ids[-1] == tok.eos_id


def test_fits_context(tok):
    assert fits_context(tok, "question : q assistant :", "a", max_seq_len=50)
    assert not fits_context(tok, "question : q assistant :", "a", max_seq_len=3)


def test_refusal_constant_is_lowercase_words():
    assert REFUSAL == REFUSAL.lower()
    assert all(w.isalpha() for w in REFUSAL.split())
