"""Inference-engine tests: parity with the autograd model and caching."""

import numpy as np
import pytest

from repro.nn.infer import InferenceEngine, generate_text_fast
from repro.nn.generation import generate
from repro.nn.tokenizer import WordTokenizer
from repro.nn.trainer import TrainConfig, Trainer
from repro.nn.transformer import TransformerConfig, TransformerLM


@pytest.fixture(scope="module")
def model():
    config = TransformerConfig(vocab_size=24, dim=16, n_layers=2, n_heads=2,
                               max_seq_len=24, seed=0)
    m = TransformerLM(config)
    Trainer(m, pad_id=0, config=TrainConfig(epochs=25, batch_size=8, lr=3e-3)
            ).fit([[1, 7, 8, 9, 10, 11, 2], [1, 5, 6, 5, 6, 2]] * 4)
    return m


@pytest.fixture(scope="module")
def engine(model):
    return InferenceEngine(model)


def test_logit_parity_with_autograd(model, engine, rng):
    for _ in range(5):
        length = int(rng.integers(2, 20))
        ids = rng.integers(1, 24, size=length).tolist()
        ref = model(np.asarray(ids)[None, :]).data[0, -1]
        fast = engine.logits(ids)
        assert np.allclose(ref, fast, atol=1e-4), np.abs(ref - fast).max()


def test_greedy_generation_parity(model, engine):
    for prompt in ([1, 7], [1, 5], [1, 7, 8, 9]):
        slow = generate(model, prompt, max_new_tokens=6, eos_id=2)
        fast = engine.generate(prompt, max_new_tokens=6, eos_id=2)
        assert slow == fast, (prompt, slow, fast)


def test_incremental_equals_fresh(engine):
    """KV-cached continuation matches recomputing from scratch."""
    prompt = [1, 7, 8]
    out = engine.generate(prompt, max_new_tokens=3)
    # Recompute logits of the extended sequence without cache:
    extended = prompt + out[:2]
    fresh = engine.logits(extended)
    # Generate one token from the extended prompt; must equal out[2].
    assert int(np.argmax(fresh)) == out[2]


def test_eos_and_budget(engine):
    out = engine.generate([1, 7], max_new_tokens=2)
    assert len(out) == 2
    out = engine.generate([1, 7], max_new_tokens=20, eos_id=2)
    assert 2 not in out


def test_sampling_deterministic(engine):
    a = engine.generate([1, 7], max_new_tokens=5, temperature=1.0,
                        rng=np.random.default_rng(1))
    b = engine.generate([1, 7], max_new_tokens=5, temperature=1.0,
                        rng=np.random.default_rng(1))
    assert a == b


def test_validations(engine, model):
    with pytest.raises(ValueError):
        engine.generate([])
    with pytest.raises(ValueError):
        engine.generate([1], temperature=-0.5)
    learned = TransformerLM(TransformerConfig(vocab_size=8, dim=8, n_layers=1,
                                              n_heads=2, max_seq_len=8,
                                              pos_encoding="learned", seed=0))
    with pytest.raises(ValueError):
        InferenceEngine(learned)


def test_generate_text_fast_matches_slow(model, engine):
    from repro.nn.generation import generate_text

    tok = WordTokenizer([f"w{i}" for i in range(20)])
    prompt = "w3 w4"
    assert generate_text_fast(engine, tok, prompt, max_new_tokens=5) == \
        generate_text(model, tok, prompt, max_new_tokens=5)


def test_long_prompt_is_truncated_to_context(engine):
    prompt = [1] + [5, 6] * 40  # longer than max_seq_len=24
    out = engine.generate(prompt, max_new_tokens=2)
    assert len(out) <= 2  # no crash; generation proceeds from the tail window


def test_layer_cache_buffer_growth(engine):
    """The growable KV buffer doubles past its initial capacity while .k/.v
    stay views of exactly the appended history."""
    from repro.nn.infer import _LayerCache

    cache = _LayerCache()
    rng = np.random.default_rng(0)
    total = _LayerCache.INITIAL_CAPACITY * 2 + 5
    chunks = []
    written = 0
    while written < total:
        step = int(rng.integers(1, 7))
        k = rng.normal(size=(2, step, 3)).astype(np.float32)
        cache.append(k, k)
        chunks.append(k)
        written += step
    expected = np.concatenate(chunks, axis=1)
    assert cache.length == written
    assert np.array_equal(cache.k, expected)
    assert np.array_equal(cache.v, expected)
    # Snapshots are copies, not views into the buffer.
    snap_k, _ = cache.snapshot(upto=4)
    snap_k[:] = -1
    assert not np.array_equal(cache.k[:, :4], snap_k)


def test_generate_top_k_and_top_p(engine):
    """Filtered sampling stays deterministic under a fixed seed and matches
    unfiltered greedy when the filters are vacuous."""
    greedy = engine.generate([1, 7], max_new_tokens=5)
    vacuous = engine.generate([1, 7], max_new_tokens=5, top_k=24, top_p=1.0)
    assert vacuous == greedy
    a = engine.generate([1, 7], max_new_tokens=5, temperature=0.9, top_k=3,
                        rng=np.random.default_rng(3))
    b = engine.generate([1, 7], max_new_tokens=5, temperature=0.9, top_k=3,
                        rng=np.random.default_rng(3))
    assert a == b
    nucleus = engine.generate([1, 7], max_new_tokens=5, temperature=0.9,
                              top_p=0.9, rng=np.random.default_rng(3))
    assert len(nucleus) == 5
