"""Retrieval substrate tests: BM25, embeddings, reranking, chunking, pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rag.bm25 import BM25Index
from repro.rag.chunker import chunk_corpus, chunk_document
from repro.rag.embedder import DenseRetriever, HashedEmbedder
from repro.rag.pipeline import RagPipeline, reciprocal_rank_fusion
from repro.rag.reranker import OverlapReranker

CORPUS = [
    "the command global_place performs global placement of cells",
    "the command detail_route performs final track assignment and routing",
    "the clock tree synthesis builds the clock distribution tree",
    "to install orflow clone the repository and run cmake",
    "the timing report prints the worst timing paths of the design",
]


class TestBM25:
    def test_relevant_document_ranks_first(self):
        index = BM25Index(CORPUS)
        top = index.search("global placement of cells", top_k=1)
        assert top[0][0] == 0

    def test_scores_sorted_descending(self):
        index = BM25Index(CORPUS)
        results = index.search("clock tree", top_k=5)
        scores = [s for _, s in results]
        assert scores == sorted(scores, reverse=True)

    def test_unseen_terms_score_zero(self):
        index = BM25Index(CORPUS)
        assert index.score("zzz qqq", 0) == 0.0

    def test_term_frequency_saturates(self):
        index = BM25Index(["cat", "cat cat cat cat cat cat"])
        single = index.score("cat", 0)
        many = index.score("cat", 1)
        assert many < 6 * single  # sublinear in tf

    def test_validations(self):
        with pytest.raises(ValueError):
            BM25Index([])
        index = BM25Index(CORPUS)
        with pytest.raises(IndexError):
            index.score("cat", 99)
        with pytest.raises(ValueError):
            index.search("cat", top_k=0)

    def test_idf_nonnegative(self):
        index = BM25Index(["the a", "the b", "the c"])
        assert index.score("the", 0) >= 0.0


class TestEmbedder:
    def test_unit_norm(self):
        emb = HashedEmbedder(dim=64)
        vec = emb.embed("the cat sat on the mat")
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_empty_text_zero_vector(self):
        emb = HashedEmbedder(dim=64)
        assert np.allclose(emb.embed(""), 0.0)

    def test_deterministic(self):
        emb = HashedEmbedder(dim=64)
        assert np.array_equal(emb.embed("hello world"), emb.embed("hello world"))

    def test_similar_texts_closer_than_dissimilar(self):
        emb = HashedEmbedder(dim=256)
        a = emb.embed("the clock tree synthesis builds the tree")
        b = emb.embed("the clock tree synthesis builds the clock tree")
        c = emb.embed("install the repository with cmake")
        assert a @ b > a @ c

    def test_batch_shape(self):
        emb = HashedEmbedder(dim=32)
        assert emb.embed_batch(CORPUS).shape == (5, 32)

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            HashedEmbedder(dim=0)

    def test_dense_retriever_finds_paraphrase(self):
        retriever = DenseRetriever(CORPUS)
        top = retriever.search("how to install orflow from source", top_k=1)
        assert top[0][0] == 3


class TestReranker:
    def test_exact_topic_wins(self):
        reranker = OverlapReranker(CORPUS)
        ranked = reranker.rerank("worst timing paths report",
                                 list(enumerate(CORPUS)), top_k=1)
        assert ranked[0][0] == 4

    def test_rare_terms_weighted_higher(self):
        pool = ["the common words", "the global_place command", "the other doc"]
        reranker = OverlapReranker(pool)
        # "the" appears in every document (low idf); "global_place" in one.
        assert reranker.score("global_place", pool[1]) > reranker.score("the", pool[1])

    def test_bigram_bonus(self):
        reranker = OverlapReranker(["clock tree", "tree clock"])
        assert reranker.score("clock tree", "clock tree") > \
            reranker.score("clock tree", "tree clock")

    def test_validations(self):
        with pytest.raises(ValueError):
            OverlapReranker([])
        reranker = OverlapReranker(CORPUS)
        with pytest.raises(ValueError):
            reranker.rerank("q", [(0, "d")], top_k=0)


class TestChunker:
    def test_chunks_cover_all_words(self):
        text = " ".join(f"w{i}" for i in range(100))
        chunks = chunk_document(text, doc_id=0, window=30, overlap=5)
        seen = set()
        for chunk in chunks:
            seen.update(chunk.text.split())
        assert len(seen) == 100

    def test_overlap_between_consecutive_chunks(self):
        text = " ".join(f"w{i}" for i in range(50))
        chunks = chunk_document(text, doc_id=0, window=20, overlap=10)
        first = set(chunks[0].text.split())
        second = set(chunks[1].text.split())
        assert len(first & second) == 10

    def test_short_document_single_chunk(self):
        chunks = chunk_document("a b c", doc_id=7, window=40, overlap=10)
        assert len(chunks) == 1 and chunks[0].doc_id == 7

    def test_empty_document(self):
        assert chunk_document("", doc_id=0) == []

    def test_validations(self):
        with pytest.raises(ValueError):
            chunk_document("a", 0, window=0)
        with pytest.raises(ValueError):
            chunk_document("a", 0, window=5, overlap=5)

    def test_corpus_provenance(self):
        chunks = chunk_corpus(["a b", "c d"], window=10, overlap=0)
        assert {c.doc_id for c in chunks} == {0, 1}


class TestRRF:
    def test_consensus_wins(self):
        fused = reciprocal_rank_fusion([[1, 2, 3], [1, 3, 2]])
        assert fused[0] == 1

    def test_single_ranking_preserved(self):
        assert reciprocal_rank_fusion([[5, 3, 9]]) == [5, 3, 9]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            reciprocal_rank_fusion([])

    @given(st.permutations(list(range(6))))
    @settings(max_examples=30, deadline=None)
    def test_fusing_identical_rankings_is_identity(self, ranking):
        assert reciprocal_rank_fusion([ranking, ranking]) == list(ranking)


class TestPipeline:
    def test_retrieves_relevant_context(self):
        pipeline = RagPipeline(CORPUS)
        result = pipeline.retrieve("how do i view the worst timing paths")
        assert CORPUS[4] in result.context

    def test_final_k_controls_context_size(self):
        pipeline = RagPipeline(CORPUS, final_k=2)
        result = pipeline.retrieve("clock tree")
        assert len(result.doc_ids) == 2

    def test_final_k_validation(self):
        with pytest.raises(ValueError):
            RagPipeline(CORPUS, candidate_k=2, final_k=3)

    def test_recall_at_k(self):
        pipeline = RagPipeline(CORPUS)
        queries = ["global placement of cells", "install orflow clone cmake"]
        recall = pipeline.recall_at_k(queries, [0, 3])
        assert recall == 1.0
        with pytest.raises(ValueError):
            pipeline.recall_at_k(["q"], [0, 1])
        with pytest.raises(ValueError):
            pipeline.recall_at_k([], [])

    def test_real_documentation_recall(self):
        """On the actual OpenROAD-like corpus, eval questions retrieve their
        golden paragraph most of the time (the paper's RAG regime works)."""
        from repro.data.openroad_qa import documentation_corpus, eval_triplets

        corpus = documentation_corpus()
        pipeline = RagPipeline(corpus)
        triplets = eval_triplets()[:20]
        golden_ids = [corpus.index(t.context) for t in triplets]
        recall = pipeline.recall_at_k([t.question for t in triplets], golden_ids)
        assert recall >= 0.6


class TestIndexingPerfSatellites:
    """The parallel-layer PR's retrieval fixes: tokenize-once search,
    cached+vectorised hashing, and bit-identical parallel index builds."""

    def test_search_tokenizes_query_once(self, monkeypatch):
        index = BM25Index(CORPUS)
        calls = {"n": 0}
        real = BM25Index._tokenize

        def counting(text):
            calls["n"] += 1
            return real(text)

        monkeypatch.setattr(BM25Index, "_tokenize", staticmethod(counting))
        index.search("global placement of the clock tree", top_k=3)
        assert calls["n"] == 1  # once per search, not once per document

    def test_score_and_search_agree(self):
        index = BM25Index(CORPUS)
        for doc_id, score in index.search("clock tree synthesis", top_k=5):
            assert score == index.score("clock tree synthesis", doc_id)

    def test_parallel_build_is_bit_identical(self):
        from repro.parallel import parallel_available

        if not parallel_available():
            pytest.skip("requires os.fork")
        serial = BM25Index(CORPUS)
        sharded = BM25Index(CORPUS, workers=2)
        assert sharded._doc_freqs == serial._doc_freqs
        assert sharded._doc_lens == serial._doc_lens
        assert sharded._idf == serial._idf
        assert list(sharded._idf) == list(serial._idf)  # same term order
        query = "timing report of the design"
        assert sharded.search(query, top_k=5) == serial.search(query, top_k=5)

    def test_embedder_matches_scalar_reference(self):
        from repro.rag.embedder import _hash_feature

        def reference(text, dim):
            vec = np.zeros(dim)
            tokens = text.split()
            feats = list(tokens) + [f"{a}_{b}"
                                    for a, b in zip(tokens, tokens[1:])]
            for feat in feats:
                bucket, sign = _hash_feature(feat, dim)
                vec[bucket] += sign
            norm = np.linalg.norm(vec)
            return vec / norm if norm > 0 else vec

        embedder = HashedEmbedder(64)
        texts = CORPUS + ["", "repeated repeated repeated"]
        expected = np.stack([reference(t, 64) for t in texts])
        singles = np.stack([embedder.embed(t) for t in texts])
        batch = embedder.embed_batch(texts)
        assert np.array_equal(singles, expected)  # bit-exact, not approx
        assert np.array_equal(batch, expected)

    def test_embedder_feature_cache_fills_and_hits(self):
        embedder = HashedEmbedder(64)
        embedder.embed("clock tree synthesis")
        cached = len(embedder._feature_cache)
        assert cached == 5  # 3 unigrams + 2 bigrams
        embedder.embed("clock tree synthesis")
        assert len(embedder._feature_cache) == cached  # all hits, no growth

    def test_embed_batch_parallel_matches_serial(self):
        from repro.parallel import parallel_available

        if not parallel_available():
            pytest.skip("requires os.fork")
        serial = HashedEmbedder(128).embed_batch(CORPUS)
        parallel = HashedEmbedder(128).embed_batch(CORPUS, workers=2)
        assert np.array_equal(serial, parallel)

    def test_pipeline_parallel_build_retrieves_identically(self):
        from repro.parallel import parallel_available

        if not parallel_available():
            pytest.skip("requires os.fork")
        serial = RagPipeline(CORPUS, final_k=2)
        parallel = RagPipeline(CORPUS, final_k=2, workers=2)
        assert np.array_equal(serial.dense._matrix, parallel.dense._matrix)
        for query in ["clock tree", "global placement of cells", "cmake"]:
            assert parallel.retrieve(query) == serial.retrieve(query)
