"""Layer tests: linear, embedding, normalisation, feed-forward."""

import numpy as np
import pytest

from repro.nn.layers import (Dropout, Embedding, FeedForward, LayerNorm,
                             Linear, RMSNorm)
from repro.nn.tensor import Tensor


def test_linear_shapes_and_bias():
    layer = Linear(4, 6, seed=0)
    out = layer(Tensor(np.ones((3, 4))))
    assert out.shape == (3, 6)
    expected = np.ones((3, 4)) @ layer.weight.data.T + layer.bias.data
    assert np.allclose(out.data, expected, atol=1e-6)


def test_linear_no_bias():
    layer = Linear(4, 6, bias=False, seed=0)
    assert layer.bias is None
    assert len(list(layer.named_parameters())) == 1


def test_linear_batched_input():
    layer = Linear(4, 2, seed=0)
    out = layer(Tensor(np.ones((2, 5, 4))))
    assert out.shape == (2, 5, 2)


def test_linear_deterministic_init():
    a, b = Linear(4, 4, seed=7), Linear(4, 4, seed=7)
    assert np.array_equal(a.weight.data, b.weight.data)
    c = Linear(4, 4, seed=8)
    assert not np.array_equal(a.weight.data, c.weight.data)


def test_embedding_lookup_and_bounds():
    emb = Embedding(10, 4, seed=0)
    out = emb(np.array([[0, 9], [3, 3]]))
    assert out.shape == (2, 2, 4)
    with pytest.raises(IndexError):
        emb(np.array([10]))
    with pytest.raises(IndexError):
        emb(np.array([-1]))


def test_layernorm_normalises():
    ln = LayerNorm(8)
    x = Tensor(np.random.default_rng(0).normal(3.0, 5.0, size=(4, 8)))
    out = ln(x).data
    assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
    assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)


def test_layernorm_affine_applied():
    ln = LayerNorm(4)
    ln.weight.data = np.full(4, 2.0, dtype=ln.weight.data.dtype)
    ln.bias.data = np.full(4, 1.0, dtype=ln.bias.data.dtype)
    x = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
    out = ln(x).data
    assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-4)


def test_rmsnorm_unit_rms():
    rn = RMSNorm(16)
    x = Tensor(np.random.default_rng(0).normal(0, 10.0, size=(5, 16)))
    out = rn(x).data
    rms = np.sqrt((out ** 2).mean(axis=-1))
    assert np.allclose(rms, 1.0, atol=1e-3)


def test_rmsnorm_no_mean_subtraction():
    rn = RMSNorm(4)
    x = Tensor(np.full((1, 4), 3.0))
    out = rn(x).data
    # All-equal inputs stay all-equal (RMSNorm preserves direction).
    assert np.allclose(out, out[0, 0])
    assert out[0, 0] > 0


def test_feedforward_shapes():
    ff = FeedForward(8, 32, seed=0)
    out = ff(Tensor(np.ones((2, 3, 8))))
    assert out.shape == (2, 3, 8)


def test_feedforward_is_gated():
    ff = FeedForward(4, 8, seed=0)
    # Zero gate projection => silu(0) = 0 => output must be zero.
    ff.gate_proj.weight.data = np.zeros_like(ff.gate_proj.weight.data)
    out = ff(Tensor(np.ones((1, 4))))
    assert np.allclose(out.data, 0.0)


def test_dropout_layer_respects_mode():
    layer = Dropout(0.9, seed=0)
    x = Tensor(np.ones((100,)))
    layer.eval()
    assert np.array_equal(layer(x).data, x.data)
    layer.train()
    assert (layer(x).data == 0).sum() > 50
