"""ChipAlign reproduction.

Geodesic weight interpolation for instruction alignment in chip-design LLMs
(Deng, Bai & Ren, DAC 2025), reproduced end-to-end on a from-scratch
transformer substrate.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quickstart
----------
>>> from repro import ChipAlignMerger
>>> merged = ChipAlignMerger(lam=0.6).merge_models(chip_model, instruct_model)
"""

from .core import ChipAlignMerger, geodesic_merge, merge_state_dicts, slerp
from .core.registry import available_methods, merge

__version__ = "1.0.0"

__all__ = [
    "ChipAlignMerger", "geodesic_merge", "merge_state_dicts", "slerp",
    "available_methods", "merge", "__version__",
]
