"""The ``repro obs-report`` flow: one tiny end-to-end pipeline, fully traced.

Runs a miniature version of the whole ChipAlign pipeline — train-stub →
geodesic merge → batched serving → benchmark eval → RAG retrieval — with a
single shared :class:`~repro.obs.Observability`, then renders the span tree
and metric registry it produced.  Small enough for a CI smoke step (seconds,
no checkpoints), but every stage goes through the real instrumented code
paths, so the report shows exactly the spans and counters a production run
would emit.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from . import Observability


def run_obs_flow(obs: Optional[Observability] = None, epochs: int = 4,
                 items: int = 3, lam: float = 0.6, decode_tokens: int = 8,
                 seed: int = 0) -> Tuple[Observability, Dict[str, object]]:
    """Run the traced end-to-end flow; returns ``(obs, summary)``.

    ``summary`` carries the per-stage results (final loss, merged tensor
    count, completions served, eval score) so callers can sanity-check the
    flow did real work, not just emit spans.
    """
    from ..core.merge_engine import GeodesicMergeEngine
    from ..data.openroad_qa import documentation_corpus, eval_triplets
    from ..eval.harness import run_openroad
    from ..eval.oracles import GeneralOracle
    from ..nn.trainer import TrainConfig, Trainer
    from ..nn.transformer import TransformerConfig, TransformerLM
    from ..rag.pipeline import RagPipeline
    from ..serve import InProcessServer, SamplingParams, ServeConfig

    obs = obs or Observability()
    summary: Dict[str, object] = {}
    config = TransformerConfig(vocab_size=24, dim=16, n_layers=2, n_heads=2,
                               max_seq_len=48, seed=seed)
    with obs.span("obs_report.flow"):
        with obs.span("obs_report.train"):
            chip = TransformerLM(config)
            trainer = Trainer(chip, pad_id=0,
                              config=TrainConfig(epochs=epochs, batch_size=8,
                                                 lr=3e-3, seed=seed),
                              obs=obs)
            result = trainer.fit([[1, 7, 8, 9, 10, 11, 2],
                                  [1, 5, 6, 5, 6, 2]] * 4)
            summary["train_final_loss"] = result.final_loss
            summary["train_steps"] = result.steps

        with obs.span("obs_report.merge"):
            instruct_config = TransformerConfig(
                vocab_size=24, dim=16, n_layers=2, n_heads=2, max_seq_len=48,
                seed=seed + 1)
            instruct = TransformerLM(instruct_config)
            engine = GeodesicMergeEngine(chip.state_dict(),
                                         instruct.state_dict(), obs=obs)
            merged_sd = engine.merge(lam)
            merged = TransformerLM(config)
            merged.load_state_dict(dict(merged_sd))
            summary["merged_tensors"] = len(merged_sd)

        with obs.span("obs_report.serve"):
            server = InProcessServer(
                merged, config=ServeConfig(max_batch_size=4,
                                           prefix_min_tokens=4),
                clock=obs.clock, obs=obs)
            prefix = (1, 7, 8, 9, 10, 11)
            ids = [server.submit(prefix + (3 + i,),
                                 params=SamplingParams(
                                     max_new_tokens=decode_tokens,
                                     seed=seed + i))
                   for i in range(4)]
            server.run_until_idle()
            summary["served_tokens"] = sum(
                len(server.result(rid).token_ids) for rid in ids)

        with obs.span("obs_report.eval"):
            triplets = eval_triplets()[:items]
            report = run_openroad(GeneralOracle(), triplets, obs=obs)
            summary["eval_rouge_l"] = report.overall

        with obs.span("obs_report.rag"):
            rag = RagPipeline(documentation_corpus()[:24], obs=obs)
            retrieval = rag.retrieve(triplets[0].question)
            summary["rag_context_chars"] = len(retrieval.context)
    return obs, summary
