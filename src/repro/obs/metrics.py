"""Metric registry: named counters, gauges, and fixed-bucket histograms.

One :class:`MetricRegistry` is the numeric half of an
:class:`~repro.obs.Observability` context.  Every subsystem writes into the
same flat, dot-namespaced metric space (``serve.tokens_generated``,
``merge.bytes_processed``, ``train.epoch_loss``, …), so a single
:meth:`MetricRegistry.snapshot` call captures the whole pipeline's state as
a JSON-serialisable dict, and snapshots from independent runs (or worker
processes) combine with :func:`merge_snapshots`.

Three instrument types, chosen for zero-dependency cheapness:

* :class:`Counter` — monotonically growing total (requests, tokens, bytes);
* :class:`Gauge` — last-written value (loss, throughput, batch occupancy);
* :class:`Histogram` — fixed upper-bound buckets plus count/sum/min/max,
  for latency-shaped values where a mean hides the tail.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional, Sequence, Union

Number = Union[int, float]

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)


class Counter:
    """A total that only grows (``set`` exists for view-style adapters)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def set(self, value: Number) -> None:
        """Overwrite the total (used by thin views over legacy counters)."""
        if value < self.value:
            raise ValueError(
                f"counter {self.name!r} cannot decrease ({self.value} -> {value})")
        self.value = value


class Gauge:
    """A point-in-time value; the last write wins."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: Number) -> None:
        self.value = float(value)

    def inc(self, amount: Number = 1.0) -> None:
        self.value += float(amount)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max sidecars.

    ``buckets`` are inclusive upper bounds; an implicit +inf bucket catches
    the overflow.  Buckets are cumulative in the snapshot (Prometheus
    style), so two snapshots with identical bounds merge by addition.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name!r} buckets must be strictly "
                             f"increasing, got {buckets}")
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +inf overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        cumulative, running = [], 0
        for raw in self.bucket_counts:
            running += raw
            cumulative.append(running)
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "bounds": list(self.bounds),
            "cumulative": cumulative,
        }


class MetricRegistry:
    """Namespace of metrics, created on first use and snapshot as one dict.

    A name is bound to exactly one instrument type for the registry's
    lifetime; asking for the same name as a different type raises, which
    catches subsystems silently stomping each other's metrics.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def _check_free(self, name: str, want: Dict[str, object]) -> None:
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            if table is not want and name in table:
                raise ValueError(f"metric {name!r} already registered as a {kind}")

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name, self._counters)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name, self._gauges)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_free(name, self._histograms)
            metric = self._histograms[name] = Histogram(name, buckets)
        return metric

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def snapshot(self) -> Dict[str, object]:
        """Everything as one JSON-serialisable dict.

        Counters and gauges land as plain numbers; histograms as nested
        dicts with cumulative bucket counts.
        """
        snap: Dict[str, object] = {}
        for name, counter in self._counters.items():
            snap[name] = counter.value
        for name, gauge in self._gauges.items():
            snap[name] = gauge.value
        for name, histogram in self._histograms.items():
            snap[name] = histogram.to_dict()
        return dict(sorted(snap.items()))

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def merge(self, other: "MetricRegistry") -> "MetricRegistry":
        """Fold another registry into this one (in place; returns self).

        Counters and histograms add; gauges take the other side's value
        (they are point-in-time, so "later wins" is the only coherent rule).
        Histograms must share bucket bounds.
        """
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, histogram in other._histograms.items():
            mine = self.histogram(name, histogram.bounds)
            if mine.bounds != histogram.bounds:
                raise ValueError(f"histogram {name!r} bucket bounds differ: "
                                 f"{mine.bounds} vs {histogram.bounds}")
            mine.count += histogram.count
            mine.total += histogram.total
            mine.min = min(mine.min, histogram.min)
            mine.max = max(mine.max, histogram.max)
            for i, raw in enumerate(histogram.bucket_counts):
                mine.bucket_counts[i] += raw
        return self


def merge_snapshots(snapshots: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Combine :meth:`MetricRegistry.snapshot` dicts from independent runs.

    Plain numbers add; histogram dicts combine bucket-wise (bounds must
    match).  Useful for aggregating per-process or per-benchmark snapshots
    without reconstructing registries.
    """
    merged: Dict[str, object] = {}
    for snap in snapshots:
        for name, value in snap.items():
            if name not in merged:
                merged[name] = json.loads(json.dumps(value))  # deep copy
                continue
            have = merged[name]
            if isinstance(value, dict) != isinstance(have, dict):
                raise ValueError(f"metric {name!r} changes type across snapshots")
            if isinstance(value, dict):
                if have["bounds"] != value["bounds"]:
                    raise ValueError(f"histogram {name!r} bucket bounds differ")
                have["count"] += value["count"]
                have["sum"] += value["sum"]
                have["mean"] = have["sum"] / have["count"] if have["count"] else 0.0
                have["min"] = min(have["min"], value["min"]) if have["count"] else 0.0
                have["max"] = max(have["max"], value["max"])
                have["cumulative"] = [a + b for a, b in
                                      zip(have["cumulative"], value["cumulative"])]
            else:
                merged[name] = have + value
    return dict(sorted(merged.items()))
