"""Metric registry: named counters, gauges, and fixed-bucket histograms.

One :class:`MetricRegistry` is the numeric half of an
:class:`~repro.obs.Observability` context.  Every subsystem writes into the
same flat, dot-namespaced metric space (``serve.tokens_generated``,
``merge.bytes_processed``, ``train.epoch_loss``, …), so a single
:meth:`MetricRegistry.snapshot` call captures the whole pipeline's state as
a JSON-serialisable dict, and snapshots from independent runs (or worker
processes) combine with :func:`merge_snapshots`.

Three instrument types, chosen for zero-dependency cheapness:

* :class:`Counter` — monotonically growing total (requests, tokens, bytes);
* :class:`Gauge` — last-written value (loss, throughput, batch occupancy);
* :class:`Histogram` — fixed upper-bound buckets plus count/sum/min/max,
  for latency-shaped values where a mean hides the tail.
"""

from __future__ import annotations

import json
import math
import os
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Union

Number = Union[int, float]

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)

_UID_LOCK = threading.Lock()
_UID_COUNTER = 0


def _new_uid() -> str:
    """Process-unique registry id: pid + monotonic counter + random salt.

    The pid term keeps ids distinct across forked workers that inherit the
    parent's counter state; the salt keeps them distinct across processes
    that happen to share a pid after recycling.
    """
    global _UID_COUNTER
    with _UID_LOCK:
        _UID_COUNTER += 1
        count = _UID_COUNTER
    return f"{os.getpid():x}-{count:x}-{os.urandom(4).hex()}"


class Counter:
    """A total that only grows (``set`` exists for view-style adapters)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def set(self, value: Number) -> None:
        """Overwrite the total (used by thin views over legacy counters)."""
        if value < self.value:
            raise ValueError(
                f"counter {self.name!r} cannot decrease ({self.value} -> {value})")
        self.value = value


class Gauge:
    """A point-in-time value; the last write wins."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: Number) -> None:
        self.value = float(value)

    def inc(self, amount: Number = 1.0) -> None:
        self.value += float(amount)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max sidecars.

    ``buckets`` are inclusive upper bounds; an implicit +inf bucket catches
    the overflow.  Buckets are cumulative in the snapshot (Prometheus
    style), so two snapshots with identical bounds merge by addition.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name!r} buckets must be strictly "
                             f"increasing, got {buckets}")
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +inf overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (q in [0, 1]) from the bucket counts.

        Linear interpolation within the winning bucket, Prometheus
        ``histogram_quantile`` style.  The true min/max sidecars clamp the
        first and +inf buckets, so the estimate never leaves the observed
        range; exact for the extremes, bucket-resolution otherwise.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for i, raw in enumerate(self.bucket_counts):
            if raw == 0:
                continue
            if running + raw >= rank:
                lo = self.bounds[i - 1] if i > 0 else min(self.min, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return hi
                frac = (rank - running) / raw
                return lo + (hi - lo) * max(0.0, min(1.0, frac))
            running += raw
        return self.max

    def to_dict(self) -> Dict[str, object]:
        cumulative, running = [], 0
        for raw in self.bucket_counts:
            running += raw
            cumulative.append(running)
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "bounds": list(self.bounds),
            "cumulative": cumulative,
        }


class MetricRegistry:
    """Namespace of metrics, created on first use and snapshot as one dict.

    A name is bound to exactly one instrument type for the registry's
    lifetime; asking for the same name as a different type raises, which
    catches subsystems silently stomping each other's metrics.

    Every registry carries a process-unique :attr:`uid` that travels with
    its :meth:`export`; :meth:`absorb` and :meth:`merge` use it as an
    idempotence key, so folding the same worker snapshot twice (a retried
    task whose first result arrives late, a replayed message) cannot
    double-count.
    """

    def __init__(self) -> None:
        self.uid = _new_uid()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._absorbed_keys: set = set()

    # ------------------------------------------------------------------
    def _check_free(self, name: str, want: Dict[str, object]) -> None:
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("histogram", self._histograms)):
            if table is not want and name in table:
                raise ValueError(f"metric {name!r} already registered as a {kind}")

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_free(name, self._counters)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_free(name, self._gauges)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_free(name, self._histograms)
            metric = self._histograms[name] = Histogram(name, buckets)
        return metric

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def snapshot(self) -> Dict[str, object]:
        """Everything as one JSON-serialisable dict.

        Counters and gauges land as plain numbers; histograms as nested
        dicts with cumulative bucket counts.
        """
        snap: Dict[str, object] = {}
        for name, counter in self._counters.items():
            snap[name] = counter.value
        for name, gauge in self._gauges.items():
            snap[name] = gauge.value
        for name, histogram in self._histograms.items():
            snap[name] = histogram.to_dict()
        return dict(sorted(snap.items()))

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def export(self) -> Dict[str, object]:
        """Typed, plain-data snapshot safe to pickle across process borders.

        Unlike :meth:`snapshot` (flat, presentation-oriented), the export
        keeps the counter/gauge/histogram distinction so :meth:`absorb` can
        apply the correct merge rule per instrument, and carries raw
        (non-cumulative) histogram bucket counts so merges are plain
        element-wise adds.  ``min``/``max`` are ``None`` for empty
        histograms (no infinities in the wire format).
        """
        histograms: Dict[str, object] = {}
        for name, h in self._histograms.items():
            histograms[name] = {
                "bounds": list(h.bounds),
                "bucket_counts": list(h.bucket_counts),
                "count": h.count,
                "sum": h.total,
                "min": h.min if h.count else None,
                "max": h.max if h.count else None,
            }
        return {
            "uid": self.uid,
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": histograms,
        }

    def absorb(self, exported: Dict[str, object],
               key: Optional[str] = None) -> bool:
        """Fold an :meth:`export` dict into this registry, exactly once.

        ``key`` defaults to the export's ``uid``; a key already absorbed is
        skipped (idempotence guard for retried/replayed worker snapshots).
        Returns ``True`` if the snapshot was applied, ``False`` if skipped.
        Counters and histograms add; gauges take the exported value.
        """
        key = key if key is not None else exported.get("uid")
        if key is not None:
            if key in self._absorbed_keys:
                return False
            self._absorbed_keys.add(key)
        for name, value in exported.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in exported.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in exported.get("histograms", {}).items():
            bounds = tuple(float(b) for b in data["bounds"])
            mine = self.histogram(name, bounds)
            if mine.bounds != bounds:
                raise ValueError(f"histogram {name!r} bucket bounds differ: "
                                 f"{mine.bounds} vs {bounds}")
            mine.count += data["count"]
            mine.total += data["sum"]
            if data["min"] is not None:
                mine.min = min(mine.min, data["min"])
            if data["max"] is not None:
                mine.max = max(mine.max, data["max"])
            for i, raw in enumerate(data["bucket_counts"]):
                mine.bucket_counts[i] += raw
        return True

    def merge(self, other: "MetricRegistry",
              key: Optional[str] = None) -> "MetricRegistry":
        """Fold another registry into this one (in place; returns self).

        Counters and histograms add; gauges take the other side's value
        (they are point-in-time, so "later wins" is the only coherent rule).
        Histograms must share bucket bounds.  Merging the same registry (or
        the same explicit ``key``) twice is a no-op — see :meth:`absorb`.
        """
        self.absorb(other.export(), key=key)
        return self


def merge_snapshots(snapshots: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Combine :meth:`MetricRegistry.snapshot` dicts from independent runs.

    Plain numbers add; histogram dicts combine bucket-wise (bounds must
    match).  Useful for aggregating per-process or per-benchmark snapshots
    without reconstructing registries.
    """
    merged: Dict[str, object] = {}
    for snap in snapshots:
        for name, value in snap.items():
            if name not in merged:
                merged[name] = json.loads(json.dumps(value))  # deep copy
                continue
            have = merged[name]
            if isinstance(value, dict) != isinstance(have, dict):
                raise ValueError(f"metric {name!r} changes type across snapshots")
            if isinstance(value, dict):
                if have["bounds"] != value["bounds"]:
                    raise ValueError(f"histogram {name!r} bucket bounds differ")
                have["count"] += value["count"]
                have["sum"] += value["sum"]
                have["mean"] = have["sum"] / have["count"] if have["count"] else 0.0
                have["min"] = min(have["min"], value["min"]) if have["count"] else 0.0
                have["max"] = max(have["max"], value["max"])
                have["cumulative"] = [a + b for a, b in
                                      zip(have["cumulative"], value["cumulative"])]
            else:
                merged[name] = have + value
    return dict(sorted(merged.items()))
