"""Hierarchical tracing: timed spans with an injectable monotonic clock.

A :class:`Tracer` records *spans* — named intervals with metadata — into a
forest of trees: ``span("merge.plan")`` opened inside ``span("fig8.run")``
becomes its child.  The clock is injectable, so tests drive a fake
monotonic counter and assert exact span durations and nesting without ever
sleeping; production code gets :func:`time.perf_counter`.

Spans are cheap (one clock read on enter, one on exit, ``__slots__``
objects) and bounded: past ``max_spans`` recorded spans the tracer keeps
timing but stops *storing*, counting the overflow in ``dropped`` — a
long-running server cannot leak memory through its own instrumentation.
Export as a pretty-printed tree (:meth:`Tracer.render`) or one JSON object
per span (:meth:`Tracer.to_jsonl`, :meth:`Tracer.write_jsonl`).
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: Default cap on stored spans (the forest, not the stack).
MAX_SPANS = 100_000


def _sanitize_meta(value: object) -> object:
    """JSON-scalar metadata passes through; anything else becomes repr."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


class Span:
    """One timed, named interval; children are spans opened inside it."""

    __slots__ = ("name", "start", "end", "meta", "children")

    def __init__(self, name: str, start: float,
                 meta: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.start = start
        self.end = start
        self.meta = meta
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        return self.end - self.start

    def walk(self, depth: int = 0) -> Iterator[Tuple[int, "Span"]]:
        """Depth-first (self, then children) with depths."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> List["Span"]:
        """All descendants (including self) with the given name."""
        return [span for _, span in self.walk() if span.name == name]

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, duration={self.duration:.6f}, "
                f"children={len(self.children)})")


class _NullSpanContext:
    """Returned by a disabled tracer: no clock reads, no storage."""

    __slots__ = ()
    _SPAN = Span("<disabled>", 0.0)

    def __enter__(self) -> Span:
        return self._SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Live span context manager (a class, not a generator, for speed)."""

    __slots__ = ("_tracer", "_name", "_meta", "_span")

    def __init__(self, tracer: "Tracer", name: str,
                 meta: Optional[Dict[str, object]]) -> None:
        self._tracer = tracer
        self._name = name
        self._meta = meta

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = Span(self._name, tracer.clock(), self._meta)
        tracer._stack.append(span)
        self._span = span
        return span

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        span = self._span
        span.end = tracer.clock()
        stack = tracer._stack
        # Unwind to this span even if inner contexts leaked (exceptions).
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        if tracer._recorded >= tracer.max_spans:
            tracer.dropped += 1
            return False
        tracer._recorded += 1
        if stack:
            stack[-1].children.append(span)
        else:
            tracer.roots.append(span)
        return False


class Tracer:
    """Span recorder with an injectable clock.

    Parameters
    ----------
    clock:
        Monotonic time source; tests inject a fake counter for
        deterministic spans.
    max_spans:
        Stored-span cap; exceeding it increments :attr:`dropped` instead of
        growing memory.
    enabled:
        ``False`` turns :meth:`span` into a shared no-op context (used to
        measure instrumentation overhead, or to run cold).
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 max_spans: int = MAX_SPANS, enabled: bool = True) -> None:
        self.clock = clock
        self.max_spans = max_spans
        self.enabled = enabled
        self.roots: List[Span] = []
        self.dropped = 0
        self._stack: List[Span] = []
        self._recorded = 0

    # ------------------------------------------------------------------
    def span(self, name: str, **meta: object):
        """Context manager timing one named interval.

        Spans opened while another span is active become its children::

            with tracer.span("merge.sweep", points=11):
                with tracer.span("merge.evaluate", lam=0.5):
                    ...
        """
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, name, meta or None)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        self.roots = []
        self.dropped = 0
        self._stack = []
        self._recorded = 0

    # ------------------------------------------------------------------
    def walk(self) -> Iterator[Tuple[int, Span]]:
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> List[Span]:
        """All recorded spans with the given name, depth-first order."""
        return [span for _, span in self.walk() if span.name == name]

    def render(self, max_roots: Optional[int] = None) -> str:
        """Pretty-printed span forest with durations and metadata.

        ``max_roots`` elides the middle of very long forests (a server
        traced over thousands of steps) while keeping head and tail.
        """
        roots = self.roots
        elided = 0
        if max_roots is not None and len(roots) > max_roots:
            head = max(1, max_roots // 2)
            tail = max_roots - head
            elided = len(roots) - head - tail
            roots = roots[:head] + roots[len(self.roots) - tail:]
        lines = []
        for i, root in enumerate(roots):
            if elided and i == max(1, (max_roots or 0) // 2):
                lines.append(f"... {elided} more root spans ...")
            for depth, span in root.walk():
                meta = ""
                if span.meta:
                    meta = "  [" + " ".join(f"{k}={v}" for k, v in
                                            sorted(span.meta.items())) + "]"
                lines.append(f"{'  ' * depth}{span.name:<{max(1, 40 - 2 * depth)}}"
                             f" {span.duration * 1e3:9.3f} ms{meta}")
        if self.dropped:
            lines.append(f"... {self.dropped} spans dropped (max_spans="
                         f"{self.max_spans}) ...")
        return "\n".join(lines)

    def export_spans(self) -> List[Dict[str, object]]:
        """The span forest as nested plain dicts, safe to pickle or JSON.

        Metadata values outside the JSON scalar types are replaced with
        their ``repr`` so a worker process can always ship its trace back
        to the parent, whatever objects landed in span metadata.
        :meth:`absorb` is the inverse.
        """
        def export(span: Span) -> Dict[str, object]:
            record: Dict[str, object] = {"name": span.name, "start": span.start,
                                         "end": span.end}
            if span.meta:
                record["meta"] = {k: _sanitize_meta(v)
                                  for k, v in span.meta.items()}
            if span.children:
                record["children"] = [export(c) for c in span.children]
            return record

        return [export(root) for root in self.roots]

    def absorb(self, spans: List[Dict[str, object]]) -> int:
        """Graft an :meth:`export_spans` forest into this tracer.

        Absorbed roots become children of the innermost *open* span when
        one is active (so worker traces nest under the parent's fan-out
        span), or new roots otherwise.  The stored-span cap applies: spans
        past ``max_spans`` are counted in :attr:`dropped`, children-first,
        the same budget live recording uses.  Returns the number stored.
        """
        stored = 0

        def subtree_size(record: Dict[str, object]) -> int:
            return 1 + sum(subtree_size(c) for c in record.get("children", ()))

        def rebuild(record: Dict[str, object]) -> Optional[Span]:
            nonlocal stored
            if self._recorded >= self.max_spans:
                self.dropped += subtree_size(record)
                return None
            self._recorded += 1
            stored += 1
            span = Span(record["name"], float(record["start"]),
                        dict(record["meta"]) if record.get("meta") else None)
            span.end = float(record["end"])
            span.children = [c for c in (rebuild(child) for child in
                                         record.get("children", ()))
                             if c is not None]
            return span

        parent = self._stack[-1] if self._stack else None
        for record in spans:
            span = rebuild(record)
            if span is None:
                continue
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)
        return stored

    def to_jsonl(self) -> str:
        """One JSON object per span (depth-first), with ancestry paths."""
        lines = []

        def emit(span: Span, path: str, depth: int) -> None:
            record = {"name": span.name, "path": path, "depth": depth,
                      "start": span.start, "end": span.end,
                      "duration": span.duration}
            if span.meta:
                record["meta"] = span.meta
            lines.append(json.dumps(record, sort_keys=True))
            for child in span.children:
                emit(child, f"{path}/{child.name}", depth + 1)

        for root in self.roots:
            emit(root, root.name, 0)
        return "\n".join(lines)

    def write_jsonl(self, path) -> int:
        """Write :meth:`to_jsonl` to a file; returns the span-line count."""
        text = self.to_jsonl()
        with open(path, "w") as handle:
            if text:
                handle.write(text + "\n")
        return len(text.splitlines()) if text else 0
