"""Lightweight profiling hooks: per-call wall time, call counts, bytes.

:class:`Profiler` aggregates named call sites; the :func:`profiled`
decorator wires a function into one with a single line.  "Bytes" means
*tensor bytes*: :func:`tensor_bytes` walks a return value (arrays, state
dicts, lists of merged models, autograd tensors) and sums ``nbytes`` — a
cheap allocation proxy that needs no allocator introspection and works the
same on every platform.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict, Optional

import numpy as np


def tensor_bytes(obj) -> int:
    """Total ndarray payload bytes reachable inside ``obj``.

    Walks dicts, lists/tuples, numpy arrays, and objects exposing a
    ``.data`` ndarray (the autograd :class:`~repro.nn.tensor.Tensor`).
    Anything else contributes zero — the point is a cheap, deterministic
    size estimate, not a full object graph census.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, dict):
        return sum(tensor_bytes(value) for value in obj.values())
    if isinstance(obj, (list, tuple)):
        return sum(tensor_bytes(item) for item in obj)
    data = getattr(obj, "data", None)
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    return 0


class CallStat:
    """Aggregate of one profiled call site."""

    __slots__ = ("name", "calls", "seconds", "bytes", "max_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.seconds = 0.0
        self.bytes = 0
        self.max_seconds = 0.0

    def record(self, seconds: float, nbytes: int = 0) -> None:
        self.calls += 1
        self.seconds += seconds
        self.bytes += nbytes
        self.max_seconds = max(self.max_seconds, seconds)

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {"calls": self.calls, "seconds": self.seconds,
                "mean_seconds": self.mean_seconds,
                "max_seconds": self.max_seconds, "bytes": self.bytes}


class Profiler:
    """Aggregating profiler with an injectable clock (tests run fake time)."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.stats: Dict[str, CallStat] = {}

    def record(self, name: str, seconds: float, nbytes: int = 0) -> None:
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = CallStat(name)
        stat.record(seconds, nbytes)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {name: stat.to_dict() for name, stat in sorted(self.stats.items())}

    def report(self) -> str:
        """Fixed-width table, slowest call sites first."""
        if not self.stats:
            return "(no profiled calls)"
        rows = sorted(self.stats.values(), key=lambda s: -s.seconds)
        lines = [f"{'call site':<36} {'calls':>7} {'total ms':>10} "
                 f"{'mean ms':>9} {'MB':>8}"]
        for stat in rows:
            lines.append(f"{stat.name:<36} {stat.calls:>7} "
                         f"{stat.seconds * 1e3:>10.2f} "
                         f"{stat.mean_seconds * 1e3:>9.3f} "
                         f"{stat.bytes / 1e6:>8.2f}")
        return "\n".join(lines)

    def reset(self) -> None:
        self.stats = {}


def profiled(name: Optional[str] = None,
             profiler: Optional[Profiler] = None) -> Callable:
    """Decorator recording wall time, call count, and result tensor bytes.

    The profiler is resolved at *call* time, in order: the explicit
    ``profiler`` argument; ``self.obs.profiler`` when the bound object
    carries an :class:`~repro.obs.Observability`; else the process-default
    observability's profiler.  So one decoration serves both
    explicitly-instrumented objects and ad-hoc module functions::

        @profiled("rag.retrieve")
        def retrieve(self, query): ...
    """

    def decorate(fn: Callable) -> Callable:
        label = name or getattr(fn, "__qualname__", fn.__name__)

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            prof = profiler
            if prof is None and args:
                obs = getattr(args[0], "obs", None)
                prof = getattr(obs, "profiler", None)
            if prof is None:
                from . import default_observability

                prof = default_observability().profiler
            start = prof.clock()
            result = fn(*args, **kwargs)
            prof.record(label, prof.clock() - start, tensor_bytes(result))
            return result

        return wrapper

    return decorate
