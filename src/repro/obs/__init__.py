"""Unified observability: metric registry + tracer + profiler in one handle.

Every instrumented subsystem (serving, merge engine, trainer, eval harness,
RAG) accepts an optional :class:`Observability` and creates a private one
when none is given — instances never share state by accident.  Pass one
object through a whole pipeline to get a single registry snapshot and one
span tree for the end-to-end flow (what ``repro obs-report`` prints)::

    from repro.obs import Observability

    obs = Observability()
    engine = GeodesicMergeEngine(chip, instruct, obs=obs)
    server = InProcessServer(model, config=cfg, obs=obs)
    ...
    print(obs.tracer.render())
    print(obs.registry.to_json())

The clock is injectable (``Observability(clock=fake)``) so tests assert
exact span durations and nesting without sleeping; ``enabled=False`` turns
span recording into a shared no-op, which is how the serve benchmark
measures instrumentation overhead.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from .metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                      MetricRegistry, merge_snapshots)
from .profile import CallStat, Profiler, profiled, tensor_bytes
from .trace import MAX_SPANS, Span, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricRegistry", "merge_snapshots",
    "DEFAULT_BUCKETS",
    "Span", "Tracer", "MAX_SPANS",
    "Profiler", "CallStat", "profiled", "tensor_bytes",
    "Observability", "default_observability", "set_default_observability",
]


class Observability:
    """One registry + tracer + profiler sharing a clock.

    Parameters
    ----------
    clock:
        Monotonic time source for spans and the profiler; defaults to
        :func:`time.perf_counter`.  Inject a fake for deterministic tests.
    enabled:
        ``False`` disables span recording (registry counters stay live —
        they are too cheap to matter and too load-bearing to lose).
    max_spans:
        Stored-span cap forwarded to the tracer.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled: bool = True, max_spans: int = MAX_SPANS) -> None:
        clock = clock or time.perf_counter
        self.registry = MetricRegistry()
        self.tracer = Tracer(clock=clock, max_spans=max_spans, enabled=enabled)
        self.profiler = Profiler(clock=clock)

    @property
    def clock(self) -> Callable[[], float]:
        return self.tracer.clock

    def span(self, name: str, **meta: object):
        """Shorthand for ``obs.tracer.span(...)``."""
        return self.tracer.span(name, **meta)

    def snapshot(self) -> Dict[str, object]:
        """Registry snapshot plus profiler aggregates under ``profile.*``."""
        snap = self.registry.snapshot()
        for name, stat in self.profiler.snapshot().items():
            snap[f"profile.{name}"] = stat
        return snap

    def export(self) -> Dict[str, object]:
        """Plain-data (picklable) bundle of metrics + spans for shipping
        across a process border; ``absorb`` on the receiving side is the
        inverse.  The ``id`` is the registry uid — the idempotence key that
        keeps a twice-delivered worker snapshot from double-counting."""
        return {
            "id": self.registry.uid,
            "metrics": self.registry.export(),
            "spans": self.tracer.export_spans(),
        }

    def absorb(self, exported: Dict[str, object],
               key: Optional[str] = None) -> bool:
        """Fold a worker's :meth:`export` into this handle, exactly once.

        The idempotence key defaults to the bundle's registry uid; pass an
        explicit ``key`` when the *logical* identity outlives the registry
        — e.g. a retried pool task runs each attempt under a fresh registry
        (fresh uid), so only a stable task key keeps a second attempt's
        export from double-counting the first.  Returns ``False`` (and
        changes nothing) when the key was already absorbed.  Spans nest
        under the currently open span.
        """
        if not self.registry.absorb(exported["metrics"],
                                    key=key if key is not None
                                    else exported["id"]):
            return False
        self.tracer.absorb(exported.get("spans", ()))
        return True

    def report(self, max_roots: Optional[int] = 40) -> str:
        """Human-readable span tree + metric snapshot + profile table."""
        import json

        sections = []
        tree = self.tracer.render(max_roots=max_roots)
        if tree:
            sections.append("== span tree ==\n" + tree)
        sections.append("== metric registry ==\n"
                        + json.dumps(self.registry.snapshot(), indent=2,
                                     sort_keys=True))
        if self.profiler.stats:
            sections.append("== profiled call sites ==\n" + self.profiler.report())
        return "\n\n".join(sections)

    def reset(self) -> None:
        self.tracer.reset()
        self.profiler.reset()
        self.registry = MetricRegistry()


_DEFAULT: Optional[Observability] = None


def default_observability() -> Observability:
    """The process-wide fallback used by bare ``@profiled`` functions."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Observability()
    return _DEFAULT


def set_default_observability(obs: Observability) -> Observability:
    """Replace the process default; returns the previous one's successor."""
    global _DEFAULT
    _DEFAULT = obs
    return obs
