"""Training pipelines: pretraining, instruction SFT, DAPT and DAFT.

These functions reproduce the *recipes* of Section IV-A at substrate scale:

* :func:`pretrain` — autoregressive language modelling on raw sentences
  (the foundation-model stage, and ChipNeMo's DAPT when run on chip docs);
* :func:`sft` — supervised fine-tuning on prompt/response pairs with loss
  masked to the response (instruction tuning and DAFT);
* :func:`daft_lora` — the paper's retrieval-augmented DAFT: LoRA (rank 8,
  alpha 16, like Section IV-A) over context-grounded QA triplets, adapters
  folded back into the base weights afterwards.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..data.prompting import format_prompt, format_training_sequence
from ..nn.lora import apply_lora, lora_parameters, merge_lora
from ..nn.trainer import TrainConfig, Trainer, TrainResult
from ..nn.transformer import TransformerLM


def pretrain(model: TransformerLM, tokenizer, sentences: Sequence[str],
             config: Optional[TrainConfig] = None) -> TrainResult:
    """Autoregressive LM training over raw sentences (full loss)."""
    if not sentences:
        raise ValueError("no pretraining sentences")
    config = config or TrainConfig(lr=3e-3, epochs=4, batch_size=16)
    sequences = [tokenizer.encode(s, add_bos=True, add_eos=True) for s in sentences]
    sequences = [s for s in sequences if len(s) >= 2]
    trainer = Trainer(model, pad_id=tokenizer.pad_id, config=config)
    return trainer.fit(sequences)


def sft(model: TransformerLM, tokenizer,
        pairs: Sequence[Tuple[str, str]],
        config: Optional[TrainConfig] = None,
        parameters=None) -> TrainResult:
    """Supervised fine-tuning on (prompt, response) pairs.

    Loss applies only to response tokens.  Pairs that overflow the model
    context are skipped with a count check (an error if *all* overflow).
    """
    if not pairs:
        raise ValueError("no SFT pairs")
    config = config or TrainConfig(lr=2e-3, epochs=12, batch_size=16)
    sequences: List[List[int]] = []
    masks: List[List[int]] = []
    max_len = model.config.max_seq_len
    for prompt, response in pairs:
        ids, mask = format_training_sequence(tokenizer, prompt, response)
        if len(ids) + 1 > max_len:
            continue
        sequences.append(ids)
        masks.append(mask)
    if not sequences:
        raise ValueError(
            f"all {len(pairs)} SFT pairs overflow the model context ({max_len})"
        )
    trainer = Trainer(model, pad_id=tokenizer.pad_id, config=config,
                      parameters=parameters)
    return trainer.fit(sequences, masks)


def triplet_pairs(triplets) -> List[Tuple[str, str]]:
    """Render grounded QA triplets as plain DAFT (prompt, response) pairs.

    Following Figure 4(a)'s recipe, DAFT prompts contain the golden context
    and the question but *no instruction block* — this is precisely why DAFT
    erodes instruction alignment (Section II-B).
    """
    return [(format_prompt(t.question, context=t.context), t.answer) for t in triplets]


def sft_lora(model: TransformerLM, tokenizer, pairs: Sequence[Tuple[str, str]],
             rank: int = 8, alpha: float = 16.0,
             config: Optional[TrainConfig] = None, seed: int = 0) -> TransformerLM:
    """Supervised fine-tuning through LoRA adapters, folded back afterwards.

    Returns ``model`` (modified in place) with the adapters merged into the
    dense weights, ready for ChipAlign merging.
    """
    apply_lora(model, rank=rank, alpha=alpha, seed=seed)
    config = config or TrainConfig(lr=4e-3, epochs=16, batch_size=12)
    sft(model, tokenizer, pairs, config=config,
        parameters=lora_parameters(model))
    return merge_lora(model)


def daft_lora(model: TransformerLM, tokenizer, triplets,
              rank: int = 8, alpha: float = 16.0,
              config: Optional[TrainConfig] = None,
              seed: int = 0) -> TransformerLM:
    """Retrieval-augmented DAFT with LoRA (the Figure 4(a) recipe).

    Mirrors Section IV-A: LoRA rank 8, alpha 16, training on each QA pair
    with its golden context.
    """
    return sft_lora(model, tokenizer, triplet_pairs(triplets),
                    rank=rank, alpha=alpha, config=config, seed=seed)
