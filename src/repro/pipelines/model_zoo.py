"""The model zoo: every named model of the paper's experiments, buildable
and cached on disk.

Families mirror the paper's backbones at substrate scale (DESIGN.md §1):

====== ===================== =========================================
family plays the role of      variants
====== ===================== =========================================
nano   Qwen1.5-14B            base, instruct ("-Chat"), eda ("-EDA")
micro  LLaMA3-8B              base, instruct, eda
grande LLaMA2-70B             base, instruct ("-Chat"), chipnemo
====== ===================== =========================================

plus, for every family, merged variants produced by any registered merge
method (``chipalign``, ``modelsoup``, ``ta``, ``ties``, ``della``, ``dare``).

Trained checkpoints are cached under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro_chipalign``) keyed by a recipe version, so benchmarks and
examples reuse them instead of retraining.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import merge_engine as merge_engine_mod
from ..core.merge_engine import GeodesicMergeEngine
from ..core.registry import merge as registry_merge
from ..data import (eda_domain, industrial_qa, openroad_qa)
from ..data.corpus import pretraining_sentences
from ..data.extraction import extraction_pretraining_samples
from ..data.instruction_data import (counterfactual_grounded_samples,
                                     grounded_general_samples,
                                     grounded_instruction_samples,
                                     instruction_sft_samples,
                                     multi_turn_general_samples)
from ..data.prompting import format_prompt
from ..data.vocab import build_tokenizer
from ..nn.checkpoint import checkpoint_exists, load_model, save_model
from ..nn.tokenizer import WordTokenizer
from ..nn.trainer import TrainConfig
from ..nn.transformer import TransformerLM, preset_config
from .daft import daft_lora, pretrain, sft, sft_lora, triplet_pairs

#: Bump to invalidate every cached checkpoint when a recipe changes.
RECIPE_VERSION = "v1"

FAMILIES = ("nano", "micro", "grande")

#: Architecture seeds; one per family so families are distinct models.
FAMILY_SEEDS: Dict[str, int] = {"nano": 11, "micro": 22, "grande": 33}

#: The chip-model variant of each family (what ChipAlign merges with chat).
CHIP_VARIANT: Dict[str, str] = {"nano": "eda", "micro": "eda", "grande": "chipnemo"}


def default_cache_dir() -> Path:
    """Checkpoint cache directory, overridable via ``REPRO_CACHE_DIR``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    return Path(env) if env else Path.home() / ".cache" / "repro_chipalign"


class ModelZoo:
    """Build, cache, and serve every model of the reproduction."""

    def __init__(self, cache_dir: Optional[Path] = None, verbose: bool = False) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.verbose = verbose
        self._tokenizer: Optional[WordTokenizer] = None
        self._models: Dict[str, TransformerLM] = {}
        self._engines: Dict[str, GeodesicMergeEngine] = {}

    # ------------------------------------------------------------------
    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[model-zoo] {message}")

    @property
    def tokenizer(self) -> WordTokenizer:
        """The shared word tokenizer (built once, cached on disk)."""
        if self._tokenizer is None:
            path = self.cache_dir / f"tokenizer_{RECIPE_VERSION}.json"
            if path.exists():
                self._tokenizer = WordTokenizer.load(path)
            else:
                self._tokenizer = build_tokenizer()
                self._tokenizer.save(path)
        return self._tokenizer

    def _ckpt_path(self, family: str, variant: str) -> Path:
        return self.cache_dir / f"{family}_{variant}_{RECIPE_VERSION}"

    def _new_model(self, family: str) -> TransformerLM:
        config = preset_config(family, self.tokenizer.vocab_size,
                               seed=FAMILY_SEEDS[family])
        return TransformerLM(config)

    # ------------------------------------------------------------------
    # build recipes
    # ------------------------------------------------------------------
    def _build_base(self, family: str) -> TransformerLM:
        """Foundation pretraining: general text plus a light pass over the
        public chip documentation (the way web-scale corpora contain some
        EDA text)."""
        self._log(f"pretraining {family}/base")
        model = self._new_model(family)
        sentences = list(pretraining_sentences(repeats=4, seed=FAMILY_SEEDS[family]))
        sentences.extend(eda_domain.all_documentation())
        sentences.extend(industrial_qa.documentation_corpus())
        sentences.extend(extraction_pretraining_samples(
            n_samples=400, seed=FAMILY_SEEDS[family] + 7))
        pretrain(model, self.tokenizer, sentences,
                 TrainConfig(lr=3e-3, epochs=20, batch_size=16,
                             seed=FAMILY_SEEDS[family]))
        return model

    def _build_instruct(self, family: str) -> TransformerLM:
        """Instruction alignment on pool A — the public chat model."""
        self._log(f"instruction-tuning {family}/instruct")
        model = self.get(family, "base").clone()
        samples = instruction_sft_samples(pool="a", per_question=6,
                                          seed=FAMILY_SEEDS[family])
        samples += multi_turn_general_samples(n_samples=60,
                                              seed=FAMILY_SEEDS[family], pool="a")
        samples += grounded_general_samples(n_samples=120,
                                            seed=FAMILY_SEEDS[family], pool="a")
        samples += counterfactual_grounded_samples(n_samples=150,
                                                   seed=FAMILY_SEEDS[family], pool="a")
        pairs = [(s.prompt, s.response) for s in samples]
        # Refresh the base-born extraction skill so SFT does not erode it,
        # and teach the content-agnostic refusal behaviour of Figure 6.
        refresh = extraction_pretraining_samples(n_samples=80,
                                                 seed=FAMILY_SEEDS[family] + 8)
        for text in refresh:
            prompt, _, answer = text.rpartition(" assistant : ")
            pairs.append((prompt + " assistant :", answer))
        sft(model, self.tokenizer, pairs,
            TrainConfig(lr=2e-3, epochs=25, batch_size=16,
                        seed=FAMILY_SEEDS[family] + 1))
        return model

    def _build_eda(self, family: str) -> TransformerLM:
        """Figure 4(a)'s recipe: LoRA DAFT of the chat model on OpenROAD QA
        triplets with golden contexts and no instruction blocks."""
        self._log(f"DAFT (LoRA) {family}/eda")
        model = self.get(family, "instruct").clone()
        daft_lora(model, self.tokenizer, openroad_qa.train_triplets(),
                  rank=8, alpha=16.0,
                  config=TrainConfig(lr=5e-3, epochs=30, batch_size=12,
                                     seed=FAMILY_SEEDS[family] + 2),
                  seed=FAMILY_SEEDS[family] + 2)
        return model

    def _build_chipnemo(self, family: str) -> TransformerLM:
        """Figure 4(b)'s recipe at substrate scale: DAPT on chip documents,
        then DAFT on domain QA mixed with pool-B instruction data (the
        OASST / SteerLM analog that gives ChipNeMo its complementary
        alignment knowledge).

        Substitution note (see DESIGN.md): the paper's ChipNeMo branches
        from LLaMA2-70B-*Base*, where fine-tuning moves weights by a tiny
        angle relative to pretraining.  At substrate scale a full fine-tune
        from base drifts far enough from the chat model that *no* merge
        method works; to preserve the paper's mergeability precondition
        (small angular separation between same-ancestor fine-tunes) the
        DAPT+DAFT here branches from the instruction-tuned checkpoint, and
        alignment forgetting is still clearly measurable afterwards.
        """
        self._log(f"DAPT+DAFT {family}/chipnemo")
        model = self.get(family, "instruct").clone()
        pairs = triplet_pairs(industrial_qa.train_items()) * 2
        pairs += triplet_pairs(openroad_qa.train_triplets())
        grounded = grounded_instruction_samples(industrial_qa.train_items(),
                                                pool="b",
                                                seed=FAMILY_SEEDS[family] + 4)
        pairs += [(s.prompt, s.response) for s in grounded]
        chat_mix = instruction_sft_samples(pool="b", per_question=1,
                                           seed=FAMILY_SEEDS[family] + 5,
                                           include_plain=False)
        pairs += [(s.prompt, s.response) for s in chat_mix]
        # DAPT is folded into the same stage as raw-document language
        # modelling (empty-prompt pairs put the loss on the whole sentence):
        # carving domain memory and QA behaviour into one deep basin makes
        # the skill robust to interpolation, where a separate shallow DAPT
        # stage was the first casualty of merging.
        docs = eda_domain.all_documentation() + industrial_qa.documentation_corpus()
        pairs += [("", doc) for doc in docs]
        sft(model, self.tokenizer, pairs,
            TrainConfig(lr=3e-3, epochs=30, batch_size=12,
                        seed=FAMILY_SEEDS[family] + 6))
        return model

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def get(self, family: str, variant: str) -> TransformerLM:
        """Return a trained model, building and caching it if necessary."""
        if family not in FAMILIES:
            raise KeyError(f"unknown family {family!r}; choose from {FAMILIES}")
        builders = {"base": self._build_base, "instruct": self._build_instruct,
                    "eda": self._build_eda, "chipnemo": self._build_chipnemo}
        if variant not in builders:
            raise KeyError(f"unknown variant {variant!r}; choose from {sorted(builders)}")
        if variant == "eda" and family == "grande":
            raise KeyError("the grande family's chip model is 'chipnemo', not 'eda'")
        if variant == "chipnemo" and family != "grande":
            raise KeyError("'chipnemo' exists only in the grande family")
        key = f"{family}/{variant}"
        if key in self._models:
            return self._models[key]
        path = self._ckpt_path(family, variant)
        if checkpoint_exists(path):
            model, _ = load_model(path)
        else:
            model = builders[variant](family)
            save_model(model, path, metadata={"family": family, "variant": variant,
                                              "recipe": RECIPE_VERSION})
        model.eval()
        self._models[key] = model
        return model

    def chip_model(self, family: str) -> TransformerLM:
        """The family's chip-domain model (eda or chipnemo)."""
        return self.get(family, CHIP_VARIANT[family])

    def merge_engine(self, family: str) -> GeodesicMergeEngine:
        """The family's (chip, instruct) :class:`GeodesicMergeEngine`.

        Built once per family and cached: the plan (sphere projections,
        norms, angles Θ) is λ-independent, so every subsequent geodesic
        merge of the pair — any λ, schedule, or sweep — is only cheap
        coefficient math plus one fused scale-add per tensor.
        """
        if family not in self._engines:
            chip = self.chip_model(family)
            instruct = self.get(family, "instruct")
            self._engines[family] = GeodesicMergeEngine.from_models(chip, instruct)
        return self._engines[family]

    @staticmethod
    def _merged_key(family: str, method: str, kwargs: dict) -> str:
        """Canonical memo-cache key for a merged model.

        Keys are built from the kwargs the merge *actually uses*: a plain-λ
        chipalign merge normalizes to ``{"lam": float}`` with the engine's
        0.6 default filled in, so ``merged("eda")``,
        ``merged("eda", lam=0.6)`` and ``merged_sweep("eda", [0.6])`` all
        land on one cache entry instead of silently re-merging.
        """
        if method == "chipalign" and set(kwargs) <= {"lam"}:
            kwargs = {"lam": float(kwargs.get("lam", 0.6))}
        return f"{family}/merged:{method}:{sorted(kwargs.items())!r}"

    def merged(self, family: str, method: str = "chipalign", **kwargs) -> TransformerLM:
        """Merge the family's chip and instruct models with a registry method.

        Merging is fast (seconds), so merged models are built on demand and
        memo-cached in memory only.  Plain-λ chipalign merges reuse the
        family's cached :meth:`merge_engine` plan instead of re-projecting.
        """
        key = self._merged_key(family, method, kwargs)
        if key in self._models:
            return self._models[key]
        chip = self.chip_model(family)
        if method == "chipalign" and set(kwargs) <= {"lam"}:
            merged_sd = self.merge_engine(family).merge(kwargs.get("lam", 0.6))
        else:
            instruct = self.get(family, "instruct")
            base = self.get(family, "base")
            merged_sd = registry_merge(method, chip=chip.state_dict(),
                                       instruct=instruct.state_dict(),
                                       base=base.state_dict(), **kwargs)
        model = TransformerLM(chip.config)
        model.load_state_dict(dict(merged_sd))
        model.eval()
        self._models[key] = model
        return model

    def merged_sweep(self, family: str, lams,
                     n_workers: Optional[int] = None) -> List[TransformerLM]:
        """ChipAlign-merged models for every λ in ``lams`` in one pass.

        The whole sweep shares one :meth:`merge_engine` plan and evaluates
        tensor-at-a-time (:meth:`GeodesicMergeEngine.sweep`), so figure-8
        style λ studies cost one plan plus L coefficient evaluations
        instead of L full merges.  Results land in the same memo cache
        :meth:`merged` uses, so mixed call patterns never re-merge.
        ``n_workers`` forwards to the engine's pooled sweep (bit-identical
        to serial).
        """
        lams = [float(lam) for lam in lams]
        missing = [lam for lam in lams
                   if self._merged_key(family, "chipalign", {"lam": lam})
                   not in self._models]
        if missing:
            engine = self.merge_engine(family)
            config = self.chip_model(family).config
            for lam, merged_sd in zip(missing,
                                      engine.sweep(missing, n_workers=n_workers)):
                model = TransformerLM(config)
                model.load_state_dict(dict(merged_sd))
                model.eval()
                key = self._merged_key(family, "chipalign", {"lam": lam})
                self._models[key] = model
        return [self.merged(family, "chipalign", lam=lam) for lam in lams]

    def evaluate_candidates(self, family: str, lams,
                            triplets=None, workers: Optional[int] = None,
                            max_new_tokens: int = 24,
                            ) -> List[Tuple[float, float]]:
        """Score ChipAlign merge candidates at each λ on OpenROAD QA.

        Returns ``[(lam, overall ROUGE-L), ...]`` in λ order.  With
        ``workers > 1`` each candidate is rebuilt from the family engine's
        shared-memory plan and evaluated in a worker process; scores are
        bit-identical to the serial path.
        """
        if triplets is None:
            triplets = openroad_qa.eval_triplets()
        return evaluate_merged_candidates(
            self.merge_engine(family), self.chip_model(family).config,
            self.tokenizer, triplets, lams, workers=workers,
            max_new_tokens=max_new_tokens)

    def lambda_fleet(self, family: str, variants, **kwargs):
        """A :class:`~repro.serve.lambda_fleet.LambdaFleetServer` over this
        family's cached merge plan.

        All variants share the family engine's one arena-resident plan;
        ``variants`` are :class:`~repro.serve.lambda_fleet.VariantSpec`
        entries and ``kwargs`` forward to the fleet constructor
        (``serve_config``, ``replicas_per_variant``, ``variant_of``, ...).
        Caller owns the fleet's lifecycle (use a ``with`` block).
        """
        from ..serve.lambda_fleet import LambdaFleetServer

        return LambdaFleetServer(
            self.merge_engine(family), self.chip_model(family).config,
            variants, tokenizer=self.tokenizer, **kwargs)

    def prewarm(self, families=FAMILIES) -> None:
        """Build every trainable variant up front (useful before benchmarks)."""
        for family in families:
            self.get(family, "base")
            self.get(family, "instruct")
            self.chip_model(family)


# ---------------------------------------------------------------------------
# parallel candidate evaluation (zoo-independent so tests can drive it with
# throwaway engines/models instead of trained checkpoints)
# ---------------------------------------------------------------------------


def _candidate_item(lam: float) -> float:
    """Build one merged candidate and score it on OpenROAD QA.

    In a pool worker the state dict comes from the shared-memory plan
    (:func:`repro.core.merge_engine._merge_point`); in the serial fallback
    from the engine itself.  Both evaluate the identical per-λ math, so
    scores match bit-for-bit.
    """
    from ..eval.harness import LMAnswerer, run_openroad
    from ..parallel import get_task_context, worker_obs

    ctx = get_task_context()
    if merge_engine_mod._WORKER_PLAN is not None:
        merged_sd = merge_engine_mod._merge_point(lam)
    else:
        merged_sd = ctx["engine"].merge(lam)
    model = TransformerLM(ctx["config"])
    model.load_state_dict(dict(merged_sd))
    model.eval()
    answerer = LMAnswerer(model, ctx["tokenizer"],
                          max_new_tokens=ctx["max_new_tokens"],
                          name=f"candidate-{lam:g}")
    report = run_openroad(answerer, ctx["triplets"], obs=worker_obs())
    return float(report.overall)


def evaluate_merged_candidates(engine: GeodesicMergeEngine, config,
                               tokenizer, triplets, lams: Sequence[float],
                               workers: Optional[int] = None,
                               max_new_tokens: int = 24,
                               ) -> List[Tuple[float, float]]:
    """Score merge candidates at each λ (overall OpenROAD ROUGE-L).

    With ``workers > 1`` the engine's plan is published to shared memory
    once and each worker rebuilds + evaluates candidates against zero-copy
    views; per-candidate eval metrics ship back into ``engine.obs``.
    """
    from ..parallel import (WorkerPool, effective_workers, task_context,
                            task_obs)

    lams = [float(lam) for lam in lams]
    workers = effective_workers(workers)
    obs = engine.obs
    with obs.span("zoo.evaluate_candidates", candidates=len(lams),
                  workers=workers):
        with task_context(engine=engine, config=config, tokenizer=tokenizer,
                          triplets=tuple(triplets),
                          max_new_tokens=max_new_tokens):
            if workers > 1 and len(lams) > 1:
                handle, metas = engine._shared_plan()
                with WorkerPool(workers,
                                initializer=merge_engine_mod._sweep_worker_init,
                                initargs=(handle, metas), obs=obs) as pool:
                    scores = pool.map_chunked(_candidate_item, lams,
                                              chunk_size=1)
                # serial candidates account per merge() call; pooled merges
                # happen off-engine, so settle the books here.
                engine._account_evaluations(len(lams))
            else:
                with task_obs(obs):
                    scores = [_candidate_item(lam) for lam in lams]
    return list(zip(lams, scores))


_DEFAULT_ZOO: Optional[ModelZoo] = None


def default_zoo(verbose: bool = False) -> ModelZoo:
    """Process-wide shared zoo instance."""
    global _DEFAULT_ZOO
    if _DEFAULT_ZOO is None:
        _DEFAULT_ZOO = ModelZoo(verbose=verbose)
    return _DEFAULT_ZOO
