"""Experiment orchestration: model zoo, training recipes, table runners."""

from .daft import daft_lora, pretrain, sft, triplet_pairs
from .model_zoo import (CHIP_VARIANT, FAMILIES, ModelZoo, default_cache_dir,
                        default_zoo)
from .experiment import (GRANDE_LAMBDA, OPENROAD_LAMBDA, run_complexity, run_fig2, run_fig7,
                         run_fig8, run_table1, run_table2, run_table3)

__all__ = [
    "daft_lora", "pretrain", "sft", "triplet_pairs",
    "CHIP_VARIANT", "FAMILIES", "ModelZoo", "default_cache_dir", "default_zoo",
    "GRANDE_LAMBDA", "OPENROAD_LAMBDA", "run_complexity", "run_fig2", "run_fig7", "run_fig8",
    "run_table1", "run_table2", "run_table3",
]
