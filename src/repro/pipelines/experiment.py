"""Table and figure runners — the code behind every artifact in the paper's
evaluation section.

Each ``run_*`` function returns structured results plus a formatted text
table whose rows mirror the paper's layout; the benchmark files under
``benchmarks/`` and the examples call into these, so there is exactly one
implementation of each experiment.

See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for measured
vs. paper numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.merge import merge_state_dicts
from ..data import (eval_items, eval_triplets, ifeval_prompts, mcq_items,
                    multi_turn_items)
from ..data.openroad_qa import documentation_corpus
from ..eval import (GeneralOracle, LMAnswerer, RagEdaOracle, evaluate_mcq,
                    run_industrial, run_industrial_multiturn, run_openroad)
from ..eval.ifeval import evaluate_model
from ..rag import RagPipeline
from .model_zoo import ModelZoo, default_zoo

#: Substrate-scale λ defaults (see DESIGN.md §4 and EXPERIMENTS.md):
#: fine-tuning deltas are proportionally larger at substrate scale than at
#: 8B-70B, which shifts each family's optimal interpolation point toward the
#: chip model.  The λ-sweep benches (Figure 8) locate the interior optimum
#: exactly the way the paper's Section IV-E locates 0.6.
OPENROAD_LAMBDA = 0.75
GRANDE_LAMBDA = 0.9

#: Table 1's merge-method rows, in paper order, with registry kwargs.
TABLE1_METHODS: Tuple[Tuple[str, str, dict], ...] = (
    ("TA", "ta", {}),
    ("TIES", "ties", {}),
    ("DELLA", "della", {}),
    ("ModelSoup", "modelsoup", {}),
    ("ChipAlign", "chipalign", {"lam": OPENROAD_LAMBDA}),
)


def _fmt_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [max(len(str(headers[i])), max((len(str(r[i])) for r in rows), default=0))
              for i in range(len(headers))]
    def line(cells):
        return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    sep = "-+-".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


# ---------------------------------------------------------------------------
# Table 1 — OpenROAD QA ROUGE-L
# ---------------------------------------------------------------------------


@dataclass
class Table1Result:
    """ROUGE-L per method × context mode × category for one backbone family."""

    family: str
    scores: Dict[str, Dict[str, Dict[str, float]]]  # method -> mode -> col -> value
    table: str = ""


def _openroad_answerers(zoo: ModelZoo, family: str):
    """The Table-1 rows for one family, in paper order."""
    tok = zoo.tokenizer
    corpus = documentation_corpus()
    rows: List[Tuple[str, object]] = [
        ("GPT-4-sim", GeneralOracle()),
        ("RAG-EDA-sim", RagEdaOracle(corpus)),
        (f"{family}-Instruct", LMAnswerer(zoo.get(family, "instruct"), tok)),
        (f"{family}-EDA", LMAnswerer(zoo.chip_model(family), tok)),
    ]
    for label, method, kwargs in TABLE1_METHODS:
        rows.append((f"{family}-{label}",
                     LMAnswerer(zoo.merged(family, method, **kwargs), tok)))
    return rows


def run_table1(families: Sequence[str] = ("nano", "micro"),
               zoo: Optional[ModelZoo] = None,
               max_items: Optional[int] = None) -> List[Table1Result]:
    """Reproduce Table 1: ROUGE-L on OpenROAD QA, golden and RAG contexts."""
    zoo = zoo or default_zoo()
    triplets = eval_triplets()
    if max_items:
        triplets = triplets[:max_items]
    rag = RagPipeline(documentation_corpus())
    results: List[Table1Result] = []
    columns = ["functionality", "vlsi_flow", "gui_install_test", "all"]
    for family in families:
        scores: Dict[str, Dict[str, Dict[str, float]]] = {}
        rows = []
        for name, answerer in _openroad_answerers(zoo, family):
            scores[name] = {}
            row = [name]
            for mode in ("golden", "rag"):
                report = run_openroad(answerer, triplets, context_mode=mode,
                                      rag_pipeline=rag)
                cells = dict(report.by_category)
                cells["all"] = report.overall
                scores[name][mode] = cells
                row.extend(f"{cells[c]:.3f}" for c in columns)
            rows.append(row)
        headers = (["method"] + [f"golden:{c}" for c in columns]
                   + [f"rag:{c}" for c in columns])
        results.append(Table1Result(family, scores, _fmt_table(headers, rows)))
    return results


# ---------------------------------------------------------------------------
# Table 2 — industrial chip QA
# ---------------------------------------------------------------------------


@dataclass
class Table2Result:
    """Judge scores per model × turn setting × category."""

    scores: Dict[str, Dict[str, Dict[str, float]]]  # model -> setting -> col -> value
    table: str = ""


def grande_models(zoo: ModelZoo, lam: float = GRANDE_LAMBDA):
    """The Table-2 model trio (plus the paper-default λ merge for reference)."""
    tok = zoo.tokenizer
    return [
        ("LLaMA2-70B-Chat (grande-instruct)", LMAnswerer(zoo.get("grande", "instruct"), tok)),
        ("LLaMA2-70B-ChipNeMo (grande-chipnemo)", LMAnswerer(zoo.get("grande", "chipnemo"), tok)),
        (f"LLaMA2-70B-ChipAlign (lam={lam})",
         LMAnswerer(zoo.merged("grande", "chipalign", lam=lam), tok)),
        ("LLaMA2-70B-ChipAlign (lam=0.6, paper default)",
         LMAnswerer(zoo.merged("grande", "chipalign", lam=0.6), tok)),
    ]


def run_table2(zoo: Optional[ModelZoo] = None) -> Table2Result:
    """Reproduce Table 2: GPT-4-style judge scores on industrial chip QA."""
    zoo = zoo or default_zoo()
    single = eval_items()
    multi = multi_turn_items()
    columns = ["arch", "build", "lsf", "testgen", "all"]
    scores: Dict[str, Dict[str, Dict[str, float]]] = {}
    rows = []
    for name, answerer in grande_models(zoo):
        s_rep = run_industrial(answerer, single)
        m_rep = run_industrial_multiturn(answerer, multi)
        scores[name] = {}
        row = [name]
        for setting, rep in (("single", s_rep), ("multi", m_rep)):
            cells = dict(rep.by_category)
            cells["all"] = rep.overall
            scores[name][setting] = cells
            row.extend(f"{cells.get(c, float('nan')):.1f}" for c in columns)
        rows.append(row)
    headers = (["model"] + [f"single:{c}" for c in columns]
               + [f"multi:{c}" for c in columns])
    return Table2Result(scores, _fmt_table(headers, rows))


# ---------------------------------------------------------------------------
# Table 3 — IFEval
# ---------------------------------------------------------------------------


@dataclass
class Table3Result:
    """IFEval accuracies per model."""

    scores: Dict[str, Dict[str, float]]
    table: str = ""


def run_table3(zoo: Optional[ModelZoo] = None,
               n_prompts: int = 120) -> Table3Result:
    """Reproduce Table 3: instruction-following accuracy on IFEval."""
    zoo = zoo or default_zoo()
    tok = zoo.tokenizer
    prompts = ifeval_prompts(n_prompts=n_prompts)
    models = [
        ("micro-Instruct (LLaMA3-8B-Instruct)", zoo.get("micro", "instruct")),
        ("micro-EDA (LLaMA3-8B-EDA)", zoo.chip_model("micro")),
        ("micro-ChipAlign", zoo.merged("micro", "chipalign", lam=OPENROAD_LAMBDA)),
        ("grande-Chat (LLaMA2-70B-Chat)", zoo.get("grande", "instruct")),
        ("grande-ChipNeMo (LLaMA2-70B-ChipNeMo)", zoo.get("grande", "chipnemo")),
        ("grande-ChipAlign", zoo.merged("grande", "chipalign", lam=GRANDE_LAMBDA)),
    ]
    scores: Dict[str, Dict[str, float]] = {}
    rows = []
    for name, model in models:
        result = evaluate_model(model, tok, prompts)
        scores[name] = result.as_dict()
        rows.append([name,
                     f"{result.prompt_strict * 100:.1f}",
                     f"{result.prompt_loose * 100:.1f}",
                     f"{result.instruction_strict * 100:.1f}",
                     f"{result.instruction_loose * 100:.1f}"])
    headers = ["model", "prompt-strict", "prompt-loose", "inst-strict", "inst-loose"]
    return Table3Result(scores, _fmt_table(headers, rows))


# ---------------------------------------------------------------------------
# Figure 7 — multi-choice chip QA; Figure 2 — radar
# ---------------------------------------------------------------------------


@dataclass
class Fig7Result:
    """MCQ accuracy per model × domain."""

    scores: Dict[str, Dict[str, float]]
    table: str = ""


def run_fig7(zoo: Optional[ModelZoo] = None) -> Fig7Result:
    """Reproduce Figure 7: multi-choice chip QA accuracy (grande trio)."""
    zoo = zoo or default_zoo()
    tok = zoo.tokenizer
    items = mcq_items()
    models = [
        ("Chat", zoo.get("grande", "instruct")),
        ("ChipNeMo", zoo.get("grande", "chipnemo")),
        ("ChipAlign", zoo.merged("grande", "chipalign", lam=GRANDE_LAMBDA)),
    ]
    scores: Dict[str, Dict[str, float]] = {}
    rows = []
    for name, model in models:
        result = evaluate_mcq(model, tok, items)
        cells = dict(result.by_domain)
        cells["overall"] = result.overall
        scores[name] = cells
        rows.append([name] + [f"{cells[d] * 100:.1f}"
                              for d in ("eda_scripts", "bugs", "circuits", "overall")])
    headers = ["model", "eda_scripts", "bugs", "circuits", "overall"]
    return Fig7Result(scores, _fmt_table(headers, rows))


@dataclass
class Fig2Result:
    """Min-max-normalised capability axes per model (the radar chart data)."""

    axes: List[str]
    raw: Dict[str, Dict[str, float]]
    normalized: Dict[str, Dict[str, float]]
    table: str = ""


def run_fig2(zoo: Optional[ModelZoo] = None) -> Fig2Result:
    """Reproduce Figure 2: the capability radar for the grande trio.

    Axes: IFEval prompt-strict/loose, industrial single/multi-turn, and the
    three MCQ domains; values min-max normalised per axis across models,
    following the paper's normalisation."""
    zoo = zoo or default_zoo()
    table3 = run_table3(zoo, n_prompts=60)
    table2 = run_table2(zoo)
    fig7 = run_fig7(zoo)
    name_map = {
        "Chat": ("grande-Chat (LLaMA2-70B-Chat)",
                 "LLaMA2-70B-Chat (grande-instruct)"),
        "ChipNeMo": ("grande-ChipNeMo (LLaMA2-70B-ChipNeMo)",
                     "LLaMA2-70B-ChipNeMo (grande-chipnemo)"),
        "ChipAlign": ("grande-ChipAlign",
                      f"LLaMA2-70B-ChipAlign (lam={GRANDE_LAMBDA})"),
    }
    axes = ["ifeval_strict", "ifeval_loose", "industrial_single",
            "industrial_multi", "mcq_scripts", "mcq_bugs", "mcq_circuits"]
    raw: Dict[str, Dict[str, float]] = {}
    for label, (t3_name, t2_name) in name_map.items():
        raw[label] = {
            "ifeval_strict": table3.scores[t3_name]["prompt_strict"],
            "ifeval_loose": table3.scores[t3_name]["prompt_loose"],
            "industrial_single": table2.scores[t2_name]["single"]["all"],
            "industrial_multi": table2.scores[t2_name]["multi"]["all"],
            "mcq_scripts": fig7.scores[label]["eda_scripts"],
            "mcq_bugs": fig7.scores[label]["bugs"],
            "mcq_circuits": fig7.scores[label]["circuits"],
        }
    normalized: Dict[str, Dict[str, float]] = {label: {} for label in raw}
    for axis in axes:
        values = [raw[label][axis] for label in raw]
        lo, hi = min(values), max(values)
        span = (hi - lo) or 1.0
        for label in raw:
            normalized[label][axis] = (raw[label][axis] - lo) / span
    rows = [[label] + [f"{normalized[label][a]:.2f}" for a in axes] for label in raw]
    return Fig2Result(axes, raw, normalized, _fmt_table(["model"] + axes, rows))


# ---------------------------------------------------------------------------
# Figure 8 — λ sensitivity
# ---------------------------------------------------------------------------


@dataclass
class Fig8Result:
    """ROUGE-L along the λ sweep per family."""

    lams: List[float]
    scores: Dict[str, List[float]]  # family -> rouge per lam
    table: str = ""


def run_fig8(families: Sequence[str] = ("nano", "micro"),
             lams: Optional[Sequence[float]] = None,
             zoo: Optional[ModelZoo] = None,
             max_items: Optional[int] = None) -> Fig8Result:
    """Reproduce Figure 8: OpenROAD QA ROUGE-L as a function of λ.

    The whole λ sweep shares one merge plan per family
    (:meth:`ModelZoo.merged_sweep`) — projections, norms, and angles are
    computed once, not once per λ point.
    """
    zoo = zoo or default_zoo()
    tok = zoo.tokenizer
    lams = list(lams) if lams is not None else [round(0.1 * i, 1) for i in range(11)]
    triplets = eval_triplets()
    if max_items:
        triplets = triplets[:max_items]
    scores: Dict[str, List[float]] = {}
    for family in families:
        series = []
        for model in zoo.merged_sweep(family, lams):
            report = run_openroad(LMAnswerer(model, tok), triplets,
                                  context_mode="golden")
            series.append(report.overall)
        scores[family] = series
    rows = [[f"{lam:.1f}"] + [f"{scores[f][i]:.3f}" for f in families]
            for i, lam in enumerate(lams)]
    return Fig8Result(list(lams), scores, _fmt_table(["lambda"] + list(families), rows))


# ---------------------------------------------------------------------------
# §III-C — complexity
# ---------------------------------------------------------------------------


@dataclass
class ComplexityResult:
    """Merge wall-time versus parameter count."""

    param_counts: List[int]
    seconds: List[float]
    table: str = ""

    @property
    def linear_fit_r2(self) -> float:
        """R² of a linear (through-origin) fit of time vs parameters."""
        x = np.asarray(self.param_counts, dtype=np.float64)
        y = np.asarray(self.seconds, dtype=np.float64)
        slope = (x * y).sum() / (x * x).sum()
        pred = slope * x
        ss_res = ((y - pred) ** 2).sum()
        ss_tot = ((y - y.mean()) ** 2).sum()
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0


def run_complexity(sizes: Sequence[Tuple[int, int]] = ((32, 1), (64, 2), (96, 3), (128, 4)),
                   vocab: int = 512, repeats: int = 3) -> ComplexityResult:
    """Verify §III-C: ChipAlign's merge time scales linearly in parameters."""
    from ..nn.transformer import TransformerConfig, TransformerLM

    param_counts: List[int] = []
    seconds: List[float] = []
    for dim, layers in sizes:
        config = TransformerConfig(vocab_size=vocab, dim=dim, n_layers=layers,
                                   n_heads=max(2, dim // 16), max_seq_len=64, seed=0)
        a = TransformerLM(config).state_dict()
        b = TransformerLM(TransformerConfig(**{**config.to_dict(), "seed": 1})).state_dict()
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            merge_state_dicts(a, b, lam=0.6)
            best = min(best, time.perf_counter() - start)
        param_counts.append(sum(w.size for w in a.values()))
        seconds.append(best)
    rows = [[f"{p:,}", f"{s * 1000:.2f} ms"] for p, s in zip(param_counts, seconds)]
    result = ComplexityResult(param_counts, seconds, _fmt_table(["params", "merge time"], rows))
    return result
