"""Continuous micro-batching scheduler.

The scheduler owns the request queue and the set of running sequences and
advances the whole system one *step* at a time.  Each step:

1. **expire** — queued or running requests past their deadline are evicted
   with :data:`~repro.serve.request.FinishReason.DEADLINE`;
2. **admit** — while the batch has free slots, the highest-priority queued
   request (FIFO within a priority) is prefilled: the session store and
   prefix pool are consulted for reusable KV state, only the unseen prompt
   suffix runs through the model, and the first token is sampled from the
   prefill logits (time-to-first-token is measured here);
3. **decode** — one batched engine step advances every running sequence by
   one token; finished sequences (eos / token budget / context exhaustion)
   free their slots for the next step's admissions.

Prefill is sequence-at-a-time and decode is token-at-a-time across the
batch — the Orca-style interleaving that keeps short requests from waiting
behind long ones.  With a fixed submission order and a deterministic clock,
the whole schedule — admission order, batch composition, sampled tokens —
is reproducible.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..nn.infer import InferenceEngine, _LayerCache
from ..nn.sampling import sample_next
from ..obs import Observability
from .cache import PrefixCachePool
from .engine import (DECODE_MODES, KV_MODES, WEIGHT_MODES, BatchedEngine,
                     SequenceHandle)
from .metrics import ServerMetrics
from .request import Completion, FinishReason, Request, RequestStatus
from .sessions import SessionStore


@dataclass(frozen=True)
class ServeConfig:
    """Scheduler/server tuning knobs.

    The cheap-decode axes (DESIGN.md §11): ``weight_mode="int8"`` serves
    per-channel-quantized weights through the fused dequant-matmul kernel,
    ``kv_mode="paged"`` backs fused decode with block-pool KV allocation,
    and ``speculative_tokens=γ > 0`` drafts γ-token chains with a cheap
    draft model and verifies them in one target forward (requires a
    ``draft_model`` on the server).  All three are output-preserving:
    byte-identical token streams against their oracles is what the
    ``tests/test_decode.py`` differential suite asserts.
    """

    max_batch_size: int = 8
    decode_mode: str = "fused"
    prefix_cache: bool = True
    prefix_cache_entries: int = 32
    prefix_min_tokens: int = 8
    session_capacity: int = 32
    weight_mode: str = "fp32"
    kv_mode: str = "dense"
    kv_block_tokens: int = 16
    speculative_tokens: int = 0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.decode_mode not in DECODE_MODES:
            raise ValueError(f"decode_mode must be one of {DECODE_MODES}")
        if self.weight_mode not in WEIGHT_MODES:
            raise ValueError(f"weight_mode must be one of {WEIGHT_MODES}")
        if self.kv_mode not in KV_MODES:
            raise ValueError(f"kv_mode must be one of {KV_MODES}")
        if self.kv_block_tokens < 1:
            raise ValueError("kv_block_tokens must be >= 1")
        if self.speculative_tokens < 0:
            raise ValueError("speculative_tokens must be >= 0")


class _Sequence:
    """Mutable state of one running request."""

    __slots__ = ("request", "handle", "out", "last_token", "rng",
                 "covered_ids", "prompt", "reused", "first_token_at",
                 "terminal", "draft_caches")

    def __init__(self, request: Request, prompt: Tuple[int, ...],
                 handle: SequenceHandle, reused: int) -> None:
        self.request = request
        self.prompt = prompt
        self.handle = handle
        self.reused = reused
        self.out: List[int] = []
        self.last_token: Optional[int] = None
        self.rng = np.random.default_rng(request.params.seed)
        #: Tokens whose KV state the caches currently hold.
        self.covered_ids: List[int] = list(prompt)
        #: Draft-model KV caches (speculative decoding only), lazily built
        #: and caught up from ``covered_ids`` on the first speculation round.
        self.draft_caches: Optional[List[_LayerCache]] = None
        self.first_token_at: Optional[float] = None
        #: Terminal status once finished/expired/cancelled; the guard that
        #: makes every sequence produce exactly one terminal outcome even
        #: when ``cancel`` fires from inside an ``on_token`` callback
        #: mid-decode-step.
        self.terminal: Optional[str] = None


class Scheduler:
    """Admission, batching, and eviction policy over a :class:`BatchedEngine`.

    Parameters
    ----------
    engine:
        The batched engine to drive (its ``decode_mode`` is set from the
        config when constructed through :class:`~repro.serve.server.InProcessServer`).
    config:
        Scheduling knobs.
    clock:
        Monotonic time source.  Injectable so tests and the deterministic
        load generator can run on a manual clock.
    eos_id:
        End-of-sequence token id (usually the tokenizer's); ``None``
        disables eos stopping regardless of per-request ``stop_on_eos``.
    obs:
        Shared :class:`~repro.obs.Observability`; the scheduler records
        ``serve.*`` counters into its registry and spans
        (``serve.step`` → ``serve.prefill`` / ``serve.decode_step`` /
        ``serve.expire``) into its tracer.  A private instance is created
        when none is supplied, so independent servers never mix metrics.
    """

    def __init__(self, engine: BatchedEngine, config: ServeConfig = ServeConfig(),
                 clock: Callable[[], float] = time.monotonic,
                 eos_id: Optional[int] = None,
                 obs: Optional[Observability] = None,
                 draft_engine: Optional[InferenceEngine] = None) -> None:
        self.engine = engine
        self.config = config
        self.clock = clock
        self.eos_id = eos_id
        self.draft_engine = draft_engine
        if config.speculative_tokens > 0:
            if draft_engine is None:
                raise ValueError("speculative_tokens > 0 requires a draft "
                                 "engine (pass draft_model to the server)")
            if draft_engine.config.vocab_size != engine.config.vocab_size:
                raise ValueError("draft and target models must share a vocab")
        #: Speculation counters: chains drafted, draft tokens proposed, and
        #: draft tokens accepted (the acceptance rate is the benchmark's
        #: honesty flag — speculation cannot win when the draft disagrees).
        self.spec_rounds = 0
        self.spec_drafted = 0
        self.spec_accepted = 0
        self.obs = obs if obs is not None else Observability(clock=clock)
        self.prefix_pool: Optional[PrefixCachePool] = (
            PrefixCachePool(max_entries=config.prefix_cache_entries,
                            min_match_tokens=config.prefix_min_tokens)
            if config.prefix_cache else None)
        self.sessions = SessionStore(capacity=config.session_capacity)
        self.metrics = ServerMetrics(config.max_batch_size,
                                     registry=self.obs.registry, clock=clock)
        if hasattr(engine, "attach_kv_metrics"):
            # KV-plane counters (bytes copied, blocks shared) flow through
            # the same registry as the serve.* counters, so obs-report and
            # the fleet metrics merge see them for free.
            engine.attach_kv_metrics(self.obs.registry)
        self._queue: List[Tuple[int, int, Request]] = []  # (-priority, seqno, req)
        self._seqno = 0
        self._submitted_at: Dict[str, float] = {}
        self._running: List[_Sequence] = []
        self._completions: List[Completion] = []
        #: Streaming hook: called as ``on_token(request, token, index)`` the
        #: moment a token is appended to a sequence (prefill's first token
        #: included).  The callback may call :meth:`cancel` — including for
        #: the very request being advanced — without corrupting the step.
        self.on_token: Optional[Callable[[Request, int, int], None]] = None
        #: Fair-share enqueue hook: called at the top of each step with the
        #: number of free batch slots; every returned request is submitted.
        #: An admission layer uses this to keep scheduling order authority
        #: (weighted fair queueing) outside the scheduler while reusing its
        #: expiry/metrics machinery unchanged.
        self.refill: Optional[Callable[[int], List[Request]]] = None

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def running_count(self) -> int:
        return len(self._running)

    @property
    def idle(self) -> bool:
        return not self._queue and not self._running

    def submit(self, request: Request) -> None:
        """Enqueue a request (does not run any model work)."""
        if request.request_id in self._submitted_at:
            raise ValueError(f"duplicate request_id {request.request_id!r}")
        now = self.clock()
        self._submitted_at[request.request_id] = now
        heapq.heappush(self._queue, (-request.priority, self._seqno, request))
        self._seqno += 1
        self.metrics.requests_submitted += 1
        self.metrics.mark_busy(now)

    def cancel(self, request_id: str) -> bool:
        """Cancel a queued or running request; returns whether it was found.

        Safe to call re-entrantly from an :attr:`on_token` callback while a
        decode step is in flight (a streaming client disconnecting is
        exactly this ordering): the sequence is finished exactly once and
        the in-progress step will not resurrect it.  Cancelling a request
        that already produced its terminal completion returns ``False`` and
        records nothing, so every request has exactly one terminal outcome.
        """
        for i, (_, _, request) in enumerate(self._queue):
            if request.request_id == request_id:
                del self._queue[i]
                heapq.heapify(self._queue)
                self._complete(request, RequestStatus.CANCELLED,
                               FinishReason.CANCELLED)
                self.metrics.requests_cancelled += 1
                return True
        for seq in list(self._running):
            if seq.request.request_id == request_id:
                if seq.terminal is not None:
                    return False
                if seq in self._running:
                    self._running.remove(seq)
                self._finish_seq(seq, RequestStatus.CANCELLED,
                                 FinishReason.CANCELLED)
                self.metrics.requests_cancelled += 1
                return True
        return False

    def drain_completions(self) -> List[Completion]:
        """Completions accumulated since the last drain."""
        done, self._completions = self._completions, []
        return done

    def accounting(self) -> Dict[str, int]:
        """Request-conservation ledger: every submitted request is either
        still in flight (queued/running) or reached exactly one terminal
        outcome.  ``conservation_ok`` is the invariant the fuzz suite and
        the net server's drain path assert."""
        counts = {
            "submitted": int(self.metrics.requests_submitted),
            "finished": int(self.metrics.requests_finished),
            "expired": int(self.metrics.requests_expired),
            "cancelled": int(self.metrics.requests_cancelled),
            "queued": len(self._queue),
            "running": len(self._running),
        }
        counts["conservation_ok"] = int(
            counts["submitted"] == counts["finished"] + counts["expired"]
            + counts["cancelled"] + counts["queued"] + counts["running"])
        return counts

    # ------------------------------------------------------------------
    def step(self) -> List[Completion]:
        """Run one scheduler iteration; returns completions it produced."""
        before = len(self._completions)
        now = self.clock()
        with self.obs.span("serve.step"):
            # Refill before expiry: a released request whose deadline has
            # already passed is evicted this very step instead of burning a
            # prefill first.
            if self.refill is not None:
                free = (self.config.max_batch_size - len(self._running)
                        - len(self._queue))
                if free > 0:
                    for request in self.refill(free):
                        self.submit(request)
            self._expire(now)
            self._admit(now)
            if self._running:
                self.metrics.record_step(len(self._queue), len(self._running))
                with self.obs.span("serve.decode_step",
                                   batch=len(self._running)):
                    self._decode_step()
        if self.idle:
            self.metrics.mark_idle(self.clock())
        return self._completions[before:]

    def run_until_idle(self, max_steps: Optional[int] = None) -> List[Completion]:
        """Step until queue and batch are empty; returns all completions."""
        steps = 0
        while not self.idle:
            self.step()
            steps += 1
            if max_steps is not None and steps >= max_steps:
                break
        return self.drain_completions()

    # ------------------------------------------------------------------
    def _expire(self, now: float) -> None:
        def stale(request: Request) -> bool:
            # >= so a request expires on the tick that *reaches* its
            # deadline, matching the net layer's retry_after_s accounting
            # (deadline - now == 0 means no budget left, not one free step).
            return request.deadline is not None and now >= request.deadline

        n_stale = (sum(stale(item[2]) for item in self._queue)
                   + sum(stale(seq.request) for seq in self._running))
        if not n_stale:
            return
        with self.obs.span("serve.expire", evicted=n_stale):
            live = []
            for item in self._queue:
                request = item[2]
                if stale(request):
                    self.metrics.requests_expired += 1
                    self._complete(request, RequestStatus.EXPIRED,
                                   FinishReason.DEADLINE)
                else:
                    live.append(item)
            if len(live) != len(self._queue):
                self._queue = live
                heapq.heapify(self._queue)
            for seq in list(self._running):
                if stale(seq.request):
                    self._running.remove(seq)
                    self.metrics.requests_expired += 1
                    self._finish_seq(seq, RequestStatus.EXPIRED,
                                     FinishReason.DEADLINE)

    def _admit(self, now: float) -> None:
        max_ctx = self.engine.config.max_seq_len
        while self._queue and len(self._running) < self.config.max_batch_size:
            _, _, request = heapq.heappop(self._queue)
            t_admit = self.clock()
            prompt = tuple(request.prompt_ids[-max_ctx:])
            reused, entry = 0, None
            if request.session_id is not None:
                reused, entry = self.sessions.lookup_prefix(
                    request.session_id, prompt)
            pool_covers = False
            if reused == 0 and self.prefix_pool is not None:
                reused, entry = self.prefix_pool.lookup(prompt)
                # A maximal hit (the lookup cap is len-1) means the stored
                # entry already serves every lookup this prompt's KV could
                # serve — re-inserting would be a pure copy/retain burn and
                # an LRU-refresh the lookup just performed anyway.
                pool_covers = entry is not None and reused >= len(prompt) - 1
            with self.obs.span("serve.prefill", tokens=len(prompt) - reused,
                               reused=reused):
                handle = self.engine.begin_sequence(entry, reused)
                logits = self.engine.prefill_into(prompt, handle)
                if self.prefix_pool is not None and not pool_covers:
                    self.prefix_pool.insert(
                        prompt,
                        lambda: self.engine.make_entry(handle, len(prompt)))
                seq = _Sequence(request, prompt, handle, reused)
            self.metrics.prefill_tokens += len(prompt) - reused
            self.metrics.cached_prefix_tokens += reused
            self.metrics.record_admission(self.clock() - t_admit)
            submitted = self._submitted_at[request.request_id]
            self.metrics.record_queue_wait(now - submitted)
            seq.first_token_at = now
            self.metrics.record_ttft(now - submitted)
            if self._advance(seq, logits):
                self._running.append(seq)

    def _decode_step(self) -> None:
        if self.draft_engine is not None and self.config.speculative_tokens > 0:
            self._decode_step_speculative()
            return
        # Work on a snapshot: an on_token callback may cancel any member of
        # the batch (mutating self._running) mid-iteration.
        batch = list(self._running)
        tokens = [seq.last_token for seq in batch]
        for seq in batch:
            seq.covered_ids.append(seq.last_token)
        logits = self.engine.decode(tokens, [seq.handle for seq in batch])
        for row, seq in enumerate(batch):
            if seq.terminal is None:  # skip seqs cancelled earlier this step
                self._advance(seq, logits, row=row)
        self._running = [seq for seq in batch if seq.terminal is None]

    def _decode_step_speculative(self) -> None:
        """One scheduler step in speculative mode: each running sequence
        drafts a γ-token chain and verifies it against one target forward.

        Emitted tokens are byte-identical to the non-speculative path by
        construction — every token is sampled from *target* logits with the
        request's own rng, in the same order, one draw per token; the draft
        only decides how many target logit rows one forward pass yields.
        """
        batch = list(self._running)
        for seq in batch:
            if seq.terminal is None:  # skip seqs cancelled earlier this step
                self._speculate_seq(seq)
        self._running = [seq for seq in batch if seq.terminal is None]

    def _speculate_seq(self, seq: _Sequence) -> None:
        engine, draft = self.engine, self.draft_engine
        base = len(seq.covered_ids)  # == seq.handle.length
        seq.covered_ids.append(seq.last_token)
        # Cap the chain so the verify forward never overruns the target's
        # context window (the final row's CONTEXT stop still fires through
        # _advance, exactly as sequential decode would hit it).
        gamma = min(self.config.speculative_tokens,
                    engine.config.max_seq_len - (base + 1))
        # 1. The draft proposes greedily from its own KV state, catching up
        # on any covered tokens it has not seen (its first round replays
        # the whole prompt — a cheap-model prefill).
        if seq.draft_caches is None:
            seq.draft_caches = [_LayerCache() for _ in draft.layers]
        proposals: List[int] = []
        if gamma > 0:
            catch_up = seq.covered_ids[seq.draft_caches[0].length:]
            d_logits = draft._forward(catch_up, seq.draft_caches)
            for i in range(gamma):
                proposals.append(int(np.argmax(d_logits)))
                # No forward after the last proposal — its logits would
                # never be read (the next round's catch-up replays it).
                if (i + 1 == gamma or seq.draft_caches[0].length
                        >= draft.config.max_seq_len):
                    break
                d_logits = draft._forward([proposals[-1]], seq.draft_caches)
        self.spec_rounds += 1
        self.spec_drafted += len(proposals)
        # 2. One target forward scores last_token plus every proposal; its
        # KV side effect covers the whole chain, rolled back below.
        scores = engine.verify_scores([seq.last_token] + proposals,
                                      seq.handle)
        # 3. Exact accept/reject: row i is sampled with the request rng
        # exactly as sequential decode would sample it; a proposal survives
        # only if it *equals* the sampled token.  ``kv_length`` tells
        # _advance what the sequential cache length would be, so the
        # CONTEXT stop and session export see verified positions only.
        for i in range(len(proposals) + 1):
            if not self._advance(seq, scores, row=i, kv_length=base + 1 + i):
                return  # finished/cancelled: covered_ids is the valid prefix
            if i < len(proposals) and seq.last_token == proposals[i]:
                seq.covered_ids.append(seq.last_token)
                # Counted inline so acceptances in a round that ends the
                # request (the _advance early return above) are not lost.
                self.spec_accepted += 1
                continue
            break
        # 4. Roll back target KV past the verified prefix and keep the
        # draft's cache a covered-ids prefix for the next round.
        engine.truncate_kv(seq.handle, len(seq.covered_ids))
        keep = min(seq.draft_caches[0].length, len(seq.covered_ids))
        for cache in seq.draft_caches:
            cache.truncate(keep)

    def spec_stats(self) -> Dict[str, float]:
        """Speculation counters plus the derived acceptance rate."""
        return {
            "rounds": self.spec_rounds,
            "drafted": self.spec_drafted,
            "accepted": self.spec_accepted,
            "acceptance_rate": (self.spec_accepted / self.spec_drafted
                                if self.spec_drafted else 0.0),
        }

    def _advance(self, seq: _Sequence, logits: np.ndarray,
                 row: Optional[int] = None,
                 kv_length: Optional[int] = None) -> bool:
        """Sample one token for ``seq`` and apply the stop conditions.

        Mirrors :meth:`InferenceEngine.generate` exactly: an eos token ends
        the sequence without being emitted, the token budget is checked
        after appending, and context exhaustion stops decoding once the
        cache reaches the model's window.  ``kv_length`` overrides the
        handle's raw length for that last check — during speculative
        verification the cache transiently holds unverified positions, and
        the stop must fire where *sequential* decode would have fired.
        Returns True while running.
        """
        params = seq.request.params
        vec = logits if row is None else logits[row]
        token = sample_next(vec, temperature=params.temperature, rng=seq.rng,
                            top_k=params.top_k, top_p=params.top_p)
        if params.stop_on_eos and self.eos_id is not None and token == self.eos_id:
            self._finish_seq(seq, RequestStatus.FINISHED, FinishReason.EOS)
            return False
        seq.out.append(token)
        self.metrics.tokens_generated += 1
        if self.on_token is not None:
            # The callback may cancel this very sequence (streaming client
            # gone); _finish_seq's terminal guard keeps the outcome single.
            self.on_token(seq.request, token, len(seq.out) - 1)
            if seq.terminal is not None:
                return False
        if len(seq.out) >= params.max_new_tokens:
            self._finish_seq(seq, RequestStatus.FINISHED, FinishReason.LENGTH)
            return False
        if (seq.handle.length if kv_length is None else kv_length) \
                >= self.engine.config.max_seq_len:
            self._finish_seq(seq, RequestStatus.FINISHED, FinishReason.CONTEXT)
            return False
        seq.last_token = token
        return True

    # ------------------------------------------------------------------
    def _finish_seq(self, seq: _Sequence, status: str, reason: str) -> None:
        if seq.terminal is not None:  # exactly one terminal outcome
            return
        seq.terminal = status
        request = seq.request
        if status == RequestStatus.FINISHED:
            self.metrics.requests_finished += 1
            if request.session_id is not None:
                # Retain exactly the covered prefix: during speculative
                # verification the cache transiently holds unverified
                # chain positions past covered_ids (in the non-speculative
                # path the two lengths are always equal).  make_entry keeps
                # resident blocks by reference instead of exporting copies.
                self.sessions.update(
                    request.session_id, seq.covered_ids,
                    lambda: self.engine.make_entry(seq.handle,
                                                   len(seq.covered_ids)))
        self.engine.release(seq.handle)
        submitted = self._submitted_at.pop(request.request_id, None)
        ttft = (seq.first_token_at - submitted
                if seq.first_token_at is not None and submitted is not None
                else None)
        self._completions.append(Completion(
            request_id=request.request_id,
            status=status,
            token_ids=tuple(seq.out),
            finish_reason=reason,
            ttft=ttft,
            queue_wait=ttft,
            prefill_tokens=len(seq.prompt) - seq.reused,
            cached_prefix_tokens=seq.reused,
            text=None,
        ))

    def _complete(self, request: Request, status: str, reason: str) -> None:
        """Terminal record for a request that never ran (expired/cancelled)."""
        self._submitted_at.pop(request.request_id, None)
        self._completions.append(Completion(
            request_id=request.request_id, status=status, finish_reason=reason))
