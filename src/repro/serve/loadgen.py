"""Deterministic synthetic load generation and the serial-vs-served benchmark.

The workload models the traffic shape ChipAlign deployments actually see: a
fleet of engineers asking questions through the same assistant, so every
prompt opens with the same instruction/context block (the shared prefix) and
diverges only in the question tail.  Prompts are built directly in token-id
space from a seeded RNG, so a given :class:`WorkloadSpec` always produces
the same requests — no tokenizer or trained checkpoint required.

:func:`run_serve_benchmark` drives the same workload through (a) the serial
one-request-at-a-time :class:`~repro.nn.infer.InferenceEngine` baseline and
(b) an :class:`~repro.serve.server.InProcessServer`, and reports throughput,
latency, and prefix-cache statistics for both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.infer import InferenceEngine
from .request import SamplingParams
from .scheduler import ServeConfig
from .server import InProcessServer


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a synthetic request burst."""

    n_requests: int = 16
    #: Tokens of instruction/context block shared by every prompt.
    shared_prefix_tokens: int = 96
    #: Tokens unique to each request (the "question" tail).
    unique_tokens: int = 12
    #: Decode budget per request.
    max_new_tokens: int = 24
    #: Token-id universe the prompts draw from (kept below the model vocab).
    vocab_size: int = 64
    temperature: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.unique_tokens < 1:
            raise ValueError("unique_tokens must be >= 1 (prompts must differ)")


def synthetic_prompts(spec: WorkloadSpec) -> List[Tuple[int, ...]]:
    """The workload's prompts: shared prefix + per-request unique tail.

    Token ids start at 1 (0 is conventionally padding) and are generated
    from ``spec.seed`` alone, so the same spec always yields the same burst.
    """
    rng = np.random.default_rng(spec.seed)
    high = max(2, spec.vocab_size)
    prefix = tuple(int(t) for t in rng.integers(1, high, size=spec.shared_prefix_tokens))
    prompts = []
    for _ in range(spec.n_requests):
        tail = tuple(int(t) for t in rng.integers(1, high, size=spec.unique_tokens))
        prompts.append(prefix + tail)
    return prompts


def run_serial_baseline(engine: InferenceEngine, spec: WorkloadSpec,
                        eos_id: Optional[int] = None) -> Dict[str, float]:
    """One-request-at-a-time generation with a fresh KV cache per call."""
    prompts = synthetic_prompts(spec)
    start = time.perf_counter()
    tokens = 0
    outputs = []
    for i, prompt in enumerate(prompts):
        out = engine.generate(prompt, max_new_tokens=spec.max_new_tokens,
                              temperature=spec.temperature, eos_id=eos_id,
                              rng=np.random.default_rng(spec.seed + i))
        outputs.append(out)
        tokens += len(out)
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "tokens": tokens,
        "tokens_per_second": tokens / elapsed if elapsed > 0 else 0.0,
        "outputs": outputs,
    }


def run_served(server: InProcessServer, spec: WorkloadSpec) -> Dict[str, float]:
    """The same burst through the batched, prefix-caching server."""
    prompts = synthetic_prompts(spec)
    start = time.perf_counter()
    order = []
    for i, prompt in enumerate(prompts):
        params = SamplingParams(max_new_tokens=spec.max_new_tokens,
                                temperature=spec.temperature,
                                seed=spec.seed + i)
        order.append(server.submit(prompt, params=params))
    server.run_until_idle()
    elapsed = time.perf_counter() - start
    completions = [server.result(rid) for rid in order]
    tokens = sum(len(c.token_ids) for c in completions)
    snap = server.metrics_snapshot()
    return {
        "seconds": elapsed,
        "tokens": tokens,
        "tokens_per_second": tokens / elapsed if elapsed > 0 else 0.0,
        "outputs": [list(c.token_ids) for c in completions],
        "mean_ttft_s": snap["mean_ttft_s"],
        "mean_batch_occupancy": snap["mean_batch_occupancy"],
        "prefix_hit_rate": snap.get("prefix_hit_rate", 0.0),
        "cached_prefix_tokens": snap["cached_prefix_tokens"],
        "metrics": snap,
    }


def run_serve_benchmark(model, spec: WorkloadSpec = WorkloadSpec(),
                        config: Optional[ServeConfig] = None,
                        eos_id: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """Serial baseline vs. batched+prefix-cached serving on one workload.

    Returns ``{"serial": …, "served": …, "speedup": x, "registry": …}``
    where ``registry`` is the served path's full
    :class:`~repro.obs.MetricRegistry` snapshot (counters, gauges, latency
    histograms).  The serial baseline reuses the *single-sequence* engine
    inside the server's batched engine, so both paths run identical weights.
    """
    config = config or ServeConfig(max_batch_size=min(8, spec.n_requests))
    server = InProcessServer(model, config=config, eos_id=eos_id)
    serial = run_serial_baseline(server.engine, spec, eos_id=eos_id)
    served = run_served(server, spec)
    speedup = (served["tokens_per_second"] / serial["tokens_per_second"]
               if serial["tokens_per_second"] > 0 else 0.0)
    return {"serial": serial, "served": served, "speedup": speedup,
            "registry": server.obs.registry.snapshot()}


def format_benchmark_report(result: Dict[str, Dict[str, float]],
                            spec: WorkloadSpec) -> str:
    """Human-readable table of a :func:`run_serve_benchmark` result."""
    serial, served = result["serial"], result["served"]
    lines = [
        f"workload: {spec.n_requests} requests, "
        f"{spec.shared_prefix_tokens}+{spec.unique_tokens} prompt tokens "
        f"(shared+unique), {spec.max_new_tokens} decode tokens",
        f"{'path':<10} {'tokens':>7} {'seconds':>9} {'tok/s':>9}",
        f"{'serial':<10} {serial['tokens']:>7} {serial['seconds']:>9.3f} "
        f"{serial['tokens_per_second']:>9.1f}",
        f"{'served':<10} {served['tokens']:>7} {served['seconds']:>9.3f} "
        f"{served['tokens_per_second']:>9.1f}",
        f"speedup: {result['speedup']:.2f}x   "
        f"prefix hit rate: {served['prefix_hit_rate']:.2f}   "
        f"cached prefix tokens: {served['cached_prefix_tokens']}   "
        f"mean TTFT: {served['mean_ttft_s'] * 1000:.1f} ms   "
        f"batch occupancy: {served['mean_batch_occupancy']:.1f}",
    ]
    return "\n".join(lines)
