"""Deterministic synthetic load generation and the serving benchmarks.

The workload models the traffic shape ChipAlign deployments actually see: a
fleet of engineers asking questions through the same assistant, so every
prompt opens with the same instruction/context block (the shared prefix) and
diverges only in the question tail.  Prompts are built directly in token-id
space from a seeded RNG, so a given :class:`WorkloadSpec` always produces
the same requests — no tokenizer or trained checkpoint required.

Two drive paths:

* :func:`run_serve_benchmark` — in-process: the serial
  :class:`~repro.nn.infer.InferenceEngine` baseline vs. an
  :class:`~repro.serve.server.InProcessServer`;
* :func:`run_socket_workload` / :func:`run_multi_tenant_workload` — over
  real sockets against a :class:`~repro.serve.net.server.NetServer`, with
  **open-loop** arrival processes (:func:`arrival_schedule`: batch, Poisson,
  or bursty) — requests launch at their scheduled instants regardless of
  completions, the arrival discipline that actually exposes queueing
  collapse.  Arrival schedules are plain seeded arrays, exportable in
  benchmark artifacts and replayable bit-for-bit with ``arrivals=``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.infer import InferenceEngine
from .request import SamplingParams
from .scheduler import ServeConfig
from .server import InProcessServer

#: Arrival processes understood by :func:`arrival_schedule`.
ARRIVAL_PROCESSES = ("batch", "poisson", "bursty")


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a synthetic request burst."""

    n_requests: int = 16
    #: Tokens of instruction/context block shared by every prompt.
    shared_prefix_tokens: int = 96
    #: Tokens unique to each request (the "question" tail).
    unique_tokens: int = 12
    #: Decode budget per request.
    max_new_tokens: int = 24
    #: Token-id universe the prompts draw from (kept below the model vocab).
    vocab_size: int = 64
    temperature: float = 0.0
    seed: int = 0
    #: Arrival process for socket workloads: "batch" (all at t=0, the
    #: closed-burst shape :func:`run_serve_benchmark` uses), "poisson"
    #: (open-loop exponential inter-arrivals), or "bursty" (groups of
    #: ``burst_size`` arriving together every ``burst_gap_s``).
    arrival: str = "batch"
    #: Mean arrival rate (requests/second) for the "poisson" process.
    arrival_rate_rps: float = 32.0
    #: Requests per burst for the "bursty" process.
    burst_size: int = 4
    #: Seconds between burst starts for the "bursty" process.
    burst_gap_s: float = 0.25

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.unique_tokens < 1:
            raise ValueError("unique_tokens must be >= 1 (prompts must differ)")
        if self.arrival not in ARRIVAL_PROCESSES:
            raise ValueError(f"arrival must be one of {ARRIVAL_PROCESSES}")
        if self.arrival_rate_rps <= 0:
            raise ValueError("arrival_rate_rps must be > 0")
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        if self.burst_gap_s < 0:
            raise ValueError("burst_gap_s must be >= 0")


def synthetic_prompts(spec: WorkloadSpec) -> List[Tuple[int, ...]]:
    """The workload's prompts: shared prefix + per-request unique tail.

    Token ids start at 1 (0 is conventionally padding) and are generated
    from ``spec.seed`` alone, so the same spec always yields the same burst.
    """
    rng = np.random.default_rng(spec.seed)
    high = max(2, spec.vocab_size)
    prefix = tuple(int(t) for t in rng.integers(1, high, size=spec.shared_prefix_tokens))
    prompts = []
    for _ in range(spec.n_requests):
        tail = tuple(int(t) for t in rng.integers(1, high, size=spec.unique_tokens))
        prompts.append(prefix + tail)
    return prompts


def run_serial_baseline(engine: InferenceEngine, spec: WorkloadSpec,
                        eos_id: Optional[int] = None) -> Dict[str, float]:
    """One-request-at-a-time generation with a fresh KV cache per call."""
    prompts = synthetic_prompts(spec)
    start = time.perf_counter()
    tokens = 0
    outputs = []
    for i, prompt in enumerate(prompts):
        out = engine.generate(prompt, max_new_tokens=spec.max_new_tokens,
                              temperature=spec.temperature, eos_id=eos_id,
                              rng=np.random.default_rng(spec.seed + i))
        outputs.append(out)
        tokens += len(out)
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "tokens": tokens,
        "tokens_per_second": tokens / elapsed if elapsed > 0 else 0.0,
        "outputs": outputs,
    }


def run_served(server: InProcessServer, spec: WorkloadSpec) -> Dict[str, float]:
    """The same burst through the batched, prefix-caching server."""
    prompts = synthetic_prompts(spec)
    start = time.perf_counter()
    order = []
    for i, prompt in enumerate(prompts):
        params = SamplingParams(max_new_tokens=spec.max_new_tokens,
                                temperature=spec.temperature,
                                seed=spec.seed + i)
        order.append(server.submit(prompt, params=params))
    server.run_until_idle()
    elapsed = time.perf_counter() - start
    completions = [server.result(rid) for rid in order]
    tokens = sum(len(c.token_ids) for c in completions)
    snap = server.metrics_snapshot()
    return {
        "seconds": elapsed,
        "tokens": tokens,
        "tokens_per_second": tokens / elapsed if elapsed > 0 else 0.0,
        "outputs": [list(c.token_ids) for c in completions],
        "mean_ttft_s": snap["mean_ttft_s"],
        "mean_batch_occupancy": snap["mean_batch_occupancy"],
        "prefix_hit_rate": snap.get("prefix_hit_rate", 0.0),
        "cached_prefix_tokens": snap["cached_prefix_tokens"],
        "metrics": snap,
    }


def run_serve_benchmark(model, spec: WorkloadSpec = WorkloadSpec(),
                        config: Optional[ServeConfig] = None,
                        eos_id: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """Serial baseline vs. batched+prefix-cached serving on one workload.

    Returns ``{"serial": …, "served": …, "speedup": x, "registry": …}``
    where ``registry`` is the served path's full
    :class:`~repro.obs.MetricRegistry` snapshot (counters, gauges, latency
    histograms).  The serial baseline reuses the *single-sequence* engine
    inside the server's batched engine, so both paths run identical weights.
    """
    config = config or ServeConfig(max_batch_size=min(8, spec.n_requests))
    server = InProcessServer(model, config=config, eos_id=eos_id)
    serial = run_serial_baseline(server.engine, spec, eos_id=eos_id)
    served = run_served(server, spec)
    speedup = (served["tokens_per_second"] / serial["tokens_per_second"]
               if serial["tokens_per_second"] > 0 else 0.0)
    return {"serial": serial, "served": served, "speedup": speedup,
            "registry": server.obs.registry.snapshot()}


def format_benchmark_report(result: Dict[str, Dict[str, float]],
                            spec: WorkloadSpec) -> str:
    """Human-readable table of a :func:`run_serve_benchmark` result."""
    serial, served = result["serial"], result["served"]
    lines = [
        f"workload: {spec.n_requests} requests, "
        f"{spec.shared_prefix_tokens}+{spec.unique_tokens} prompt tokens "
        f"(shared+unique), {spec.max_new_tokens} decode tokens",
        f"{'path':<10} {'tokens':>7} {'seconds':>9} {'tok/s':>9}",
        f"{'serial':<10} {serial['tokens']:>7} {serial['seconds']:>9.3f} "
        f"{serial['tokens_per_second']:>9.1f}",
        f"{'served':<10} {served['tokens']:>7} {served['seconds']:>9.3f} "
        f"{served['tokens_per_second']:>9.1f}",
        f"speedup: {result['speedup']:.2f}x   "
        f"prefix hit rate: {served['prefix_hit_rate']:.2f}   "
        f"cached prefix tokens: {served['cached_prefix_tokens']}   "
        f"mean TTFT: {served['mean_ttft_s'] * 1000:.1f} ms   "
        f"batch occupancy: {served['mean_batch_occupancy']:.1f}",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# open-loop socket workloads
# ----------------------------------------------------------------------

def arrival_schedule(spec: WorkloadSpec) -> Tuple[float, ...]:
    """Seeded arrival offsets (seconds from workload start), one per request.

    The arrival stream is seeded independently of the prompt stream
    (``[spec.seed, 1]`` vs. ``spec.seed``), so changing the arrival process
    never perturbs the prompts.  The returned tuple is plain data: export
    it in a benchmark artifact and pass it back as ``arrivals=`` to
    :func:`run_socket_workload` for a bit-identical replay.
    """
    if spec.arrival == "batch":
        return (0.0,) * spec.n_requests
    if spec.arrival == "poisson":
        rng = np.random.default_rng([spec.seed, 1])
        gaps = rng.exponential(1.0 / spec.arrival_rate_rps,
                               size=spec.n_requests)
        return tuple(float(t) for t in np.cumsum(gaps))
    # bursty: groups of burst_size arriving together every burst_gap_s
    return tuple((i // spec.burst_size) * spec.burst_gap_s
                 for i in range(spec.n_requests))


def percentile(values: Sequence[float], q: float) -> float:
    """``numpy.percentile`` with an explicit 0.0 for empty inputs."""
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def run_socket_workload(address: Tuple[str, int], spec: WorkloadSpec,
                        tenant: str = "default",
                        arrivals: Optional[Sequence[float]] = None,
                        stream: bool = True,
                        timeout_s: Optional[float] = None,
                        max_wait_s: float = 120.0) -> Dict[str, object]:
    """Drive one tenant's workload at a real :class:`NetServer` socket.

    Open-loop: requests are submitted at their scheduled arrival offsets
    regardless of how the server is keeping up — a dedicated reader thread
    collects interleaved events while the caller's thread holds the send
    schedule.  Per-request client-side TTFT/latency are measured with
    ``time.perf_counter`` around the actual socket writes, so they include
    queueing delay the server's own histograms cannot see.

    Shed responses are terminal outcomes, not errors: they land in the
    per-request records with their ``retry_after_s`` hint and are counted
    in the summary, because explicit load shedding under overload is
    behavior the benchmarks assert *for*.
    """
    from .net.client import NetClient  # local import: avoid package cycle

    host, port = address
    prompts = synthetic_prompts(spec)
    if arrivals is None:
        arrivals = arrival_schedule(spec)
    if len(arrivals) != spec.n_requests:
        raise ValueError("arrivals length must equal spec.n_requests")

    client = NetClient(host, port, tenant=tenant)
    records: Dict[str, Dict[str, object]] = {}
    done = threading.Event()
    reader_error: List[str] = []

    def reader() -> None:
        remaining = spec.n_requests
        try:
            while remaining > 0:
                event = client.recv_event()
                now = time.perf_counter()
                kind = event.get("event")
                rec = records.get(event.get("id"))
                if rec is None:
                    if kind == "error":
                        reader_error.append(str(event.get("code")))
                    continue
                if kind == "token":
                    if rec["first_token_at"] is None:
                        rec["first_token_at"] = now
                    rec["streamed"].append(int(event["token"]))
                elif kind == "done":
                    rec["done_at"] = now
                    rec["status"] = event["status"]
                    rec["finish_reason"] = event.get("finish_reason")
                    rec["token_ids"] = tuple(event.get("token_ids", ()))
                    rec["server_ttft_s"] = event.get("ttft_s")
                    remaining -= 1
                elif kind == "shed":
                    rec["done_at"] = now
                    rec["status"] = "shed"
                    rec["shed_code"] = event.get("code")
                    rec["retry_after_s"] = event.get("retry_after_s")
                    remaining -= 1
                elif kind == "error":
                    rec["done_at"] = now
                    rec["status"] = "error"
                    rec["error_code"] = event.get("code")
                    remaining -= 1
        except Exception as exc:  # transport loss ends the workload
            reader_error.append(str(exc))
        finally:
            done.set()

    reader_thread = threading.Thread(target=reader, daemon=True)
    reader_thread.start()

    start = time.perf_counter()
    for i, (prompt, offset) in enumerate(zip(prompts, arrivals)):
        delay = start + offset - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        client_id = f"{tenant}-{i}"
        records[client_id] = {
            "client_id": client_id, "arrival_offset_s": float(offset),
            "submitted_at": None, "first_token_at": None, "done_at": None,
            "status": "pending", "finish_reason": None, "token_ids": (),
            "streamed": [], "server_ttft_s": None, "shed_code": None,
            "retry_after_s": None, "error_code": None,
        }
        params = {"max_new_tokens": spec.max_new_tokens,
                  "temperature": spec.temperature, "seed": spec.seed + i}
        records[client_id]["submitted_at"] = time.perf_counter()
        try:
            client.submit(prompt_ids=prompt, params=params, stream=stream,
                          timeout_s=timeout_s, client_id=client_id)
        except Exception as exc:
            records[client_id]["status"] = "error"
            records[client_id]["error_code"] = str(exc)
            break

    done.wait(max_wait_s)
    client.close()
    reader_thread.join(timeout=5.0)

    finished = [r for r in records.values() if r["status"] == "finished"]
    ttfts = [r["first_token_at"] - r["submitted_at"] for r in finished
             if r["first_token_at"] is not None]
    latencies = [r["done_at"] - r["submitted_at"] for r in finished
                 if r["done_at"] is not None]
    done_times = [r["done_at"] for r in records.values()
                  if r["done_at"] is not None]
    wall = (max(done_times) - start) if done_times else 0.0
    tokens = sum(len(r["token_ids"]) for r in finished)
    statuses: Dict[str, int] = {}
    for r in records.values():
        statuses[r["status"]] = statuses.get(r["status"], 0) + 1
    return {
        "tenant": tenant,
        "arrival": spec.arrival,
        "arrivals": [float(t) for t in arrivals],
        "records": [records[f"{tenant}-{i}"] for i in range(spec.n_requests)
                    if f"{tenant}-{i}" in records],
        "statuses": statuses,
        "n_finished": len(finished),
        "n_shed": statuses.get("shed", 0),
        "n_expired": statuses.get("expired", 0),
        "n_errors": statuses.get("error", 0) + len(reader_error),
        "tokens": tokens,
        "wall_s": wall,
        "tokens_per_second": tokens / wall if wall > 0 else 0.0,
        "ttft_p50_s": percentile(ttfts, 50), "ttft_p99_s": percentile(ttfts, 99),
        "latency_p50_s": percentile(latencies, 50),
        "latency_p99_s": percentile(latencies, 99),
        "reader_errors": list(reader_error),
    }


def run_multi_tenant_workload(
        address: Tuple[str, int], specs: Dict[str, WorkloadSpec],
        timeout_s: Optional[float] = None,
        max_wait_s: float = 120.0) -> Dict[str, Dict[str, object]]:
    """Run one :func:`run_socket_workload` per tenant, concurrently.

    Each tenant gets its own connection and its own open-loop schedule;
    all start from (approximately) the same instant, so cross-tenant
    fairness comparisons — the 9:1 aggressor/minority shape the benchmark
    gates on — are apples-to-apples.
    """
    results: Dict[str, Dict[str, object]] = {}
    errors: Dict[str, BaseException] = {}

    def worker(name: str, spec: WorkloadSpec) -> None:
        try:
            results[name] = run_socket_workload(
                address, spec, tenant=name, timeout_s=timeout_s,
                max_wait_s=max_wait_s)
        except BaseException as exc:
            errors[name] = exc

    threads = [threading.Thread(target=worker, args=(name, spec), daemon=True)
               for name, spec in specs.items()]
    for t in threads:
        t.start()
    for t in threads:
        t.join(max_wait_s + 10.0)
    if errors:
        name, exc = next(iter(errors.items()))
        raise RuntimeError(f"tenant {name!r} workload failed: {exc}") from exc
    return results
