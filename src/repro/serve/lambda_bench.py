"""λ-fleet benchmark: K merged-model variants from one plan, gated honestly.

Four phases, extending the fleet benchmark's methodology to the variant
dimension:

1. **Memory** — the headline residency gate, asserted unconditionally.
   One :class:`~repro.core.merge_engine.MergePlan` is published to the
   arena and its payload bytes are compared against one fp32 model's
   state-dict bytes and against the naive deployment (K full merged
   copies).  The compact-row plan must stay within
   :data:`PLAN_BYTES_LIMIT` × one model — all K variants ride that one
   footprint.
2. **Parity** — the correctness gate, asserted unconditionally.  A
   mixed-sampling burst spread across all K variants is answered by a
   :class:`~repro.serve.lambda_fleet.LambdaFleetServer` (exact decode,
   prefix cache off) and by K fully-materialized per-variant
   :class:`~repro.serve.server.InProcessServer` oracles; every token
   stream must be byte-identical.
3. **Cold start** — lazy materialization must not tax variant spin-up:
   realizing a scalar/layerwise variant from the plan is timed against
   ``engine.merge(λ)`` (the non-lazy merge it replaces) and bounded at
   :data:`MATERIALIZE_RATIO_LIMIT` ×.  Karcher variants run an iterative
   spherical mean, so their cold time is *recorded* but not gated.
4. **Throughput** — the fleet's K variant replicas answer the mixed burst
   concurrently vs the K oracle servers answering sequentially.  Like the
   fleet benchmark, the >= :data:`SPEEDUP_TARGET`-scaled gate only applies
   when the machine has the cores (``target_applies``); a starved box
   still validates phases 1-3 and the no-leaked-segments invariant.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs import Observability
from .request import SamplingParams
from .scheduler import ServeConfig

#: Resident plan payload must stay within this multiple of ONE fp32
#: model's state-dict bytes (the two compact float32 endpoint rows, plus
#: a whisker of raw-fallback slack), independent of how many variants K
#: are served from it.
PLAN_BYTES_LIMIT = 2.1

#: Cold materialization of a scalar/layerwise variant from the plan vs
#: ``engine.merge`` — same per-tensor math plus the float32 cast, so a
#: generous 5x absorbs timer noise at toy scale.
MATERIALIZE_RATIO_LIMIT = 5.0

#: Aggregate concurrent-over-sequential speedup floor at 4 variant
#: replicas, scaled by ``replicas / 4`` like the fleet benchmark.
SPEEDUP_TARGET = 2.0


def default_variants(n_variants: int, n_layers: int):
    """A representative K-member family: scalar λ grid + one layerwise
    ramp + one Karcher midpoint (the three materialization kinds)."""
    from ..core.layerwise import LambdaSchedule
    from .lambda_fleet import VariantSpec

    if n_variants < 3:
        raise ValueError(f"need >= 3 variants for all kinds, got {n_variants}")
    n_scalar = n_variants - 2
    lams = np.linspace(0.2, 0.9, n_scalar)
    specs = [VariantSpec.scalar(f"lam{lam:.3f}", float(lam)) for lam in lams]
    specs.append(VariantSpec.layerwise(
        "ramp", LambdaSchedule.linear(0.25, 0.85, n_layers, default=0.6)))
    specs.append(VariantSpec.karcher("karcher", (0.5, 0.5)))
    return specs


def _workload(variants, requests_per_variant: int, prefix_tokens: int,
              unique_tokens: int, max_new_tokens: int, vocab: int, seed: int
              ) -> List[Tuple[str, Tuple[int, ...], SamplingParams]]:
    """Mixed-sampling burst with one shared-prefix group per variant."""
    out = []
    for v, spec in enumerate(variants):
        rng = np.random.default_rng(seed + v * 1000)
        prefix = tuple(int(t) for t in rng.integers(2, vocab,
                                                    size=prefix_tokens))
        for i in range(requests_per_variant):
            tail = tuple(int(t) for t in rng.integers(2, vocab,
                                                      size=unique_tokens))
            mode = (v * requests_per_variant + i) % 3
            params = SamplingParams(
                max_new_tokens=max_new_tokens,
                temperature=0.0 if mode == 0 else 0.8,
                top_k=8 if mode == 1 else None,
                top_p=0.9 if mode == 2 else None,
                seed=seed + v * 100 + i)
            out.append((spec.name, prefix + tail, params))
    return out


def _drive_lambda_fleet(fleet, workload, tag: str) -> Dict[str, Tuple[int, ...]]:
    ids = []
    for i, (variant, prompt, params) in enumerate(workload):
        ids.append(fleet.submit(prompt, params=params,
                                request_id=f"{tag}-{i}", variant=variant))
    fleet.run_until_idle()
    return {rid: fleet.result(rid).token_ids for rid in ids}


def _drive_oracles(servers, workload, tag: str) -> Dict[str, Tuple[int, ...]]:
    """Sequential fully-materialized baseline: each variant's requests run
    through its own in-process server, one variant after another."""
    out = {}
    for name, server in servers.items():
        ids = []
        for i, (variant, prompt, params) in enumerate(workload):
            if variant == name:
                rid = f"{tag}-{i}"
                server.submit(prompt, params=params, request_id=rid)
                ids.append(rid)
        server.run_until_idle()
        for rid in ids:
            out[rid] = server.result(rid).token_ids
    return out


def run_lambda_benchmark(backbone: str = "nano", n_variants: int = 8,
                         replicas_per_variant: int = 1,
                         requests_per_variant: int = 3,
                         prefix_tokens: int = 24, unique_tokens: int = 8,
                         max_new_tokens: int = 16, repeats: int = 3,
                         seed: int = 0,
                         obs: Optional[Observability] = None
                         ) -> Dict[str, object]:
    """Benchmark K λ-variants from one plan against K materialized models.

    Returns a JSON-serialisable report: the residency numbers and their
    gate, the parity verdict, cold-materialization timings per variant
    kind, concurrent-vs-sequential throughput with the core-count-derived
    ``target_applies`` flag, and the fleet's router/variant state.
    """
    from ..core.merge_engine import GeodesicMergeEngine
    from ..nn.transformer import TransformerLM, preset_config
    from ..parallel import TensorArena
    from .lambda_fleet import (PLAN_PREFIX, LambdaFleetServer,
                               LazyMergedModel, materialize_variant)
    from .server import InProcessServer

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    obs = obs if obs is not None else Observability()
    vocab = 64
    config = preset_config(backbone, vocab_size=vocab, seed=seed)
    chip = TransformerLM(config)
    instruct = TransformerLM(preset_config(backbone, vocab_size=vocab,
                                           seed=seed + 1))
    for model in (chip, instruct):
        model.eval()
    engine = GeodesicMergeEngine(chip.state_dict(), instruct.state_dict())
    variants = default_variants(n_variants, config.n_layers)
    workload = _workload(variants, requests_per_variant, prefix_tokens,
                         unique_tokens, max_new_tokens, vocab, seed)
    n_requests = len(workload)
    total_tokens = n_requests * max_new_tokens

    # Phase 1 — residency: one published plan vs K materialized copies.
    model_bytes = sum(v.nbytes for v in chip.state_dict().values())
    with TensorArena() as probe:
        engine.plan.publish(probe, prefix=PLAN_PREFIX)
        plan_bytes = probe.nbytes_for(PLAN_PREFIX)
    memory = {
        "model_bytes": model_bytes,
        "plan_bytes": plan_bytes,
        "naive_bytes": n_variants * model_bytes,
        "plan_over_model": plan_bytes / model_bytes,
        "plan_over_naive": plan_bytes / (n_variants * model_bytes),
        "limit": PLAN_BYTES_LIMIT,
    }

    # Phase 2 — byte parity: λ-fleet vs per-variant materialized oracles.
    exact = ServeConfig(max_batch_size=4, decode_mode="exact",
                        prefix_cache=False)
    oracles = {spec.name: InProcessServer(
        LazyMergedModel(config, engine.plan, spec), config=exact)
        for spec in variants}
    want = _drive_oracles(oracles, workload, "parity")
    with LambdaFleetServer(engine, config, variants, serve_config=exact,
                           replicas_per_variant=replicas_per_variant) as fleet:
        got = _drive_lambda_fleet(fleet, workload, "parity")
    parity_ok = got == want

    # Phase 3 — cold start: plan materialization vs the eager merge.
    merge_s = min(_timed(lambda: engine.merge(0.5)) for _ in range(repeats))
    cold = {}
    worst_gated = 0.0
    for spec in variants:
        best = min(_timed(lambda: materialize_variant(engine.plan, spec))
                   for _ in range(repeats))
        cold[spec.name] = {"kind": spec.kind, "materialize_ms": best * 1e3,
                           "ratio_vs_merge": best / merge_s}
        if spec.kind != "karcher":
            worst_gated = max(worst_gated, best / merge_s)
    cold_summary = {"merge_ms": merge_s * 1e3,
                    "worst_gated_ratio": worst_gated,
                    "limit": MATERIALIZE_RATIO_LIMIT,
                    "per_variant": cold}

    # Phase 4 — throughput: concurrent variant replicas vs sequential
    # oracles, production configuration, interleaved rounds, min per side.
    fused = ServeConfig(max_batch_size=4, decode_mode="fused",
                        prefix_cache=True)
    oracles = {spec.name: InProcessServer(
        LazyMergedModel(config, engine.plan, spec), config=fused)
        for spec in variants}
    sequential = {"seconds": float("inf")}
    concurrent = {"seconds": float("inf")}
    with LambdaFleetServer(engine, config, variants, serve_config=fused,
                           replicas_per_variant=replicas_per_variant,
                           obs=obs) as fleet:
        _drive_lambda_fleet(fleet, workload, "warmN")
        _drive_oracles(oracles, workload, "warm1")
        for round_no in range(repeats):
            started = time.perf_counter()
            _drive_lambda_fleet(fleet, workload, f"n{round_no}")
            concurrent["seconds"] = min(concurrent["seconds"],
                                        time.perf_counter() - started)
            started = time.perf_counter()
            _drive_oracles(oracles, workload, f"s{round_no}")
            sequential["seconds"] = min(sequential["seconds"],
                                        time.perf_counter() - started)
        snapshot = fleet.fleet_snapshot()
        respawns = snapshot["respawns"]
        variant_report = fleet.variant_report()

    for side in (sequential, concurrent):
        side["tokens_per_sec"] = total_tokens / side["seconds"]
        side["ms_per_request"] = side["seconds"] * 1e3 / n_requests
    replicas = len(variants) * replicas_per_variant
    cpu_count = os.cpu_count() or 1
    return {
        "backbone": backbone,
        "n_variants": len(variants),
        "replicas_per_variant": replicas_per_variant,
        "replicas": replicas,
        "cpu_count": cpu_count,
        "n_requests": n_requests,
        "max_new_tokens": max_new_tokens,
        "total_tokens": total_tokens,
        "repeats": repeats,
        "memory": memory,
        "parity_ok": parity_ok,
        "cold": cold_summary,
        "sequential": sequential,
        "fleet": concurrent,
        "speedup": concurrent["tokens_per_sec"] / sequential["tokens_per_sec"],
        "speedup_target": SPEEDUP_TARGET * replicas / 4,
        "target_applies": cpu_count >= replicas,
        "respawns": respawns,
        "router": snapshot["router"],
        "variants": {name: {"spec": entry["spec"],
                            "finished": entry["finished"]}
                     for name, entry in variant_report.items()},
        "leaked_segments": TensorArena.live_segments(),
    }


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def format_lambda_report(result: Dict[str, object]) -> str:
    """Human-readable summary of :func:`run_lambda_benchmark`."""
    memory, cold = result["memory"], result["cold"]
    sequential, fleet = result["sequential"], result["fleet"]
    target = (f">= {result['speedup_target']:.1f}x target"
              if result["target_applies"] else
              f"target waived: {result['cpu_count']} core(s) < "
              f"{result['replicas']} replicas")
    lines = [
        f"family    : {result['n_variants']} variants x "
        f"{result['replicas_per_variant']} replica(s) "
        f"({result['backbone']} backbone, {result['n_requests']} requests, "
        f"best of {result['repeats']})",
        f"residency : plan {memory['plan_bytes'] / 1024:.0f} KiB = "
        f"{memory['plan_over_model']:.2f}x one model "
        f"(limit {memory['limit']:.1f}x; naive K-copy deployment "
        f"{memory['naive_bytes'] / 1024:.0f} KiB)",
        f"parity    : all variants "
        f"{'byte-identical' if result['parity_ok'] else 'DIVERGED'} vs "
        f"fully-materialized serving (exact mode)",
        f"cold start: worst gated variant "
        f"{cold['worst_gated_ratio']:.2f}x engine.merge "
        f"(limit {cold['limit']:.1f}x; merge {cold['merge_ms']:.1f} ms)",
        f"sequential: {sequential['ms_per_request']:8.1f} ms/req  "
        f"{sequential['tokens_per_sec']:7.1f} tok/s",
        f"fleet     : {fleet['ms_per_request']:8.1f} ms/req  "
        f"{fleet['tokens_per_sec']:7.1f} tok/s",
        f"speedup   : {result['speedup']:8.2f}x  ({target})",
        f"faults    : {result['respawns']} replica respawn(s)",
    ]
    return "\n".join(lines)


def write_lambda_snapshot(result: Dict[str, object], path) -> None:
    """Write the benchmark report as a JSON perf-trajectory snapshot."""
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
