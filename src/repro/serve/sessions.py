"""Session store: carry KV state across the turns of a chat.

A multi-turn prompt in the canonical grammar replays the whole conversation
verbatim (``question : q1 assistant : a1 question : q2 … assistant :``), so
turn *n*'s prompt begins with the exact token sequence the server already
processed in turn *n-1* — prompt *and* generated answer.  Storing that
state per session turns every follow-up turn into a suffix-only prefill.

Entries hold the token ids whose KV is cached plus a :class:`KVEntry`
payload — shared block references in paged mode, owned array copies
otherwise — and are evicted LRU beyond ``capacity``.  The store owns its
entries' retained block references and releases them on replacement,
eviction, and :meth:`SessionStore.drop`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .cache import KVEntry, KVPayload, coerce_entry, common_prefix_length_np


@dataclass
class SessionState:
    """Cached conversation state of one chat session."""

    #: Token ids covered by the cached KV (prompt + generated, minus the
    #: final sampled token, whose KV was never computed).
    token_ids: Tuple[int, ...]
    entry: KVEntry
    turns: int = 0
    last_used: int = field(default=0)
    #: Cached int64 view of ``token_ids`` backing the vectorized prefix
    #: scan, built on first lookup.
    _ids_array: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def ids_array(self) -> np.ndarray:
        if self._ids_array is None:
            self._ids_array = np.asarray(self.token_ids, dtype=np.int64)
        return self._ids_array


class SessionStore:
    """LRU map of ``session_id`` → :class:`SessionState`."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._sessions: Dict[str, SessionState] = {}
        self._clock = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def get(self, session_id: str) -> Optional[SessionState]:
        state = self._sessions.get(session_id)
        if state is not None:
            self._clock += 1
            state.last_used = self._clock
        return state

    def lookup_prefix(self, session_id: str,
                      prompt_ids: Sequence[int]) -> Tuple[int, Optional[KVEntry]]:
        """Reusable KV prefix of ``prompt_ids`` from the session, if any.

        Returns ``(match_len, entry)`` without copying — the engine adopts
        the entry (a refcount bump in paged mode).  Like the prefix pool,
        the match is capped one token short of the prompt so prefill always
        has work to produce logits from.
        """
        state = self.get(session_id)
        if state is None:
            return 0, None
        match = min(common_prefix_length_np(state.ids_array, prompt_ids),
                    len(prompt_ids) - 1, state.entry.length)
        if match <= 0:
            return 0, None
        return match, state.entry

    def update(self, session_id: str, token_ids: Sequence[int],
               payload: KVPayload) -> None:
        """Replace a session's cached state after a completed turn.

        ``payload`` follows the prefix-pool convention: a ready
        :class:`KVEntry`, a lazy supplier (invoked here — session updates
        are never declined), or a legacy per-layer array list.
        """
        ids = tuple(int(i) for i in token_ids)
        entry = coerce_entry(payload, len(ids))
        previous = self._sessions.get(session_id)
        if previous is not None:
            previous.entry.release()
        self._clock += 1
        self._sessions[session_id] = SessionState(
            token_ids=ids,
            entry=entry,
            turns=(previous.turns + 1) if previous else 1,
            last_used=self._clock,
        )
        while len(self._sessions) > self.capacity:
            oldest = min(self._sessions, key=lambda s: self._sessions[s].last_used)
            self._sessions.pop(oldest).entry.release()

    def drop(self, session_id: str) -> bool:
        """Forget a session; returns whether it existed."""
        state = self._sessions.pop(session_id, None)
        if state is not None:
            state.entry.release()
        return state is not None

    def clear(self) -> None:
        """Drop every session, releasing retained block references."""
        for state in self._sessions.values():
            state.entry.release()
        self._sessions.clear()
