"""Session store: carry KV state across the turns of a chat.

A multi-turn prompt in the canonical grammar replays the whole conversation
verbatim (``question : q1 assistant : a1 question : q2 … assistant :``), so
turn *n*'s prompt begins with the exact token sequence the server already
processed in turn *n-1* — prompt *and* generated answer.  Storing that
state per session turns every follow-up turn into a suffix-only prefill.

Entries hold the token ids whose KV is cached plus per-layer ``(k, v)``
copies, and are evicted LRU beyond ``capacity``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .cache import LayerKV, common_prefix_length


@dataclass
class SessionState:
    """Cached conversation state of one chat session."""

    #: Token ids covered by the cached KV (prompt + generated, minus the
    #: final sampled token, whose KV was never computed).
    token_ids: Tuple[int, ...]
    layer_kv: List[LayerKV]
    turns: int = 0
    last_used: int = field(default=0)


class SessionStore:
    """LRU map of ``session_id`` → :class:`SessionState`."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._sessions: Dict[str, SessionState] = {}
        self._clock = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    def get(self, session_id: str) -> Optional[SessionState]:
        state = self._sessions.get(session_id)
        if state is not None:
            self._clock += 1
            state.last_used = self._clock
        return state

    def lookup_prefix(self, session_id: str,
                      prompt_ids: Sequence[int]) -> Tuple[int, Optional[List[LayerKV]]]:
        """Reusable KV prefix of ``prompt_ids`` from the session, if any.

        Like the prefix pool, the match is capped one token short of the
        prompt so prefill always has work to produce logits from.
        """
        state = self.get(session_id)
        if state is None:
            return 0, None
        match = min(common_prefix_length(state.token_ids, prompt_ids),
                    len(prompt_ids) - 1)
        if match <= 0:
            return 0, None
        kv = [(k[:, :match].copy(), v[:, :match].copy())
              for k, v in state.layer_kv]
        return match, kv

    def update(self, session_id: str, token_ids: Sequence[int],
               layer_kv: List[LayerKV]) -> None:
        """Replace a session's cached state after a completed turn."""
        previous = self._sessions.get(session_id)
        self._clock += 1
        self._sessions[session_id] = SessionState(
            token_ids=tuple(int(i) for i in token_ids),
            layer_kv=layer_kv,
            turns=(previous.turns + 1) if previous else 1,
            last_used=self._clock,
        )
        while len(self._sessions) > self.capacity:
            oldest = min(self._sessions, key=lambda s: self._sessions[s].last_used)
            del self._sessions[oldest]

    def drop(self, session_id: str) -> bool:
        """Forget a session; returns whether it existed."""
        return self._sessions.pop(session_id, None) is not None
