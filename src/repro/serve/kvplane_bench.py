"""Zero-copy KV plane benchmark: block sharing, hot admission, paged decode.

Three claims, each with its own oracle or baseline (DESIGN.md §13):

1. **Parity** — the acceptance gate.  Prefix-cache and session traffic
   through shared blocks must emit token streams byte-identical to the
   dense copy path across mixed sampling, prefix hits, and a two-turn chat
   resume.  Sharing that changes a single token is not an optimisation.
2. **Zero-copy hot admission** — the tentpole claim.  A block-aligned
   grounding prompt (the ChipAlign deployment shape: every QA request
   replays the same instruction block) is admitted cold once; every
   subsequent request reuses it as a *full prefix hit*.  The engine's
   ``kv_bytes_copied`` counter must stay **exactly zero** through the hot
   phase — adoption is refcount bumps, the covered re-insert is skipped,
   and block-aligned inserts share rather than copy — and hot admission
   must run ``>= ADMISSION_SPEEDUP_TARGET``x faster than cold (it prefills
   the question tail instead of the whole grounding).  Admission wall time
   comes from the scheduler's own ``serve.admission_s`` histogram feed.
3. **Paged decode step cost** — vectorized paged attention (one
   ``np.take`` gather per layer across the batch) must stay within
   ``PAGED_STEP_RATIO_CEILING``x of the dense slot layout per decode step
   at 512-token contexts.  Dense reads its history with a basic slice;
   paged pays a real gather — the ceiling bounds what block indirection
   is allowed to cost at the depth where it matters.  Both arms run
   back-to-back within each round (GC paused) and the headline is the
   median of per-round paired ratios, the same drift-cancelling protocol
   as ``decode_bench``.

Phases 2 and 3 use untrained models (counters and step timing do not care
about weights); phase 1 trains the differential-suite toy model so the
streams being compared are meaningful.  The report is written to
``BENCH_kvplane.json`` when ``REPRO_BENCH_SNAPSHOT=1``.
"""

from __future__ import annotations

import gc
import json
import os
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from .request import SamplingParams
from .scheduler import ServeConfig

#: Hot (full-prefix-hit) admission must beat cold (full-prompt prefill)
#: admission by at least this factor.
ADMISSION_SPEEDUP_TARGET = 3.0

#: Paged decode may cost at most this multiple of dense per step at
#: 512-token contexts.
PAGED_STEP_RATIO_CEILING = 1.25

#: Context depth of the decode-step comparison.
STEP_CONTEXT_TOKENS = 512

_CORPUS = [[1, 7, 8, 9, 10, 11, 2], [1, 5, 6, 5, 6, 2]] * 4


def _train_toy(seed: int, epochs: int):
    from ..nn.trainer import TrainConfig, Trainer
    from ..nn.transformer import TransformerConfig, TransformerLM
    model = TransformerLM(TransformerConfig(
        vocab_size=24, dim=16, n_layers=2, n_heads=2, max_seq_len=48,
        seed=seed))
    Trainer(model, pad_id=0,
            config=TrainConfig(epochs=epochs, batch_size=8, lr=3e-3)
            ).fit(_CORPUS)
    model.eval()
    return model


def _untrained(max_seq_len: int, seed: int):
    from ..nn.transformer import TransformerConfig, TransformerLM
    model = TransformerLM(TransformerConfig(
        vocab_size=32, dim=32, n_layers=2, n_heads=4,
        max_seq_len=max_seq_len, seed=seed))
    model.eval()
    return model


def _server(model, **kw):
    from .server import InProcessServer
    kw.setdefault("decode_mode", "fused")
    kw.setdefault("max_batch_size", 4)
    return InProcessServer(model, config=ServeConfig(**kw))


# ---------------------------------------------------------------------------
# phase 1 — shared-vs-copy byte parity
# ---------------------------------------------------------------------------
def _parity_traffic(server) -> List[Tuple[int, ...]]:
    """Prefix-heavy mixed-sampling burst plus a two-turn session resume;
    returns every emitted stream in submission order."""
    shared = [1, 7, 8, 9, 10, 11, 7, 8]
    turn1 = server.chat("s", shared + [5],
                        params=SamplingParams(max_new_tokens=5))
    prompts = [shared + tail for tail in
               ([5], [5, 6], [9, 10], [7, 8, 9], [5, 9])]
    streams = [tuple(turn1.token_ids)]
    for i, prompt in enumerate(prompts):
        mode = i % 3
        params = SamplingParams(
            max_new_tokens=6,
            temperature=0.0 if mode == 0 else 0.8,
            top_k=4 if mode == 1 else None,
            top_p=0.9 if mode == 2 else None,
            seed=60 + i)
        rid = server.submit(prompt, params=params)
        server.run_until_idle()
        streams.append(tuple(server.result(rid).token_ids))
    resume = server.chat("s", shared + [5] + list(turn1.token_ids) + [9, 10],
                         params=SamplingParams(max_new_tokens=5))
    streams.append(tuple(resume.token_ids))
    return streams


# ---------------------------------------------------------------------------
# phase 2 — zero-copy hot admission
# ---------------------------------------------------------------------------
def _admission_phase(model, block_tokens: int, grounding_blocks: int,
                     n_groundings: int, tails_per_grounding: int,
                     seed: int) -> Dict[str, object]:
    rng = np.random.default_rng(seed)
    server = _server(model, kv_mode="paged", kv_block_tokens=block_tokens,
                     prefix_cache=True, prefix_cache_entries=64)
    eng = server.engine
    metrics = server.scheduler.metrics
    glen = grounding_blocks * block_tokens
    groundings = [[1] + [int(t) for t in rng.integers(2, 30, size=glen - 1)]
                  for _ in range(n_groundings)]

    def admit(prompt, tag):
        rid = server.submit(prompt, params=SamplingParams(max_new_tokens=1),
                            request_id=tag)
        server.run_until_idle()
        assert server.result(rid) is not None
        return metrics.admissions[-1]

    # Warm the allocator and the interpreter on a throwaway grounding, then
    # drop its cache entries so the measured phase starts clean.
    warm = [1] + [int(t) for t in rng.integers(2, 30, size=glen - 1)]
    admit(warm, "warm-cold")
    admit(warm + [int(t) for t in rng.integers(2, 30, size=block_tokens)],
          "warm-hot")
    server.scheduler.prefix_pool.clear()
    eng.kv_bytes_copied = 0
    eng.blocks_shared = 0

    cold_times = [admit(g, f"cold-{i}") for i, g in enumerate(groundings)]
    cold_bytes = eng.kv_bytes_copied
    cold_shared = eng.blocks_shared
    hot_times = []
    for i, grounding in enumerate(groundings):
        for j in range(tails_per_grounding):
            tail = [int(t) for t in rng.integers(2, 30, size=block_tokens)]
            hot_times.append(admit(grounding + tail, f"hot-{i}-{j}"))
    hot_bytes = eng.kv_bytes_copied - cold_bytes
    registry = server.scheduler.obs.registry.snapshot()
    cold_s = sum(cold_times) / len(cold_times)
    hot_s = sum(hot_times) / len(hot_times)
    return {
        "block_tokens": block_tokens,
        "grounding_tokens": glen,
        "question_tokens": block_tokens,
        "n_groundings": n_groundings,
        "tails_per_grounding": tails_per_grounding,
        "cold_admission_s": cold_s,
        "hot_admission_s": hot_s,
        "admission_speedup": cold_s / hot_s if hot_s > 0 else float("inf"),
        "cold_bytes_copied": int(cold_bytes),
        "hot_bytes_copied": int(hot_bytes),
        "blocks_shared_cold": int(cold_shared),
        "blocks_shared": int(eng.blocks_shared),
        "counter_bytes_copied": int(registry["serve.kv.bytes_copied"]),
        "counter_blocks_shared": int(registry["serve.prefix.blocks_shared"]),
        "mean_admission_s": float(
            server.metrics_snapshot()["mean_admission_s"]),
    }


# ---------------------------------------------------------------------------
# phase 3 — paged vs dense decode step cost at depth
# ---------------------------------------------------------------------------
def _step_cost_phase(model, block_tokens: int, batch: int, repeats: int,
                     steps: int) -> Dict[str, object]:
    from .engine import BatchedEngine

    context = STEP_CONTEXT_TOKENS
    prompt = [1] + [2 + (i % 20) for i in range(context - 1)]

    def setup(kv_mode):
        eng = BatchedEngine(model, decode_mode="fused", kv_mode=kv_mode,
                            kv_block_tokens=block_tokens,
                            max_batch_size=batch)
        handles = []
        for _ in range(batch):
            handle = eng.begin_sequence()
            eng.prefill_into(prompt, handle)
            handles.append(handle)
        return eng, handles

    def run_steps(eng, handles, n):
        tokens = [3 + b for b in range(batch)]
        started = time.perf_counter()
        for _ in range(n):
            eng.decode(tokens, handles)
        return (time.perf_counter() - started) / n

    ratios = []
    dense_ms = paged_ms = float("inf")
    for _ in range(repeats):
        # Fresh engines per round: every round decodes the same
        # 512-deep steady state instead of drifting deeper.
        dense_eng, dense_handles = setup("dense")
        paged_eng, paged_handles = setup("paged")
        run_steps(dense_eng, dense_handles, 3)
        run_steps(paged_eng, paged_handles, 3)
        gc.collect()
        gc.disable()
        try:
            dense_s = run_steps(dense_eng, dense_handles, steps)
            paged_s = run_steps(paged_eng, paged_handles, steps)
        finally:
            gc.enable()
        ratios.append(paged_s / dense_s)
        dense_ms = min(dense_ms, dense_s * 1e3)
        paged_ms = min(paged_ms, paged_s * 1e3)
    return {
        "context_tokens": context,
        "batch": batch,
        "steps_per_round": steps,
        "repeats": repeats,
        "dense_ms_per_step": dense_ms,
        "paged_ms_per_step": paged_ms,
        "round_ratios": ratios,
        "step_ratio": sorted(ratios)[len(ratios) // 2],
    }


def run_kvplane_benchmark(block_tokens: int = 16, grounding_blocks: int = 14,
                          n_groundings: int = 4,
                          tails_per_grounding: int = 3,
                          batch: int = 4, repeats: int = 5, steps: int = 30,
                          epochs: int = 25, seed: int = 0
                          ) -> Dict[str, object]:
    """Benchmark the zero-copy KV plane against its copy-path baselines.

    Returns a JSON-serialisable report with the three gate verdicts:
    byte parity of shared vs copied prefixes, zero bytes copied on full
    prefix hits (with the hot/cold admission speedup), and the paged/dense
    decode step-cost ratio at 512-token contexts.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if block_tokens < 2 or grounding_blocks < 1:
        raise ValueError("block_tokens must be >= 2, grounding_blocks >= 1")

    # Phase 1 — parity: shared-block serving vs the dense copy path.
    toy = _train_toy(seed, epochs)
    dense_streams = _parity_traffic(_server(toy, prefix_cache=True))
    paged_streams = _parity_traffic(_server(toy, prefix_cache=True,
                                            kv_mode="paged",
                                            kv_block_tokens=4))
    parity = {"shared_vs_copy": paged_streams == dense_streams,
              "streams": len(dense_streams)}

    # Phase 2 — zero-copy hot admission on grounding-shaped prompts.
    glen = (grounding_blocks + 1) * block_tokens + 8
    admission_model = _untrained(max_seq_len=glen, seed=seed + 1)
    admission = _admission_phase(admission_model, block_tokens,
                                 grounding_blocks, n_groundings,
                                 tails_per_grounding, seed)

    # Phase 3 — paged vs dense decode step cost at 512-token contexts.
    step_model = _untrained(max_seq_len=STEP_CONTEXT_TOKENS + 128,
                            seed=seed + 2)
    step = _step_cost_phase(step_model, block_tokens, batch, repeats, steps)

    return {
        "block_tokens": block_tokens,
        "cpu_count": os.cpu_count() or 1,
        "parity": parity,
        "parity_ok": parity["shared_vs_copy"],
        "admission": admission,
        "zero_copy_ok": admission["hot_bytes_copied"] == 0,
        "admission_speedup": admission["admission_speedup"],
        "admission_speedup_target": ADMISSION_SPEEDUP_TARGET,
        "step": step,
        "step_ratio": step["step_ratio"],
        "step_ratio_ceiling": PAGED_STEP_RATIO_CEILING,
    }


def format_kvplane_report(result: Dict[str, object]) -> str:
    """Human-readable summary of :func:`run_kvplane_benchmark`."""
    adm, step = result["admission"], result["step"]
    verdict = {True: "byte-identical", False: "DIVERGED"}
    lines = [
        f"parity   : shared-block vs copy-path serving "
        f"{verdict[result['parity_ok']]} over {result['parity']['streams']} "
        f"streams (prefix hits + session resume, mixed sampling)",
        f"admission: {adm['grounding_tokens']}-token grounding + "
        f"{adm['question_tokens']}-token question, "
        f"{adm['n_groundings']}x{adm['tails_per_grounding']} hot requests",
        f"zero-copy: {adm['hot_bytes_copied']} B copied on full prefix hits "
        f"(counter {adm['counter_bytes_copied']} B total, "
        f"{adm['counter_blocks_shared']} blocks shared)",
        f"latency  : cold {adm['cold_admission_s'] * 1e3:7.2f} ms -> hot "
        f"{adm['hot_admission_s'] * 1e3:7.2f} ms  "
        f"({result['admission_speedup']:.2f}x, target >= "
        f"{result['admission_speedup_target']:.1f}x)",
        f"decode   : dense {step['dense_ms_per_step']:.3f} ms/step -> paged "
        f"{step['paged_ms_per_step']:.3f} ms/step at "
        f"{step['context_tokens']}-token contexts (batch {step['batch']})",
        f"step cost: {result['step_ratio']:.3f}x median of "
        f"{step['repeats']} paired rounds (ceiling "
        f"{result['step_ratio_ceiling']:.2f}x)",
    ]
    return "\n".join(lines)


def write_kvplane_snapshot(result: Dict[str, object], path) -> None:
    """Write the benchmark report as a JSON perf-trajectory snapshot."""
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
