"""Cheap-decode benchmark: int8 weights, paged KV, speculative decoding.

Three claims, each measured against its own oracle (DESIGN.md §11):

1. **Parity** — the acceptance gate.  A mixed-sampling burst must produce
   byte-identical token streams across every cheap path and its oracle:
   fused-paged vs fused-dense (same floats by construction), fused-int8 vs
   an exact-mode engine over the *dequantized* weights (the model int8
   actually serves; see :func:`~repro.serve.engine.dequantized_oracle_model`),
   and speculative vs target-only decoding (every emitted token is sampled
   from target logits with the request's own rng).
2. **Throughput** — tokens/sec of speculative decoding vs target-only
   decoding on a greedy in-distribution workload at batch size 1 (the
   latency-bound single-stream regime speculation is built for — a full
   batch already amortises the target forward across sequences).  The
   two arms run back-to-back within each timing round (GC paused) and the
   headline speedup is the *median of the per-round paired ratios*:
   adjacent pairing cancels the slow machine-speed drift a min-per-side
   over separate pools cannot, which matters on a noisy single-core box.
   Speculation only wins when the draft agrees with the target *and* is
   actually cheaper to run, so the >= ``SPEEDUP_TARGET`` gate applies only
   when the measured acceptance rate clears ``ACCEPTANCE_FLOOR`` and the
   measured draft/target per-token cost ratio is under
   ``DRAFT_COST_CEILING`` — the report's honesty flags, recorded either
   way.
3. **KV memory** — peak reserved bytes and bytes per live session for the
   dense vs paged layouts under a mixed-length burst, read from
   :meth:`~repro.serve.engine.BatchedEngine.kv_stats`.  Dense reserves the
   longest-ever capacity for every slot; paged reserves per-sequence
   blocks, so mixed lengths are exactly where it pays.

Both models are *trained* (draft and target on the same cyclic corpus):
an untrained draft proposes noise, the target rejects everything, and the
benchmark would "measure" a speculation path that never engages.  The
report is written to ``BENCH_decode.json`` when ``REPRO_BENCH_SNAPSHOT=1``.
"""

from __future__ import annotations

import gc
import json
import os
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from .request import SamplingParams
from .scheduler import ServeConfig

#: Speculative-over-baseline tokens/sec floor, asserted only when the
#: draft actually agrees with the target (``target_applies``).
SPEEDUP_TARGET = 1.2

#: Minimum measured acceptance rate for the speedup target to apply: below
#: this the draft is wrong too often for speculation to possibly pay, and
#: the gate degrades to the overhead bound in ``benchmarks/bench_decode.py``.
ACCEPTANCE_FLOOR = 0.5

#: Maximum measured draft/target per-token forward cost for the target to
#: apply.  At toy scale a box can be interpreter-overhead-bound, making
#: draft and target forwards cost the same wall time regardless of their
#: FLOP gap — speculation cannot win there no matter how good the draft.
DRAFT_COST_CEILING = 0.7


def _cycles(groups: int = 4) -> List[List[int]]:
    """Disjoint 3-token cycles, one per prompt family."""
    return [[3 + 3 * g, 4 + 3 * g, 5 + 3 * g] for g in range(groups)]


def _ms_per_token(model, repeats: int = 3, tokens: int = 150) -> float:
    """Best-of single-token decode cost of ``model``, in milliseconds."""
    from ..nn.infer import InferenceEngine, _LayerCache
    engine = InferenceEngine(model)
    caches = [_LayerCache() for _ in engine.layers]
    engine._forward([1, 3, 4, 5], caches)
    best = float("inf")
    for _ in range(repeats):
        for cache in caches:
            cache.truncate(4)
        started = time.perf_counter()
        for i in range(tokens):
            engine._forward([3 + (i % 3)], caches)
        best = min(best, time.perf_counter() - started)
    return best * 1e3 / tokens


def _train_backbone(backbone: str, vocab: int, corpus: List[List[int]],
                    seed: int, epochs: int):
    from ..nn.trainer import TrainConfig, Trainer
    from ..nn.transformer import TransformerLM, preset_config
    config = preset_config(backbone, vocab_size=vocab, seed=seed)
    model = TransformerLM(config)
    Trainer(model, pad_id=0,
            config=TrainConfig(epochs=epochs, batch_size=8, lr=3e-3)
            ).fit(corpus)
    model.eval()
    return model


def _workload(cycles: List[List[int]], n_requests: int, max_new_tokens: int,
              seed: int, greedy: bool = False, length_spread: int = 3
              ) -> List[Tuple[Tuple[int, ...], SamplingParams]]:
    """Prompts are cycle prefixes of varying length (in-distribution, so
    greedy continuations are learnable); sampling is mixed unless greedy."""
    out = []
    for i in range(n_requests):
        cycle = cycles[i % len(cycles)]
        reps = 1 + (i * 5) % length_spread
        prompt = tuple([1] + cycle * reps)
        if greedy:
            params = SamplingParams(max_new_tokens=max_new_tokens,
                                    temperature=0.0)
        else:
            mode = i % 3
            params = SamplingParams(
                max_new_tokens=max_new_tokens,
                temperature=0.0 if mode == 0 else 0.8,
                top_k=8 if mode == 1 else None,
                top_p=0.9 if mode == 2 else None,
                seed=seed + i)
        out.append((prompt, params))
    return out


def _drive(server, workload, tag: str) -> Dict[str, Tuple[int, ...]]:
    ids = []
    for i, (prompt, params) in enumerate(workload):
        ids.append(server.submit(prompt, params=params,
                                 request_id=f"{tag}-{i}"))
    server.run_until_idle()
    return {rid: server.result(rid).token_ids for rid in ids}


def _kv_profile(model, workload, kv_mode: str,
                kv_block_tokens: int) -> Dict[str, object]:
    """Drive one burst through a fused server, polling KV accounting each
    step; returns peak footprint plus the post-idle leak check."""
    from .server import InProcessServer
    server = InProcessServer(model, config=ServeConfig(
        decode_mode="fused", prefix_cache=False, max_batch_size=8,
        kv_mode=kv_mode, kv_block_tokens=kv_block_tokens))
    for i, (prompt, params) in enumerate(workload):
        server.submit(prompt, params=params, request_id=f"kv-{i}")
    peak_reserved = peak_in_use = 0
    at_peak_sessions = 1
    while not server.idle:
        server.step()
        stats = server.engine.kv_stats()
        live = server.scheduler.running_count
        peak_reserved = max(peak_reserved, int(stats.get("bytes_reserved", 0)))
        if live and int(stats.get("bytes_in_use", 0)) >= peak_in_use:
            peak_in_use = int(stats["bytes_in_use"])
            at_peak_sessions = live
    out: Dict[str, object] = {
        "kv_mode": kv_mode,
        "token_bytes": int(server.engine.kv_stats()["token_bytes"]),
        "peak_bytes_reserved": peak_reserved,
        "peak_bytes_in_use": peak_in_use,
        "bytes_per_session": peak_in_use // max(at_peak_sessions, 1),
    }
    if kv_mode == "paged":
        pool = server.engine._block_pool
        out["block_tokens"] = kv_block_tokens
        out["leaked_blocks"] = pool.n_allocated if pool is not None else 0
        out["conservation_ok"] = (pool.conservation_ok()
                                  if pool is not None else True)
    return out


def run_decode_benchmark(target_backbone: str = "grande",
                         draft_backbone: str = "nano",
                         speculative_tokens: int = 3,
                         n_requests: int = 12, max_new_tokens: int = 32,
                         repeats: int = 5, epochs: int = 30,
                         seed: int = 0) -> Dict[str, object]:
    """Benchmark the cheap-decode paths against their exactness oracles.

    Returns a JSON-serialisable report: per-axis parity verdicts, weight
    bytes fp32 vs int8, KV bytes dense vs paged, speculative vs target-only
    tokens/sec with the measured acceptance rate and the derived
    ``target_applies`` flag.
    """
    from ..nn.kernels import quantize_state_dict
    from .engine import dequantized_oracle_model
    from .server import InProcessServer

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if speculative_tokens < 1:
        raise ValueError("speculative_tokens must be >= 1")
    vocab = 32
    cycles = _cycles()
    # Endless cycles, no eos: greedy continuations stay in-distribution
    # forever, so a well-trained draft can track the target the whole way
    # (a corpus that terminates would push decoding past its own end into
    # unlearned territory where draft and target disagree on noise).
    corpus = [[1] + cycle * 12 for cycle in cycles] * 2
    target = _train_backbone(target_backbone, vocab, corpus, seed, epochs)
    draft = _train_backbone(draft_backbone, vocab, corpus, seed + 1, epochs)

    # Phase 1 — byte parity of every cheap path against its oracle, under
    # mixed sampling (greedy / top-k / top-p with per-request seeds).
    parity_load = _workload(cycles, n_requests, max_new_tokens, seed)

    def fused_server(**kw):
        kw.setdefault("decode_mode", "fused")
        kw.setdefault("prefix_cache", False)
        kw.setdefault("max_batch_size", 4)
        draft_model = kw.pop("draft_model", None)
        return InProcessServer(target, config=ServeConfig(**kw),
                               draft_model=draft_model)

    dense = _drive(fused_server(), parity_load, "dense")
    paged = _drive(fused_server(kv_mode="paged", kv_block_tokens=16),
                   parity_load, "paged")
    int8 = _drive(fused_server(weight_mode="int8"), parity_load, "int8")
    oracle_server = InProcessServer(
        dequantized_oracle_model(target),
        config=ServeConfig(decode_mode="exact", prefix_cache=False,
                           max_batch_size=4))
    int8_oracle = _drive(oracle_server, parity_load, "int8")
    spec_server = fused_server(speculative_tokens=speculative_tokens,
                               draft_model=draft)
    spec = _drive(spec_server, parity_load, "spec")
    parity = {
        "paged_vs_dense": ({k.replace("paged", "dense"): v
                            for k, v in paged.items()} == dense),
        "int8_vs_dequant_oracle": int8 == int8_oracle,
        "speculative_vs_target_only": ({k.replace("spec", "dense"): v
                                        for k, v in spec.items()} == dense),
    }

    # Phase 2 — speculative vs target-only throughput on a greedy
    # in-distribution workload at batch size 1: the single-stream latency
    # regime where each emitted token would otherwise cost one full target
    # forward.  Long decodes (spec_new_tokens) keep prefill — identical in
    # both arms — from diluting the measured decode-path ratio.
    spec_requests, spec_new_tokens = 6, 64
    greedy_load = _workload(cycles, spec_requests, spec_new_tokens, seed,
                            greedy=True)
    base_server = fused_server(max_batch_size=1)
    spec_server = fused_server(max_batch_size=1,
                               speculative_tokens=speculative_tokens,
                               draft_model=draft)
    _drive(base_server, greedy_load, "warm-b")
    _drive(spec_server, greedy_load, "warm-s")
    base = {"seconds": float("inf")}
    spec_arm = {"seconds": float("inf")}
    ratios = []
    n_tokens = 0
    for round_no in range(repeats):
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            got = _drive(spec_server, greedy_load, f"s{round_no}")
            spec_s = time.perf_counter() - started
            started = time.perf_counter()
            _drive(base_server, greedy_load, f"b{round_no}")
            base_s = time.perf_counter() - started
        finally:
            gc.enable()
        spec_arm["seconds"] = min(spec_arm["seconds"], spec_s)
        base["seconds"] = min(base["seconds"], base_s)
        ratios.append(base_s / spec_s)
        n_tokens = sum(len(t) for t in got.values())
    for side in (base, spec_arm):
        side["tokens_per_sec"] = n_tokens / side["seconds"]
    speedup = sorted(ratios)[len(ratios) // 2]
    spec_stats = spec_server.scheduler.spec_stats()

    # Phase 3 — KV memory, dense vs paged, mixed-length burst (prompt
    # lengths span ~4..50 tokens so per-sequence allocation can pay).
    kv_load = _workload(cycles, n_requests, max_new_tokens, seed,
                        greedy=True, length_spread=16)
    kv_dense = _kv_profile(target, kv_load, "dense", 16)
    kv_paged = _kv_profile(target, kv_load, "paged", 16)

    # Weight memory: the arena/published copy an int8 fleet shares.
    state = target.state_dict()
    fp32_bytes = int(sum(a.nbytes for a in state.values()))
    int8_bytes = int(sum(a.nbytes
                         for a in quantize_state_dict(state).values()))

    draft_ms = _ms_per_token(draft)
    target_ms = _ms_per_token(target)
    cost_ratio = draft_ms / target_ms
    acceptance = spec_stats["acceptance_rate"]
    return {
        "target_backbone": target_backbone,
        "draft_backbone": draft_backbone,
        "speculative_tokens": speculative_tokens,
        "n_requests": n_requests,
        "max_new_tokens": max_new_tokens,
        "total_tokens": n_tokens,
        "repeats": repeats,
        "cpu_count": os.cpu_count() or 1,
        "parity": parity,
        "parity_ok": all(parity.values()),
        "weights": {
            "fp32_bytes": fp32_bytes,
            "int8_bytes": int8_bytes,
            "ratio": int8_bytes / fp32_bytes,
        },
        "kv": {"dense": kv_dense, "paged": kv_paged,
               "reserved_ratio": (kv_paged["peak_bytes_reserved"]
                                  / max(kv_dense["peak_bytes_reserved"], 1))},
        "speculative": spec_stats,
        "draft_ms_per_token": draft_ms,
        "target_ms_per_token": target_ms,
        "draft_cost_ratio": cost_ratio,
        "draft_cost_ceiling": DRAFT_COST_CEILING,
        "baseline": base,
        "speculative_arm": spec_arm,
        "round_ratios": ratios,
        "speedup": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "acceptance_floor": ACCEPTANCE_FLOOR,
        "target_applies": (acceptance >= ACCEPTANCE_FLOOR
                           and cost_ratio <= DRAFT_COST_CEILING),
    }


def format_decode_report(result: Dict[str, object]) -> str:
    """Human-readable summary of :func:`run_decode_benchmark`."""
    parity = result["parity"]
    weights, kv = result["weights"], result["kv"]
    spec = result["speculative"]
    if result["target_applies"]:
        target = f">= {result['speedup_target']:.1f}x target"
    elif spec["acceptance_rate"] < result["acceptance_floor"]:
        target = (f"target waived: acceptance {spec['acceptance_rate']:.2f} "
                  f"< {result['acceptance_floor']:.2f} floor")
    else:
        target = (f"target waived: draft costs "
                  f"{result['draft_cost_ratio']:.2f}x of the target per "
                  f"token (> {result['draft_cost_ceiling']:.2f} ceiling)")
    verdict = {True: "byte-identical", False: "DIVERGED"}
    lines = [
        f"workload : {result['n_requests']} requests x "
        f"{result['max_new_tokens']} new tokens "
        f"({result['target_backbone']} target, {result['draft_backbone']} "
        f"draft, best of {result['repeats']})",
        f"parity   : paged-vs-dense {verdict[parity['paged_vs_dense']]}, "
        f"int8-vs-oracle {verdict[parity['int8_vs_dequant_oracle']]}, "
        f"speculative {verdict[parity['speculative_vs_target_only']]}",
        f"weights  : fp32 {weights['fp32_bytes']:,} B -> int8 "
        f"{weights['int8_bytes']:,} B ({weights['ratio']:.2f}x)",
        f"kv/sess  : dense {kv['dense']['bytes_per_session']:,} B -> paged "
        f"{kv['paged']['bytes_per_session']:,} B  (reserved "
        f"{kv['reserved_ratio']:.2f}x)",
        f"spec     : {spec['accepted']}/{spec['drafted']} draft tokens "
        f"accepted ({spec['acceptance_rate']:.2f}) over "
        f"{spec['rounds']} rounds; draft costs "
        f"{result['draft_cost_ratio']:.2f}x of the target per token",
        f"decode   : {result['baseline']['tokens_per_sec']:7.1f} tok/s "
        f"target-only -> {result['speculative_arm']['tokens_per_sec']:7.1f} "
        f"tok/s speculative (batch 1)",
        f"speedup  : {result['speedup']:8.2f}x median of "
        f"{result['repeats']} paired rounds  ({target})",
    ]
    return "\n".join(lines)


def write_decode_snapshot(result: Dict[str, object], path) -> None:
    """Write the benchmark report as a JSON perf-trajectory snapshot."""
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
