"""Fleet benchmark: N routed replicas vs a single engine, gated on parity.

Two phases, mirroring the parallel-eval benchmark's methodology:

1. **Parity** — the acceptance gate.  A mixed-sampling burst (greedy,
   top-k, top-p with per-request seeds) is answered by a single
   :class:`~repro.serve.server.InProcessServer` and by a routed
   :class:`~repro.serve.fleet.FleetServer`, both in exact decode mode with
   the prefix cache off; every token stream must be byte-identical.
2. **Throughput** — the headline number.  The production configuration
   (fused decode, prefix cache on) runs the same multi-prefix-group
   workload through a fleet of one replica and a fleet of ``replicas``
   replicas; aggregate tokens/sec is timed over interleaved rounds with
   the min taken per side, which discards co-tenant load spikes without
   favouring either arm.

The >= 2x aggregate-throughput target is only physically reachable when
the machine has at least ``replicas`` cores, so the report records
``cpu_count`` and a ``target_applies`` flag and the bench test gates its
assertion on it — a starved box still validates parity, respawn-free
operation, and the absence of leaked shared-memory segments.

Prompts are grouped into ``groups`` disjoint shared-prefix families (the
ChipAlign traffic shape: one grounding block per assistant, many question
tails) so the consistent-hash router actually spreads load — a single
shared prefix would pin the whole burst to one replica by design.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs import Observability
from .request import SamplingParams
from .scheduler import ServeConfig

#: Aggregate tokens/sec floor for the headline 4-replica configuration,
#: asserted only when ``target_applies``.  Reports scale it by
#: ``replicas / 4`` — the same 0.5-per-replica efficiency floor — so a
#: 2-replica smoke run is gated at 1.0x, not an unreachable 2x.
SPEEDUP_TARGET = 2.0


def _workload(groups: int, requests_per_group: int, prefix_tokens: int,
              unique_tokens: int, max_new_tokens: int, vocab: int,
              seed: int) -> List[Tuple[Tuple[int, ...], SamplingParams]]:
    """Multi-group burst: per-group shared prefixes, mixed sampling modes."""
    out = []
    for g in range(groups):
        rng = np.random.default_rng(seed + g * 1000)
        prefix = tuple(int(t) for t in rng.integers(2, vocab,
                                                    size=prefix_tokens))
        for i in range(requests_per_group):
            tail = tuple(int(t) for t in rng.integers(2, vocab,
                                                      size=unique_tokens))
            mode = (g * requests_per_group + i) % 3
            params = SamplingParams(
                max_new_tokens=max_new_tokens,
                temperature=0.0 if mode == 0 else 0.8,
                top_k=8 if mode == 1 else None,
                top_p=0.9 if mode == 2 else None,
                seed=seed + g * 100 + i)
            out.append((prefix + tail, params))
    return out


def _drive_fleet(fleet, workload, tag: str) -> Dict[str, Tuple[int, ...]]:
    """Submit the whole burst (unique ids per round) and run it to idle."""
    ids = []
    for i, (prompt, params) in enumerate(workload):
        ids.append(fleet.submit(prompt, params=params,
                                request_id=f"{tag}-{i}"))
    fleet.run_until_idle()
    return {rid: fleet.result(rid).token_ids for rid in ids}


def run_fleet_benchmark(backbone: str = "nano", replicas: int = 4,
                        groups: Optional[int] = None,
                        requests_per_group: int = 4,
                        prefix_tokens: int = 32, unique_tokens: int = 8,
                        max_new_tokens: int = 16, repeats: int = 3,
                        seed: int = 0,
                        obs: Optional[Observability] = None
                        ) -> Dict[str, object]:
    """Benchmark ``replicas`` routed replicas against a single engine.

    Returns a JSON-serialisable report: the parity verdict, per-arm
    wall-clock and aggregate tokens/sec, the fleet-over-single speedup,
    ``cpu_count`` with the derived ``target_applies`` flag, respawn and
    requeue counts (zero in a healthy run), and the fleet arm's merged
    metric registry.
    """
    from ..nn.transformer import TransformerLM, preset_config
    from ..parallel import TensorArena
    from .fleet import FleetServer
    from .server import InProcessServer

    if replicas < 2:
        raise ValueError(f"replicas must be >= 2, got {replicas}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    obs = obs if obs is not None else Observability()
    vocab = 64
    config = preset_config(backbone, vocab_size=vocab, seed=seed)
    model = TransformerLM(config)
    model.eval()
    groups = groups if groups is not None else replicas * 2
    workload = _workload(groups, requests_per_group, prefix_tokens,
                         unique_tokens, max_new_tokens, vocab, seed)
    n_requests = len(workload)
    total_tokens = n_requests * max_new_tokens

    # Phase 1 — byte parity in exact mode (the batch-independent decode
    # path, so routing must be invisible in the output bytes).
    exact = ServeConfig(max_batch_size=4, decode_mode="exact",
                        prefix_cache=False)
    single_server = InProcessServer(model, config=exact)
    for i, (prompt, params) in enumerate(workload):
        single_server.submit(prompt, params=params, request_id=f"parity-{i}")
    single_server.run_until_idle()
    want = {f"parity-{i}": single_server.result(f"parity-{i}").token_ids
            for i in range(n_requests)}
    with FleetServer(model, n_replicas=replicas, serve_config=exact) as fleet:
        got = _drive_fleet(fleet, workload, "parity")
    parity_ok = got == want

    # Phase 2 — aggregate throughput in the production configuration.
    fused = ServeConfig(max_batch_size=4, decode_mode="fused",
                        prefix_cache=True)
    single = {"seconds": float("inf")}
    multi = {"seconds": float("inf")}
    respawns = 0
    with FleetServer(model, n_replicas=1, serve_config=fused) as one, \
            FleetServer(model, n_replicas=replicas, serve_config=fused,
                        obs=obs) as many:
        # Warm-up round per arm: fork/attach costs, BLAS spin-up, and the
        # prefix-cache fill all settle before timing.
        _drive_fleet(one, workload, "warm1")
        _drive_fleet(many, workload, "warmN")
        for round_no in range(repeats):
            started = time.perf_counter()
            _drive_fleet(many, workload, f"n{round_no}")
            multi["seconds"] = min(multi["seconds"],
                                   time.perf_counter() - started)
            started = time.perf_counter()
            _drive_fleet(one, workload, f"s{round_no}")
            single["seconds"] = min(single["seconds"],
                                    time.perf_counter() - started)
        snapshot = many.fleet_snapshot()
        respawns = snapshot["respawns"]

    for side in (single, multi):
        side["tokens_per_sec"] = total_tokens / side["seconds"]
        side["ms_per_request"] = side["seconds"] * 1e3 / n_requests
    cpu_count = os.cpu_count() or 1
    return {
        "backbone": backbone,
        "replicas": replicas,
        "cpu_count": cpu_count,
        "n_requests": n_requests,
        "groups": groups,
        "max_new_tokens": max_new_tokens,
        "total_tokens": total_tokens,
        "repeats": repeats,
        "single": single,
        "fleet": multi,
        "speedup": multi["tokens_per_sec"] / single["tokens_per_sec"],
        "speedup_target": SPEEDUP_TARGET * replicas / 4,
        "target_applies": cpu_count >= replicas,
        "parity_ok": parity_ok,
        "respawns": respawns,
        "router": snapshot["router"],
        "merged_registry": snapshot["merged"],
        "leaked_segments": TensorArena.live_segments(),
    }


def format_fleet_report(result: Dict[str, object]) -> str:
    """Human-readable summary of :func:`run_fleet_benchmark`."""
    single, fleet = result["single"], result["fleet"]
    target = (f">= {result['speedup_target']:.1f}x target"
              if result["target_applies"] else
              f"target waived: {result['cpu_count']} core(s) < "
              f"{result['replicas']} replicas")
    lines = [
        f"workload : {result['n_requests']} requests in {result['groups']} "
        f"prefix groups ({result['backbone']} backbone, "
        f"{result['max_new_tokens']} new tokens, best of "
        f"{result['repeats']})",
        f"1 replica: {single['ms_per_request']:8.1f} ms/req  "
        f"{single['tokens_per_sec']:7.1f} tok/s",
        f"{result['replicas']} replicas: {fleet['ms_per_request']:7.1f} "
        f"ms/req  {fleet['tokens_per_sec']:7.1f} tok/s",
        f"speedup  : {result['speedup']:8.2f}x  ({target})",
        f"parity   : routed output "
        f"{'byte-identical' if result['parity_ok'] else 'DIVERGED'} "
        f"to the single engine (exact mode)",
        f"faults   : {result['respawns']} replica respawn(s)",
    ]
    return "\n".join(lines)


def write_fleet_snapshot(result: Dict[str, object], path) -> None:
    """Write the benchmark report as a JSON perf-trajectory snapshot."""
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
