"""Batched, prefix-caching inference serving.

The deployment layer the ROADMAP's "serves heavy traffic" goal asks for:
instead of one :class:`~repro.nn.infer.InferenceEngine` call per prompt with
a fresh KV cache each time, an :class:`InProcessServer` admits typed
:class:`Request` objects through a continuous micro-batching
:class:`Scheduler`, decodes many sequences per step through a
:class:`BatchedEngine`, reuses shared prompt prefixes from a
:class:`PrefixCachePool`, carries chat state in a :class:`SessionStore`,
and exposes throughput/latency instrumentation via
:meth:`InProcessServer.metrics_snapshot`.

Quickstart::

    from repro.serve import InProcessServer, SamplingParams, ServeConfig

    server = InProcessServer(model, tokenizer)
    for prompt in prompts:                       # shared-prefix traffic
        server.submit_text(prompt, SamplingParams(max_new_tokens=32))
    completions = server.run_until_idle()
    print(server.metrics_snapshot()["tokens_per_second"])

See DESIGN.md §6 and ``repro serve-bench`` for the benchmark workflow.

The network front door — real sockets, streaming, multi-tenant admission
control — lives in :mod:`repro.serve.net` (DESIGN.md §9, ``repro
serve-net`` / ``repro serve-net-bench``).  Multi-process replica serving
over one shared-memory weight copy lives in :mod:`repro.serve.fleet`
(DESIGN.md §10, ``repro serve-fleet`` / ``repro serve-fleet-bench``).

Cheap-decode serving — int8 weights (``ServeConfig(weight_mode="int8")``),
paged KV allocation (``kv_mode="paged"``), and speculative decoding
(``speculative_tokens=k`` plus a ``draft_model``) — lives across
:mod:`repro.serve.engine`, :mod:`repro.serve.cache`, and the scheduler
(DESIGN.md §11, ``repro bench-decode``).  All three paths emit token
streams byte-identical to exact fp32 dense decoding.

The λ-fleet — many merged-model variants (scalar λ, per-layer schedules,
Karcher weights) materialized lazily from one arena-resident
:class:`~repro.core.merge_engine.MergePlan`, with variant-aware routing
and quality-driven promotion — lives in :mod:`repro.serve.lambda_fleet`
(DESIGN.md §12, ``repro bench-lambda``).
"""

from .cache import (ArrayEntry, BlockEntry, BlockPool, BlockPoolError,
                    KVEntry, PrefixCachePool, common_prefix_length,
                    common_prefix_length_np)
from .decode_bench import (format_decode_report, run_decode_benchmark,
                           write_decode_snapshot)
from .kvplane_bench import (format_kvplane_report, run_kvplane_benchmark,
                            write_kvplane_snapshot)
from .engine import (BatchedEngine, DECODE_MODES, KV_MODES, WEIGHT_MODES,
                     dequantized_oracle_model)
from .loadgen import (ARRIVAL_PROCESSES, WorkloadSpec, arrival_schedule,
                      format_benchmark_report, percentile,
                      run_multi_tenant_workload, run_serial_baseline,
                      run_serve_benchmark, run_served, run_socket_workload,
                      synthetic_prompts)
from .metrics import ServerMetrics
from .request import (Completion, FinishReason, Request, RequestStatus,
                      SamplingParams)
from .scheduler import Scheduler, ServeConfig
from .server import InProcessServer
from .sessions import SessionState, SessionStore

__all__ = [
    "BatchedEngine", "DECODE_MODES", "KV_MODES", "WEIGHT_MODES",
    "dequantized_oracle_model",
    "Completion", "FinishReason", "Request", "RequestStatus", "SamplingParams",
    "ArrayEntry", "BlockEntry", "BlockPool", "BlockPoolError", "KVEntry",
    "PrefixCachePool", "common_prefix_length", "common_prefix_length_np",
    "format_decode_report", "run_decode_benchmark", "write_decode_snapshot",
    "format_kvplane_report", "run_kvplane_benchmark", "write_kvplane_snapshot",
    "Scheduler", "ServeConfig", "ServerMetrics",
    "SessionState", "SessionStore",
    "InProcessServer",
    "ARRIVAL_PROCESSES", "WorkloadSpec", "arrival_schedule",
    "format_benchmark_report", "percentile", "run_multi_tenant_workload",
    "run_serial_baseline", "run_serve_benchmark", "run_served",
    "run_socket_workload", "synthetic_prompts",
]
