"""Batched decoding engine: step N independent sequences at once.

:class:`BatchedEngine` extends the single-sequence
:class:`~repro.nn.infer.InferenceEngine` with what the scheduler needs:

* **prefill with KV reuse** — a new sequence's caches can be preloaded with
  KV state from the prefix pool or a chat session, so prefill only runs the
  unseen suffix of the prompt;
* **batched decode** — one call advances every running sequence by a token;
* **KV export** — a sequence's accumulated KV state can be snapshotted for
  the prefix pool or the session store.

Two decode modes, selected at construction:

``"fused"`` (default)
    Sequences live in engine-owned *slots*: per layer, one ragged batch
    buffer of shape ``(max_batch, heads, capacity, head_dim)`` plus a
    length vector, grown by amortised doubling.  A decode step runs the
    embeddings, attention projections, and SwiGLU MLP as single ``(B, ·)``
    matmuls, writes each sequence's new K/V into its slot row with one
    fancy-indexed store per layer, and attends over a plain slice view of
    the batch buffer with out-of-range positions masked to ``-1e30`` —
    no per-step reassembly of the KV history.  BLAS matmuls are not
    bitwise row-stable across batch shapes, so fused logits match the
    single-sequence engine to ~1e-6 float tolerance; near-degenerate
    logit ties could in principle resolve differently.
``"exact"``
    Sequences keep per-sequence :class:`~repro.nn.infer._LayerCache` state
    and decode loops them through ``InferenceEngine._forward`` with the
    exact array shapes of single-sequence decoding — guaranteeing
    token-for-token parity with :meth:`InferenceEngine.generate`.  Use for
    regression comparisons and determinism-critical evaluation.

Sequences are handed to callers as opaque :class:`SequenceHandle` objects;
the scheduler never touches the storage representation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn.infer import InferenceEngine, _LayerCache, _rms_norm, _silu
from ..nn.kernels import attention_nograd
from .cache import LayerKV

DECODE_MODES = ("fused", "exact")

#: Initial per-slot token capacity of the fused batch buffers.
_INITIAL_SLOT_CAPACITY = 64


class SequenceHandle:
    """Opaque reference to one live sequence inside the engine."""

    __slots__ = ("slot", "caches", "_engine")

    def __init__(self, engine: "BatchedEngine", slot: Optional[int],
                 caches: Optional[List[_LayerCache]]) -> None:
        self._engine = engine
        self.slot = slot
        self.caches = caches

    @property
    def length(self) -> int:
        """Number of tokens whose KV state the sequence holds."""
        if self.caches is not None:
            return self.caches[0].length
        return int(self._engine._slot_lens[self.slot])


class BatchedEngine(InferenceEngine):
    """Multi-sequence extension of the KV-cached inference engine."""

    def __init__(self, model, decode_mode: str = "fused",
                 max_batch_size: int = 8) -> None:
        super().__init__(model)
        if decode_mode not in DECODE_MODES:
            raise ValueError(f"decode_mode must be one of {DECODE_MODES}, "
                             f"got {decode_mode!r}")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.decode_mode = decode_mode
        self.max_batch_size = max_batch_size
        # Fused-mode slot storage, allocated lazily on first bind.
        self._slot_k: List[np.ndarray] = []
        self._slot_v: List[np.ndarray] = []
        self._slot_lens = np.zeros(max_batch_size, dtype=np.int64)
        self._free_slots = list(range(max_batch_size - 1, -1, -1))
        # Concatenated projection weights: one gemm for Q|K|V and gate|up
        # per layer instead of five (fused decode only; the exact path keeps
        # the single-sequence shapes).
        self._fused_w = [{
            "qkv": np.concatenate([layer["q"], layer["k"], layer["v"]], axis=0),
            "gate_up": np.concatenate([layer["gate"], layer["up"]], axis=0),
        } for layer in self.layers]

    # ------------------------------------------------------------------
    # prefill
    # ------------------------------------------------------------------
    def new_caches(self) -> List[_LayerCache]:
        """Fresh, empty per-layer caches for one sequence."""
        return [_LayerCache() for _ in self.layers]

    def prefill(self, prompt_ids: Sequence[int], caches: List[_LayerCache],
                reused_kv: Optional[List[LayerKV]] = None) -> np.ndarray:
        """Run a prompt through the model, seeding ``caches``.

        ``reused_kv`` (from :class:`~repro.serve.cache.PrefixCachePool` or a
        session) preloads the caches with the KV state of the first
        ``reused`` prompt tokens; only the remaining suffix is computed.
        Returns the next-token logits of the final prompt position.
        """
        if not prompt_ids:
            raise ValueError("prompt_ids must be non-empty")
        if caches[0].length:
            raise ValueError("prefill requires fresh caches")
        reused = 0
        if reused_kv is not None:
            reused = reused_kv[0][0].shape[1]
            if reused >= len(prompt_ids):
                raise ValueError("reused prefix must be shorter than the prompt")
            for cache, (k, v) in zip(caches, reused_kv):
                cache.preload(k, v)
        suffix = [int(i) for i in prompt_ids[reused:]]
        return self._forward(suffix, caches)

    # ------------------------------------------------------------------
    # sequence lifecycle
    # ------------------------------------------------------------------
    def bind(self, caches: List[_LayerCache]) -> SequenceHandle:
        """Adopt a prefilled sequence into the engine's decode storage.

        In exact mode the handle keeps the per-sequence caches; in fused
        mode their KV state is copied into a free batch slot (a one-time
        cost per request) and the caches are dropped.
        """
        if self.decode_mode == "exact":
            return SequenceHandle(self, None, caches)
        if not self._free_slots:
            raise RuntimeError(f"all {self.max_batch_size} slots in use")
        slot = self._free_slots.pop()
        length = caches[0].length
        self._ensure_slot_storage(length)
        for li, cache in enumerate(caches):
            self._slot_k[li][slot, :, :length] = cache.k
            self._slot_v[li][slot, :, :length] = cache.v
        self._slot_lens[slot] = length
        return SequenceHandle(self, slot, None)

    def release(self, handle: SequenceHandle) -> None:
        """Return a sequence's resources to the engine."""
        if handle.slot is not None:
            self._slot_lens[handle.slot] = 0
            self._free_slots.append(handle.slot)
            handle.slot = None
        handle.caches = None

    def export_kv(self, handle: SequenceHandle,
                  upto: Optional[int] = None) -> List[LayerKV]:
        """Copy the first ``upto`` cached positions of every layer."""
        if handle.caches is not None:
            return [cache.snapshot(upto) for cache in handle.caches]
        slot = handle.slot
        length = int(self._slot_lens[slot]) if upto is None else \
            min(upto, int(self._slot_lens[slot]))
        return [(self._slot_k[li][slot, :, :length].copy(),
                 self._slot_v[li][slot, :, :length].copy())
                for li in range(len(self.layers))]

    def _ensure_slot_storage(self, needed: int) -> None:
        """Grow the shared slot buffers to hold ``needed`` tokens per slot."""
        old_cap = self._slot_k[0].shape[2] if self._slot_k else 0
        if needed <= old_cap:
            return
        cap = max(old_cap, _INITIAL_SLOT_CAPACITY)
        while cap < needed:
            cap *= 2
        cap = min(cap, max(self.config.max_seq_len, needed))
        dtype = self.tok_emb.dtype
        shape = (self.max_batch_size, self.n_heads, cap, self.head_dim)
        if not self._slot_k:
            self._slot_k = [np.zeros(shape, dtype=dtype) for _ in self.layers]
            self._slot_v = [np.zeros(shape, dtype=dtype) for _ in self.layers]
            return
        for li in range(len(self.layers)):
            for bufs in (self._slot_k, self._slot_v):
                grown = np.zeros(shape, dtype=dtype)
                grown[:, :, :old_cap] = bufs[li]
                bufs[li] = grown

    # ------------------------------------------------------------------
    # batched decode
    # ------------------------------------------------------------------
    def decode(self, tokens: Sequence[int],
               handles: Sequence[SequenceHandle]) -> np.ndarray:
        """Advance every sequence by one token; returns ``(B, vocab)`` logits.

        ``tokens[b]`` is sequence *b*'s most recently sampled token; its K/V
        is appended to sequence *b*'s cached state as a side effect, exactly
        like a single-sequence ``_forward([token], caches)`` call.
        """
        if len(tokens) != len(handles):
            raise ValueError("tokens and handles must align")
        if not tokens:
            raise ValueError("empty decode batch")
        if self.decode_mode == "exact":
            return np.stack([self._forward([int(t)], handle.caches)
                             for t, handle in zip(tokens, handles)])
        return self._decode_fused(tokens, handles)

    def _decode_fused(self, tokens: Sequence[int],
                      handles: Sequence[SequenceHandle]) -> np.ndarray:
        batch = len(tokens)
        heads, head_dim = self.n_heads, self.head_dim
        slots = np.asarray([handle.slot for handle in handles])
        positions = self._slot_lens[slots].copy()  # (B,) pre-append lengths
        if int(positions.max()) >= self.config.max_seq_len:
            raise ValueError("a sequence exceeds the model context window")
        self._ensure_slot_storage(int(positions.max()) + 1)
        x = self.tok_emb[np.asarray(tokens, dtype=np.int64)]  # (B, D)
        cos = self._cos[positions][:, None, :]  # (B, 1, Dh)
        sin = self._sin[positions][:, None, :]
        half = head_dim // 2
        lengths = positions + 1  # per-sequence lengths after the append
        t_max = int(lengths.max())
        invalid = np.arange(t_max)[None, :] >= lengths[:, None]  # (B, Tmax)
        scale = 1.0 / np.sqrt(head_dim)
        dim = heads * head_dim
        for li, layer in enumerate(self.layers):
            h = _rms_norm(x, layer["attn_norm"])
            qkv = h @ self._fused_w[li]["qkv"].T  # (B, 3*D)
            q = qkv[:, :dim].reshape(batch, heads, head_dim)
            k = qkv[:, dim: 2 * dim].reshape(batch, heads, head_dim)
            v = qkv[:, 2 * dim:].reshape(batch, heads, head_dim)
            q = q * cos + np.concatenate([-q[..., half:], q[..., :half]], -1) * sin
            k = k * cos + np.concatenate([-k[..., half:], k[..., :half]], -1) * sin
            self._slot_k[li][slots, :, positions] = k
            self._slot_v[li][slots, :, positions] = v
            # One vectorised gather per buffer (ragged rows padded to Tmax).
            k_all = self._slot_k[li][slots, :, :t_max]  # (B, H, Tmax, Dh)
            v_all = self._slot_v[li][slots, :, :t_max]
            # Fused no-grad attention: mask, softmax and @V in one buffer.
            ctx = attention_nograd(q[:, :, None, :], k_all, v_all, scale=scale,
                                   invalid=invalid[:, None, None, :])
            ctx = ctx[:, :, 0, :].reshape(batch, -1)
            x = x + ctx @ layer["o"].T
            h = _rms_norm(x, layer["mlp_norm"])
            gate_up = h @ self._fused_w[li]["gate_up"].T  # (B, 2*ffn)
            ffn = gate_up.shape[1] // 2
            x = x + (_silu(gate_up[:, :ffn]) * gate_up[:, ffn:]) @ layer["down"].T
        self._slot_lens[slots] = lengths
        x = _rms_norm(x, self.final_norm)
        return x @ self.lm_head.T  # (B, vocab)
