"""Batched decoding engine: step N independent sequences at once.

:class:`BatchedEngine` extends the single-sequence
:class:`~repro.nn.infer.InferenceEngine` with what the scheduler needs:

* **prefill with KV reuse** — a new sequence's caches can be preloaded with
  KV state from the prefix pool or a chat session, so prefill only runs the
  unseen suffix of the prompt;
* **batched decode** — one call advances every running sequence by a token;
* **KV export** — a sequence's accumulated KV state can be snapshotted for
  the prefix pool or the session store;
* **zero-copy admission** — :meth:`begin_sequence` adopts a pool/session
  :class:`~repro.serve.cache.KVEntry` (shared block references in paged
  mode: a refcount bump plus at most one sub-block tail copy), and
  :meth:`prefill_into` runs the prompt forward writing K/V straight into
  the adopted slot/block storage, eliminating the cache-then-``bind``
  double materialization; :meth:`make_entry` snapshots a sequence back
  into an entry the same way — shared blocks out, not copies.  The
  ``kv_bytes_copied`` / ``blocks_shared`` counters account every KV byte
  that moves between storage locations (and every block reference taken),
  which is how the kvplane benchmark asserts a full prefix hit copies
  *zero* KV bytes;
* **speculative verification** — :meth:`verify_scores` scores a chain of
  candidate tokens in one forward pass and :meth:`truncate_kv` rolls the
  cache back past a rejection, the primitives the scheduler's speculative
  decode loop is built on.

Two decode modes, selected at construction:

``"fused"`` (default)
    Sequences live in engine-owned *slots*: per layer, one ragged batch
    buffer of shape ``(max_batch, heads, capacity, head_dim)`` plus a
    length vector, grown by amortised doubling.  A decode step runs the
    embeddings, attention projections, and SwiGLU MLP as single ``(B, ·)``
    matmuls, writes each sequence's new K/V into its slot row with one
    fancy-indexed store per layer, and attends over a plain slice view of
    the batch buffer with out-of-range positions masked to ``-1e30`` —
    no per-step reassembly of the KV history.  BLAS matmuls are not
    bitwise row-stable across batch shapes, so fused logits match the
    single-sequence engine to ~1e-6 float tolerance; near-degenerate
    logit ties could in principle resolve differently.
``"exact"``
    Sequences keep per-sequence :class:`~repro.nn.infer._LayerCache` state
    and decode loops them through ``InferenceEngine._forward`` with the
    exact array shapes of single-sequence decoding — guaranteeing
    token-for-token parity with :meth:`InferenceEngine.generate`.  Use for
    regression comparisons and determinism-critical evaluation.

Orthogonal to the decode mode, two cheap-serve axes (DESIGN.md §11):

``weight_mode="int8"``
    Matmul weights are held as per-output-channel int8 with float scales
    (:func:`~repro.nn.kernels.quantize_state_dict`) and fused decode runs
    :func:`~repro.nn.kernels.matmul_int8_nograd` — the dequantization
    happens inside the kernel against a pooled scratch buffer, never as a
    persistent fp32 matrix.  Prefill and the exact decode path run on the
    *dequantized* weights, which makes exact mode the byte-level oracle
    for the quantized model (see :func:`dequantized_oracle_model`).  A
    model whose ``state_dict()`` is already quantized (the fleet's
    arena-published form) is consumed verbatim, never re-quantized.
``kv_mode="paged"``
    Fused-mode KV storage is carved into fixed-size blocks handed out by a
    reference-counted :class:`~repro.serve.cache.BlockPool`, so a slot
    holds exactly the blocks its sequence needs instead of reserving the
    longest-ever capacity — and *full* blocks are shared read-only between
    prefix-pool/session entries and the slots that adopt them, with the
    partial tail block copied on adoption (copy-on-write at block
    granularity; see DESIGN.md §13).  Blocks are zeroed on allocation — a
    reused block can never leak a prior session's tail into a fresh
    sequence (the dense path only *masks* stale tails; the paged path
    erases them).  Per layer the storage is one ``(H, blocks, bt, Dh)``
    array viewed flat as ``(H, blocks·bt, Dh)``; per-slot gather-index
    rows (``_gather_pad``) map sequence positions to flat storage
    positions, so a decode step is one fancy-index store and one gather
    per layer across the whole batch — no per-sequence Python loop.  The
    dense layout stays the differential oracle: both layouts feed
    bit-identical gathered histories to the same attention kernel.

Sequences are handed to callers as opaque :class:`SequenceHandle` objects;
the scheduler never touches the storage representation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.infer import InferenceEngine, _LayerCache, _rms_norm, _silu
from ..nn.kernels import (INT8_SCALE_SUFFIX, attention_nograd,
                          dequantize_state_dict, is_quantized_state,
                          matmul_int8_nograd, quantize_state_dict)
from .cache import ArrayEntry, BlockEntry, BlockPool, KVEntry, LayerKV

DECODE_MODES = ("fused", "exact")
WEIGHT_MODES = ("fp32", "int8")
KV_MODES = ("dense", "paged")

#: Initial per-slot token capacity of the fused dense batch buffers.
_INITIAL_SLOT_CAPACITY = 64

#: Initial block count of the paged KV pool (doubled on demand).
_INITIAL_POOL_BLOCKS = 8


class _StateModel:
    """Duck-typed model view over a plain state dict (config + weights).

    :class:`~repro.nn.infer.InferenceEngine` only ever reads ``.config``
    and ``.state_dict()``, so this shim lets the engine be built from a
    transformed weight set — the dequantized twin of an int8 model, or the
    fleet's arena-backed views — without materialising a TransformerLM.
    """

    __slots__ = ("config", "_state")

    def __init__(self, config, state: Dict[str, np.ndarray]) -> None:
        self.config = config
        self._state = state

    def state_dict(self) -> Dict[str, np.ndarray]:
        return self._state


def dequantized_oracle_model(model) -> _StateModel:
    """The fp32 model an int8 engine actually serves.

    Quantize-then-dequantize the model's weights (identity if they are
    already quantized) and wrap the result.  An exact-mode engine built
    from this model defines the token streams the fused int8 path must
    reproduce — the differential oracle of the int8 parity suite.
    """
    state = model.state_dict()
    if not is_quantized_state(state):
        state = quantize_state_dict(state)
    return _StateModel(model.config, dequantize_state_dict(state))


class SequenceHandle:
    """Opaque reference to one live sequence inside the engine."""

    __slots__ = ("slot", "caches", "_engine")

    def __init__(self, engine: "BatchedEngine", slot: Optional[int],
                 caches: Optional[List[_LayerCache]]) -> None:
        self._engine = engine
        self.slot = slot
        self.caches = caches

    @property
    def length(self) -> int:
        """Number of tokens whose KV state the sequence holds."""
        if self.caches is not None:
            return self.caches[0].length
        return int(self._engine._slot_lens[self.slot])


class BatchedEngine(InferenceEngine):
    """Multi-sequence extension of the KV-cached inference engine."""

    def __init__(self, model, decode_mode: str = "fused",
                 max_batch_size: int = 8, weight_mode: str = "fp32",
                 kv_mode: str = "dense", kv_block_tokens: int = 16) -> None:
        if decode_mode not in DECODE_MODES:
            raise ValueError(f"decode_mode must be one of {DECODE_MODES}, "
                             f"got {decode_mode!r}")
        if weight_mode not in WEIGHT_MODES:
            raise ValueError(f"weight_mode must be one of {WEIGHT_MODES}, "
                             f"got {weight_mode!r}")
        if kv_mode not in KV_MODES:
            raise ValueError(f"kv_mode must be one of {KV_MODES}, "
                             f"got {kv_mode!r}")
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if kv_block_tokens < 1:
            raise ValueError("kv_block_tokens must be >= 1")
        qstate = None
        if weight_mode == "int8":
            state = model.state_dict()
            qstate = (state if is_quantized_state(state)
                      else quantize_state_dict(state))
            # Prefill and the exact decode path run the *dequantized*
            # model, so every path of this engine serves one consistent
            # set of (quantized) weights.
            model = _StateModel(model.config, dequantize_state_dict(qstate))
        super().__init__(model)
        self.decode_mode = decode_mode
        self.max_batch_size = max_batch_size
        self.weight_mode = weight_mode
        self.kv_mode = kv_mode
        # Fused-mode slot storage, allocated lazily on first bind.
        self._slot_k: List[np.ndarray] = []
        self._slot_v: List[np.ndarray] = []
        self._slot_lens = np.zeros(max_batch_size, dtype=np.int64)
        self._free_slots = list(range(max_batch_size - 1, -1, -1))
        # Paged-KV state: block storage per layer plus per-slot block tables.
        self._kv_block_tokens = kv_block_tokens
        self._block_pool: Optional[BlockPool] = None
        self._page_k: List[np.ndarray] = []
        self._page_v: List[np.ndarray] = []
        # Flat (H, blocks*bt, Dh) views over the block storage (true views:
        # the reshape merges contiguous axes), rebuilt on growth.
        self._flat_k: List[np.ndarray] = []
        self._flat_v: List[np.ndarray] = []
        self._slot_blocks: List[List[int]] = [[] for _ in range(max_batch_size)]
        # How many leading blocks of each slot's table are *shared* (adopted
        # from a pool/session entry via BlockPool.share rather than owned):
        # those are released, not freed, when the slot drops them.
        self._slot_shared_n: List[int] = [0] * max_batch_size
        # Per-slot flat gather indices: row `slot`, position `t` holds the
        # flat storage index of that sequence position, kept in sync with
        # the block table.  Entries beyond a slot's table are stale or zero;
        # both index storage that has been zeroed at least once (block 0 is
        # always the first allocation), so gathered padding is finite and
        # the attention mask's exact-zero softmax weights null it out.
        self._gather_pad = np.zeros((max_batch_size, 0), dtype=np.int64)
        self._block_arange = np.arange(kv_block_tokens, dtype=np.int64)
        # KV-plane accounting: bytes physically copied between KV storage
        # locations (adoption tails, binds, exports, entry fragments) and
        # block references taken via BlockPool.share.  Plain ints always;
        # mirrored into registry counters once attach_kv_metrics is called.
        self.kv_bytes_copied = 0
        self.blocks_shared = 0
        self._kv_copied_counter = None
        self._blocks_shared_counter = None
        # Concatenated projection weights: one gemm for Q|K|V and gate|up
        # per layer instead of five (fused decode only; the exact path keeps
        # the single-sequence shapes).  In int8 mode the packed matrices are
        # int8 with per-row scales and the gemms run the fused
        # dequant-matmul kernel instead.
        self._fused_w = None
        self._int8_w = None
        self._int8_head: Optional[Tuple[np.ndarray, np.ndarray]] = None
        if weight_mode == "int8":
            self._int8_w = []
            for i in range(len(self.layers)):
                prefix = f"blocks.{i}."

                def qs(name: str, prefix=prefix):
                    key = prefix + name
                    return qstate[key], qstate[key + INT8_SCALE_SUFFIX]

                q_q, s_q = qs("attn.q_proj.weight")
                q_k, s_k = qs("attn.k_proj.weight")
                q_v, s_v = qs("attn.v_proj.weight")
                q_g, s_g = qs("mlp.gate_proj.weight")
                q_u, s_u = qs("mlp.up_proj.weight")
                self._int8_w.append({
                    "qkv": (np.concatenate([q_q, q_k, q_v], axis=0),
                            np.concatenate([s_q, s_k, s_v])),
                    "gate_up": (np.concatenate([q_g, q_u], axis=0),
                                np.concatenate([s_g, s_u])),
                    "o": qs("attn.o_proj.weight"),
                    "down": qs("mlp.down_proj.weight"),
                })
            self._int8_head = (qstate["lm_head.weight"],
                               qstate["lm_head.weight" + INT8_SCALE_SUFFIX])
        else:
            self._fused_w = [{
                "qkv": np.concatenate([layer["q"], layer["k"], layer["v"]],
                                      axis=0),
                "gate_up": np.concatenate([layer["gate"], layer["up"]],
                                          axis=0),
                "o": layer["o"],
                "down": layer["down"],
            } for layer in self.layers]

    # ------------------------------------------------------------------
    # fused-path projections (fp32 packed gemm or int8 fused dequant)
    # ------------------------------------------------------------------
    def _mm(self, h: np.ndarray, li: int, name: str) -> np.ndarray:
        """``h @ W.T`` for fused decode, through the active weight mode."""
        if self._int8_w is not None:
            q, scales = self._int8_w[li][name]
            return matmul_int8_nograd(h, q, scales)
        return h @ self._fused_w[li][name].T

    def _head(self, x: np.ndarray) -> np.ndarray:
        if self._int8_head is not None:
            return matmul_int8_nograd(x, *self._int8_head)
        return x @ self.lm_head.T

    # ------------------------------------------------------------------
    # KV copy/share accounting
    # ------------------------------------------------------------------
    @property
    def _token_bytes(self) -> int:
        """Bytes of K+V state one position holds across all layers."""
        return (2 * len(self.layers) * self.n_heads * self.head_dim
                * self.tok_emb.dtype.itemsize)

    def attach_kv_metrics(self, registry) -> None:
        """Mirror the KV-plane counters into a metric registry.

        The scheduler calls this with its observability registry so
        ``serve.kv.bytes_copied`` and ``serve.prefix.blocks_shared`` flow
        through ``obs-report`` and the fleet metrics merge for free.
        """
        self._kv_copied_counter = registry.counter("serve.kv.bytes_copied")
        self._blocks_shared_counter = registry.counter(
            "serve.prefix.blocks_shared")

    def _count_copied(self, tokens: int) -> None:
        if tokens <= 0:
            return
        nbytes = int(tokens) * self._token_bytes
        self.kv_bytes_copied += nbytes
        if self._kv_copied_counter is not None:
            self._kv_copied_counter.inc(nbytes)

    def _count_shared(self, blocks: int = 1) -> None:
        self.blocks_shared += blocks
        if self._blocks_shared_counter is not None:
            self._blocks_shared_counter.inc(blocks)

    # ------------------------------------------------------------------
    # prefill
    # ------------------------------------------------------------------
    def new_caches(self) -> List[_LayerCache]:
        """Fresh, empty per-layer caches for one sequence."""
        return [_LayerCache() for _ in self.layers]

    def prefill(self, prompt_ids: Sequence[int], caches: List[_LayerCache],
                reused_kv: Optional[List[LayerKV]] = None) -> np.ndarray:
        """Run a prompt through the model, seeding ``caches``.

        ``reused_kv`` (from :class:`~repro.serve.cache.PrefixCachePool` or a
        session) preloads the caches with the KV state of the first
        ``reused`` prompt tokens; only the remaining suffix is computed.
        Returns the next-token logits of the final prompt position.
        """
        if not prompt_ids:
            raise ValueError("prompt_ids must be non-empty")
        if caches[0].length:
            raise ValueError("prefill requires fresh caches")
        reused = 0
        if reused_kv is not None:
            reused = reused_kv[0][0].shape[1]
            if reused >= len(prompt_ids):
                raise ValueError("reused prefix must be shorter than the prompt")
            for cache, (k, v) in zip(caches, reused_kv):
                cache.preload(k, v)
            self._count_copied(reused)
        suffix = [int(i) for i in prompt_ids[reused:]]
        return self._forward(suffix, caches)

    # ------------------------------------------------------------------
    # sequence lifecycle
    # ------------------------------------------------------------------
    def bind(self, caches: List[_LayerCache]) -> SequenceHandle:
        """Adopt a prefilled sequence into the engine's decode storage.

        In exact mode the handle keeps the per-sequence caches; in fused
        mode their KV state is copied into a free batch slot (a one-time
        cost per request) and the caches are dropped.
        """
        if self.decode_mode == "exact":
            return SequenceHandle(self, None, caches)
        slot = self._claim_slot()
        length = caches[0].length
        if self.kv_mode == "paged":
            self._ensure_paged(slot, length)
        else:
            self._ensure_slot_storage(length)
        for li, cache in enumerate(caches):
            self._write_kv_span(li, slot, 0, cache.k, cache.v)
        self._count_copied(length)
        self._slot_lens[slot] = length
        return SequenceHandle(self, slot, None)

    def _claim_slot(self) -> int:
        if not self._free_slots:
            raise RuntimeError(f"all {self.max_batch_size} slots in use")
        return self._free_slots.pop()

    # ------------------------------------------------------------------
    # zero-copy admission: entry adoption + prefill into slot storage
    # ------------------------------------------------------------------
    def begin_sequence(self, entry: Optional[KVEntry] = None,
                       match: int = 0) -> SequenceHandle:
        """Open a sequence, optionally adopting ``match`` positions from a
        pool/session entry.

        The cheap path is fused-paged mode with a :class:`BlockEntry` from
        this engine: every *full* shared block is adopted by refcount bump
        (zero bytes move), and only the sub-block remainder — at most
        ``block_tokens - 1`` positions — is copied into a freshly owned
        block the sequence may then append into (the entry's block stays
        read-only: copy-on-write at block granularity).  Dense slots and
        exact caches adopt by copying ``match`` positions, which is what
        the byte-parity sweep compares against.
        """
        if entry is None:
            match = 0
        else:
            match = min(match, entry.length)
        if self.decode_mode == "exact":
            caches = self.new_caches()
            if entry is not None and match > 0:
                kvs = (entry.layer_kv if isinstance(entry, ArrayEntry)
                       else entry.materialize(match))
                for cache, (k, v) in zip(caches, kvs):
                    cache.preload(k[:, :match], v[:, :match])
                self._count_copied(match)
            return SequenceHandle(self, None, caches)
        slot = self._claim_slot()
        if match > 0:
            if self.kv_mode == "paged":
                self._adopt_paged(slot, entry, match)
            else:
                self._ensure_slot_storage(match)
                kvs = (entry.layer_kv if isinstance(entry, ArrayEntry)
                       else entry.materialize(match))
                for li, (k, v) in enumerate(kvs):
                    self._write_kv_span(li, slot, 0, k[:, :match], v[:, :match])
                self._count_copied(match)
        self._slot_lens[slot] = match
        return SequenceHandle(self, slot, None)

    def _adopt_paged(self, slot: int, entry: KVEntry, match: int) -> None:
        """Seed a paged slot with ``match`` positions from ``entry``."""
        bt = self._kv_block_tokens
        if not (isinstance(entry, BlockEntry) and entry.plane is self):
            # Foreign payload (array entry, or another engine's blocks):
            # fall back to a plain copy into owned blocks.
            self._ensure_paged(slot, match)
            kvs = (entry.layer_kv if isinstance(entry, ArrayEntry)
                   else entry.materialize(match))
            for li, (k, v) in enumerate(kvs):
                self._write_kv_span(li, slot, 0, k[:, :match], v[:, :match])
            self._count_copied(match)
            return
        n_share = min(match // bt, len(entry.blocks))
        for block in entry.blocks[:n_share]:
            self._block_pool.share(block)
            self._adopt_block(slot, block)
        self._slot_shared_n[slot] = n_share
        self._count_shared(n_share)
        rem = match - n_share * bt
        if rem > 0:
            # Partial tail: copy `rem` positions into a fresh owned block so
            # this sequence can append without mutating the shared entry.
            block = self._alloc_block(slot)
            lo = block * bt
            if n_share < len(entry.blocks):
                src = entry.blocks[n_share] * bt
                for li in range(len(self.layers)):
                    self._flat_k[li][:, lo: lo + rem] = \
                        self._flat_k[li][:, src: src + rem]
                    self._flat_v[li][:, lo: lo + rem] = \
                        self._flat_v[li][:, src: src + rem]
            else:
                for li, (k, v) in enumerate(entry.frag):
                    self._flat_k[li][:, lo: lo + rem] = k[:, :rem]
                    self._flat_v[li][:, lo: lo + rem] = v[:, :rem]
            self._count_copied(rem)

    def prefill_into(self, prompt_ids: Sequence[int],
                     handle: SequenceHandle) -> np.ndarray:
        """Run the unseen prompt suffix forward, writing K/V directly into
        the handle's decode storage.

        The zero-copy twin of :meth:`prefill` + :meth:`bind`: positions the
        handle already holds (adopted via :meth:`begin_sequence`) are
        skipped, and the computed K/V lands in slot/block storage as it is
        produced — no ``_LayerCache`` intermediate, no second
        materialization.  Mirrors ``InferenceEngine._forward`` operation
        for operation (same unpacked weights, shapes and kernel calls), so
        its logits match the cache-based prefill bit-for-bit in dense mode
        and to gather layout in paged mode.  Returns the next-token logits
        of the final prompt position.
        """
        if not prompt_ids:
            raise ValueError("prompt_ids must be non-empty")
        if handle.caches is not None:
            suffix = [int(i) for i in prompt_ids[handle.caches[0].length:]]
            if not suffix:
                raise ValueError("reused prefix must be shorter than the prompt")
            return self._forward(suffix, handle.caches)
        slot = handle.slot
        start = int(self._slot_lens[slot])
        suffix = [int(i) for i in prompt_ids[start:]]
        if not suffix:
            raise ValueError("reused prefix must be shorter than the prompt")
        t = len(suffix)
        if start + t > self.config.max_seq_len:
            raise ValueError("prompt exceeds the model context window")
        if self.kv_mode == "paged":
            self._ensure_paged(slot, start + t)
        else:
            self._ensure_slot_storage(start + t)
        heads, head_dim = self.n_heads, self.head_dim
        x = self.tok_emb[np.asarray(suffix, dtype=np.int64)]  # (T, D)
        for li, layer in enumerate(self.layers):
            h = _rms_norm(x, layer["attn_norm"])
            q = (h @ layer["q"].T).reshape(t, heads, head_dim).transpose(1, 0, 2)
            k = (h @ layer["k"].T).reshape(t, heads, head_dim).transpose(1, 0, 2)
            v = (h @ layer["v"].T).reshape(t, heads, head_dim).transpose(1, 0, 2)
            q = self._apply_rope(q, start)
            k = self._apply_rope(k, start)
            self._write_kv_span(li, slot, start, k, v)
            k_all, v_all = self._slot_kv_view(li, slot, start + t)
            # Contiguous copies so the attention matmuls see the same
            # operand layouts as the cache-based prefill oracle.
            k_all = np.ascontiguousarray(k_all)
            v_all = np.ascontiguousarray(v_all)
            ctx = attention_nograd(q, k_all, v_all, causal_tail=t) \
                .transpose(1, 0, 2).reshape(t, -1)
            x = x + ctx @ layer["o"].T
            h = _rms_norm(x, layer["mlp_norm"])
            x = x + (_silu(h @ layer["gate"].T) * (h @ layer["up"].T)) \
                @ layer["down"].T
        self._slot_lens[slot] = start + t
        x = _rms_norm(x[-1:], self.final_norm)
        return (x @ self.lm_head.T)[0]

    def make_entry(self, handle: SequenceHandle,
                   upto: Optional[int] = None) -> KVEntry:
        """Snapshot the first ``upto`` positions as a pool/session entry.

        Fused-paged sequences retain their resident *full* blocks by
        reference (one :meth:`BlockPool.share` each — zero bytes move) and
        copy only the sub-block tail fragment; dense/exact sequences export
        owned array copies.  The caller owns the returned entry and must
        arrange its ``release()`` (the pools do).
        """
        if handle.caches is not None:
            arrays = [cache.snapshot(upto) for cache in handle.caches]
            self._count_copied(arrays[0][0].shape[1] if arrays else 0)
            return ArrayEntry(arrays)
        slot = handle.slot
        length = int(self._slot_lens[slot]) if upto is None else \
            min(upto, int(self._slot_lens[slot]))
        if self.kv_mode != "paged":
            out = [(self._slot_k[li][slot, :, :length].copy(),
                    self._slot_v[li][slot, :, :length].copy())
                   for li in range(len(self.layers))]
            self._count_copied(length)
            return ArrayEntry(out, length)
        bt = self._kv_block_tokens
        n_full = length // bt
        blocks = self._slot_blocks[slot][:n_full]
        for block in blocks:
            self._block_pool.share(block)
        self._count_shared(n_full)
        rem = length - n_full * bt
        frag = None
        if rem > 0:
            src = self._slot_blocks[slot][n_full] * bt
            frag = [(self._flat_k[li][:, src: src + rem].copy(),
                     self._flat_v[li][:, src: src + rem].copy())
                    for li in range(len(self.layers))]
            self._count_copied(rem)
        return BlockEntry(self, blocks, frag, length)

    def release_block(self, block: int) -> None:
        """Drop one shared block reference (``BlockEntry.release`` hook)."""
        self._block_pool.release(block)

    def gather_entry_kv(self, entry: "BlockEntry",
                        upto: Optional[int] = None) -> List[LayerKV]:
        """Materialize a block entry as owned per-layer arrays (the exact
        engine's adoption path and the parity oracles)."""
        upto = entry.length if upto is None else min(upto, entry.length)
        bt = self._kv_block_tokens
        from_blocks = min(upto, len(entry.blocks) * bt)
        if from_blocks:
            n_b = -(-from_blocks // bt)  # ceil
            idx = (np.asarray(entry.blocks[:n_b], dtype=np.int64)[:, None] * bt
                   + self._block_arange[None, :]).ravel()[:from_blocks]
        else:
            idx = np.empty(0, dtype=np.int64)
        out = []
        for li in range(len(self.layers)):
            k = self._flat_k[li][:, idx]
            v = self._flat_v[li][:, idx]
            if upto > from_blocks:
                fk, fv = entry.frag[li]
                k = np.concatenate([k, fk[:, : upto - from_blocks]], axis=1)
                v = np.concatenate([v, fv[:, : upto - from_blocks]], axis=1)
            out.append((k, v))
        self._count_copied(upto)
        return out

    def release(self, handle: SequenceHandle) -> None:
        """Return a sequence's resources to the engine.

        Shared head blocks (adopted from an entry) drop the slot's extra
        reference; owned blocks drop their owner stake.  Either way a block
        returns to the free list only when its last reference goes — pool
        and session entries keep their blocks alive past the sequence.
        """
        if handle.slot is not None:
            slot = handle.slot
            if self._block_pool is not None:
                shared = self._slot_blocks[slot][: self._slot_shared_n[slot]]
                for block in shared:
                    self._block_pool.release(block)
                self._block_pool.free_owner(slot)
                self._slot_blocks[slot] = []
                self._slot_shared_n[slot] = 0
            self._slot_lens[slot] = 0
            self._free_slots.append(slot)
            handle.slot = None
        handle.caches = None

    def export_kv(self, handle: SequenceHandle,
                  upto: Optional[int] = None) -> List[LayerKV]:
        """Copy the first ``upto`` cached positions of every layer."""
        if handle.caches is not None:
            out = [cache.snapshot(upto) for cache in handle.caches]
            self._count_copied(out[0][0].shape[1] if out else 0)
            return out
        slot = handle.slot
        length = int(self._slot_lens[slot]) if upto is None else \
            min(upto, int(self._slot_lens[slot]))
        self._count_copied(length)
        if self.kv_mode == "paged":
            idx = self._gather_pad[slot, :length]
            return [(self._flat_k[li][:, idx], self._flat_v[li][:, idx])
                    for li in range(len(self.layers))]
        return [(self._slot_k[li][slot, :, :length].copy(),
                 self._slot_v[li][slot, :, :length].copy())
                for li in range(len(self.layers))]

    # ------------------------------------------------------------------
    # storage growth (dense slots / paged blocks)
    # ------------------------------------------------------------------
    def _ensure_slot_storage(self, needed: int) -> None:
        """Grow the shared dense slot buffers to hold ``needed`` tokens."""
        old_cap = self._slot_k[0].shape[2] if self._slot_k else 0
        if needed <= old_cap:
            return
        cap = max(old_cap, _INITIAL_SLOT_CAPACITY)
        while cap < needed:
            cap *= 2
        cap = min(cap, max(self.config.max_seq_len, needed))
        dtype = self.tok_emb.dtype
        shape = (self.max_batch_size, self.n_heads, cap, self.head_dim)
        if not self._slot_k:
            self._slot_k = [np.zeros(shape, dtype=dtype) for _ in self.layers]
            self._slot_v = [np.zeros(shape, dtype=dtype) for _ in self.layers]
            return
        for li in range(len(self.layers)):
            for bufs in (self._slot_k, self._slot_v):
                grown = np.zeros(shape, dtype=dtype)
                grown[:, :, :old_cap] = bufs[li]
                bufs[li] = grown

    def _ensure_block_storage(self, needed: int) -> None:
        """Grow the paged block storage (and the pool) to ``needed`` blocks.

        Backing arrays are ``np.empty`` — block *contents* are zeroed at
        allocation time in :meth:`_alloc_block`, which is the guarantee the
        fresh-slot-zeroing regression test pins.
        """
        have = self._page_k[0].shape[1] if self._page_k else 0
        if needed <= have and self._block_pool is not None:
            return
        bt = self._kv_block_tokens
        max_blocks = self.max_batch_size * (-(-self.config.max_seq_len // bt))
        cap = max(have, _INITIAL_POOL_BLOCKS)
        while cap < needed:
            cap *= 2
        cap = min(cap, max(max_blocks, needed))
        dtype = self.tok_emb.dtype
        shape = (self.n_heads, cap, bt, self.head_dim)
        if not self._page_k:
            self._page_k = [np.empty(shape, dtype=dtype) for _ in self.layers]
            self._page_v = [np.empty(shape, dtype=dtype) for _ in self.layers]
            self._block_pool = BlockPool(cap, bt)
            self._rebuild_flat_views()
            return
        if cap == have:
            return
        for li in range(len(self.layers)):
            for bufs in (self._page_k, self._page_v):
                grown = np.empty(shape, dtype=dtype)
                grown[:, :have] = bufs[li]
                bufs[li] = grown
        self._block_pool.grow(cap - have)
        self._rebuild_flat_views()

    def _rebuild_flat_views(self) -> None:
        """Refresh the flat (H, blocks*bt, Dh) views after storage growth
        (merging the contiguous block/token axes keeps them true views)."""
        h, d = self.n_heads, self.head_dim
        self._flat_k = [page.reshape(h, -1, d) for page in self._page_k]
        self._flat_v = [page.reshape(h, -1, d) for page in self._page_v]

    def _alloc_block(self, slot: int) -> int:
        """Allocate one zeroed block to ``slot``, growing the pool if dry."""
        if self._block_pool is None or self._block_pool.n_free == 0:
            have = self._block_pool.n_blocks if self._block_pool else 0
            self._ensure_block_storage(have + 1)
        block = self._block_pool.alloc(slot)
        for li in range(len(self.layers)):
            self._page_k[li][:, block] = 0.0
            self._page_v[li][:, block] = 0.0
        self._adopt_block(slot, block)
        return block

    def _adopt_block(self, slot: int, block: int) -> None:
        """Append ``block`` to a slot's table and extend its gather row."""
        table = self._slot_blocks[slot]
        n = len(table)
        bt = self._kv_block_tokens
        self._ensure_gather_width((n + 1) * bt)
        self._gather_pad[slot, n * bt: (n + 1) * bt] = \
            block * bt + self._block_arange
        table.append(block)

    def _ensure_gather_width(self, needed: int) -> None:
        width = self._gather_pad.shape[1]
        if needed <= width:
            return
        new_w = max(width, _INITIAL_SLOT_CAPACITY)
        while new_w < needed:
            new_w *= 2
        grown = np.zeros((self.max_batch_size, new_w), dtype=np.int64)
        grown[:, :width] = self._gather_pad
        self._gather_pad = grown

    def _ensure_paged(self, slot: int, upto: int) -> None:
        """Allocate blocks until ``slot`` can hold ``upto`` tokens."""
        bt = self._kv_block_tokens
        while len(self._slot_blocks[slot]) * bt < upto:
            self._alloc_block(slot)

    def kv_stats(self) -> Dict[str, object]:
        """KV-storage accounting of the fused decode path.

        ``bytes_reserved`` is what the engine has allocated; ``bytes_in_use``
        is what live sequences actually hold — equal for the dense layout
        (every bound slot reserves full capacity), proportional to real
        sequence lengths for the paged one.  The decode benchmark derives
        its KV-bytes-per-session numbers from this.
        """
        itemsize = self.tok_emb.dtype.itemsize
        token_bytes = (2 * len(self.layers) * self.n_heads
                       * self.head_dim * itemsize)
        out: Dict[str, object] = {"mode": self.kv_mode,
                                  "token_bytes": token_bytes,
                                  "bytes_copied": self.kv_bytes_copied,
                                  "blocks_shared": self.blocks_shared}
        if self.decode_mode != "fused":
            out["mode"] = "exact"
            return out
        if self.kv_mode == "paged":
            pool = self._block_pool
            bt = self._kv_block_tokens
            n_total = pool.n_blocks if pool is not None else 0
            n_used = pool.n_allocated if pool is not None else 0
            out.update({
                "block_tokens": bt,
                "blocks_total": n_total,
                "blocks_in_use": n_used,
                "shared_refs": pool.n_shared_refs if pool is not None else 0,
                "bytes_reserved": n_total * bt * token_bytes,
                "bytes_in_use": n_used * bt * token_bytes,
            })
        else:
            cap = self._slot_k[0].shape[2] if self._slot_k else 0
            busy = int((self._slot_lens > 0).sum())
            out.update({
                "slot_capacity": cap,
                "slots_in_use": busy,
                "bytes_reserved": self.max_batch_size * cap * token_bytes,
                "bytes_in_use": busy * cap * token_bytes,
            })
        return out

    # ------------------------------------------------------------------
    # batched decode
    # ------------------------------------------------------------------
    def decode(self, tokens: Sequence[int],
               handles: Sequence[SequenceHandle]) -> np.ndarray:
        """Advance every sequence by one token; returns ``(B, vocab)`` logits.

        ``tokens[b]`` is sequence *b*'s most recently sampled token; its K/V
        is appended to sequence *b*'s cached state as a side effect, exactly
        like a single-sequence ``_forward([token], caches)`` call.
        """
        if len(tokens) != len(handles):
            raise ValueError("tokens and handles must align")
        if not tokens:
            raise ValueError("empty decode batch")
        if self.decode_mode == "exact":
            return np.stack([self._forward([int(t)], handle.caches)
                             for t, handle in zip(tokens, handles)])
        return self._decode_fused(tokens, handles)

    def _decode_fused(self, tokens: Sequence[int],
                      handles: Sequence[SequenceHandle]) -> np.ndarray:
        batch = len(tokens)
        heads, head_dim = self.n_heads, self.head_dim
        slots = np.asarray([handle.slot for handle in handles])
        positions = self._slot_lens[slots].copy()  # (B,) pre-append lengths
        if int(positions.max()) >= self.config.max_seq_len:
            raise ValueError("a sequence exceeds the model context window")
        paged = self.kv_mode == "paged"
        if paged:
            for b, handle in enumerate(handles):
                self._ensure_paged(handle.slot, int(positions[b]) + 1)
        else:
            self._ensure_slot_storage(int(positions.max()) + 1)
        x = self.tok_emb[np.asarray(tokens, dtype=np.int64)]  # (B, D)
        cos = self._cos[positions][:, None, :]  # (B, 1, Dh)
        sin = self._sin[positions][:, None, :]
        half = head_dim // 2
        lengths = positions + 1  # per-sequence lengths after the append
        t_max = int(lengths.max())
        invalid = np.arange(t_max)[None, :] >= lengths[:, None]  # (B, Tmax)
        scale = 1.0 / np.sqrt(head_dim)
        dim = heads * head_dim
        if paged:
            # Flat storage indices of each sequence's history (padded rows:
            # stale/zero indices land on once-zeroed storage, and masked
            # scores give them exactly-zero softmax weight) and of each
            # new token's write position — one store + one gather per layer
            # across the whole batch, no per-sequence loop.
            # Raveled for np.take: ~7x faster than 2-D fancy indexing on
            # the (H, N, Dh) flat views (take hits the optimized
            # contiguous-row copy path, mapiter does not).
            gather_idx = self._gather_pad[slots, :t_max].ravel()  # (B*Tmax,)
            write_idx = self._gather_pad[slots, positions]  # (B,)
        for li, layer in enumerate(self.layers):
            h = _rms_norm(x, layer["attn_norm"])
            qkv = self._mm(h, li, "qkv")  # (B, 3*D)
            q = qkv[:, :dim].reshape(batch, heads, head_dim)
            k = qkv[:, dim: 2 * dim].reshape(batch, heads, head_dim)
            v = qkv[:, 2 * dim:].reshape(batch, heads, head_dim)
            q = q * cos + np.concatenate([-q[..., half:], q[..., :half]], -1) * sin
            k = k * cos + np.concatenate([-k[..., half:], k[..., :half]], -1) * sin
            if paged:
                self._flat_k[li][:, write_idx] = k.transpose(1, 0, 2)
                self._flat_v[li][:, write_idx] = v.transpose(1, 0, 2)
                k_all = np.take(self._flat_k[li], gather_idx, axis=1) \
                    .reshape(heads, batch, t_max, head_dim)
                v_all = np.take(self._flat_v[li], gather_idx, axis=1) \
                    .reshape(heads, batch, t_max, head_dim)
                # Head-major batching: per-(h, b) operand slices are the
                # same contiguous (Tmax, Dh) layouts the dense path feeds
                # the kernel, so the gathered histories stay bit-identical.
                ctx = attention_nograd(q.transpose(1, 0, 2)[:, :, None, :],
                                       k_all, v_all, scale=scale,
                                       invalid=invalid[None, :, None, :])
                ctx = ctx[:, :, 0, :].transpose(1, 0, 2).reshape(batch, -1)
            else:
                self._slot_k[li][slots, :, positions] = k
                self._slot_v[li][slots, :, positions] = v
                # One vectorised gather per buffer (ragged rows padded to Tmax).
                k_all = self._slot_k[li][slots, :, :t_max]  # (B, H, Tmax, Dh)
                v_all = self._slot_v[li][slots, :, :t_max]
                # Fused no-grad attention: mask, softmax and @V in one buffer.
                ctx = attention_nograd(q[:, :, None, :], k_all, v_all,
                                       scale=scale,
                                       invalid=invalid[:, None, None, :])
                ctx = ctx[:, :, 0, :].reshape(batch, -1)
            x = x + self._mm(ctx, li, "o")
            h = _rms_norm(x, layer["mlp_norm"])
            gate_up = self._mm(h, li, "gate_up")  # (B, 2*ffn)
            ffn = gate_up.shape[1] // 2
            x = x + self._mm(_silu(gate_up[:, :ffn]) * gate_up[:, ffn:],
                             li, "down")
        self._slot_lens[slots] = lengths
        x = _rms_norm(x, self.final_norm)
        return self._head(x)  # (B, vocab)

    # ------------------------------------------------------------------
    # speculative decoding primitives
    # ------------------------------------------------------------------
    def verify_scores(self, tokens: Sequence[int],
                      handle: SequenceHandle) -> np.ndarray:
        """Score a chain of tokens in one forward; returns ``(T, vocab)``.

        Row ``i`` holds the next-token logits after consuming
        ``tokens[:i + 1]`` — exactly what ``i + 1`` sequential single-token
        decode calls would produce (to float tolerance; token-level parity
        is what the speculative differential suite asserts).  The chain's
        K/V is appended to the handle's cache as a side effect; the caller
        rolls back unverified positions with :meth:`truncate_kv`.
        """
        if not tokens:
            raise ValueError("empty verification chain")
        if handle.length + len(tokens) > self.config.max_seq_len:
            raise ValueError("verification chain exceeds the context window")
        if handle.caches is not None:
            return self._forward_all([int(t) for t in tokens], handle.caches)
        return self._verify_fused([int(t) for t in tokens], handle)

    def truncate_kv(self, handle: SequenceHandle, length: int) -> None:
        """Roll a sequence's cache back to ``length`` positions.

        Exact-mode caches shrink their logical length; fused slots shrink
        the length vector; paged slots additionally drop now-unused whole
        blocks (the partial tail block is kept and its stale positions are
        overwritten by the next append — and masked until then, like every
        position beyond a sequence's length).  Owned blocks return to the
        pool's free list; shared ones (adopted from an entry — possible
        only if a truncation descends below the adopted prefix) drop the
        slot's reference and live on with the entry.
        """
        if handle.caches is not None:
            for cache in handle.caches:
                cache.truncate(length)
            return
        slot = handle.slot
        current = int(self._slot_lens[slot])
        if length < 0 or length > current:
            raise ValueError(f"truncate length {length} outside [0, {current}]")
        self._slot_lens[slot] = length
        if self.kv_mode == "paged" and self._block_pool is not None:
            keep = -(-length // self._kv_block_tokens)  # ceil
            blocks = self._slot_blocks[slot]
            while len(blocks) > keep:
                block = blocks.pop()
                if len(blocks) < self._slot_shared_n[slot]:
                    self._block_pool.release(block)
                    self._slot_shared_n[slot] = len(blocks)
                else:
                    self._block_pool.free(block)

    def _forward_all(self, ids: Sequence[int],
                     caches: List[_LayerCache]) -> np.ndarray:
        """Exact-path multi-token forward returning logits at *every*
        position (``InferenceEngine._forward`` keeps only the last row)."""
        ids = np.asarray(ids, dtype=np.int64)
        x = self.tok_emb[ids]  # (T, D)
        start = caches[0].length
        for layer, cache in zip(self.layers, caches):
            h = _rms_norm(x, layer["attn_norm"])
            t = h.shape[0]
            q = (h @ layer["q"].T).reshape(t, self.n_heads, self.head_dim) \
                .transpose(1, 0, 2)
            k = (h @ layer["k"].T).reshape(t, self.n_heads, self.head_dim) \
                .transpose(1, 0, 2)
            v = (h @ layer["v"].T).reshape(t, self.n_heads, self.head_dim) \
                .transpose(1, 0, 2)
            q = self._apply_rope(q, start)
            k = self._apply_rope(k, start)
            cache.append(k, v)
            ctx = attention_nograd(q, cache.k, cache.v, causal_tail=t) \
                .transpose(1, 0, 2).reshape(t, -1)
            x = x + ctx @ layer["o"].T
            h = _rms_norm(x, layer["mlp_norm"])
            x = x + (_silu(h @ layer["gate"].T) * (h @ layer["up"].T)) \
                @ layer["down"].T
        x = _rms_norm(x, self.final_norm)
        return x @ self.lm_head.T  # (T, vocab)

    def _verify_fused(self, tokens: List[int],
                      handle: SequenceHandle) -> np.ndarray:
        """Fused-path multi-token forward against slot storage.

        The single-sequence twin of :meth:`_decode_fused`: same packed
        projections (fp32 or int8), same storage writes, but ``T`` chained
        positions at once with the exact path's ``causal_tail`` masking —
        one GEMM set per layer instead of one per token.
        """
        slot = handle.slot
        start = int(self._slot_lens[slot])
        t = len(tokens)
        if self.kv_mode == "paged":
            self._ensure_paged(slot, start + t)
        else:
            self._ensure_slot_storage(start + t)
        heads, head_dim = self.n_heads, self.head_dim
        dim = heads * head_dim
        x = self.tok_emb[np.asarray(tokens, dtype=np.int64)]  # (T, D)
        for li, layer in enumerate(self.layers):
            h = _rms_norm(x, layer["attn_norm"])
            qkv = self._mm(h, li, "qkv")  # (T, 3*D)
            q = qkv[:, :dim].reshape(t, heads, head_dim).transpose(1, 0, 2)
            k = qkv[:, dim: 2 * dim].reshape(t, heads, head_dim) \
                .transpose(1, 0, 2)
            v = qkv[:, 2 * dim:].reshape(t, heads, head_dim).transpose(1, 0, 2)
            q = self._apply_rope(q, start)
            k = self._apply_rope(k, start)
            self._write_kv_span(li, slot, start, k, v)
            k_all, v_all = self._slot_kv_view(li, slot, start + t)
            ctx = attention_nograd(q, k_all, v_all, causal_tail=t) \
                .transpose(1, 0, 2).reshape(t, -1)
            x = x + self._mm(ctx, li, "o")
            h = _rms_norm(x, layer["mlp_norm"])
            gate_up = self._mm(h, li, "gate_up")
            ffn = gate_up.shape[1] // 2
            x = x + self._mm(_silu(gate_up[:, :ffn]) * gate_up[:, ffn:],
                             li, "down")
        self._slot_lens[slot] = start + t
        x = _rms_norm(x, self.final_norm)
        return self._head(x)  # (T, vocab)

    def _write_kv_span(self, li: int, slot: int, start: int,
                       k: np.ndarray, v: np.ndarray) -> None:
        """Store ``(H, T, Dh)`` K/V rows at positions ``start..start+T-1``."""
        t = k.shape[1]
        if self.kv_mode != "paged":
            self._slot_k[li][slot, :, start: start + t] = k
            self._slot_v[li][slot, :, start: start + t] = v
            return
        idx = self._gather_pad[slot, start: start + t]
        self._flat_k[li][:, idx] = k
        self._flat_v[li][:, idx] = v

    def _slot_kv_view(self, li: int, slot: int, upto: int
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """The first ``upto`` positions of a slot's K/V (view if dense,
        gathered copy if paged)."""
        if self.kv_mode != "paged":
            return (self._slot_k[li][slot, :, :upto],
                    self._slot_v[li][slot, :, :upto])
        idx = self._gather_pad[slot, :upto]
        return self._flat_k[li][:, idx], self._flat_v[li][:, idx]
