"""In-process inference server: the user-facing facade over the scheduler.

:class:`InProcessServer` binds a model (wrapped in a
:class:`~repro.serve.engine.BatchedEngine`), an optional tokenizer, and a
:class:`~repro.serve.scheduler.Scheduler` into one object with a small
surface:

* :meth:`submit` / :meth:`step` / :meth:`run_until_idle` — the asynchronous
  interface: enqueue any number of requests, then drive the scheduler; the
  continuous batcher interleaves them automatically;
* :meth:`complete` — synchronous one-call completion (submit + run);
* :meth:`chat` — session-aware completion that carries KV state across the
  turns of a conversation;
* :meth:`metrics_snapshot` — instrumentation as a plain dict.

"Server" here means a serving *subsystem*, not a network daemon: it lives in
the caller's process, the way the evaluation harness and examples consume
it.  A transport layer could wrap it without touching scheduling.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

from .engine import BatchedEngine
from .request import Completion, Request, SamplingParams
from .scheduler import Scheduler, ServeConfig


class InProcessServer:
    """Batched, prefix-caching server around one model.

    Parameters
    ----------
    model:
        A :class:`~repro.nn.transformer.TransformerLM` (weights are
        snapshotted by the engine at construction).
    tokenizer:
        Optional; enables the text convenience APIs (``complete_text``,
        completions carrying decoded ``text``) and supplies the eos id.
    config:
        Scheduling knobs; see :class:`~repro.serve.scheduler.ServeConfig`.
    clock:
        Injectable monotonic time source (tests use a manual clock).
    eos_id:
        Overrides the tokenizer's eos id (or provides one without a
        tokenizer).
    obs:
        Shared :class:`~repro.obs.Observability` for metrics and spans;
        private to this server when omitted.
    draft_model:
        A smaller model for speculative decoding (required when the config
        sets ``speculative_tokens > 0``, ignored otherwise).  The draft
        proposes greedy token chains that the main model verifies in one
        forward pass; emitted streams stay byte-identical to target-only
        decoding.
    """

    def __init__(self, model, tokenizer=None, config: ServeConfig = ServeConfig(),
                 clock: Callable[[], float] = time.monotonic,
                 eos_id: Optional[int] = None, obs=None,
                 draft_model=None) -> None:
        self.engine = BatchedEngine(model, decode_mode=config.decode_mode,
                                    max_batch_size=config.max_batch_size,
                                    weight_mode=config.weight_mode,
                                    kv_mode=config.kv_mode,
                                    kv_block_tokens=config.kv_block_tokens)
        self.tokenizer = tokenizer
        if eos_id is None and tokenizer is not None:
            eos_id = tokenizer.eos_id
        self.config = config
        draft_engine = None
        if draft_model is not None and config.speculative_tokens > 0:
            from ..nn.infer import InferenceEngine
            draft_engine = InferenceEngine(draft_model)
        self.scheduler = Scheduler(self.engine, config=config, clock=clock,
                                   eos_id=eos_id, obs=obs,
                                   draft_engine=draft_engine)
        self.obs = self.scheduler.obs
        self._ids = itertools.count()
        self._results: Dict[str, Completion] = {}

    # ------------------------------------------------------------------
    # async-style interface
    # ------------------------------------------------------------------
    def submit(self, prompt_ids: Sequence[int],
               params: Optional[SamplingParams] = None, priority: int = 0,
               deadline: Optional[float] = None,
               session_id: Optional[str] = None,
               request_id: Optional[str] = None) -> str:
        """Enqueue a generation job; returns its request id."""
        if request_id is None:
            request_id = f"req-{next(self._ids)}"
        request = Request(request_id=request_id,
                          prompt_ids=tuple(prompt_ids),
                          params=params or SamplingParams(),
                          priority=priority, deadline=deadline,
                          session_id=session_id)
        self.scheduler.submit(request)
        return request_id

    def submit_text(self, prompt: str, params: Optional[SamplingParams] = None,
                    **kwargs) -> str:
        """Encode a text prompt with the server tokenizer and enqueue it."""
        if self.tokenizer is None:
            raise ValueError("submit_text requires a tokenizer")
        ids = self.tokenizer.encode(prompt, add_bos=True)
        return self.submit(ids, params=params, **kwargs)

    def step(self) -> List[Completion]:
        """Advance the scheduler one step; returns new completions."""
        return self._collect(self.scheduler.step())

    def run_until_idle(self, max_steps: Optional[int] = None) -> List[Completion]:
        """Drive the scheduler until all submitted work is done."""
        return self._collect(self.scheduler.run_until_idle(max_steps=max_steps))

    def result(self, request_id: str) -> Optional[Completion]:
        """The completion of a finished request, if available yet."""
        return self._results.get(request_id)

    def cancel(self, request_id: str) -> bool:
        found = self.scheduler.cancel(request_id)
        self._collect(self.scheduler.drain_completions())
        return found

    @property
    def idle(self) -> bool:
        return self.scheduler.idle

    # ------------------------------------------------------------------
    # synchronous conveniences
    # ------------------------------------------------------------------
    def complete(self, prompt_ids: Sequence[int],
                 params: Optional[SamplingParams] = None,
                 session_id: Optional[str] = None,
                 timeout: Optional[float] = None) -> Completion:
        """Submit one request and run the scheduler until it finishes.

        ``timeout`` (seconds, relative to now on the server clock) becomes
        the request's absolute :attr:`~repro.serve.request.Request.deadline`,
        so a synchronous call with a large token budget surfaces as an
        ``expired`` completion instead of hanging the caller.
        """
        deadline = self.scheduler.clock() + timeout if timeout is not None else None
        request_id = self.submit(prompt_ids, params=params,
                                 session_id=session_id, deadline=deadline)
        self.run_until_idle()
        return self._results[request_id]

    def complete_text(self, prompt: str,
                      params: Optional[SamplingParams] = None,
                      session_id: Optional[str] = None,
                      timeout: Optional[float] = None) -> str:
        """Text-in/text-out completion through the tokenizer."""
        if self.tokenizer is None:
            raise ValueError("complete_text requires a tokenizer")
        ids = self.tokenizer.encode(prompt, add_bos=True)
        completion = self.complete(ids, params=params, session_id=session_id,
                                   timeout=timeout)
        return completion.text or ""

    def chat(self, session_id: str, prompt_ids: Sequence[int],
             params: Optional[SamplingParams] = None,
             timeout: Optional[float] = None) -> Completion:
        """One conversation turn; KV state is reused across calls with the
        same ``session_id`` (the prompt must replay the conversation so far,
        as the canonical prompt grammar does).  ``timeout`` bounds the turn
        like :meth:`complete`."""
        return self.complete(prompt_ids, params=params, session_id=session_id,
                             timeout=timeout)

    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Dict[str, float]:
        """Instrumentation snapshot (tokens/sec, TTFT, hit rates, …).

        Taken against the scheduler clock, so a snapshot mid-burst folds
        the open busy span in and reports live throughput.
        """
        pool = self.scheduler.prefix_pool
        snap = self.scheduler.metrics.snapshot(
            pool.stats() if pool is not None else None,
            now=self.scheduler.clock())
        if self.scheduler.draft_engine is not None:
            snap["speculative"] = self.scheduler.spec_stats()
        return snap

    def _collect(self, completions: List[Completion]) -> List[Completion]:
        out = []
        for completion in completions:
            if self.tokenizer is not None and completion.token_ids:
                completion = replace(
                    completion, text=self.tokenizer.decode(list(completion.token_ids)))
            self._results[completion.request_id] = completion
            out.append(completion)
        return out
