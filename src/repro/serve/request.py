"""Typed request/response surface of the serving subsystem.

A :class:`Request` carries everything the scheduler needs to admit, order,
and expire one generation job: the prompt, per-request :class:`SamplingParams`,
a priority (higher runs first), an optional absolute deadline, and an
optional session id for multi-turn KV reuse.  A :class:`Completion` is the
terminal record handed back to the caller, including per-request latency and
cache diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


class RequestStatus:
    """Terminal / lifecycle states of a request."""

    QUEUED = "queued"
    RUNNING = "running"
    FINISHED = "finished"
    EXPIRED = "expired"
    CANCELLED = "cancelled"


class FinishReason:
    """Why a finished sequence stopped decoding."""

    EOS = "eos"              # the model emitted the end-of-sequence token
    LENGTH = "length"        # max_new_tokens budget exhausted
    CONTEXT = "context"      # model context window exhausted
    DEADLINE = "deadline"    # evicted past its deadline
    CANCELLED = "cancelled"  # explicitly cancelled by the caller


@dataclass(frozen=True)
class SamplingParams:
    """Per-request decoding knobs (the serve analog of ``generate``'s args)."""

    max_new_tokens: int = 48
    temperature: float = 0.0
    top_k: Optional[int] = None
    top_p: Optional[float] = None
    seed: int = 0
    stop_on_eos: bool = True

    def __post_init__(self) -> None:
        if self.max_new_tokens < 1:
            raise ValueError(f"max_new_tokens must be >= 1, got {self.max_new_tokens}")
        if self.temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {self.temperature}")
        if self.top_k is not None and self.top_k <= 0:
            raise ValueError(f"top_k must be positive, got {self.top_k}")
        if self.top_p is not None and not 0.0 < self.top_p <= 1.0:
            raise ValueError(f"top_p must be in (0, 1], got {self.top_p}")


@dataclass(frozen=True)
class Request:
    """One generation job submitted to the server."""

    request_id: str
    prompt_ids: Tuple[int, ...]
    params: SamplingParams = field(default_factory=SamplingParams)
    #: Higher priorities are admitted first; ties keep submission order.
    priority: int = 0
    #: Absolute deadline on the server's clock; ``None`` = no deadline.
    deadline: Optional[float] = None
    #: Multi-turn session whose cached KV state this request continues.
    session_id: Optional[str] = None
    #: Named model variant to serve this request with (λ-fleet routing);
    #: ``None`` falls back to the fleet's default variant.  Ignored by
    #: single-model servers.
    variant: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.prompt_ids:
            raise ValueError("prompt_ids must be non-empty")
        object.__setattr__(self, "prompt_ids",
                           tuple(int(i) for i in self.prompt_ids))


@dataclass(frozen=True)
class Completion:
    """Terminal record of one request."""

    request_id: str
    status: str
    token_ids: Tuple[int, ...] = ()
    finish_reason: Optional[str] = None
    #: Wall-clock (server clock) seconds from submit to first generated token.
    ttft: Optional[float] = None
    #: Server-clock seconds spent waiting in the queue before prefill.
    queue_wait: Optional[float] = None
    #: Prompt tokens actually run through prefill (after cache reuse).
    prefill_tokens: int = 0
    #: Prompt tokens whose KV state came from the prefix cache / session.
    cached_prefix_tokens: int = 0
    #: Decoded text, filled in only when the server has a tokenizer.
    text: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == RequestStatus.FINISHED
