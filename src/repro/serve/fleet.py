"""Replica-fleet serving over shared-memory weights (ROADMAP open item 2).

One host, one copy of the weights, N engines: :class:`FleetServer` publishes
the model's state dict in a :class:`~repro.parallel.TensorArena` and forks N
replica processes, each running its own
:class:`~repro.serve.engine.BatchedEngine` + continuous-batching
:class:`~repro.serve.scheduler.Scheduler` over **zero-copy read-only views**
of the published tensors (an :class:`ArenaBackedModel` shim hands the arena
views to the engine's weight snapshot, so no replica ever copies the
weights).  The parent routes requests, streams token events back, and
re-merges per-replica metric registries into a fleet view.

Routing is consistent-hash affinity (:class:`HashRing`): a request keyed by
its session id — or, absent a session, its first ``affinity_prefix_tokens``
prompt tokens — always lands on the same replica, so session KV state and
prefix-cache entries stay hot where their traffic goes.  Replicas sharing a
prompt prefix therefore reproduce the single-server prefix-cache behaviour
(the byte-parity suite relies on this).

Fault tolerance reuses :class:`~repro.parallel.pool.ProcessSupervisor` —
the same spawn/kill/respawn machinery as :class:`~repro.parallel.WorkerPool`:
liveness polling detects a dead replica, its in-flight requests are requeued
at the front of the router (epoch-tagged events make anything the corpse
already emitted inert, so no request is lost *or* double-answered), and a
fresh replica is forked from the arena handle — respawn never re-publishes
weights.

What a replica builds from the arena is described by a small picklable
*source* object (:class:`ArenaWeightsSource` here;
:class:`~repro.serve.lambda_fleet.VariantSource` materializes a merged-model
variant from a shared :class:`~repro.core.merge_engine.MergePlan` instead),
so subclasses can serve heterogeneous replicas from one arena without
touching the fork/respawn machinery.  Speculative decoding rides the same
plumbing: pass ``draft_model=`` and its (int8-quantized when serving int8)
state dict is published alongside the target; each replica rebuilds a
draft :class:`~repro.nn.infer.InferenceEngine` from the view — exact
accept/reject keeps fleet output byte-identical to in-process serving
whatever the draft weights.

:class:`FleetServer` mirrors the :class:`~repro.serve.server.InProcessServer`
surface (``submit`` / ``step`` / ``run_until_idle`` / ``complete`` /
``metrics_snapshot``) and exposes a scheduler facade with the ``refill`` /
``on_token`` hooks, so the network front door runs over a fleet unchanged:
``NetServerThread(inner=FleetServer(...))``.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import pickle
import time
from collections import OrderedDict, deque
from dataclasses import replace
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..nn.transformer import TransformerConfig
from ..obs import Observability
from ..parallel.arena import ArenaHandle, TensorArena
from ..parallel.pool import POLL_INTERVAL, ProcessSupervisor
from .request import Completion, FinishReason, Request, RequestStatus, SamplingParams
from .scheduler import ServeConfig

#: Arena key prefix the fleet publishes model weights under.
WEIGHTS_PREFIX = "fleet.weights"

#: Arena key prefix for the speculative-decoding draft model's weights.
DRAFT_PREFIX = "fleet.draft"

#: Default per-replica in-flight bound, in multiples of ``max_batch_size``
#: (one batch decoding plus one batch queued keeps admission snappy without
#: piling a dead replica's worth of work behind one slow engine).
INFLIGHT_FACTOR = 2


class FleetError(RuntimeError):
    """The fleet cannot make progress (respawn budget exhausted)."""


# ---------------------------------------------------------------------------
# shared-weight model shim
# ---------------------------------------------------------------------------


class ArenaBackedModel:
    """Duck-typed stand-in for a ``TransformerLM`` whose ``state_dict``
    returns the arena's zero-copy views.

    :class:`~repro.nn.infer.InferenceEngine` snapshots weights by *storing
    references* to the arrays ``model.state_dict()`` returns — so handing it
    read-only shared-memory views means every replica's engine reads the one
    published weight copy directly.  (A real ``Module.state_dict()`` copies;
    this shim is how the fleet avoids N weight copies per host.)
    """

    def __init__(self, config: TransformerConfig,
                 tensors: Dict[str, np.ndarray]) -> None:
        self.config = config
        self._tensors = tensors

    def state_dict(self) -> Dict[str, np.ndarray]:
        return dict(self._tensors)


class ArenaWeightsSource:
    """Picklable recipe for a replica's engine model: read the published
    state dict (possibly already int8-quantized) as zero-copy views.

    Sources are what cross the fork instead of weights: a few hundred bytes
    describing *how* to build a model from the attached
    :class:`~repro.parallel.arena.ArenaView`.  Subfleets substitute richer
    sources (lazy merged-variant materialization) without changing the
    replica loop.
    """

    def __init__(self, config_dict: Dict[str, object],
                 prefix: str = WEIGHTS_PREFIX) -> None:
        self.config_dict = config_dict
        self.prefix = prefix

    def materialize(self, view) -> ArenaBackedModel:
        return ArenaBackedModel(TransformerConfig.from_dict(self.config_dict),
                                view.get_dict(self.prefix))


class ArenaDraftSource:
    """Picklable recipe for a replica's speculative-decoding draft model.

    The published draft state may be int8-quantized (it is whenever the
    fleet serves int8); the replica then dequantizes into a private copy —
    drafts are small — and runs the full-precision
    :class:`~repro.nn.infer.InferenceEngine` over it.  Exact accept/reject
    verifies every proposal against the target with the request's own rng,
    so draft weights never change output bytes, only the acceptance rate.
    """

    def __init__(self, config_dict: Dict[str, object],
                 prefix: str = DRAFT_PREFIX) -> None:
        self.config_dict = config_dict
        self.prefix = prefix

    def materialize(self, view) -> ArenaBackedModel:
        from ..nn.kernels import dequantize_state_dict, is_quantized_state

        state = view.get_dict(self.prefix)
        if is_quantized_state(state):
            state = dequantize_state_dict(state)
        return ArenaBackedModel(TransformerConfig.from_dict(self.config_dict),
                                dict(state))


# ---------------------------------------------------------------------------
# consistent-hash router
# ---------------------------------------------------------------------------


class HashRing:
    """Consistent hashing over replica ids with virtual nodes.

    Stable under membership change: removing one node remaps only the keys
    that hashed to it; every other key keeps its assignment (asserted in the
    test suite).  Hashing is blake2b, so placement is deterministic across
    processes and runs — no ``PYTHONHASHSEED`` dependence.
    """

    def __init__(self, nodes: Sequence[int], vnodes: int = 64) -> None:
        if not nodes:
            raise ValueError("HashRing needs at least one node")
        points: List[Tuple[int, int]] = []
        for node in nodes:
            for v in range(vnodes):
                points.append((self._hash(f"node-{node}#{v}"), node))
        points.sort()
        self._points = [p for p, _ in points]
        self._nodes = [n for _, n in points]

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def node_for(self, key: str) -> int:
        i = bisect.bisect_right(self._points, self._hash(key))
        return self._nodes[i % len(self._nodes)]


def affinity_key(request: Request, prefix_tokens: int) -> str:
    """Routing key: the session when there is one, else the prompt head.

    Keying sessions keeps multi-turn KV state on one replica; keying the
    first ``prefix_tokens`` prompt ids sends prefix-sharing requests (the
    dominant ChipAlign traffic shape) to the replica whose prefix cache
    already holds their common head.
    """
    if request.session_id is not None:
        return f"s:{request.session_id}"
    head = request.prompt_ids[:prefix_tokens]
    return "p:" + ",".join(str(t) for t in head)


# ---------------------------------------------------------------------------
# replica process
# ---------------------------------------------------------------------------


def _replica_main(replica_id: int, conn, event_conn, handle: ArenaHandle,
                  source, draft_source, serve_config: ServeConfig,
                  eos_id: Optional[int], epoch: int) -> None:
    """One replica: attach the arena, build an engine, serve the pipes.

    ``source`` (and the optional ``draft_source``) describe how to turn the
    attached arena view into this replica's models — zero-copy views of a
    published state dict for a plain fleet, lazy merged-variant
    materialization for a λ-fleet.

    Commands arrive on ``conn``; events leave on ``event_conn`` — a
    *per-replica* pipe rather than a shared queue, deliberately: a replica
    SIGKILLed mid-``Queue.put`` would leave the queue's feeder lock held and
    deadlock the whole fleet, while a dead pipe just delivers EOF to the
    parent.  Every outbound event is tagged ``(replica_id, epoch)`` so the
    parent can discard anything emitted by an epoch it has already declared
    dead.
    """
    from ..nn.infer import InferenceEngine
    from .engine import BatchedEngine
    from .scheduler import Scheduler

    try:
        view = handle.attach()
        model = source.materialize(view)
        obs = Observability()
        # In int8 mode the materialized tensors are already quantized
        # (int8 + ``::scale`` vectors); the engine detects that and consumes
        # them verbatim, so every replica serves the identical quantization.
        engine = BatchedEngine(model, decode_mode=serve_config.decode_mode,
                               max_batch_size=serve_config.max_batch_size,
                               weight_mode=serve_config.weight_mode,
                               kv_mode=serve_config.kv_mode,
                               kv_block_tokens=serve_config.kv_block_tokens)
        draft_engine = (InferenceEngine(draft_source.materialize(view))
                        if draft_source is not None else None)
        scheduler = Scheduler(engine, config=serve_config, eos_id=eos_id,
                              obs=obs, draft_engine=draft_engine)

        def on_token(request: Request, token: int, index: int) -> None:
            event_conn.send(("token", replica_id, epoch, request.request_id,
                             int(token), int(index)))

        scheduler.on_token = on_token
        event_conn.send(("ready", replica_id, epoch))
        while True:
            # Commands first (non-blocking while decoding, blocking-ish when
            # idle so an idle replica doesn't spin a core).
            while conn.poll(0 if not scheduler.idle else POLL_INTERVAL):
                message = conn.recv()
                kind = message[0]
                if kind == "submit":
                    _, request, deadline_remaining = message
                    if deadline_remaining is not None:
                        request = replace(
                            request,
                            deadline=time.monotonic() + deadline_remaining)
                    scheduler.submit(request)
                elif kind == "cancel":
                    scheduler.cancel(message[1])
                elif kind == "metrics":
                    event_conn.send(("metrics", replica_id, epoch,
                                     message[1], obs.registry.export(),
                                     scheduler.accounting(),
                                     engine.kv_stats()))
                elif kind == "stop":
                    return
            if not scheduler.idle:
                scheduler.step()
            # Drain outside the step guard: a cancel landing between steps
            # still owes the parent its terminal completion.
            for completion in scheduler.drain_completions():
                event_conn.send(("done", replica_id, epoch, completion))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away / teardown race: exit quietly


# ---------------------------------------------------------------------------
# parent-side fleet
# ---------------------------------------------------------------------------


class _Replica:
    """Parent-side state of one replica slot."""

    __slots__ = ("replica_id", "process", "conn", "event_conn", "event_eof",
                 "epoch", "ready", "inflight", "last_export",
                 "last_accounting", "last_kv", "last_seq")

    def __init__(self, replica_id: int, process, conn, event_conn,
                 epoch: int) -> None:
        self.replica_id = replica_id
        self.process = process
        self.conn = conn
        self.event_conn = event_conn
        self.event_eof = False
        self.epoch = epoch
        self.ready = False
        self.inflight: Set[str] = set()
        self.last_export: Optional[Dict[str, object]] = None
        self.last_accounting: Optional[Dict[str, int]] = None
        self.last_kv: Optional[Dict[str, object]] = None
        self.last_seq = -1


class _FleetScheduler:
    """Scheduler facade: the exact surface the network front door drives.

    ``NetServer`` assigns :attr:`refill` and :attr:`on_token` and calls
    ``step`` / ``drain_completions`` / ``cancel`` / ``accounting`` exactly
    as it would on a real :class:`~repro.serve.scheduler.Scheduler`; the
    facade forwards everything to the fleet's router.
    """

    def __init__(self, fleet: "FleetServer") -> None:
        self._fleet = fleet
        self.clock = fleet.clock
        self.on_token: Optional[Callable[[Request, int, int], None]] = None
        self.refill: Optional[Callable[[int], List[Request]]] = None

    def submit(self, request: Request) -> None:
        self._fleet._submit_request(request)

    def step(self) -> List[Completion]:
        return self._fleet._step()

    def drain_completions(self) -> List[Completion]:
        return self._fleet._drain_completions()

    def cancel(self, request_id: str) -> bool:
        return self._fleet._cancel(request_id)

    def accounting(self) -> Dict[str, int]:
        return self._fleet.accounting()

    @property
    def idle(self) -> bool:
        return self._fleet.idle

    @property
    def queue_depth(self) -> int:
        return len(self._fleet._pending)

    @property
    def running_count(self) -> int:
        return len(self._fleet._inflight)


class FleetServer:
    """N arena-backed engine replicas behind a consistent-hash router.

    Parameters
    ----------
    model:
        A ``TransformerLM``; its state dict is published to shared memory
        once, here, and never again (respawns re-attach the same handle).
    tokenizer / serve_config / clock / eos_id / obs:
        As in :class:`~repro.serve.server.InProcessServer`.  ``serve_config``
        applies per replica (each runs its own scheduler, prefix cache, and
        session store).
    n_replicas:
        Engine replica count (>= 1).
    draft_model:
        Draft ``TransformerLM`` for speculative decoding; required when
        ``serve_config.speculative_tokens > 0``.  Its state dict is
        published to the arena alongside the target (int8-quantized when
        serving int8) and every replica rebuilds a draft engine from the
        shared copy.
    affinity_prefix_tokens:
        Prompt-head length used as the routing key for sessionless requests.
        Keep it <= ``serve_config.prefix_min_tokens`` when byte parity with
        a single server matters: any two prompts sharing a reusable prefix
        then share a routing key, so all cache-hit relationships stay
        intra-replica.
    max_inflight_per_replica:
        Router-side bound on requests outstanding at one replica; default
        ``max_batch_size * INFLIGHT_FACTOR``.
    """

    def __init__(self, model, tokenizer=None, n_replicas: int = 2,
                 serve_config: ServeConfig = ServeConfig(),
                 clock: Callable[[], float] = time.monotonic,
                 eos_id: Optional[int] = None,
                 obs: Optional[Observability] = None,
                 affinity_prefix_tokens: int = 8,
                 max_inflight_per_replica: Optional[int] = None,
                 draft_model=None) -> None:
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        if serve_config.speculative_tokens > 0 and draft_model is None:
            raise ValueError(
                "speculative_tokens > 0 requires a draft_model: the fleet "
                "publishes its state dict to the arena so every replica can "
                "rebuild a draft engine")
        self.n_replicas = n_replicas
        self.tokenizer = tokenizer
        if eos_id is None and tokenizer is not None:
            eos_id = tokenizer.eos_id
        self.eos_id = eos_id
        self.config = serve_config
        self.clock = clock
        self.obs = obs if obs is not None else Observability()
        self.affinity_prefix_tokens = affinity_prefix_tokens
        self.max_inflight_per_replica = (
            max_inflight_per_replica if max_inflight_per_replica is not None
            else serve_config.max_batch_size * INFLIGHT_FACTOR)
        self.poll_interval = 0.005

        self._arena = TensorArena()
        self._source = self._publish_model(model)
        self._draft_source = (self._publish_draft(draft_model)
                              if draft_model is not None else None)
        self._handle = self._arena.handle()
        self._supervisor = ProcessSupervisor(
            obs=self.obs, respawn_counter="serve.fleet.replica_respawns")
        self._ring = HashRing(range(n_replicas))
        self._replicas: List[_Replica] = []
        for replica_id in range(n_replicas):
            self._replicas.append(self._spawn_replica(replica_id, epoch=0))

        self.scheduler = _FleetScheduler(self)
        self._pending: deque = deque()  # routed but not yet dispatched
        #: request_id -> (replica_id, epoch) it is currently dispatched to.
        self._inflight: "OrderedDict[str, Tuple[int, int]]" = OrderedDict()
        self._requests: Dict[str, Request] = {}
        self._results: Dict[str, Completion] = {}
        self._completions: List[Completion] = []
        self._seen_ids: Set[str] = set()
        self._ids = itertools.count()
        self._metrics_seq = 0
        self._respawn_budget = n_replicas * 4
        self._closed = False
        self._counts = {"submitted": 0, "finished": 0, "expired": 0,
                        "cancelled": 0}
        registry = self.obs.registry
        self._dispatch_counter = registry.counter("serve.fleet.dispatched")
        self._requeue_counter = registry.counter("serve.fleet.requeued")
        self._stale_counter = registry.counter("serve.fleet.stale_events")
        registry.gauge("serve.fleet.replicas").set(n_replicas)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _publish_model(self, model) -> ArenaWeightsSource:
        """Publish the served weights once; return the per-replica source.

        Overridable: a λ-fleet publishes a shared ``MergePlan`` instead of a
        state dict and hands each replica a variant-materializing source.
        """
        state = model.state_dict()
        if self.config.weight_mode == "int8":
            # Publish the quantized form: int8 matrices plus per-channel
            # scale vectors.  The shared segment shrinks to ~28% of fp32
            # and every replica consumes the identical (q, s) pairs —
            # quantization happens once, here, never per replica.
            from ..nn.kernels import quantize_state_dict
            state = quantize_state_dict(state)
        self._arena.publish_dict(WEIGHTS_PREFIX, state)
        return ArenaWeightsSource(model.config.to_dict())

    def _publish_draft(self, draft_model) -> ArenaDraftSource:
        """Publish the speculative draft's weights (quantized when serving
        int8 — replicas dequantize a private copy; output bytes are immune
        to draft weights by exact accept/reject)."""
        state = draft_model.state_dict()
        if self.config.weight_mode == "int8":
            from ..nn.kernels import quantize_state_dict
            state = quantize_state_dict(state)
        self._arena.publish_dict(DRAFT_PREFIX, state)
        return ArenaDraftSource(draft_model.config.to_dict())

    def _source_for(self, replica_id: int):
        """The model source replica ``replica_id`` builds from (overridable;
        the base fleet is homogeneous)."""
        return self._source

    def _replica_args(self, replica_id: int, event_send, epoch: int) -> Tuple:
        return (event_send, self._handle, self._source_for(replica_id),
                self._draft_source, self.config, self.eos_id, epoch)

    def _spawn_replica(self, replica_id: int, epoch: int) -> _Replica:
        # The parent's copy of the event send end is closed immediately
        # after the fork, so replica ``i`` holds the *only* write end of its
        # event pipe — its death reliably EOFs the parent's read end, and no
        # sibling forked later can keep the pipe artificially open.
        event_recv, event_send = self._supervisor.ctx.Pipe(duplex=False)
        process, conn = self._supervisor.spawn(
            _replica_main, replica_id,
            self._replica_args(replica_id, event_send, epoch))
        event_send.close()
        return _Replica(replica_id, process, conn, event_recv, epoch)

    def close(self) -> None:
        """Stop replicas, fold their final metrics in, free the arena."""
        if self._closed:
            return
        self._closed = True
        try:
            self._collect_metrics(timeout=1.0)
        except Exception:
            pass
        for rep in self._replicas:
            self._absorb_replica(rep)
            if rep.process.is_alive():
                try:
                    rep.conn.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
        for rep in self._replicas:
            self._supervisor.terminate(rep.process, rep.conn)
            try:
                rep.event_conn.close()
            except OSError:
                pass
        self._arena.close()

    def __enter__(self) -> "FleetServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def _absorb_replica(self, rep: _Replica) -> None:
        """Fold a replica epoch's last metric export into the parent
        registry, exactly once per (replica, epoch)."""
        if rep.last_export is not None:
            self.obs.registry.absorb(
                rep.last_export,
                key=f"serve.fleet.r{rep.replica_id}.e{rep.epoch}")

    # ------------------------------------------------------------------
    # InProcessServer-mirror surface
    # ------------------------------------------------------------------
    def submit(self, prompt_ids: Sequence[int],
               params: Optional[SamplingParams] = None, priority: int = 0,
               deadline: Optional[float] = None,
               session_id: Optional[str] = None,
               request_id: Optional[str] = None,
               variant: Optional[str] = None) -> str:
        """Enqueue a generation job; returns its request id.

        ``variant`` names the served model variant on a variant-aware fleet
        (:class:`~repro.serve.lambda_fleet.LambdaFleetServer`); the base
        fleet is homogeneous and ignores it.
        """
        if request_id is None:
            request_id = f"req-{next(self._ids)}"
        request = Request(request_id=request_id,
                          prompt_ids=tuple(prompt_ids),
                          params=params or SamplingParams(),
                          priority=priority, deadline=deadline,
                          session_id=session_id, variant=variant)
        self._submit_request(request)
        return request_id

    def _submit_request(self, request: Request) -> None:
        if self._closed:
            raise ValueError("fleet is closed")
        if request.request_id in self._seen_ids:
            raise ValueError(f"duplicate request_id {request.request_id!r}")
        self._seen_ids.add(request.request_id)
        self._requests[request.request_id] = request
        self._pending.append(request)
        self._counts["submitted"] += 1

    def step(self) -> List[Completion]:
        """Advance the router one iteration; returns new completions."""
        self._step()
        return self._collect(self._drain_completions())

    def run_until_idle(self, max_steps: Optional[int] = None
                       ) -> List[Completion]:
        """Drive the fleet until all submitted work is done."""
        out: List[Completion] = []
        steps = 0
        while not self.idle:
            out.extend(self.step())
            steps += 1
            if max_steps is not None and steps >= max_steps:
                break
        out.extend(self._collect(self._drain_completions()))
        return out

    def complete(self, prompt_ids: Sequence[int],
                 params: Optional[SamplingParams] = None,
                 session_id: Optional[str] = None,
                 timeout: Optional[float] = None) -> Completion:
        """Submit one request and run the fleet until it finishes."""
        deadline = self.clock() + timeout if timeout is not None else None
        request_id = self.submit(prompt_ids, params=params,
                                 session_id=session_id, deadline=deadline)
        self.run_until_idle()
        return self._results[request_id]

    def result(self, request_id: str) -> Optional[Completion]:
        return self._results.get(request_id)

    def cancel(self, request_id: str) -> bool:
        found = self._cancel(request_id)
        self._collect(self._drain_completions())
        return found

    @property
    def idle(self) -> bool:
        return not self._pending and not self._inflight

    def accounting(self) -> Dict[str, int]:
        """Fleet-level request-conservation ledger (parent's eye view)."""
        counts = dict(self._counts)
        counts["queued"] = len(self._pending)
        counts["running"] = len(self._inflight)
        counts["conservation_ok"] = int(
            counts["submitted"] == counts["finished"] + counts["expired"]
            + counts["cancelled"] + counts["queued"] + counts["running"])
        return counts

    # ------------------------------------------------------------------
    # router core
    # ------------------------------------------------------------------
    def _step(self) -> None:
        if self._closed:
            raise ValueError("fleet is closed")
        if self.scheduler.refill is not None:
            free = (self.n_replicas * self.config.max_batch_size
                    - len(self._pending) - len(self._inflight))
            if free > 0:
                for request in self.scheduler.refill(free):
                    self._submit_request(request)
        self._expire_pending()
        dispatched = self._dispatch()
        handled = self._drain_events()
        self._police_replicas()
        if not dispatched and not handled and not self.idle:
            # Nothing moved this iteration: wait briefly on the event queue
            # instead of spinning while replicas decode.
            self._drain_events(timeout=self.poll_interval)

    def _expire_pending(self) -> None:
        """Expire not-yet-dispatched requests on the parent clock (the same
        >= boundary the replica schedulers apply to dispatched ones)."""
        now = self.clock()
        live = deque()
        for request in self._pending:
            if request.deadline is not None and now >= request.deadline:
                self._requests.pop(request.request_id, None)
                self._counts["expired"] += 1
                self._completions.append(Completion(
                    request_id=request.request_id,
                    status=RequestStatus.EXPIRED,
                    finish_reason=FinishReason.DEADLINE))
            else:
                live.append(request)
        self._pending = live

    def _route(self, request: Request) -> int:
        """The replica a request belongs on (overridable; the base fleet
        consistent-hashes over all replicas)."""
        return self._ring.node_for(
            affinity_key(request, self.affinity_prefix_tokens))

    def _dispatch(self) -> int:
        dispatched = 0
        kept = deque()
        while self._pending:
            request = self._pending.popleft()
            rep = self._replicas[self._route(request)]
            if (not rep.ready or not rep.process.is_alive()
                    or len(rep.inflight) >= self.max_inflight_per_replica):
                kept.append(request)
                continue
            remaining = (request.deadline - self.clock()
                         if request.deadline is not None else None)
            try:
                rep.conn.send(("submit", request, remaining))
            except (OSError, BrokenPipeError):
                kept.append(request)  # policing will respawn and re-route
                continue
            rep.inflight.add(request.request_id)
            self._inflight[request.request_id] = (rep.replica_id, rep.epoch)
            self._dispatch_counter.inc()
            dispatched += 1
        self._pending = kept
        return dispatched

    def _drain_events(self, timeout: float = 0.0) -> int:
        handled = 0
        first = True
        while True:
            live = {rep.event_conn: rep for rep in self._replicas
                    if not rep.event_eof}
            if not live:
                return handled
            ready = _connection_wait(list(live), timeout if first else 0)
            first = False
            if not ready:
                return handled
            for event_conn in ready:
                rep = live[event_conn]
                try:
                    message = event_conn.recv()
                except (EOFError, OSError, pickle.UnpicklingError):
                    # Replica died (possibly mid-write); liveness policing
                    # requeues its work and respawns the slot.
                    rep.event_eof = True
                    continue
                handled += 1
                self._handle_event(message)

    def _handle_event(self, message: Tuple) -> None:
        kind = message[0]
        if kind == "ready":
            _, replica_id, epoch = message
            rep = self._replicas[replica_id]
            if epoch == rep.epoch:
                rep.ready = True
        elif kind == "token":
            _, replica_id, epoch, request_id, token, index = message
            if self._inflight.get(request_id) != (replica_id, epoch):
                self._stale_counter.inc()
                return
            callback = self.scheduler.on_token
            request = self._requests.get(request_id)
            if callback is not None and request is not None:
                callback(request, token, index)
        elif kind == "done":
            _, replica_id, epoch, completion = message
            if self._inflight.get(completion.request_id) != (replica_id,
                                                             epoch):
                self._stale_counter.inc()  # dead epoch, or already requeued
                return
            self._inflight.pop(completion.request_id)
            self._replicas[replica_id].inflight.discard(completion.request_id)
            self._finish(completion)
        elif kind == "metrics":
            _, replica_id, epoch, seq, export, accounting, kv_stats = message
            rep = self._replicas[replica_id]
            if epoch == rep.epoch:
                rep.last_export = export
                rep.last_accounting = accounting
                rep.last_kv = kv_stats
                rep.last_seq = seq

    def _finish(self, completion: Completion) -> None:
        self._requests.pop(completion.request_id, None)
        if completion.status == RequestStatus.EXPIRED:
            self._counts["expired"] += 1
        elif completion.status == RequestStatus.CANCELLED:
            self._counts["cancelled"] += 1
        else:
            self._counts["finished"] += 1
        self._completions.append(completion)

    def _police_replicas(self) -> None:
        """Liveness sweep: requeue a dead replica's work and respawn it."""
        for rep in self._replicas:
            if rep.process.is_alive() and not rep.event_eof:
                continue
            # Harvest everything the corpse managed to emit before dying —
            # completions it finished must not be re-run.  The drain reads
            # the dying pipe's buffered events through to its EOF.
            self._drain_events()
            self._respawn(rep)

    def _respawn(self, rep: _Replica) -> None:
        if self._respawn_budget <= 0:
            raise FleetError(
                f"replicas keep dying faster than the fleet may respawn "
                f"them ({self.n_replicas * 4} respawns exhausted)")
        self._respawn_budget -= 1
        self._absorb_replica(rep)
        # Requeue survivors at the front, preserving dispatch order; the
        # epoch bump makes any event the dead epoch left in flight inert.
        orphans = [request_id for request_id, (replica_id, epoch)
                   in self._inflight.items()
                   if (replica_id, epoch) == (rep.replica_id, rep.epoch)]
        for request_id in reversed(orphans):
            self._inflight.pop(request_id)
            rep.inflight.discard(request_id)
            self._pending.appendleft(self._requests[request_id])
            self._requeue_counter.inc()
        epoch = rep.epoch + 1
        try:
            rep.event_conn.close()
        except OSError:
            pass
        event_recv, event_send = self._supervisor.ctx.Pipe(duplex=False)
        process, conn = self._supervisor.respawn(
            _replica_main, rep.replica_id,
            self._replica_args(rep.replica_id, event_send, epoch),
            rep.process, rep.conn)
        event_send.close()
        rep.process, rep.conn = process, conn
        rep.event_conn = event_recv
        rep.event_eof = False
        rep.epoch = epoch
        rep.ready = False
        rep.last_export = None
        rep.last_accounting = None
        rep.last_kv = None
        rep.last_seq = -1
        rep.inflight.clear()

    def _cancel(self, request_id: str) -> bool:
        for i, request in enumerate(self._pending):
            if request.request_id == request_id:
                del self._pending[i]
                self._requests.pop(request_id, None)
                self._counts["cancelled"] += 1
                self._completions.append(Completion(
                    request_id=request_id, status=RequestStatus.CANCELLED,
                    finish_reason=FinishReason.CANCELLED))
                return True
        assignment = self._inflight.get(request_id)
        if assignment is None:
            return False
        rep = self._replicas[assignment[0]]
        try:
            rep.conn.send(("cancel", request_id))
        except (OSError, BrokenPipeError):
            pass  # replica is dying; policing requeues, caller may retry
        return True

    def _drain_completions(self) -> List[Completion]:
        done, self._completions = self._completions, []
        return done

    def _collect(self, completions: List[Completion]) -> List[Completion]:
        out = []
        for completion in completions:
            if self.tokenizer is not None and completion.token_ids:
                completion = replace(completion, text=self.tokenizer.decode(
                    list(completion.token_ids)))
            self._results[completion.request_id] = completion
            out.append(completion)
        return out

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def _collect_metrics(self, timeout: float = 0.5) -> None:
        """Ask every live replica for a fresh registry export; wait (while
        still servicing token/done events) until all reply or time runs out."""
        self._metrics_seq += 1
        waiting = set()
        for rep in self._replicas:
            if rep.process.is_alive() and rep.ready:
                try:
                    rep.conn.send(("metrics", self._metrics_seq))
                    waiting.add(rep.replica_id)
                except (OSError, BrokenPipeError):
                    pass
        deadline = time.monotonic() + timeout
        while waiting and time.monotonic() < deadline:
            self._drain_events(timeout=POLL_INTERVAL)
            waiting = {replica_id for replica_id in waiting
                       if self._replicas[replica_id].last_seq
                       < self._metrics_seq}

    def fleet_snapshot(self, refresh: bool = True,
                       timeout: float = 0.5) -> Dict[str, object]:
        """Merged fleet metrics view: one registry folded from every
        replica's latest export, plus per-replica accounting.

        Merging starts from a fresh registry each call (replica exports are
        cumulative), so repeated snapshots never double-count.
        """
        from ..obs.metrics import MetricRegistry

        if refresh and not self._closed:
            self._collect_metrics(timeout=timeout)
        merged = MetricRegistry()
        per_replica: Dict[str, object] = {}
        # Per-replica KV planes are replica-local (each process owns its own
        # block pool), so footprints sum while sharing never crosses
        # replicas; the aggregate is the fleet's total copy/shares bill.
        kv_totals = {"bytes_copied": 0, "blocks_shared": 0,
                     "bytes_reserved": 0, "bytes_in_use": 0}
        for rep in self._replicas:
            if rep.last_export is not None:
                merged.absorb(rep.last_export, key=f"replica-{rep.replica_id}")
            if rep.last_kv is not None:
                for key in kv_totals:
                    kv_totals[key] += int(rep.last_kv.get(key, 0))
            per_replica[str(rep.replica_id)] = {
                "epoch": rep.epoch,
                "alive": rep.process.is_alive(),
                "inflight": len(rep.inflight),
                "accounting": rep.last_accounting,
                "kv": rep.last_kv,
            }
        return {
            "replicas": self.n_replicas,
            "respawns": int(self.obs.registry.counter(
                "serve.fleet.replica_respawns").value),
            "router": self.accounting(),
            "merged": merged.export(),
            "kv": kv_totals,
            "per_replica": per_replica,
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """Flat instrumentation snapshot (the ``metrics`` verb's ``server``
        section when a fleet backs the network front door)."""
        snap = self.fleet_snapshot(timeout=0.25)
        merged = snap["merged"]
        return {
            "fleet_replicas": self.n_replicas,
            "router_pending": len(self._pending),
            "router_inflight": len(self._inflight),
            "replica_respawns": snap["respawns"],
            "requests_requeued": int(self._requeue_counter.value),
            "counters": merged["counters"],
            "gauges": merged["gauges"],
        }
