"""Serving instrumentation: a thin view over the shared metric registry.

The numbers a capacity planner actually wants from an in-process server:
throughput (generated tokens/sec), time-to-first-token, queue depth, batch
occupancy (how full each decode step's batch was), and prefix-cache
efficiency.  Since the observability layer landed, :class:`ServerMetrics`
owns no counters of its own — every count lives in a
:class:`~repro.obs.MetricRegistry` under the ``serve.*`` namespace, so the
scheduler's numbers appear in the same snapshot as merge/train/eval metrics
when one :class:`~repro.obs.Observability` is threaded through a pipeline.
The attribute API (``metrics.tokens_generated += 1``) is preserved as
properties over the registry, and :meth:`ServerMetrics.snapshot` still
renders everything as a plain dict for benchmarks and the CLI.

Busy-time accounting: ``mark_busy``/``mark_idle`` clock the span between
the first and last moment work existed.  A snapshot taken *mid-span* folds
the still-open span in (without closing it), so ``tokens_per_second`` is
correct on a live server — previously the open span was ignored and a
mid-run snapshot read 0.0 or wildly inflated throughput.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..obs import MetricRegistry

#: Integer totals the scheduler maintains, exposed as ``serve.<name>``.
COUNTER_NAMES = (
    "requests_submitted", "requests_finished", "requests_expired",
    "requests_cancelled", "tokens_generated", "prefill_tokens",
    "cached_prefix_tokens", "decode_steps",
)

#: Latency histogram bucket bounds (seconds): sub-ms to tens of seconds.
LATENCY_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0)


class ServerMetrics:
    """Registry-backed counters owned by one server instance.

    Parameters
    ----------
    max_batch_size:
        The configured slot count (reported in snapshots).
    registry:
        The shared :class:`~repro.obs.MetricRegistry` to write into; a
        private one is created when not supplied.
    clock:
        Optional monotonic clock.  When present, snapshots fold the open
        busy span in automatically; without it callers can pass ``now=``
        to :meth:`snapshot` explicitly.
    """

    def __init__(self, max_batch_size: int,
                 registry: Optional[MetricRegistry] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.max_batch_size = max_batch_size
        self.registry = registry if registry is not None else MetricRegistry()
        self._clock = clock
        self._counters = {name: self.registry.counter(f"serve.{name}")
                          for name in COUNTER_NAMES}
        self._ttft_hist = self.registry.histogram("serve.ttft_s",
                                                  LATENCY_BUCKETS)
        self._queue_wait_hist = self.registry.histogram("serve.queue_wait_s",
                                                        LATENCY_BUCKETS)
        self._admission_hist = self.registry.histogram("serve.admission_s",
                                                       LATENCY_BUCKETS)
        self._busy_gauge = self.registry.gauge("serve.busy_seconds")
        self.ttfts: List[float] = []
        self.queue_waits: List[float] = []
        self.admissions: List[float] = []
        self._queue_depth_sum = 0
        self._occupancy_sum = 0
        self._busy_started: Optional[float] = None
        self._busy_accum = 0.0

    # ------------------------------------------------------------------
    def record_step(self, queue_depth: int, running: int) -> None:
        """Account one scheduler step's queue depth and batch occupancy."""
        self._counters["decode_steps"].inc()
        self._queue_depth_sum += queue_depth
        self._occupancy_sum += running

    def record_ttft(self, seconds: float) -> None:
        self.ttfts.append(seconds)
        self._ttft_hist.observe(seconds)

    def record_queue_wait(self, seconds: float) -> None:
        self.queue_waits.append(seconds)
        self._queue_wait_hist.observe(seconds)

    def record_admission(self, seconds: float) -> None:
        """Wall time of one admission: KV lookup + adoption + suffix
        prefill + pool insert.  The hot-vs-cold-prefix gap lands here."""
        self.admissions.append(seconds)
        self._admission_hist.observe(seconds)

    def mark_busy(self, now: float) -> None:
        """Clock the span between the first and last moment work existed."""
        if self._busy_started is None:
            self._busy_started = now

    def mark_idle(self, now: float) -> None:
        if self._busy_started is not None:
            self._busy_accum += now - self._busy_started
            self._busy_started = None
            self._busy_gauge.set(self._busy_accum)

    def busy_seconds_at(self, now: Optional[float] = None) -> float:
        """Busy time including the still-open span, without closing it."""
        busy = self._busy_accum
        if self._busy_started is not None:
            if now is None and self._clock is not None:
                now = self._clock()
            if now is not None:
                busy += max(0.0, now - self._busy_started)
        return busy

    # ------------------------------------------------------------------
    @property
    def busy_seconds(self) -> float:
        return self.busy_seconds_at()

    @property
    def mean_ttft(self) -> float:
        return sum(self.ttfts) / len(self.ttfts) if self.ttfts else 0.0

    @property
    def mean_queue_depth(self) -> float:
        steps = self.decode_steps
        return self._queue_depth_sum / steps if steps else 0.0

    @property
    def mean_batch_occupancy(self) -> float:
        steps = self.decode_steps
        return self._occupancy_sum / steps if steps else 0.0

    @property
    def tokens_per_second(self) -> float:
        busy = self.busy_seconds_at()
        if busy <= 0:
            return 0.0
        return self.tokens_generated / busy

    def snapshot(self, prefix_stats: Optional[Dict[str, float]] = None,
                 now: Optional[float] = None) -> Dict[str, float]:
        """Point-in-time metrics dict (JSON-serialisable).

        ``now`` (or the injected clock) lets a snapshot taken while the
        server is mid-burst account the open busy span — the counters stay
        untouched, so a later ``mark_idle`` still closes the span exactly
        once.
        """
        busy = self.busy_seconds_at(now)
        snap: Dict[str, float] = {
            name: self._counters[name].value for name in COUNTER_NAMES}
        snap.update({
            "tokens_per_second": (self.tokens_generated / busy
                                  if busy > 0 else 0.0),
            "mean_ttft_s": self.mean_ttft,
            "mean_queue_wait_s": (sum(self.queue_waits) / len(self.queue_waits)
                                  if self.queue_waits else 0.0),
            "mean_admission_s": (sum(self.admissions) / len(self.admissions)
                                 if self.admissions else 0.0),
            "mean_queue_depth": self.mean_queue_depth,
            "mean_batch_occupancy": self.mean_batch_occupancy,
            "max_batch_size": self.max_batch_size,
            "busy_seconds": busy,
        })
        if prefix_stats is not None:
            snap.update({f"prefix_{key}": value
                         for key, value in prefix_stats.items()})
        return snap


def _counter_property(name: str) -> property:
    def fget(self: ServerMetrics) -> int:
        return self._counters[name].value

    def fset(self: ServerMetrics, value: int) -> None:
        self._counters[name].set(value)

    return property(fget, fset, doc=f"Registry view of serve.{name}.")


for _name in COUNTER_NAMES:
    setattr(ServerMetrics, _name, _counter_property(_name))
del _name
