"""Serving instrumentation: counters every scheduler step feeds.

The numbers a capacity planner actually wants from an in-process server:
throughput (generated tokens/sec), time-to-first-token, queue depth, batch
occupancy (how full each decode step's batch was), and prefix-cache
efficiency.  :meth:`ServerMetrics.snapshot` renders everything as a plain
dict so benchmarks and the CLI can print or serialise it directly.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class ServerMetrics:
    """Mutable counters owned by one server instance."""

    def __init__(self, max_batch_size: int) -> None:
        self.max_batch_size = max_batch_size
        self.requests_submitted = 0
        self.requests_finished = 0
        self.requests_expired = 0
        self.requests_cancelled = 0
        self.tokens_generated = 0
        self.prefill_tokens = 0
        self.cached_prefix_tokens = 0
        self.decode_steps = 0
        self.ttfts: List[float] = []
        self.queue_waits: List[float] = []
        self._queue_depth_sum = 0
        self._occupancy_sum = 0
        self._busy_started: Optional[float] = None
        self.busy_seconds = 0.0

    # ------------------------------------------------------------------
    def record_step(self, queue_depth: int, running: int) -> None:
        """Account one scheduler step's queue depth and batch occupancy."""
        self.decode_steps += 1
        self._queue_depth_sum += queue_depth
        self._occupancy_sum += running

    def mark_busy(self, now: float) -> None:
        """Clock the span between the first and last moment work existed."""
        if self._busy_started is None:
            self._busy_started = now

    def mark_idle(self, now: float) -> None:
        if self._busy_started is not None:
            self.busy_seconds += now - self._busy_started
            self._busy_started = None

    # ------------------------------------------------------------------
    @property
    def mean_ttft(self) -> float:
        return sum(self.ttfts) / len(self.ttfts) if self.ttfts else 0.0

    @property
    def mean_queue_depth(self) -> float:
        steps = self.decode_steps
        return self._queue_depth_sum / steps if steps else 0.0

    @property
    def mean_batch_occupancy(self) -> float:
        steps = self.decode_steps
        return self._occupancy_sum / steps if steps else 0.0

    @property
    def tokens_per_second(self) -> float:
        if self.busy_seconds <= 0:
            return 0.0
        return self.tokens_generated / self.busy_seconds

    def snapshot(self, prefix_stats: Optional[Dict[str, float]] = None) -> Dict[str, float]:
        """Point-in-time metrics dict (JSON-serialisable)."""
        snap: Dict[str, float] = {
            "requests_submitted": self.requests_submitted,
            "requests_finished": self.requests_finished,
            "requests_expired": self.requests_expired,
            "requests_cancelled": self.requests_cancelled,
            "tokens_generated": self.tokens_generated,
            "prefill_tokens": self.prefill_tokens,
            "cached_prefix_tokens": self.cached_prefix_tokens,
            "decode_steps": self.decode_steps,
            "tokens_per_second": self.tokens_per_second,
            "mean_ttft_s": self.mean_ttft,
            "mean_queue_wait_s": (sum(self.queue_waits) / len(self.queue_waits)
                                  if self.queue_waits else 0.0),
            "mean_queue_depth": self.mean_queue_depth,
            "mean_batch_occupancy": self.mean_batch_occupancy,
            "max_batch_size": self.max_batch_size,
            "busy_seconds": self.busy_seconds,
        }
        if prefix_stats is not None:
            snap.update({f"prefix_{key}": value
                         for key, value in prefix_stats.items()})
        return snap
