"""λ-fleet: serve many merged-model variants from one arena-resident plan.

The paper's artifact is a one-parameter *family* of models (geodesic
interpolation over λ, Fig. 8), but classic serving materializes a full
state dict per variant — K variants cost K weight copies and K cold
starts.  This module collapses that: the λ-independent half of the merge
(the :class:`~repro.core.merge_engine.MergePlan` — norms, angles, stacked
raw endpoint tensors) is published into the shared-memory
:class:`~repro.parallel.TensorArena` **once**, and every variant's weights
are realized lazily, tensor-by-tensor, from zero-copy views of that plan.

Residency math: the plan stores the two float32 endpoints' rows compacted
back to float32 (the downcast is verified lossless per tensor; see
:meth:`MergePlan.publish`), so **K variants stay resident at ~2x one
model's arena bytes** instead of K×.  Evaluation upcasts to float64 and
runs the exact engine math, so every materialized variant is bit-identical
to its oracle:

========== ====================================================== ========
kind        oracle                                                 parity
========== ====================================================== ========
scalar λ    ``GeodesicMergeEngine.merge(lam)``                     bytes
layerwise   ``GeodesicMergeEngine.merge_layerwise(schedule)``      bytes
karcher     ``karcher_merge_state_dicts([chip, instruct], w)``     bytes
========== ====================================================== ========

(each followed by the same float64→float32 ``load_state_dict`` cast; the
differential suite in ``tests/test_lambda_fleet.py`` pins all three).

:class:`LambdaFleetServer` extends :class:`~repro.serve.fleet.FleetServer`
with variant-aware routing: each variant owns a replica group, requests
resolve to a variant (explicit ``Request.variant`` > a ``variant_of``
policy callable > the fleet default), and consistent hashing *within* the
group preserves session/prefix affinity.  Per-variant quality gauges
(:meth:`LambdaFleetServer.record_quality`, fed from ``repro.eval`` judges
or live feedback) drive :meth:`LambdaFleetServer.promote` — the paper's
offline λ sweep becomes an online canary loop where the default variant
follows measured quality.

Variants can serve cheap: with ``ServeConfig(weight_mode="int8")`` each
replica quantizes its freshly materialized variant through the PR-8
:func:`~repro.nn.kernels.quantize_state_dict` path — identical fp32 input
bits on every replica, hence identical quantized weights fleet-wide.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.karcher import karcher_merge_rows
from ..core.layerwise import LambdaSchedule, LambdaTable
from ..core.merge_engine import (KIND_EXCLUDED, KIND_ZERO,
                                 GeodesicMergeEngine, MergePlan)
from ..nn.tensor import get_default_dtype
from ..nn.transformer import TransformerConfig
from .fleet import ArenaBackedModel, FleetServer, HashRing, affinity_key
from .request import Request, RequestStatus

#: Arena key prefix a λ-fleet publishes the shared MergePlan under.
PLAN_PREFIX = "fleet.plan"


# ---------------------------------------------------------------------------
# variant specifications
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VariantSpec:
    """One member of the merged-model family, as picklable data.

    Three kinds:

    * ``scalar`` — the paper's setting, one λ everywhere;
    * ``layerwise`` — a per-layer λ table (a frozen
      :class:`~repro.core.layerwise.LambdaSchedule`);
    * ``karcher`` — the weighted spherical (Karcher) mean of the plan's
      endpoints (:mod:`repro.core.karcher`); for two endpoints with weights
      ``(λ, 1-λ)`` this is geometrically the same geodesic point as SLERP
      at λ, computed through the fixed-point iteration.

    Use the :meth:`scalar` / :meth:`layerwise` / :meth:`karcher` builders;
    they validate eagerly so a bad spec fails at definition, not inside a
    forked replica.
    """

    name: str
    kind: str
    lam: float = 0.6
    table: Optional[LambdaTable] = None
    weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a variant needs a non-empty name")
        if self.kind == "scalar":
            if not 0.0 <= self.lam <= 1.0:
                raise ValueError(f"lambda must be in [0, 1], got {self.lam}")
        elif self.kind == "layerwise":
            if self.table is None:
                raise ValueError("layerwise variants need a LambdaTable")
        elif self.kind == "karcher":
            if self.weights is None or len(self.weights) != 2:
                raise ValueError(
                    "karcher variants over a two-endpoint plan need exactly "
                    f"two weights, got {self.weights!r}")
            if any(w < 0.0 for w in self.weights) or sum(self.weights) <= 0.0:
                raise ValueError(
                    f"karcher weights must be non-negative and sum to a "
                    f"positive value, got {self.weights!r}")
        else:
            raise ValueError(f"unknown variant kind {self.kind!r}")

    # ------------------------------------------------------------------
    @classmethod
    def scalar(cls, name: str, lam: float) -> "VariantSpec":
        return cls(name=name, kind="scalar", lam=float(lam))

    @classmethod
    def layerwise(cls, name: str, schedule) -> "VariantSpec":
        """From a :class:`LambdaSchedule` (frozen here — closures don't
        pickle) or an already-frozen :class:`LambdaTable`."""
        if isinstance(schedule, LambdaSchedule):
            schedule = schedule.freeze()
        return cls(name=name, kind="layerwise", table=schedule)

    @classmethod
    def karcher(cls, name: str, weights: Sequence[float]) -> "VariantSpec":
        return cls(name=name, kind="karcher",
                   weights=tuple(float(w) for w in weights))

    def describe(self) -> str:
        if self.kind == "scalar":
            return f"scalar lam={self.lam:g}"
        if self.kind == "layerwise":
            lams = ",".join(f"{lam:g}" for lam in self.table.lams)
            return f"layerwise [{lams}] default={self.table.default:g}"
        return "karcher w=({})".format(",".join(f"{w:g}" for w in self.weights))


# ---------------------------------------------------------------------------
# lazy delta materialization
# ---------------------------------------------------------------------------


def new_scratch(plan: MergePlan) -> np.ndarray:
    """One pooled float64 row big enough for the plan's largest tensor —
    the only λ-dependent float64 ever allocated during materialization."""
    largest = max((tensor.size for tensor in plan), default=1)
    return np.empty(largest, dtype=np.float64)


def materialize_variant(plan: MergePlan, spec: VariantSpec, dtype=None,
                        scratch: Optional[np.ndarray] = None,
                        ) -> "OrderedDict[str, np.ndarray]":
    """Realize one variant's full state dict from the shared plan.

    Tensors are evaluated one at a time through a pooled float64 scratch
    row, so peak transient memory is one largest-tensor row — not a full
    float64 model.  The result is cast to ``dtype`` (the model default,
    float32) with the same rounding ``load_state_dict`` applies, making the
    returned dict byte-identical to loading the corresponding oracle merge
    into a ``TransformerLM`` (see the module table).

    Karcher variants require both endpoints for every tensor, so plans
    built with exclude patterns are rejected for that kind; errors from the
    spherical iteration (e.g. antipodal log maps) propagate unchanged.
    """
    if dtype is None:
        dtype = get_default_dtype()
    dtype = np.dtype(dtype)
    state: "OrderedDict[str, np.ndarray]" = OrderedDict()
    if spec.kind == "karcher":
        for tensor in plan:
            if tensor.kind == KIND_EXCLUDED:
                raise ValueError(
                    "karcher variants need both endpoints for every tensor; "
                    f"{tensor.key!r} was planned with an exclude pattern")
            if tensor.kind == KIND_ZERO:
                merged = np.zeros(tensor.shape, dtype=np.float64)
            else:
                merged = karcher_merge_rows(
                    tensor.stacked64, spec.weights).reshape(tensor.shape)
            state[tensor.key] = merged.astype(dtype)
        return state
    if scratch is None:
        scratch = new_scratch(plan)
    for tensor in plan:
        lam = (spec.lam if spec.kind == "scalar"
               else spec.table.lam_for(tensor.key))
        buf = scratch[:tensor.size].reshape(tensor.shape)
        state[tensor.key] = tensor.evaluate(lam, out=buf).astype(dtype)
    return state


class LazyMergedModel:
    """Duck-typed model whose weights realize lazily from a shared plan.

    ``state_dict()`` materializes the variant on first call (through
    :func:`materialize_variant`) and memoizes; until then the model costs
    nothing beyond its spec.  Engines snapshot weights at construction, so
    the usual lifecycle is build-engine → :meth:`release` — after which the
    only resident copy is the engine's.
    """

    def __init__(self, config: TransformerConfig, plan: MergePlan,
                 spec: VariantSpec) -> None:
        self.config = config
        self.plan = plan
        self.spec = spec
        self._state: Optional["OrderedDict[str, np.ndarray]"] = None

    @property
    def materialized(self) -> bool:
        return self._state is not None

    def state_dict(self) -> Dict[str, np.ndarray]:
        if self._state is None:
            self._state = materialize_variant(self.plan, self.spec)
        return dict(self._state)

    def release(self) -> None:
        """Drop the memoized weights (the plan can always re-realize them)."""
        self._state = None


class VariantSource:
    """Picklable replica-side recipe: rebuild the plan from the arena view,
    materialize this replica's variant, quantize if serving int8.

    The fork ships metas + spec (a few hundred bytes); the weights never
    cross — each replica reads the one published plan and realizes its own
    private variant copy.  Identical fp32 inputs quantize identically, so
    all replicas of a variant serve the same bytes.
    """

    def __init__(self, config_dict: Dict[str, object], metas: List[Tuple],
                 spec: VariantSpec, weight_mode: str = "fp32",
                 prefix: str = PLAN_PREFIX) -> None:
        self.config_dict = config_dict
        self.metas = metas
        self.spec = spec
        self.weight_mode = weight_mode
        self.prefix = prefix

    def materialize(self, view) -> ArenaBackedModel:
        plan = MergePlan.from_view(view, self.metas, prefix=self.prefix)
        state = materialize_variant(plan, self.spec)
        if self.weight_mode == "int8":
            from ..nn.kernels import quantize_state_dict
            state = quantize_state_dict(state)
        return ArenaBackedModel(TransformerConfig.from_dict(self.config_dict),
                                dict(state))


# ---------------------------------------------------------------------------
# the variant-aware fleet
# ---------------------------------------------------------------------------


class LambdaFleetServer(FleetServer):
    """K merged-model variants behind one router, one plan, one arena.

    Parameters
    ----------
    plan:
        A :class:`~repro.core.merge_engine.MergePlan` (or a
        :class:`GeodesicMergeEngine`, whose plan is taken) for the
        (chip, instruct) pair every variant interpolates.
    config:
        The models' ``TransformerConfig`` (both endpoints share it).
    variants:
        The :class:`VariantSpec` family to serve; unique names required.
    replicas_per_variant:
        Engine replicas per variant (total replicas = K × this).
    default_variant:
        Where unrouted traffic goes; first variant when omitted.
        :meth:`promote` re-points it online.
    variant_of:
        Optional policy ``Request -> Optional[str]`` consulted for requests
        without an explicit ``Request.variant`` (tenant pinning, canary
        percentages, …); ``None`` return falls through to the default.
    draft_model / other kwargs:
        As in :class:`~repro.serve.fleet.FleetServer` (speculative decoding
        works per replica over the shared draft copy).

    Routing resolves a request to a variant, then consistent-hashes within
    that variant's replica group — so per-variant session/prefix affinity
    matches a dedicated single-variant fleet, and the byte-parity suite
    holds per variant.
    """

    def __init__(self, plan, config: TransformerConfig,
                 variants: Sequence[VariantSpec], tokenizer=None,
                 replicas_per_variant: int = 1,
                 default_variant: Optional[str] = None,
                 variant_of: Optional[Callable[[Request], Optional[str]]] = None,
                 **kwargs) -> None:
        if isinstance(plan, GeodesicMergeEngine):
            plan = plan.plan
        specs = list(variants)
        if not specs:
            raise ValueError("a lambda fleet needs at least one variant")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate variant names in {names}")
        if replicas_per_variant < 1:
            raise ValueError(
                f"replicas_per_variant must be >= 1, got {replicas_per_variant}")
        # Everything _source_for / _route need must exist before the base
        # constructor forks the replicas.
        self._plan = plan
        self._model_config = config
        self.variant_specs: "OrderedDict[str, VariantSpec]" = OrderedDict(
            (spec.name, spec) for spec in specs)
        self._names = names
        self.replicas_per_variant = replicas_per_variant
        self.variant_of = variant_of
        if default_variant is None:
            default_variant = names[0]
        if default_variant not in self.variant_specs:
            raise ValueError(f"unknown default variant {default_variant!r}")
        self.default_variant = default_variant
        self._variant_rings = {
            name: HashRing(range(i * replicas_per_variant,
                                 (i + 1) * replicas_per_variant))
            for i, name in enumerate(names)}
        self._variant_of_request: Dict[str, str] = {}
        self._quality_sum: Dict[str, float] = {name: 0.0 for name in names}
        self._quality_count: Dict[str, int] = {name: 0 for name in names}
        super().__init__(model=None, tokenizer=tokenizer,
                         n_replicas=len(specs) * replicas_per_variant,
                         **kwargs)
        registry = self.obs.registry
        self._variant_finished = {
            name: registry.counter(f"serve.fleet.variant.{name}.finished")
            for name in names}
        self._promotions = registry.counter("serve.fleet.promotions")
        registry.gauge("serve.fleet.variants").set(len(names))

    # ------------------------------------------------------------------
    # plan publication and per-replica sources
    # ------------------------------------------------------------------
    def _publish_model(self, model) -> None:
        """Publish the shared plan once (compact rows) and build one
        picklable :class:`VariantSource` per variant.  ``model`` is unused —
        the λ-fleet's weights *are* the plan."""
        metas = self._plan.publish(self._arena, prefix=PLAN_PREFIX)
        config_dict = self._model_config.to_dict()
        self._variant_sources = {
            name: VariantSource(config_dict, metas, spec,
                                weight_mode=self.config.weight_mode)
            for name, spec in self.variant_specs.items()}
        return None

    def variant_of_replica(self, replica_id: int) -> str:
        """The variant a replica slot serves (fixed group layout)."""
        return self._names[replica_id // self.replicas_per_variant]

    def _source_for(self, replica_id: int) -> VariantSource:
        return self._variant_sources[self.variant_of_replica(replica_id)]

    # ------------------------------------------------------------------
    # variant-aware routing
    # ------------------------------------------------------------------
    def resolve_variant(self, request: Request) -> str:
        """Explicit request variant > ``variant_of`` policy > default."""
        name = request.variant
        if name is None and self.variant_of is not None:
            name = self.variant_of(request)
        if name is None:
            name = self.default_variant
        if name not in self.variant_specs:
            raise KeyError(f"unknown variant {name!r}; "
                           f"choose from {self._names}")
        return name

    def _submit_request(self, request: Request) -> None:
        # Resolve at admission (and validate before accepting), so a
        # promotion between submit and dispatch cannot reroute a request
        # mid-flight.
        name = self.resolve_variant(request)
        super()._submit_request(request)
        self._variant_of_request[request.request_id] = name

    def _route(self, request: Request) -> int:
        name = self._variant_of_request.get(request.request_id)
        if name is None:  # e.g. a requeued request after a respawn
            name = self.resolve_variant(request)
            self._variant_of_request[request.request_id] = name
        return self._variant_rings[name].node_for(
            affinity_key(request, self.affinity_prefix_tokens))

    def _finish(self, completion) -> None:
        name = self._variant_of_request.pop(completion.request_id, None)
        if name is not None and completion.status == RequestStatus.FINISHED:
            self._variant_finished[name].inc()
        super()._finish(completion)

    def _expire_pending(self) -> None:
        super()._expire_pending()
        # Requests that left through the pending-queue side doors (expiry,
        # pending-cancel) never reach _finish; sweep their variant records.
        if len(self._variant_of_request) > len(self._requests):
            for request_id in list(self._variant_of_request):
                if request_id not in self._requests:
                    del self._variant_of_request[request_id]

    # ------------------------------------------------------------------
    # online promotion loop
    # ------------------------------------------------------------------
    def record_quality(self, variant: str, score: float) -> None:
        """Fold one judged-quality observation (ROUGE-L, a rating, …) into
        the variant's gauge; :meth:`promote` compares the running means."""
        if variant not in self.variant_specs:
            raise KeyError(f"unknown variant {variant!r}")
        self._quality_sum[variant] += float(score)
        self._quality_count[variant] += 1
        self.obs.registry.gauge(
            f"serve.fleet.variant.{variant}.quality").set(
                self._quality_sum[variant] / self._quality_count[variant])

    def quality_of(self, variant: str) -> Optional[float]:
        """Mean recorded quality, or ``None`` before any observation."""
        count = self._quality_count[variant]
        return self._quality_sum[variant] / count if count else None

    def promote(self, min_samples: int = 1) -> str:
        """Re-point the default variant at the measured winner.

        Considers every variant with at least ``min_samples`` quality
        observations; the highest mean wins, ties keep the incumbent
        default when it is among the leaders and otherwise fall to variant
        declaration order (deterministic across runs).  Returns the new
        default's name.  In-flight requests keep their admitted variant —
        promotion only redirects future unpinned traffic.
        """
        scored = [(name, self.quality_of(name)) for name in self._names
                  if self._quality_count[name] >= min_samples]
        if not scored:
            raise ValueError(
                f"no variant has {min_samples}+ quality samples to promote on")
        best_score = max(score for _, score in scored)
        leaders = [name for name, score in scored if score == best_score]
        winner = (self.default_variant if self.default_variant in leaders
                  else leaders[0])
        if winner != self.default_variant:
            self.default_variant = winner
            self._promotions.inc()
        return winner

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def variant_report(self) -> Dict[str, Dict[str, object]]:
        """Per-variant operational view: spec, replica group, live inflight,
        finished count, and the promotion loop's quality state."""
        report: Dict[str, Dict[str, object]] = {}
        for i, name in enumerate(self._names):
            group = list(range(i * self.replicas_per_variant,
                               (i + 1) * self.replicas_per_variant))
            report[name] = {
                "spec": self.variant_specs[name].describe(),
                "replicas": group,
                "alive": sum(1 for rid in group
                             if self._replicas[rid].process.is_alive()),
                "inflight": sum(len(self._replicas[rid].inflight)
                                for rid in group),
                "finished": int(self._variant_finished[name].value),
                "quality": self.quality_of(name),
                "quality_samples": self._quality_count[name],
                "is_default": name == self.default_variant,
            }
        return report

    def plan_bytes(self) -> int:
        """Resident arena bytes of the shared plan (the memory-gate number:
        all K variants ride this one footprint)."""
        return self._arena.nbytes_for(PLAN_PREFIX)
