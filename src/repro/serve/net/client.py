"""Synchronous socket client for the network front door.

:class:`NetClient` speaks the NDJSON protocol over one TCP connection and
demultiplexes interleaved events (several requests can be in flight at
once).  It is deliberately synchronous — evaluation harnesses, the load
generator, and tests are all synchronous code, and the open-loop load
generator needs *independent* send and receive paths, so:

* sends are guarded by a lock and may come from any thread;
* receives must come from a single thread (either the one calling
  :meth:`complete` / :meth:`recv_event`, or a dedicated reader thread as
  :func:`repro.serve.loadgen.run_socket_workload` runs).

Convenience layers:

* :meth:`complete` — submit one request and block for its terminal event,
  buffering (and exposing) any token events that streamed in between;
* :meth:`stream` — generator yielding token events as they arrive,
  returning on the ``done`` frame;
* :meth:`health` / :meth:`server_metrics` — probe verbs.

Shed responses surface as :class:`ShedError` carrying the server's
``retry_after_s`` hint, so callers implement honest backoff with one
``except``.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from . import protocol
from .protocol import ProtocolError


class NetClientError(RuntimeError):
    """Transport or protocol failure on the client side."""


class ShedError(NetClientError):
    """The server refused the request at admission control."""

    def __init__(self, code: str, retry_after_s: float) -> None:
        super().__init__(f"shed ({code}); retry after {retry_after_s:.3f}s")
        self.code = code
        self.retry_after_s = retry_after_s


@dataclass
class StreamResult:
    """Client-side record of one completed (or refused) request."""

    client_id: str
    status: str
    finish_reason: Optional[str] = None
    token_ids: Tuple[int, ...] = ()
    text: Optional[str] = None
    #: Client-measured seconds from submit to the first streamed token.
    ttft_s: Optional[float] = None
    #: Client-measured seconds from submit to the terminal frame.
    latency_s: Optional[float] = None
    #: Server-reported timings (scheduler clock).
    server_ttft_s: Optional[float] = None
    events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "finished"


class NetClient:
    """One NDJSON connection to a :class:`~repro.serve.net.server.NetServer`."""

    def __init__(self, host: str, port: int, tenant: str = "default",
                 connect_timeout: float = 10.0,
                 io_timeout: Optional[float] = 120.0) -> None:
        self.tenant = tenant
        self._sock = socket.create_connection((host, port),
                                              timeout=connect_timeout)
        self._sock.settimeout(io_timeout)
        self._rfile = self._sock.makefile("rb")
        self._send_lock = threading.Lock()
        self._ids = itertools.count()
        #: Buffered events for ids other than the one currently awaited.
        self._pending: Dict[str, List[Dict[str, Any]]] = {}
        self._submitted_at: Dict[str, float] = {}
        self.closed = False

    # ------------------------------------------------------------------
    # low-level I/O
    # ------------------------------------------------------------------
    def send_frame(self, frame: Dict[str, Any]) -> None:
        data = protocol.encode_frame(frame)
        with self._send_lock:
            try:
                self._sock.sendall(data)
            except OSError as exc:
                raise NetClientError(f"send failed: {exc}") from exc

    def recv_event(self) -> Dict[str, Any]:
        """Read one event frame (single-reader only)."""
        try:
            line = self._rfile.readline()
        except OSError as exc:
            raise NetClientError(f"recv failed: {exc}") from exc
        if not line:
            raise NetClientError("connection closed by server")
        try:
            return protocol.parse_frame(line)
        except ProtocolError as exc:
            raise NetClientError(f"bad frame from server: {exc}") from exc

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def submit(self, prompt_ids: Optional[Sequence[int]] = None,
               prompt: Optional[str] = None,
               params: Optional[Dict[str, Any]] = None,
               stream: bool = False, timeout_s: Optional[float] = None,
               session: Optional[str] = None, priority: int = 0,
               client_id: Optional[str] = None) -> str:
        """Fire one ``submit``/``stream`` op; returns the client id.

        Does not wait for any response — pair with :meth:`wait`,
        :meth:`stream_events`, or a dedicated reader thread.
        """
        if client_id is None:
            client_id = f"c{next(self._ids)}"
        frame: Dict[str, Any] = {"op": "stream" if stream else "submit",
                                 "id": client_id, "tenant": self.tenant}
        if prompt_ids is not None:
            frame["prompt_ids"] = [int(t) for t in prompt_ids]
        elif prompt is not None:
            frame["prompt"] = prompt
        else:
            raise ValueError("one of prompt_ids or prompt is required")
        if params:
            frame["params"] = params
        if timeout_s is not None:
            frame["timeout_s"] = timeout_s
        if session is not None:
            frame["session"] = session
        if priority:
            frame["priority"] = priority
        self._submitted_at[client_id] = time.perf_counter()
        self.send_frame(frame)
        return client_id

    def cancel(self, client_id: str) -> None:
        self.send_frame({"op": "cancel", "id": client_id})

    def health(self) -> Dict[str, Any]:
        self.send_frame({"op": "health"})
        return self._wait_kind("health")["data"]

    def server_metrics(self) -> Dict[str, Any]:
        self.send_frame({"op": "metrics"})
        return self._wait_kind("metrics")["data"]

    # ------------------------------------------------------------------
    # demultiplexed waits
    # ------------------------------------------------------------------
    def events_for(self, client_id: str) -> Iterator[Dict[str, Any]]:
        """Yield events for ``client_id`` until (and including) a terminal
        one, buffering events that belong to other in-flight ids."""
        while True:
            buffered = self._pending.get(client_id)
            if buffered:
                event = buffered.pop(0)
            else:
                event = self.recv_event()
                owner = event.get("id")
                if owner is not None and owner != client_id:
                    self._pending.setdefault(owner, []).append(event)
                    continue
            yield event
            if event.get("event") in ("done", "shed") or (
                    event.get("event") == "error"):
                return

    def wait_accepted(self, client_ids: Sequence[str]) -> List[str]:
        """Block until every id has an admission outcome; returns the ids
        that were *accepted* (refusals stay buffered for :meth:`wait`).

        Submits are fire-and-forget bytes in the socket buffer — a caller
        that needs "the server has admitted these" as a happens-before
        edge (e.g. before starting a drain) must wait for the ``accepted``
        frames, not just return from :meth:`submit`.
        """
        pending = set(client_ids)
        accepted: List[str] = []
        while pending:
            event = self.recv_event()
            owner = event.get("id")
            kind = event.get("event")
            if owner in pending and kind in ("accepted", "shed", "error",
                                             "done"):
                pending.discard(owner)
                if kind == "accepted":
                    accepted.append(owner)
                else:  # refusal is terminal: keep it for wait()
                    self._pending.setdefault(owner, []).append(event)
            elif owner is not None:
                self._pending.setdefault(owner, []).append(event)
        return accepted

    def wait(self, client_id: str) -> StreamResult:
        """Block until ``client_id`` reaches a terminal event."""
        result = StreamResult(client_id=client_id, status="pending")
        submitted = self._submitted_at.get(client_id)
        for event in self.events_for(client_id):
            result.events.append(event)
            kind = event.get("event")
            now = time.perf_counter()
            if kind == "token" and result.ttft_s is None and submitted:
                result.ttft_s = now - submitted
            elif kind == "done":
                result.status = event["status"]
                result.finish_reason = event.get("finish_reason")
                result.token_ids = tuple(event.get("token_ids", ()))
                result.text = event.get("text")
                result.server_ttft_s = event.get("ttft_s")
                if submitted:
                    result.latency_s = now - submitted
                    if result.ttft_s is None and result.token_ids:
                        result.ttft_s = result.latency_s
            elif kind == "shed":
                raise ShedError(event["code"], event.get("retry_after_s", 0.0))
            elif kind == "error":
                raise NetClientError(
                    f"server error {event.get('code')}: {event.get('message')}")
        self._submitted_at.pop(client_id, None)
        return result

    def complete(self, prompt_ids: Optional[Sequence[int]] = None,
                 prompt: Optional[str] = None,
                 params: Optional[Dict[str, Any]] = None,
                 stream: bool = True, timeout_s: Optional[float] = None,
                 session: Optional[str] = None,
                 priority: int = 0) -> StreamResult:
        """Submit one request and block for its result."""
        client_id = self.submit(prompt_ids, prompt, params, stream=stream,
                                timeout_s=timeout_s, session=session,
                                priority=priority)
        return self.wait(client_id)

    def stream(self, prompt_ids: Optional[Sequence[int]] = None,
               prompt: Optional[str] = None,
               params: Optional[Dict[str, Any]] = None,
               timeout_s: Optional[float] = None,
               session: Optional[str] = None) -> Iterator[Dict[str, Any]]:
        """Submit with streaming on and yield every event as it arrives."""
        client_id = self.submit(prompt_ids, prompt, params, stream=True,
                                timeout_s=timeout_s, session=session)
        yield from self.events_for(client_id)

    def _wait_kind(self, kind: str) -> Dict[str, Any]:
        while True:
            event = self.recv_event()
            if event.get("event") == kind:
                return event
            owner = event.get("id")
            if owner is not None:
                self._pending.setdefault(owner, []).append(event)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self._rfile.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
