"""Asyncio TCP front door over the in-process serving subsystem.

:class:`NetServer` is the concurrent edge the ROADMAP's "millions of users"
story needs: real sockets in front of the continuous-batching scheduler.
One asyncio event loop owns everything — connection handlers parse
newline-delimited JSON frames (:mod:`repro.serve.net.protocol`), the
admission layer (:mod:`repro.serve.net.admission`) rate-limits and
fair-queues per tenant, and a single *pump* task drives
:meth:`Scheduler.step` whenever work exists, yielding to the loop between
steps so accepts and reads interleave with decoding.

Streaming is push-based: the scheduler's ``on_token`` hook fires inside the
decode step and the token frame lands in the connection's bounded *outbox*;
a per-connection writer task flushes the outbox to the socket with
``drain()`` backpressure.  A client that stops reading fills its outbox and
is shed (connection closed, its requests cancelled) rather than growing
server memory without bound; a client that disconnects mid-stream has its
requests cancelled the moment the reader loop observes EOF, freeing batch
slots immediately.

Graceful drain (`drain()`): stop accepting connections and new work
(admission sheds with ``draining``), finish every admitted request, flush
every outbox, then close.  The scheduler's conservation ledger
(:meth:`Scheduler.accounting`) is checkable afterwards — drain leaks
nothing.

The blocking model work runs *on* the event loop thread by design: one
scheduler step is the atom of progress, and interleaving I/O between steps
keeps TTFT bounded without cross-thread hand-offs that would break the
deterministic schedule.  :class:`NetServerThread` hosts the loop in a
daemon thread for tests, benchmarks, and embedding in synchronous code.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ...obs import Observability
from ..metrics import LATENCY_BUCKETS
from ..request import Completion, FinishReason, RequestStatus, Request, SamplingParams
from ..scheduler import ServeConfig
from ..server import InProcessServer
from . import protocol
from .admission import AdmissionController, TenantConfig
from .protocol import ProtocolError


@dataclass(frozen=True)
class NetServerConfig:
    """Transport and admission knobs of the network front door."""

    host: str = "127.0.0.1"
    #: Port to bind; 0 picks an ephemeral port (read it off ``address``).
    port: int = 0
    #: Concurrent connection cap; accepts beyond it are closed immediately.
    max_connections: int = 128
    #: Outbound frames buffered per connection before the client is shed
    #: as a slow consumer.
    outbox_limit: int = 1024
    #: Pump sleep while no work exists (seconds).
    idle_poll_s: float = 0.002
    #: Tenant contracts; unknown tenants fall back to ``default_tenant``.
    tenants: Tuple[TenantConfig, ...] = ()
    #: Contract for tenants not listed in ``tenants`` (``None`` refuses them).
    default_tenant: Optional[TenantConfig] = field(default_factory=TenantConfig)
    #: Global admitted-but-unscheduled queue bound (backpressure horizon).
    max_queue_total: int = 256
    #: Seconds a drain waits for in-flight work before forcing shutdown.
    drain_grace_s: float = 60.0


class _Connection:
    """One client socket: reader state plus a bounded outbox + writer task."""

    _ids = itertools.count()

    def __init__(self, writer: asyncio.StreamWriter, outbox_limit: int) -> None:
        self.conn_id = f"conn-{next(self._ids)}"
        self.writer = writer
        self.outbox_limit = outbox_limit
        self.outbox: asyncio.Queue = asyncio.Queue()
        self.closed = False
        self.overflowed = False
        #: client_id -> request_id for in-flight work on this connection.
        self.live: Dict[str, str] = {}
        self.writer_task: Optional[asyncio.Task] = None

    def send(self, frame: Dict[str, object]) -> bool:
        """Queue a frame for delivery; ``False`` marks a slow consumer."""
        if self.closed:
            return False
        if self.outbox.qsize() >= self.outbox_limit:
            self.overflowed = True
            return False
        self.outbox.put_nowait(protocol.encode_frame(frame))
        return True

    async def run_writer(self) -> None:
        try:
            while True:
                data = await self.outbox.get()
                if data is None:  # close sentinel
                    break
                self.writer.write(data)
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError, RuntimeError):
            pass

    async def flush_and_close(self) -> None:
        self.closed = True
        self.outbox.put_nowait(None)
        if self.writer_task is not None:
            try:
                await asyncio.wait_for(self.writer_task, timeout=5.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self.writer_task.cancel()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass


class _Binding:
    """Server-side state of one in-flight request."""

    __slots__ = ("client_id", "conn", "stream", "tenant", "arrived_at",
                 "first_token_at")

    def __init__(self, client_id: str, conn: _Connection, stream: bool,
                 tenant: str, arrived_at: float) -> None:
        self.client_id = client_id
        self.conn = conn
        self.stream = stream
        self.tenant = tenant
        self.arrived_at = arrived_at
        self.first_token_at: Optional[float] = None


class NetServer:
    """TCP serving daemon: protocol + admission + scheduler pump.

    Parameters mirror :class:`~repro.serve.server.InProcessServer` plus the
    transport config.  All state is owned by the event loop thread; use
    :class:`NetServerThread` to host one from synchronous code.
    """

    def __init__(self, model, tokenizer=None,
                 serve_config: ServeConfig = ServeConfig(),
                 net_config: NetServerConfig = NetServerConfig(),
                 clock: Callable[[], float] = time.monotonic,
                 eos_id: Optional[int] = None,
                 obs: Optional[Observability] = None,
                 inner=None) -> None:
        # ``inner`` injects a pre-built backend exposing the
        # InProcessServer surface (scheduler facade, tokenizer, obs,
        # metrics_snapshot) — how `repro serve-fleet` puts a replica
        # FleetServer behind this front door.  ``model`` is ignored then.
        if inner is None:
            inner = InProcessServer(model, tokenizer, serve_config,
                                    clock=clock, eos_id=eos_id, obs=obs)
        self.inner = inner
        self.scheduler = self.inner.scheduler
        self.obs = self.inner.obs
        self.net_config = net_config
        self.clock = clock
        self.admission = AdmissionController(
            tenants=net_config.tenants, clock=clock,
            max_queue_total=net_config.max_queue_total,
            default_config=net_config.default_tenant, obs=self.obs)
        self.scheduler.refill = self.admission.next_batch
        self.scheduler.on_token = self._on_token
        self._ids = itertools.count()
        self._bindings: Dict[str, _Binding] = {}  # request_id -> binding
        self._connections: Dict[str, _Connection] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._work_event: Optional[asyncio.Event] = None
        self._finished: Optional[asyncio.Event] = None
        self._stopping = False
        self.draining = False
        self.address: Optional[Tuple[str, int]] = None
        self.started_at = clock()
        reg = self.obs.registry
        self._conn_gauge = reg.gauge("serve.net.connections")
        self._conn_total = reg.counter("serve.net.connections_total")
        self._frames_in = reg.counter("serve.net.frames_in")
        self._frames_out = reg.counter("serve.net.frames_out")
        self._proto_errors = reg.counter("serve.net.protocol_errors")
        self._slow_sheds = reg.counter("serve.net.slow_consumer_sheds")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind the listening socket and start the pump; returns (host, port)."""
        self._work_event = asyncio.Event()
        self._finished = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.net_config.host,
            self.net_config.port)
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        self._pump_task = asyncio.get_running_loop().create_task(self._pump())
        return self.address

    async def serve_forever(self) -> None:
        await self.start()
        try:
            await self._pump_task
        finally:
            await self._close_everything()

    async def drain(self, grace_s: Optional[float] = None) -> Dict[str, int]:
        """Graceful shutdown: refuse new work, finish admitted work, flush.

        Returns the scheduler's post-drain accounting ledger.
        """
        grace_s = self.net_config.drain_grace_s if grace_s is None else grace_s
        self.draining = True
        self.admission.draining = True
        if self._server is not None:
            self._server.close()
        deadline = self.clock() + grace_s
        with self.obs.span("serve.net.drain"):
            while ((not self.scheduler.idle
                    or self.admission.queued_total > 0)
                   and self.clock() < deadline):
                await asyncio.sleep(self.net_config.idle_poll_s)
            # In-flight work is done (or grace expired); flush every outbox.
            self._stopping = True
            if self._work_event is not None:
                self._work_event.set()
            await self._close_everything()
        return self.scheduler.accounting()

    async def _close_everything(self) -> None:
        if self._pump_task is not None and not self._pump_task.done():
            self._stopping = True
            if self._work_event is not None:
                self._work_event.set()
            try:
                await asyncio.wait_for(self._pump_task, timeout=10.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._pump_task.cancel()
        for conn in list(self._connections.values()):
            await conn.flush_and_close()
        self._connections.clear()
        self._conn_gauge.set(0)
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except RuntimeError:
                pass

    # ------------------------------------------------------------------
    # pump: the single task that advances the scheduler
    # ------------------------------------------------------------------
    async def _pump(self) -> None:
        while True:
            # Drain the completion list, not step()'s return value: a
            # cancel landing between steps (client hangup, cancel verb)
            # appends its terminal completion outside any step, and it
            # still owes the client a done frame.
            for completion in self.scheduler.drain_completions():
                self._emit_done(completion)
            has_work = (not self.scheduler.idle
                        or self.admission.queued_total > 0)
            if self._stopping and not has_work:
                break
            if not has_work:
                self._work_event.clear()
                try:
                    await asyncio.wait_for(
                        self._work_event.wait(),
                        timeout=self.net_config.idle_poll_s)
                except asyncio.TimeoutError:
                    pass
                continue
            with self.obs.span("serve.net.pump_step"):
                self.scheduler.step()
            # Yield so accepts/reads/writes interleave with decode steps.
            await asyncio.sleep(0)

    def _kick(self) -> None:
        if self._work_event is not None:
            self._work_event.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # Shutdown cancels straggler handlers; end the task *normally*
            # so asyncio.streams' connection_made done-callback (which
            # calls task.exception() unguarded on 3.11) stays quiet.
            pass

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        if (self.draining
                or len(self._connections) >= self.net_config.max_connections):
            writer.write(protocol.encode_frame(protocol.shed_frame(
                "", protocol.SHED_DRAINING if self.draining
                else protocol.SHED_QUEUE_FULL, 1.0)))
            try:
                await writer.drain()
            except ConnectionError:
                pass
            writer.close()
            return
        conn = _Connection(writer, self.net_config.outbox_limit)
        conn.writer_task = asyncio.get_running_loop().create_task(
            conn.run_writer())
        self._connections[conn.conn_id] = conn
        self._conn_total.inc()
        self._conn_gauge.set(len(self._connections))
        with self.obs.span("serve.net.accept", conn=conn.conn_id):
            pass
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                if conn.closed:
                    break
                self._frames_in.inc()
                self._dispatch(conn, line)
        finally:
            self._teardown_connection(conn)
            await conn.flush_and_close()

    def _teardown_connection(self, conn: _Connection) -> None:
        """Cancel everything a vanished/shed client still has in flight."""
        for client_id, request_id in list(conn.live.items()):
            self._cancel_request(request_id)
        conn.live.clear()
        self._connections.pop(conn.conn_id, None)
        self._conn_gauge.set(len(self._connections))
        self._kick()

    def _cancel_request(self, request_id: str) -> bool:
        if self.admission.cancel_queued(request_id):
            binding = self._bindings.pop(request_id, None)
            if binding is not None:
                binding.conn.live.pop(binding.client_id, None)
                self._send(binding.conn, protocol.done_frame(
                    binding.client_id,
                    Completion(request_id=request_id,
                               status=RequestStatus.CANCELLED,
                               finish_reason=FinishReason.CANCELLED)))
            return True
        return self.scheduler.cancel(request_id)

    # ------------------------------------------------------------------
    # frame dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, conn: _Connection, line: bytes) -> None:
        try:
            frame = protocol.parse_frame(line)
            op = protocol.validate_op(frame)
        except ProtocolError as exc:
            self._proto_errors.inc()
            self._send(conn, protocol.error_frame(exc.code, str(exc),
                                                  exc.client_id))
            return
        with self.obs.span("serve.net.frame", op=op):
            if op in ("submit", "stream"):
                self._op_submit(conn, frame, stream=(op == "stream"))
            elif op == "cancel":
                self._op_cancel(conn, frame)
            elif op == "health":
                self._send(conn, protocol.health_frame(self.health()))
            elif op == "metrics":
                self._send(conn, protocol.metrics_frame(self.metrics()))

    def _op_submit(self, conn: _Connection, frame: Dict[str, object],
                   stream: bool) -> None:
        try:
            protocol.validate_submit(frame)
        except ProtocolError as exc:
            self._proto_errors.inc()
            self._send(conn, protocol.error_frame(exc.code, str(exc),
                                                  exc.client_id))
            return
        client_id = frame["id"]
        if client_id in conn.live:
            self._proto_errors.inc()
            self._send(conn, protocol.error_frame(
                protocol.E_DUPLICATE,
                f"id {client_id!r} is already in flight", client_id))
            return
        prompt_ids = frame.get("prompt_ids")
        if prompt_ids is None:
            if self.inner.tokenizer is None:
                self._proto_errors.inc()
                self._send(conn, protocol.error_frame(
                    protocol.E_PROTOCOL,
                    "server has no tokenizer; send 'prompt_ids'", client_id))
                return
            prompt_ids = self.inner.tokenizer.encode(frame["prompt"],
                                                     add_bos=True)
        try:
            params = SamplingParams(**frame.get("params", {}))
        except (TypeError, ValueError) as exc:
            self._proto_errors.inc()
            self._send(conn, protocol.error_frame(protocol.E_BAD_PARAMS,
                                                  str(exc), client_id))
            return
        tenant = frame.get("tenant", "default")
        request_id = f"net-{next(self._ids)}"
        try:
            request = Request(request_id=request_id,
                              prompt_ids=tuple(prompt_ids), params=params,
                              priority=frame.get("priority", 0),
                              session_id=frame.get("session"))
        except ValueError as exc:
            self._proto_errors.inc()
            self._send(conn, protocol.error_frame(protocol.E_BAD_PARAMS,
                                                  str(exc), client_id))
            return
        with self.obs.span("serve.net.admit", tenant=tenant):
            decision = self.admission.admit(tenant, request,
                                            timeout_s=frame.get("timeout_s"))
        if not decision.admitted:
            self._send(conn, protocol.shed_frame(client_id,
                                                 decision.shed_code,
                                                 decision.retry_after_s))
            return
        binding = _Binding(client_id, conn, stream, tenant, self.clock())
        self._bindings[request_id] = binding
        conn.live[client_id] = request_id
        self._send(conn, protocol.accepted_frame(client_id, request_id))
        self._kick()

    def _op_cancel(self, conn: _Connection, frame: Dict[str, object]) -> None:
        try:
            client_id = protocol.validate_cancel(frame)
        except ProtocolError as exc:
            self._proto_errors.inc()
            self._send(conn, protocol.error_frame(exc.code, str(exc)))
            return
        request_id = conn.live.get(client_id)
        if request_id is None:
            self._send(conn, protocol.cancelled_frame(client_id, False))
            return
        found = self._cancel_request(request_id)
        self._send(conn, protocol.cancelled_frame(client_id, found))
        self._kick()

    # ------------------------------------------------------------------
    # scheduler callbacks
    # ------------------------------------------------------------------
    def _on_token(self, request: Request, token: int, index: int) -> None:
        binding = self._bindings.get(request.request_id)
        if binding is None:
            return
        if index == 0:
            binding.first_token_at = self.clock()
            self.obs.registry.histogram(
                f"serve.net.ttft_s.{binding.tenant}",
                LATENCY_BUCKETS).observe(
                    binding.first_token_at - binding.arrived_at)
        if not binding.stream or binding.conn.closed:
            return
        ok = self._send(binding.conn,
                        protocol.token_frame(binding.client_id, index, token))
        if not ok:
            self._shed_slow_consumer(binding.conn)

    def _shed_slow_consumer(self, conn: _Connection) -> None:
        """A full outbox means the client cannot keep up: close and cancel.

        Runs re-entrantly from ``on_token`` inside a decode step — the
        scheduler's terminal-outcome guard makes that safe.
        """
        if conn.closed:
            return
        self._slow_sheds.inc()
        # Bypass the (full) outbox bound for the farewell frame; the client
        # may or may not read it before the close lands.
        conn.outbox.put_nowait(protocol.encode_frame(protocol.error_frame(
            protocol.E_SLOW_CONSUMER, "outbox limit exceeded")))
        conn.closed = True
        self._teardown_connection(conn)
        conn.outbox.put_nowait(None)

    def _emit_done(self, completion: Completion) -> None:
        binding = self._bindings.pop(completion.request_id, None)
        self.admission.record_outcome(completion.request_id,
                                      completion.status,
                                      tokens=len(completion.token_ids))
        if binding is None:
            return
        binding.conn.live.pop(binding.client_id, None)
        now = self.clock()
        self.obs.registry.histogram(
            f"serve.net.latency_s.{binding.tenant}",
            LATENCY_BUCKETS).observe(now - binding.arrived_at)
        text = None
        if self.inner.tokenizer is not None and completion.token_ids:
            text = self.inner.tokenizer.decode(list(completion.token_ids))
        if not binding.conn.closed:
            ok = self._send(binding.conn, protocol.done_frame(
                binding.client_id, completion, text))
            if not ok:
                self._shed_slow_consumer(binding.conn)

    def _send(self, conn: _Connection, frame: Dict[str, object]) -> bool:
        ok = conn.send(frame)
        if ok:
            self._frames_out.inc()
        return ok

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        return {
            "status": "draining" if self.draining else "ok",
            "uptime_s": self.clock() - self.started_at,
            "connections": len(self._connections),
            "admission_queued": self.admission.queued_total,
            "scheduler_queued": self.scheduler.queue_depth,
            "running": self.scheduler.running_count,
            "tenants": self.admission.tenant_names(),
        }

    def metrics(self) -> Dict[str, object]:
        out = {
            "server": self.inner.metrics_snapshot(),
            "admission": self.admission.snapshot(),
            "accounting": self.scheduler.accounting(),
        }
        fleet_snapshot = getattr(self.inner, "fleet_snapshot", None)
        if fleet_snapshot is not None:
            # Merged per-replica registries; refresh=False keeps the probe
            # non-blocking (uses the last collected exports).
            out["fleet"] = fleet_snapshot(refresh=False)
        return out


class NetServerThread:
    """Host a :class:`NetServer` on a dedicated event-loop thread.

    The synchronous facade tests, benchmarks, and the load generator use::

        handle = NetServerThread(model, net_config=cfg)
        host, port = handle.start()
        ... drive it over sockets ...
        ledger = handle.drain()      # graceful: finish admitted work
        handle.stop()                # tear the loop down

    ``drain``/``stop`` are thread-safe and idempotent.
    """

    def __init__(self, model, tokenizer=None,
                 serve_config: ServeConfig = ServeConfig(),
                 net_config: NetServerConfig = NetServerConfig(),
                 clock: Callable[[], float] = time.monotonic,
                 eos_id: Optional[int] = None,
                 obs: Optional[Observability] = None,
                 inner=None) -> None:
        self.server = NetServer(model, tokenizer, serve_config, net_config,
                                clock=clock, eos_id=eos_id, obs=obs,
                                inner=inner)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._stopped = False

    def start(self, timeout: float = 10.0) -> Tuple[str, int]:
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-net")
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("net server failed to start in time")
        return self.server.address

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)

        async def main():
            await self.server.start()
            self._started.set()
            # The loop stays alive (serving drains, probes, late reads)
            # until stop() sets the finished event.
            await self.server._finished.wait()

        try:
            self._loop.run_until_complete(main())
        finally:
            try:
                self._loop.run_until_complete(
                    self.server._close_everything())
            except RuntimeError:
                pass
            # Retire every straggler (connection handlers blocked in
            # readline, writer tasks) before closing the loop — a pending
            # task garbage-collected after loop close raises from inside
            # its coroutine at arbitrary interpreter points.
            pending = [t for t in asyncio.all_tasks(self._loop)
                       if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            self._loop.close()

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.address

    def drain(self, grace_s: Optional[float] = None,
              timeout: float = 120.0) -> Dict[str, int]:
        """Graceful shutdown from the caller's thread; returns the ledger."""
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(grace_s), self._loop)
        return future.result(timeout)

    def stop(self, timeout: float = 10.0) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self._loop is not None and self._loop.is_running():
            def _halt():
                self.server._stopping = True
                self.server._kick()
                self.server._finished.set()
            self._loop.call_soon_threadsafe(_halt)
        if self._thread is not None:
            self._thread.join(timeout)
