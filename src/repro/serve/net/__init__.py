"""Network front door: sockets, streaming, and multi-tenant admission.

The concurrent edge over :mod:`repro.serve` — an asyncio TCP server
(:class:`NetServer`) speaking a newline-delimited JSON protocol
(:mod:`~repro.serve.net.protocol`), with per-tenant token-bucket rate
limits, weighted fair-share queueing, queue-depth backpressure and
deadline propagation (:mod:`~repro.serve.net.admission`), token-by-token
streamed responses, and graceful drain.  :class:`NetClient` is the
synchronous client library the load generator and evaluation harnesses
drive it with.

Quickstart::

    from repro.serve.net import NetClient, NetServerThread, NetServerConfig

    handle = NetServerThread(model, net_config=NetServerConfig())
    host, port = handle.start()
    with NetClient(host, port, tenant="eng") as client:
        result = client.complete(prompt_ids=[1, 7, 8],
                                 params={"max_new_tokens": 16})
        print(result.token_ids)
    handle.drain()   # finish in-flight work, refuse new work
    handle.stop()

See DESIGN.md §9 for the wire grammar and the admission-control model.
"""

from . import protocol
from .admission import (AdmissionController, AdmissionDecision, TenantConfig,
                        TokenBucket)
from .client import NetClient, NetClientError, ShedError, StreamResult
from .protocol import ProtocolError
from .server import NetServer, NetServerConfig, NetServerThread

__all__ = [
    "protocol", "ProtocolError",
    "AdmissionController", "AdmissionDecision", "TenantConfig", "TokenBucket",
    "NetClient", "NetClientError", "ShedError", "StreamResult",
    "NetServer", "NetServerConfig", "NetServerThread",
]
