"""Wire protocol of the network front door: newline-delimited JSON frames.

One frame per line, UTF-8 encoded, ``\n``-terminated.  Client→server frames
carry an ``op`` verb; server→client frames carry an ``event`` kind.  The
grammar is deliberately flat (no framing lengths, no binary sections) so a
frame can be produced and inspected with nothing but ``json`` and a socket —
``nc localhost 8763`` is a usable debug client.

Client → server verbs
---------------------
``submit``
    Enqueue one generation job.  Fields: ``id`` (client-chosen correlation
    id, must be unique per connection), ``prompt_ids`` (list of ints) or
    ``prompt`` (text, requires a server-side tokenizer), optional ``tenant``,
    ``params`` (a :class:`~repro.serve.request.SamplingParams` dict),
    ``timeout_s`` (relative deadline), ``session`` and ``priority``.
``stream``
    Same as ``submit`` but token events are pushed as they are sampled.
``cancel``
    Cancel a previously submitted job by client ``id``.
``health``
    Liveness/readiness probe; answered with queue and drain state.
``metrics``
    Full server metrics snapshot (scheduler + admission + transport).

Server → client events
----------------------
``accepted``
    The job passed admission control and is queued for scheduling.
``token``
    One streamed token: ``id``, ``index`` (0-based), ``token`` (id).
``done``
    Terminal record: ``status`` (finished/expired/cancelled), finish
    reason, full ``token_ids``, optional decoded ``text`` and timings.
``shed``
    The job was refused by admission control; carries an error ``code``
    (:data:`SHED_CODES`) and a ``retry_after_s`` hint.
``error``
    Protocol-level failure (unparseable frame, unknown verb, duplicate id);
    the connection stays open except where noted.
``cancelled``
    Acknowledges a ``cancel`` verb (``found`` says whether the job was
    still live; its ``done`` frame follows if it was).
``health`` / ``metrics``
    Responses to the respective probes.

Frames are validated by :func:`parse_frame`; protocol violations raise
:class:`ProtocolError` with one of the :data:`ERROR_CODES`, which the server
reflects back as an ``error`` event rather than dropping the connection.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Optional

#: Client → server verbs.
OPS = ("submit", "stream", "cancel", "health", "metrics")

#: Server → client event kinds.
EVENTS = ("accepted", "token", "done", "shed", "error", "cancelled",
          "health", "metrics")

# Error codes carried by ``error`` frames (protocol-level failures).
E_PARSE = "parse"              # line is not valid JSON / not an object
E_PROTOCOL = "protocol"        # missing or ill-typed required field
E_UNKNOWN_OP = "unknown_op"    # verb not in OPS
E_DUPLICATE = "duplicate_id"   # client id already in flight on this conn
E_NOT_FOUND = "not_found"      # cancel for an unknown client id
E_BAD_PARAMS = "bad_params"    # SamplingParams validation failed
E_SLOW_CONSUMER = "slow_consumer"  # outbox bound exceeded; connection closed

ERROR_CODES = (E_PARSE, E_PROTOCOL, E_UNKNOWN_OP, E_DUPLICATE, E_NOT_FOUND,
               E_BAD_PARAMS, E_SLOW_CONSUMER)

# Shed codes carried by ``shed`` frames (admission-control refusals).
SHED_RATE_LIMITED = "rate_limited"  # tenant token bucket empty
SHED_QUEUE_FULL = "queue_full"      # tenant or global queue depth bound hit
SHED_DRAINING = "draining"          # server is draining; not accepting work

SHED_CODES = (SHED_RATE_LIMITED, SHED_QUEUE_FULL, SHED_DRAINING)

#: Hard cap on one frame's wire size; a line longer than this is a protocol
#: error (it would otherwise let one client balloon server memory).
MAX_FRAME_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A frame that violates the wire grammar."""

    def __init__(self, code: str, message: str,
                 client_id: Optional[str] = None) -> None:
        super().__init__(message)
        self.code = code
        self.client_id = client_id


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """Serialise one frame to its wire form (compact JSON + newline)."""
    return (json.dumps(frame, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


def parse_frame(line: bytes) -> Dict[str, Any]:
    """Parse and structurally validate one wire line.

    Raises :class:`ProtocolError` (never ``json.JSONDecodeError``) so the
    server has a single failure type to reflect back to the client.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(E_PARSE, f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(E_PARSE, f"unparseable frame: {exc}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(E_PARSE, "frame must be a JSON object")
    return frame


def validate_op(frame: Dict[str, Any]) -> str:
    """Check the verb of a client frame; returns the op name."""
    op = frame.get("op")
    if not isinstance(op, str):
        raise ProtocolError(E_PROTOCOL, "frame is missing a string 'op'",
                            client_id=_optional_id(frame))
    if op not in OPS:
        raise ProtocolError(E_UNKNOWN_OP, f"unknown op {op!r}",
                            client_id=_optional_id(frame))
    return op


def validate_submit(frame: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a ``submit``/``stream`` frame's required fields.

    Returns the frame unchanged on success (the server reads fields off it
    directly); raises :class:`ProtocolError` naming the offending field.
    """
    client_id = frame.get("id")
    if not isinstance(client_id, str) or not client_id:
        raise ProtocolError(E_PROTOCOL, "'id' must be a non-empty string")
    prompt_ids = frame.get("prompt_ids")
    prompt = frame.get("prompt")
    if prompt_ids is None and prompt is None:
        raise ProtocolError(E_PROTOCOL,
                            "one of 'prompt_ids' or 'prompt' is required",
                            client_id=client_id)
    if prompt_ids is not None:
        if (not isinstance(prompt_ids, list) or not prompt_ids
                or not all(isinstance(t, int) and not isinstance(t, bool)
                           for t in prompt_ids)):
            raise ProtocolError(
                E_PROTOCOL, "'prompt_ids' must be a non-empty list of ints",
                client_id=client_id)
    elif not isinstance(prompt, str) or not prompt:
        raise ProtocolError(E_PROTOCOL, "'prompt' must be a non-empty string",
                            client_id=client_id)
    tenant = frame.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError(E_PROTOCOL, "'tenant' must be a non-empty string",
                            client_id=client_id)
    params = frame.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(E_PROTOCOL, "'params' must be an object",
                            client_id=client_id)
    timeout = frame.get("timeout_s")
    if timeout is not None and (not isinstance(timeout, (int, float))
                                or isinstance(timeout, bool) or timeout <= 0):
        raise ProtocolError(E_PROTOCOL, "'timeout_s' must be a positive number",
                            client_id=client_id)
    priority = frame.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ProtocolError(E_PROTOCOL, "'priority' must be an integer",
                            client_id=client_id)
    session = frame.get("session")
    if session is not None and not isinstance(session, str):
        raise ProtocolError(E_PROTOCOL, "'session' must be a string",
                            client_id=client_id)
    return frame


def validate_cancel(frame: Dict[str, Any]) -> str:
    """Validate a ``cancel`` frame; returns the client id to cancel."""
    client_id = frame.get("id")
    if not isinstance(client_id, str) or not client_id:
        raise ProtocolError(E_PROTOCOL, "'id' must be a non-empty string")
    return client_id


def _optional_id(frame: Dict[str, Any]) -> Optional[str]:
    client_id = frame.get("id")
    return client_id if isinstance(client_id, str) else None


# ---------------------------------------------------------------------------
# server-side frame constructors (one place defines every event's shape)
# ---------------------------------------------------------------------------

def accepted_frame(client_id: str, request_id: str,
                   deadline_s: Optional[float] = None) -> Dict[str, Any]:
    frame: Dict[str, Any] = {"event": "accepted", "id": client_id,
                             "request_id": request_id}
    if deadline_s is not None:
        frame["timeout_s"] = deadline_s
    return frame


def token_frame(client_id: str, index: int, token: int) -> Dict[str, Any]:
    return {"event": "token", "id": client_id, "index": index, "token": token}


def done_frame(client_id: str, completion, text: Optional[str] = None) -> Dict[str, Any]:
    return {
        "event": "done",
        "id": client_id,
        "status": completion.status,
        "finish_reason": completion.finish_reason,
        "token_ids": list(completion.token_ids),
        "text": text,
        "ttft_s": completion.ttft,
        "queue_wait_s": completion.queue_wait,
        "prefill_tokens": completion.prefill_tokens,
        "cached_prefix_tokens": completion.cached_prefix_tokens,
    }


def shed_frame(client_id: str, code: str, retry_after_s: float) -> Dict[str, Any]:
    if code not in SHED_CODES:
        raise ValueError(f"unknown shed code {code!r}")
    return {"event": "shed", "id": client_id, "code": code,
            "retry_after_s": round(float(retry_after_s), 6)}


def error_frame(code: str, message: str,
                client_id: Optional[str] = None) -> Dict[str, Any]:
    frame: Dict[str, Any] = {"event": "error", "code": code,
                             "message": message}
    if client_id is not None:
        frame["id"] = client_id
    return frame


def cancelled_frame(client_id: str, found: bool) -> Dict[str, Any]:
    return {"event": "cancelled", "id": client_id, "found": found}


def health_frame(data: Dict[str, Any]) -> Dict[str, Any]:
    return {"event": "health", "data": data}


def metrics_frame(data: Dict[str, Any]) -> Dict[str, Any]:
    return {"event": "metrics", "data": data}
