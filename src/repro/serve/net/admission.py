"""Multi-tenant admission control: rate limits, fair-share queueing, shedding.

The scheduler (`repro.serve.scheduler`) is deliberately tenant-blind — it
orders by priority and submission time.  This layer sits between the network
transport and the scheduler and decides, per tenant:

* **rate limiting** — a token bucket per tenant (``rate`` requests/sec,
  ``burst`` capacity) sheds traffic above the contracted rate with a
  ``retry_after_s`` hint computed from the bucket deficit;
* **backpressure** — per-tenant and global queue-depth bounds shed load
  explicitly (:data:`~repro.serve.net.protocol.SHED_QUEUE_FULL`) instead of
  letting the queue grow without bound and collapse every tenant's latency;
* **fair-share queueing** — admitted requests wait in per-tenant FIFOs and
  are released to the scheduler by weighted start-time fair queueing
  (virtual-time based, the classic WFQ approximation): each dequeue charges
  the tenant ``cost / weight`` virtual time, where cost is the request's
  decode budget, so a tenant with weight 9 gets ~9x the token throughput of
  a weight-1 tenant under saturation — and an idle tenant's first request
  never waits behind a backlog it didn't create;
* **deadline propagation** — a client ``timeout_s`` (clamped to the
  tenant's ``max_timeout_s``, defaulted from ``default_timeout_s``) becomes
  an absolute :attr:`~repro.serve.request.Request.deadline` on the server
  clock, so the scheduler's existing expiry machinery evicts work that can
  no longer meet its SLO whether it is queued here, queued there, or
  mid-decode.

Everything takes an injectable clock, so policy tests run on manual time.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, replace
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ...obs import Observability
from ..request import Request
from .protocol import SHED_DRAINING, SHED_QUEUE_FULL, SHED_RATE_LIMITED

#: Retry hint floor — clients should never busy-spin on a 0s hint.
MIN_RETRY_AFTER_S = 0.05


@dataclass(frozen=True)
class TenantConfig:
    """Admission contract of one tenant.

    Defaults are permissive (no rate limit, generous queue) so a server
    configured with nothing but ``TenantConfig()`` behaves like a
    single-tenant front door.
    """

    name: str = "default"
    #: Sustained request rate (requests/sec); ``inf`` disables the bucket.
    rate: float = math.inf
    #: Token-bucket capacity (burst size above the sustained rate).
    burst: int = 16
    #: Weighted-fair-share weight (relative share under saturation).
    weight: float = 1.0
    #: Per-tenant admitted-but-unscheduled queue bound.
    max_queue: int = 64
    #: Cap applied to client-supplied ``timeout_s`` (``None`` = no cap).
    max_timeout_s: Optional[float] = None
    #: Deadline for requests that supply no ``timeout_s`` (``None`` = none).
    default_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive (use inf to disable)")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")


class TokenBucket:
    """Classic token bucket on an injectable clock.

    The bucket starts full (a tenant may burst immediately); refill is
    continuous at ``rate`` tokens/sec up to ``burst``.
    """

    def __init__(self, rate: float, burst: int,
                 clock: Callable[[], float]) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()

    def _refill(self, now: float) -> None:
        if math.isinf(self.rate):
            self._tokens = self.burst
        else:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._refilled_at) * self.rate)
        self._refilled_at = now

    def try_take(self, cost: float = 1.0) -> Tuple[bool, float]:
        """Spend ``cost`` tokens if available.

        Returns ``(True, 0.0)`` on success, else ``(False, retry_after_s)``
        where the hint is the exact time until the deficit refills.
        """
        self._refill(self._clock())
        if self._tokens >= cost:
            self._tokens -= cost
            return True, 0.0
        if math.isinf(self.rate):  # unreachable deficit with an inf rate
            return True, 0.0
        retry = (cost - self._tokens) / self.rate
        return False, max(MIN_RETRY_AFTER_S, retry)

    @property
    def tokens(self) -> float:
        self._refill(self._clock())
        return self._tokens


@dataclass
class AdmissionDecision:
    """Outcome of one :meth:`AdmissionController.admit` call."""

    admitted: bool
    shed_code: Optional[str] = None
    retry_after_s: float = 0.0
    deadline: Optional[float] = None


class _TenantState:
    """Live queue + accounting of one tenant."""

    __slots__ = ("config", "bucket", "queue", "vtime", "accepted", "shed",
                 "finished", "expired", "cancelled", "tokens_out")

    def __init__(self, config: TenantConfig,
                 clock: Callable[[], float]) -> None:
        self.config = config
        self.bucket = TokenBucket(config.rate, config.burst, clock)
        self.queue: Deque[Request] = deque()
        #: Virtual finish time of the tenant's last released request.
        self.vtime = 0.0
        self.accepted = 0
        self.shed = 0
        self.finished = 0
        self.expired = 0
        self.cancelled = 0
        self.tokens_out = 0


class AdmissionController:
    """Per-tenant admission + weighted fair release into the scheduler.

    Parameters
    ----------
    tenants:
        Static tenant contracts.  Tenants not listed fall back to
        ``default_config`` (pass ``None`` to refuse unknown tenants —
        they shed with :data:`SHED_QUEUE_FULL`).
    clock:
        Monotonic time source shared with the scheduler.
    max_queue_total:
        Global admitted-but-unscheduled bound across all tenants.
    obs:
        Observability handle; per-tenant counters land under
        ``serve.net.tenant.<name>.*`` and global ones under ``serve.net.*``.
    """

    def __init__(self, tenants: Tuple[TenantConfig, ...] = (),
                 clock: Callable[[], float] = None,
                 max_queue_total: int = 256,
                 default_config: Optional[TenantConfig] = TenantConfig(),
                 obs: Optional[Observability] = None) -> None:
        if clock is None:
            import time
            clock = time.monotonic
        if max_queue_total < 1:
            raise ValueError("max_queue_total must be >= 1")
        self.clock = clock
        self.max_queue_total = max_queue_total
        self.default_config = default_config
        self.obs = obs if obs is not None else Observability(clock=clock)
        self.draining = False
        self._tenants: Dict[str, _TenantState] = {}
        if isinstance(tenants, dict):  # mapping name -> config is also fine
            tenants = tuple(tenants.values())
        for config in tenants:
            if config.name in self._tenants:
                raise ValueError(f"duplicate tenant {config.name!r}")
            self._tenants[config.name] = _TenantState(config, clock)
        #: System virtual time: the max virtual start time ever released.
        self._vclock = 0.0
        self._queued_total = 0
        self._by_request: Dict[str, str] = {}  # request_id -> tenant name
        reg = self.obs.registry
        self._accepted_total = reg.counter("serve.net.accepted")
        self._shed_total = reg.counter("serve.net.shed")
        self._released_total = reg.counter("serve.net.released")
        self._queue_gauge = reg.gauge("serve.net.admission_queue_depth")

    # ------------------------------------------------------------------
    @property
    def queued_total(self) -> int:
        return self._queued_total

    def tenant(self, name: str) -> Optional[_TenantState]:
        """The tenant's live state, creating it from the default contract."""
        state = self._tenants.get(name)
        if state is None and self.default_config is not None:
            config = replace(self.default_config, name=name)
            state = self._tenants[name] = _TenantState(config, self.clock)
        return state

    def tenant_names(self) -> List[str]:
        return sorted(self._tenants)

    # ------------------------------------------------------------------
    def admit(self, tenant_name: str, request: Request,
              timeout_s: Optional[float] = None) -> AdmissionDecision:
        """Admit or shed one request; admitted requests enter the tenant FIFO.

        The returned decision carries the propagated absolute deadline; the
        queued :class:`Request` is rebuilt with it when one was derived.
        """
        if self.draining:
            return self._shed(tenant_name, SHED_DRAINING, MIN_RETRY_AFTER_S)
        state = self.tenant(tenant_name)
        if state is None:
            return self._shed(tenant_name, SHED_QUEUE_FULL, MIN_RETRY_AFTER_S)
        if self._queued_total >= self.max_queue_total:
            return self._shed(tenant_name, SHED_QUEUE_FULL,
                              self._drain_eta(self._queued_total))
        if len(state.queue) >= state.config.max_queue:
            return self._shed(tenant_name, SHED_QUEUE_FULL,
                              self._drain_eta(len(state.queue)))
        ok, retry = state.bucket.try_take()
        if not ok:
            return self._shed(tenant_name, SHED_RATE_LIMITED, retry)
        deadline = self._propagate_deadline(state.config, request, timeout_s)
        if deadline is not None and deadline != request.deadline:
            request = Request(request_id=request.request_id,
                              prompt_ids=request.prompt_ids,
                              params=request.params,
                              priority=request.priority,
                              deadline=deadline,
                              session_id=request.session_id)
        state.queue.append(request)
        state.accepted += 1
        self._queued_total += 1
        self._by_request[request.request_id] = tenant_name
        self._accepted_total.inc()
        self.obs.registry.counter(
            f"serve.net.tenant.{tenant_name}.accepted").inc()
        self._queue_gauge.set(self._queued_total)
        return AdmissionDecision(admitted=True, deadline=deadline)

    def _propagate_deadline(self, config: TenantConfig, request: Request,
                            timeout_s: Optional[float]) -> Optional[float]:
        if timeout_s is None:
            timeout_s = config.default_timeout_s
        if config.max_timeout_s is not None:
            timeout_s = (config.max_timeout_s if timeout_s is None
                         else min(timeout_s, config.max_timeout_s))
        if timeout_s is None:
            return request.deadline
        absolute = self.clock() + timeout_s
        return (absolute if request.deadline is None
                else min(absolute, request.deadline))

    def _shed(self, tenant_name: str, code: str,
              retry_after: float) -> AdmissionDecision:
        state = self._tenants.get(tenant_name)
        if state is not None:
            state.shed += 1
        self._shed_total.inc()
        self.obs.registry.counter(f"serve.net.tenant.{tenant_name}.shed").inc()
        self.obs.registry.counter(f"serve.net.shed_{code}").inc()
        return AdmissionDecision(admitted=False, shed_code=code,
                                 retry_after_s=max(MIN_RETRY_AFTER_S,
                                                   retry_after))

    def _drain_eta(self, depth: int) -> float:
        """Heuristic retry hint for a full queue: scale with the backlog."""
        return max(MIN_RETRY_AFTER_S, 0.02 * depth)

    # ------------------------------------------------------------------
    def next_batch(self, n_free: int) -> List[Request]:
        """Release up to ``n_free`` requests by weighted fair queueing.

        This is the scheduler's refill hook
        (:attr:`~repro.serve.scheduler.Scheduler.refill`): each scheduler
        step asks for exactly as many requests as it has free slots, so
        ordering authority stays here and the scheduler's internal queue
        never reorders across tenants.
        """
        released: List[Request] = []
        while n_free > 0:
            state = self._pick_tenant()
            if state is None:
                break
            request = state.queue.popleft()
            self._queued_total -= 1
            # Charge virtual time: decode budget over weight.  max(vtime,
            # vclock) keeps an idle tenant from banking credit while away.
            cost = request.params.max_new_tokens
            start = max(state.vtime, self._vclock)
            state.vtime = start + cost / state.config.weight
            self._vclock = max(self._vclock, start)
            released.append(request)
            self._released_total.inc()
            n_free -= 1
        self._queue_gauge.set(self._queued_total)
        return released

    def _pick_tenant(self) -> Optional[_TenantState]:
        best: Optional[_TenantState] = None
        best_key: Optional[Tuple[float, str]] = None
        for name, state in self._tenants.items():
            if not state.queue:
                continue
            key = (max(state.vtime, self._vclock), name)
            if best_key is None or key < best_key:
                best, best_key = state, key
        return best

    # ------------------------------------------------------------------
    def cancel_queued(self, request_id: str) -> bool:
        """Remove an admitted-but-unreleased request from its tenant queue."""
        tenant_name = self._by_request.get(request_id)
        if tenant_name is None:
            return False
        state = self._tenants.get(tenant_name)
        if state is None:
            return False
        for request in state.queue:
            if request.request_id == request_id:
                state.queue.remove(request)
                self._queued_total -= 1
                self._queue_gauge.set(self._queued_total)
                self.record_outcome(request_id, "cancelled")
                return True
        return False

    def record_outcome(self, request_id: str, status: str,
                       tokens: int = 0) -> None:
        """Account a terminal outcome back to the owning tenant."""
        tenant_name = self._by_request.pop(request_id, None)
        if tenant_name is None:
            return
        state = self._tenants.get(tenant_name)
        if state is None:
            return
        field = {"finished": "finished", "expired": "expired",
                 "cancelled": "cancelled"}.get(status)
        if field is not None:
            setattr(state, field, getattr(state, field) + 1)
            self.obs.registry.counter(
                f"serve.net.tenant.{tenant_name}.{field}").inc()
        if tokens:
            state.tokens_out += tokens
            self.obs.registry.counter(
                f"serve.net.tenant.{tenant_name}.tokens_out").inc(tokens)

    def tenant_of(self, request_id: str) -> Optional[str]:
        return self._by_request.get(request_id)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Per-tenant accounting as a JSON-serialisable dict."""
        tenants = {}
        for name in sorted(self._tenants):
            state = self._tenants[name]
            tenants[name] = {
                "accepted": state.accepted,
                "shed": state.shed,
                "finished": state.finished,
                "expired": state.expired,
                "cancelled": state.cancelled,
                "tokens_out": state.tokens_out,
                "queued": len(state.queue),
                "weight": state.config.weight,
                "rate": (state.config.rate
                         if not math.isinf(state.config.rate) else None),
                "bucket_tokens": round(state.bucket.tokens, 3),
            }
        return {"queued_total": self._queued_total,
                "draining": self.draining,
                "tenants": tenants}

    def conservation_ok(self) -> bool:
        """Every accepted request is live (queued here or in the scheduler)
        or reached exactly one terminal outcome."""
        live: Dict[str, int] = {}
        for name in self._by_request.values():
            live[name] = live.get(name, 0) + 1
        for name, state in self._tenants.items():
            terminal = state.finished + state.expired + state.cancelled
            if state.accepted != terminal + live.get(name, 0):
                return False
        return True
