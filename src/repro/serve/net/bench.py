"""Socket serving benchmark: SLO-gated streaming, fairness, shed, drain.

Four phases, each against a fresh :class:`NetServerThread` over a real
127.0.0.1 socket:

``parity``
    Exact decode mode, prefix cache off: every completion fetched over the
    wire must be byte-identical to :meth:`InProcessServer.complete` on the
    same model/seeds.  Serving through sockets must not change a single
    token.
``streaming``
    Fused mode under an open-loop Poisson arrival stream: client-measured
    p50/p99 TTFT and aggregate tokens/sec — the SLO numbers.
``fairness``
    A 9:1 aggressor/minority tenant pair at equal weights.  The gate:
    the minority's p99 TTFT within :data:`FAIRNESS_RATIO_MAX` of what it
    sees running solo on an idle server.
``overload``
    Tiny queue bounds, instantaneous burst far over capacity: admission
    must shed explicitly (shed frames with positive ``retry_after_s``),
    never stall or error, and everything admitted must finish.
``drain``
    Drain under load: admitted work completes, a submit racing the drain
    is refused with the ``draining`` shed code, and the scheduler's
    conservation ledger balances.

Every phase's arrival schedule is emitted in the report (plain float
arrays), so a saved ``BENCH_net.json`` replays bit-identically through
``run_socket_workload(..., arrivals=saved)``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

from ...nn.transformer import TransformerLM, preset_config
from ..loadgen import (WorkloadSpec, arrival_schedule, run_multi_tenant_workload,
                       run_socket_workload, synthetic_prompts)
from ..request import SamplingParams
from ..scheduler import ServeConfig
from ..server import InProcessServer
from .admission import TenantConfig
from .client import NetClient, NetClientError, ShedError
from .server import NetServerConfig, NetServerThread

#: SLO gates for the streaming phase (generous: CI boxes are slow and
#: shared; the point is catching order-of-magnitude regressions, not
#: machine benchmarking).
TTFT_P50_SLO_S = 1.0
TTFT_P99_SLO_S = 4.0
MIN_TOKENS_PER_SEC = 20.0
#: Minority-tenant p99 TTFT under 9:1 contention vs. solo.
FAIRNESS_RATIO_MAX = 2.0
#: Absolute grace floor for the fairness gate: when the contended p99 is
#: under this bound the minority is objectively fast and the solo-run
#: denominator (single-digit milliseconds on an idle server) is pure
#: scheduler jitter, so the ratio carries no signal.  The deterministic
#: WFQ release-order test in tests/test_serve_net.py holds the exact
#: fairness property; this gate catches real starvation over the wire.
FAIRNESS_ABS_FLOOR_S = 0.05


def _model(backbone: str = "nano", seed: int = 0) -> TransformerLM:
    return TransformerLM(preset_config(backbone, vocab_size=128, seed=seed))


def _start(model, serve_config: ServeConfig,
           net_config: Optional[NetServerConfig] = None) -> NetServerThread:
    handle = NetServerThread(model, serve_config=serve_config,
                             net_config=net_config or NetServerConfig())
    handle.start()
    return handle


def run_parity_phase(model, spec: WorkloadSpec) -> Dict[str, object]:
    """Byte-identity over the wire vs. the in-process exact path."""
    config = ServeConfig(decode_mode="exact", prefix_cache=False,
                         max_batch_size=4)
    reference = InProcessServer(model, config=ServeConfig(
        decode_mode="exact", prefix_cache=False, max_batch_size=4))
    expected = []
    for i, prompt in enumerate(synthetic_prompts(spec)):
        completion = reference.complete(prompt, params=SamplingParams(
            max_new_tokens=spec.max_new_tokens, temperature=spec.temperature,
            seed=spec.seed + i))
        expected.append(list(completion.token_ids))

    handle = _start(model, config)
    try:
        result = run_socket_workload(handle.server.address, spec)
        actual = [list(rec["token_ids"]) for rec in result["records"]]
        streamed = [list(rec["streamed"]) for rec in result["records"]]
    finally:
        handle.drain()
        handle.stop()
    mismatches = sum(a != e for a, e in zip(actual, expected))
    stream_mismatches = sum(s != a for s, a in zip(streamed, actual))
    return {
        "n_requests": spec.n_requests,
        "mismatches": mismatches,
        "stream_mismatches": stream_mismatches,
        "byte_identical": mismatches == 0 and stream_mismatches == 0,
        "n_errors": result["n_errors"],
    }


def run_streaming_phase(model, spec: WorkloadSpec) -> Dict[str, object]:
    """Open-loop Poisson stream; client-side TTFT/latency percentiles."""
    handle = _start(model, ServeConfig(max_batch_size=8))
    try:
        result = run_socket_workload(handle.server.address, spec)
        accounting = handle.drain()
        server_metrics = handle.server.metrics()
    finally:
        handle.stop()
    return {
        "arrival": spec.arrival,
        "arrivals": result["arrivals"],
        "n_finished": result["n_finished"],
        "n_errors": result["n_errors"],
        "tokens": result["tokens"],
        "tokens_per_second": result["tokens_per_second"],
        "ttft_p50_s": result["ttft_p50_s"],
        "ttft_p99_s": result["ttft_p99_s"],
        "latency_p50_s": result["latency_p50_s"],
        "latency_p99_s": result["latency_p99_s"],
        "conservation_ok": bool(accounting["conservation_ok"]),
        "protocol_errors": server_metrics["server"].get(
            "serve.net.protocol_errors", 0),
    }


def run_fairness_phase(model, minority_spec: WorkloadSpec,
                       aggressor_spec: WorkloadSpec) -> Dict[str, object]:
    """Minority p99 TTFT: solo vs. under a 9:1 aggressor, equal weights."""
    tenants = (TenantConfig(name="aggressor", weight=1.0, max_queue=256),
               TenantConfig(name="minority", weight=1.0, max_queue=256))

    def fresh():
        return _start(model, ServeConfig(max_batch_size=4),
                      NetServerConfig(tenants=tenants, max_queue_total=512))

    handle = fresh()
    try:
        solo = run_socket_workload(handle.server.address, minority_spec,
                                   tenant="minority")
    finally:
        handle.drain()
        handle.stop()

    handle = fresh()
    try:
        contended = run_multi_tenant_workload(
            handle.server.address,
            {"aggressor": aggressor_spec, "minority": minority_spec})
    finally:
        handle.drain()
        handle.stop()

    solo_p99 = solo["ttft_p99_s"]
    cont_p99 = contended["minority"]["ttft_p99_s"]
    return {
        "within_slo": bool(
            cont_p99 <= max(FAIRNESS_RATIO_MAX * solo_p99,
                            FAIRNESS_ABS_FLOOR_S)),
        "abs_floor_s": FAIRNESS_ABS_FLOOR_S,
        "aggressor_requests": aggressor_spec.n_requests,
        "minority_requests": minority_spec.n_requests,
        "minority_solo_ttft_p99_s": solo_p99,
        "minority_contended_ttft_p99_s": cont_p99,
        "aggressor_ttft_p99_s": contended["aggressor"]["ttft_p99_s"],
        "ratio": cont_p99 / solo_p99 if solo_p99 > 0 else 0.0,
        "arrivals": {"minority": contended["minority"]["arrivals"],
                     "aggressor": contended["aggressor"]["arrivals"]},
        "n_errors": (solo["n_errors"] + contended["minority"]["n_errors"]
                     + contended["aggressor"]["n_errors"]),
    }


def run_overload_phase(model, spec: WorkloadSpec) -> Dict[str, object]:
    """Burst far over tiny queue bounds: explicit sheds, no stalls."""
    net_config = NetServerConfig(
        default_tenant=TenantConfig(max_queue=4),
        max_queue_total=8)
    handle = _start(model, ServeConfig(max_batch_size=2), net_config)
    try:
        result = run_socket_workload(handle.server.address, spec)
        accounting = handle.drain()
    finally:
        handle.stop()
    sheds = [rec for rec in result["records"] if rec["status"] == "shed"]
    return {
        "n_requests": spec.n_requests,
        "n_finished": result["n_finished"],
        "n_shed": result["n_shed"],
        "n_errors": result["n_errors"],
        "shed_codes": sorted({rec["shed_code"] for rec in sheds}),
        "retry_after_all_positive": all(
            (rec["retry_after_s"] or 0) > 0 for rec in sheds),
        "conservation_ok": bool(accounting["conservation_ok"]),
        "arrivals": result["arrivals"],
    }


def run_drain_phase(model, spec: WorkloadSpec) -> Dict[str, object]:
    """Drain under load: in-flight finishes, a racing submit is refused."""
    import threading

    handle = _start(model, ServeConfig(max_batch_size=4))
    host, port = handle.server.address
    prompts = synthetic_prompts(spec)
    accounting = {}
    with NetClient(host, port, io_timeout=60.0) as client:
        ids = [client.submit(prompt_ids=p,
                             params={"max_new_tokens": spec.max_new_tokens,
                                     "seed": spec.seed + i})
               for i, p in enumerate(prompts)]
        # The drain flag must not outrace the submit frames still in the
        # socket buffer: wait until the server has admitted all of them.
        assert client.wait_accepted(ids) == ids
        drainer = threading.Thread(
            target=lambda: accounting.update(handle.drain()), daemon=True)
        drainer.start()
        # A submit racing the drain: refused with the draining shed code
        # (probes that slip in before the flag flips complete normally).
        shed_code = None
        for _ in range(200):
            try:
                client.complete(prompt_ids=prompts[0],
                                params={"max_new_tokens": 2})
            except ShedError as exc:
                shed_code = exc.code
                break
            except NetClientError:
                break  # server finished draining and closed the socket
        results = [client.wait(cid) for cid in ids]
        drainer.join(timeout=60.0)
    handle.stop()
    return {
        "n_requests": spec.n_requests,
        "n_finished": sum(r.ok for r in results),
        "refused_code": shed_code,
        "conservation_ok": bool(accounting.get("conservation_ok", False)),
        "accounting": dict(accounting),
    }


def run_net_benchmark(backbone: str = "nano",
                      n_requests: int = 16, seed: int = 3) -> Dict[str, object]:
    """All phases on one model; the dict ``repro serve-net-bench`` reports."""
    model = _model(backbone, seed=0)
    parity_spec = WorkloadSpec(
        n_requests=min(6, n_requests), shared_prefix_tokens=24,
        unique_tokens=8, max_new_tokens=12, vocab_size=100, seed=seed)
    stream_spec = WorkloadSpec(
        n_requests=n_requests, shared_prefix_tokens=48, unique_tokens=12,
        max_new_tokens=16, vocab_size=100, seed=seed,
        arrival="poisson", arrival_rate_rps=64.0)
    minority_spec = WorkloadSpec(
        n_requests=max(4, n_requests // 4), shared_prefix_tokens=32,
        unique_tokens=8, max_new_tokens=12, vocab_size=100, seed=seed + 1,
        arrival="poisson", arrival_rate_rps=32.0)
    aggressor_spec = WorkloadSpec(
        n_requests=max(4, n_requests // 4) * 9, shared_prefix_tokens=32,
        unique_tokens=8, max_new_tokens=12, vocab_size=100, seed=seed + 2,
        arrival="batch")
    overload_spec = WorkloadSpec(
        n_requests=max(24, n_requests), shared_prefix_tokens=16,
        unique_tokens=8, max_new_tokens=16, vocab_size=100, seed=seed + 3,
        arrival="batch")
    drain_spec = WorkloadSpec(
        n_requests=4, shared_prefix_tokens=24, unique_tokens=8,
        max_new_tokens=24, vocab_size=100, seed=seed + 4)

    report = {
        "backbone": backbone,
        "seed": seed,
        "slo": {"ttft_p50_s": TTFT_P50_SLO_S, "ttft_p99_s": TTFT_P99_SLO_S,
                "min_tokens_per_second": MIN_TOKENS_PER_SEC,
                "fairness_ratio_max": FAIRNESS_RATIO_MAX},
        "parity": run_parity_phase(model, parity_spec),
        "streaming": run_streaming_phase(model, stream_spec),
        "fairness": run_fairness_phase(model, minority_spec, aggressor_spec),
        "overload": run_overload_phase(model, overload_spec),
        "drain": run_drain_phase(model, drain_spec),
    }
    report["slo_ok"] = bool(
        report["parity"]["byte_identical"]
        and report["streaming"]["ttft_p50_s"] <= TTFT_P50_SLO_S
        and report["streaming"]["ttft_p99_s"] <= TTFT_P99_SLO_S
        and report["streaming"]["tokens_per_second"] >= MIN_TOKENS_PER_SEC
        and report["fairness"]["within_slo"]
        and report["overload"]["n_shed"] > 0
        and report["overload"]["n_errors"] == 0
        and report["drain"]["conservation_ok"])
    return report


def format_net_report(report: Dict[str, object]) -> str:
    """Human-readable table of a :func:`run_net_benchmark` report."""
    s, f, o, d = (report["streaming"], report["fairness"],
                  report["overload"], report["drain"])
    lines = [
        f"backbone: {report['backbone']}   slo_ok: {report['slo_ok']}",
        f"parity    : {report['parity']['n_requests']} requests, "
        f"byte_identical={report['parity']['byte_identical']}",
        f"streaming : {s['n_finished']} finished, "
        f"{s['tokens_per_second']:.1f} tok/s, "
        f"TTFT p50 {s['ttft_p50_s'] * 1e3:.1f} ms / "
        f"p99 {s['ttft_p99_s'] * 1e3:.1f} ms",
        f"fairness  : minority p99 {f['minority_contended_ttft_p99_s'] * 1e3:.1f} ms "
        f"contended vs {f['minority_solo_ttft_p99_s'] * 1e3:.1f} ms solo "
        f"(ratio {f['ratio']:.2f}x, max {FAIRNESS_RATIO_MAX:.1f}x "
        f"or abs {FAIRNESS_ABS_FLOOR_S * 1e3:.0f} ms; "
        f"within_slo={f['within_slo']})",
        f"overload  : {o['n_shed']} shed / {o['n_requests']} sent "
        f"({', '.join(o['shed_codes']) or 'none'}), "
        f"{o['n_finished']} finished, errors={o['n_errors']}",
        f"drain     : {d['n_finished']}/{d['n_requests']} in-flight finished, "
        f"racing submit refused with {d['refused_code']!r}, "
        f"conservation_ok={d['conservation_ok']}",
    ]
    return "\n".join(lines)


def write_net_snapshot(report: Dict[str, object], path: Path) -> None:
    """Persist the report (with its replayable arrival arrays) as JSON."""
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
