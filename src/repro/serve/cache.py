"""Prefix KV-cache pool: reuse attention state across requests that share a
prompt prefix.

ChipAlign-style deployments have *highly* shareable prefixes: every OpenROAD
QA prompt opens with the same grounding-instruction block, and RAG prompts
share the retrieved-context template.  Because a token's K/V state depends
only on the tokens before it, the cached KV of any stored prompt is valid
for **every** prefix of that prompt — so a lookup returns the longest stored
entry that prefixes the new prompt, truncated to the match length, and
prefill only has to process the unseen suffix.

Entries are bounded and evicted LRU.  Payloads are :class:`KVEntry` objects:
either owned array copies (:class:`ArrayEntry`, the dense/exact engines) or
shared references into the engine's paged block plane (:class:`BlockEntry`) —
a hit on a block entry costs refcount bumps plus at most one sub-block tail
copy instead of materializing the whole ``(H, T, Dh)`` stack.  Entries are
immutable once stored (full blocks are shared read-only; the live sequence
only ever writes at positions beyond the shared prefix), so they are safe to
share between concurrent sequences.

Note on exactness: prefill of a suffix runs matmuls with different shapes
than a full-prompt prefill, so reused-prefix logits agree with the
from-scratch path to float tolerance (~1e-6), not bit-for-bit — the same
caveat batched serving systems such as vLLM document.  Run the server with
``prefix_cache=False`` when bitwise reproducibility matters.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

#: One layer's cached state: ``(k, v)`` arrays of shape ``(H, T, Dh)``.
LayerKV = Tuple[np.ndarray, np.ndarray]


def common_prefix_length(a: Sequence[int], b: Sequence[int]) -> int:
    """Length of the longest common prefix of two token sequences."""
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


def common_prefix_length_np(a, b) -> int:
    """Vectorized twin of :func:`common_prefix_length`.

    Same accumulate-and-sum scan :meth:`PrefixCachePool._scan` runs over its
    key matrix, applied to a single pair: the first mismatch kills the
    running AND, so the sum of the accumulated mask *is* the common-prefix
    length.  Bit-identical to the scalar walk (parity-tested).
    """
    n = min(len(a), len(b))
    if n == 0:
        return 0
    eq = (np.asarray(a[:n], dtype=np.int64)
          == np.asarray(b[:n], dtype=np.int64))
    return int(np.logical_and.accumulate(eq).sum())


# ---------------------------------------------------------------------------
# KV entry payloads
# ---------------------------------------------------------------------------
class KVEntry:
    """Stored KV payload of a prefix-pool or session entry.

    ``length`` is the number of cached positions.  :meth:`materialize`
    returns owned per-layer ``(k, v)`` copies (the exact engine's adoption
    path and the debugging/oracle path); engines with slot storage adopt
    entries directly without materializing.  :meth:`release` drops whatever
    resources the entry retains — pools call it on eviction, pruning,
    replacement, and declined inserts.
    """

    length: int = 0

    def materialize(self, upto: Optional[int] = None) -> List[LayerKV]:
        raise NotImplementedError

    def release(self) -> None:  # pragma: no cover - overridden where needed
        pass


class ArrayEntry(KVEntry):
    """Entry backed by owned array copies — the copy path's payload."""

    __slots__ = ("layer_kv", "length")

    def __init__(self, layer_kv: List[LayerKV],
                 length: Optional[int] = None) -> None:
        self.layer_kv = layer_kv
        width = layer_kv[0][0].shape[1] if layer_kv else 0
        self.length = width if length is None else min(length, width)

    def materialize(self, upto: Optional[int] = None) -> List[LayerKV]:
        upto = self.length if upto is None else min(upto, self.length)
        return [(k[:, :upto].copy(), v[:, :upto].copy())
                for k, v in self.layer_kv]


class BlockEntry(KVEntry):
    """Entry backed by shared references into an engine's block plane.

    ``blocks`` are *full* blocks (``block_tokens`` positions each), shared
    read-only — the entry holds one :meth:`BlockPool.share` reference per
    block and releases them when dropped.  ``frag`` is the copied sub-block
    tail (per-layer ``(k, v)`` arrays of fewer than ``block_tokens``
    positions): a partial block belongs to a live, still-writing sequence,
    so it cannot be shared and is copied instead — copy-on-write at block
    granularity.
    """

    __slots__ = ("plane", "blocks", "frag", "length")

    def __init__(self, plane, blocks: List[int],
                 frag: Optional[List[LayerKV]], length: int) -> None:
        self.plane = plane
        self.blocks = list(blocks)
        self.frag = frag
        self.length = length

    def materialize(self, upto: Optional[int] = None) -> List[LayerKV]:
        return self.plane.gather_entry_kv(self, upto)

    def release(self) -> None:
        blocks, self.blocks = self.blocks, []
        for block in blocks:
            self.plane.release_block(block)


#: What callers may hand to ``insert``/``update``: a ready entry, a lazy
#: supplier invoked only if the insert is accepted (so a declined insert
#: costs nothing — no copy, no retain), or a legacy per-layer array list.
KVPayload = Union[KVEntry, Callable[[], KVEntry], List[LayerKV]]


def coerce_entry(payload: KVPayload, length: int) -> KVEntry:
    """Normalize an accepted insert payload to a :class:`KVEntry`."""
    if isinstance(payload, KVEntry):
        return payload
    if callable(payload):
        entry = payload()
        if not isinstance(entry, KVEntry):
            raise TypeError("KV payload supplier must return a KVEntry")
        return entry
    return ArrayEntry([(k[:, :length].copy(), v[:, :length].copy())
                       for k, v in payload])


class PrefixCachePool:
    """LRU pool of prompt KV states keyed by their token ids.

    Parameters
    ----------
    max_entries:
        Entry cap; least-recently-used entries are evicted beyond it.
    min_match_tokens:
        Shortest reusable prefix.  Very short matches (a shared BOS token)
        are not worth the copy, so they count as misses.
    """

    def __init__(self, max_entries: int = 32, min_match_tokens: int = 8) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.min_match_tokens = min_match_tokens
        self._entries: Dict[Tuple[int, ...], KVEntry] = {}
        self._clock = 0
        self._last_used: Dict[Tuple[int, ...], int] = {}
        # Lazily rebuilt padded key matrix backing the vectorized lookup
        # scan; invalidated whenever the entry set changes.
        self._key_matrix_cache: Optional[
            Tuple[List[Tuple[int, ...]], np.ndarray]] = None
        self.hits = 0
        self.misses = 0
        self.tokens_reused = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Dict[Tuple[int, ...], KVEntry]:
        """Live key → entry mapping (the dict itself; treat as read-only)."""
        return self._entries

    # ------------------------------------------------------------------
    def lookup(self, prompt_ids: Sequence[int]
               ) -> Tuple[int, Optional[KVEntry]]:
        """Longest reusable prefix of ``prompt_ids``.

        Returns ``(match_len, entry)`` — the stored :class:`KVEntry` itself,
        *not* a copy: adoption cost is the engine's business (shared blocks
        make it a refcount bump).  ``(0, None)`` on a miss.  The match is
        capped at ``len(prompt_ids) - 1`` so at least one prompt token always
        runs through prefill (the model needs a forward pass to produce
        logits).
        """
        prompt = tuple(int(i) for i in prompt_ids)
        best_key, best_len = self._scan(prompt)
        if best_key is None or best_len < self.min_match_tokens:
            self.misses += 1
            return 0, None
        entry = self._entries[best_key]
        best_len = min(best_len, entry.length)
        if best_len < self.min_match_tokens:
            self.misses += 1
            return 0, None
        self.hits += 1
        self.tokens_reused += best_len
        self._clock += 1
        self._last_used[best_key] = self._clock
        return best_len, entry

    def _scan(self, prompt: Tuple[int, ...]
              ) -> Tuple[Optional[Tuple[int, ...]], int]:
        """Longest-common-prefix scan over all entries, vectorized.

        One ``(entries, width)`` comparison against a padded key matrix
        replaces the per-entry Python loop, so fleet-scale prefill pays
        numpy time instead of O(entries · prompt_len) interpreter time.
        Bit-identical to :meth:`_scan_scalar` (asserted in tests),
        including the first-max-in-insertion-order tie-break.
        """
        limit = len(prompt) - 1
        if not self._entries or limit < 1:
            return None, 0
        keys, matrix = self._key_matrix()
        cmp_len = min(matrix.shape[1], limit)
        row = np.asarray(prompt[:cmp_len], dtype=np.int64)
        # Key padding is -1, which never equals a (non-negative) token id,
        # so a shorter key stops matching exactly at its own length.
        eq = matrix[:, :cmp_len] == row[None, :]
        matches = np.logical_and.accumulate(eq, axis=1).sum(axis=1)
        best_len = int(matches.max())
        if best_len == 0:
            return None, 0
        return keys[int(matches.argmax())], best_len

    def _scan_scalar(self, prompt: Tuple[int, ...]
                     ) -> Tuple[Optional[Tuple[int, ...]], int]:
        """Reference Python-loop scan kept as the parity oracle for
        :meth:`_scan`."""
        limit = len(prompt) - 1
        best_key: Optional[Tuple[int, ...]] = None
        best_len = 0
        for key in self._entries:
            match = min(common_prefix_length(key, prompt), limit)
            if match > best_len:
                best_key, best_len = key, match
        return best_key, best_len

    def _key_matrix(self) -> Tuple[List[Tuple[int, ...]], np.ndarray]:
        if self._key_matrix_cache is None:
            keys = list(self._entries)
            width = max(len(key) for key in keys)
            matrix = np.full((len(keys), width), -1, dtype=np.int64)
            for i, key in enumerate(keys):
                matrix[i, : len(key)] = key
            self._key_matrix_cache = (keys, matrix)
        return self._key_matrix_cache

    def insert(self, prompt_ids: Sequence[int], payload: KVPayload) -> None:
        """Store the KV state of a fully prefilled prompt.

        ``payload`` may be a ready :class:`KVEntry`, a zero-argument supplier
        invoked only when the insert is accepted (the scheduler passes
        ``lambda: engine.make_entry(...)`` so declined inserts cost nothing),
        or a legacy per-layer array list (copied at store).  The pool owns
        accepted entries and releases them on eviction/pruning/replacement;
        a ready entry that is declined is released here.
        """
        key = tuple(int(i) for i in prompt_ids)
        if len(key) < self.min_match_tokens:
            self._decline(payload)
            return
        if key in self._entries:
            self._clock += 1
            self._last_used[key] = self._clock
            self._decline(payload)
            return
        # A new entry that is a prefix of a stored one adds no information —
        # but the insert is still a use of the subsuming entry (it serves
        # every lookup the new key could), so refresh its LRU clock.  Hot
        # prefixes kept alive only via subsumed inserts must stay resident.
        for stored in self._entries:
            if len(stored) >= len(key) and stored[: len(key)] == key:
                self._clock += 1
                self._last_used[stored] = self._clock
                self._decline(payload)
                return
        # Conversely, stored entries that are strict prefixes of the new key
        # are subsumed by it (every lookup they could serve, it serves at
        # least as well) — prune them so they stop burning entry capacity
        # and lengthening the O(entries · len) lookup scan.
        subsumed = [stored for stored in self._entries
                    if len(stored) < len(key) and key[: len(stored)] == stored]
        for stored in subsumed:
            self._entries.pop(stored).release()
            del self._last_used[stored]
        self._entries[key] = coerce_entry(payload, len(key))
        self._clock += 1
        self._last_used[key] = self._clock
        while len(self._entries) > self.max_entries:
            oldest = min(self._last_used, key=self._last_used.get)
            self._entries.pop(oldest).release()
            del self._last_used[oldest]
        self._key_matrix_cache = None

    @staticmethod
    def _decline(payload: KVPayload) -> None:
        """Dispose of a payload the pool chose not to store.  Suppliers are
        simply never invoked; ready entries must drop their retained blocks."""
        if isinstance(payload, KVEntry):
            payload.release()

    def clear(self) -> None:
        """Drop every entry, releasing retained block references."""
        for entry in self._entries.values():
            entry.release()
        self._entries.clear()
        self._last_used.clear()
        self._key_matrix_cache = None

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "tokens_reused": self.tokens_reused,
        }


# ---------------------------------------------------------------------------
# paged-KV block allocator
# ---------------------------------------------------------------------------
class BlockPoolError(RuntimeError):
    """An allocation/free request violated the pool's ownership rules."""


class BlockPool:
    """Reference-counted free-list allocator of fixed-size KV blocks.

    The dense engine sizes every batch slot for the longest sequence the
    engine has ever seen — ``max_batch × capacity`` tokens of K/V per layer,
    whatever each slot actually holds.  Paged allocation (the vLLM model)
    instead carves KV storage into blocks of ``block_tokens`` positions and
    hands them out on demand: a short chat turn holds one block while a
    long grounding prompt holds twenty, and freeing a sequence returns its
    blocks for immediate reuse.

    The pool manages only *bookkeeping* — integer block ids with a refcount
    and at most one *owner* tag (the engine uses its slot index).  Ownership
    is one reference; :meth:`share`/:meth:`release` add and drop anonymous
    read-only references (prefix-pool and session entries, slots adopting a
    shared prefix).  A block returns to the free list only when its last
    reference drops.  Storage lives with the engine, which also zeroes a
    block's K/V on every :meth:`alloc` so a reused block can never leak a
    prior session's tail into a fresh sequence (the regression the dense
    path only masks; see DESIGN.md §11).

    Invariants, enforced here and property-tested with Hypothesis:

    * a block is owned by at most one owner at a time (no aliasing);
    * every live block has refcount ≥ 1, and an owned block's refcount
      covers its owner stake;
    * ``allocated + free == n_blocks`` after every operation (conservation) —
      a block is *allocated* while any reference remains, so no block is
      freed while still referenced;
    * dropping a reference a block doesn't hold (double-free, foreign
      release) raises :class:`BlockPoolError` instead of corrupting state.
    """

    def __init__(self, n_blocks: int, block_tokens: int = 16) -> None:
        if n_blocks < 1:
            raise ValueError("n_blocks must be >= 1")
        if block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        self.block_tokens = block_tokens
        self._n_blocks = n_blocks
        # LIFO free list, seeded so block 0 is handed out first — freshly
        # freed blocks are reused while still cache-warm.
        self._free = list(range(n_blocks - 1, -1, -1))
        self._owner: Dict[int, object] = {}
        self._owned: Dict[object, List[int]] = {}
        self._refs: Dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return self._n_blocks

    @property
    def n_free(self) -> int:
        return len(self._free)

    @property
    def n_allocated(self) -> int:
        return len(self._refs)

    @property
    def n_shared_refs(self) -> int:
        """Anonymous (non-owner) references currently outstanding."""
        return sum(self._refs.values()) - len(self._owner)

    def refcount(self, block: int) -> int:
        return self._refs.get(block, 0)

    def owner_blocks(self, owner) -> List[int]:
        """The blocks ``owner`` holds, in allocation order (a copy)."""
        return list(self._owned.get(owner, ()))

    # ------------------------------------------------------------------
    def alloc(self, owner) -> int:
        """Hand a free block to ``owner`` (refcount 1); raises when the pool
        is empty (the engine grows storage and calls :meth:`grow` first)."""
        if not self._free:
            raise BlockPoolError(
                f"pool exhausted: all {self._n_blocks} blocks allocated")
        block = self._free.pop()
        self._owner[block] = owner
        self._owned.setdefault(owner, []).append(block)
        self._refs[block] = 1
        return block

    def share(self, block: int) -> int:
        """Add an anonymous read-only reference to a live block; returns the
        new refcount.  Shared blocks outlive their owner — the entry (or
        adopting slot) must :meth:`release` what it shares."""
        refs = self._refs.get(block)
        if refs is None:
            raise BlockPoolError(f"block {block} is not allocated")
        self._refs[block] = refs + 1
        return refs + 1

    def release(self, block: int) -> None:
        """Drop one anonymous reference; frees the block when it was the
        last reference of any kind."""
        refs = self._refs.get(block)
        if refs is None:
            raise BlockPoolError(f"block {block} is not allocated")
        if refs - (1 if block in self._owner else 0) < 1:
            raise BlockPoolError(
                f"block {block} has no shared reference to release")
        refs -= 1
        if refs == 0:
            del self._refs[block]
            self._free.append(block)
        else:
            self._refs[block] = refs

    def free(self, block: int) -> None:
        """Drop a block's *owner* stake (must be owned).  The block returns
        to the free list only if no shared references remain."""
        owner = self._owner.pop(block, None)
        if owner is None:
            raise BlockPoolError(f"block {block} is not allocated")
        owned = self._owned[owner]
        owned.remove(block)
        if not owned:
            del self._owned[owner]
        self._drop_ref(block)

    def free_owner(self, owner) -> List[int]:
        """Drop the owner stake of every block ``owner`` holds; returns them
        in allocation order.  Blocks still referenced by entries stay
        allocated.  Freeing an owner with no blocks is a no-op (a released
        exact-mode sequence never allocated any)."""
        blocks = self._owned.pop(owner, [])
        for block in blocks:
            del self._owner[block]
            self._drop_ref(block)
        return blocks

    def _drop_ref(self, block: int) -> None:
        refs = self._refs[block] - 1
        if refs == 0:
            del self._refs[block]
            self._free.append(block)
        else:
            self._refs[block] = refs

    def grow(self, extra: int) -> None:
        """Add ``extra`` fresh blocks (ids continue past the current range)."""
        if extra < 1:
            raise ValueError("extra must be >= 1")
        start = self._n_blocks
        self._n_blocks += extra
        self._free.extend(range(self._n_blocks - 1, start - 1, -1))

    # ------------------------------------------------------------------
    def conservation_ok(self) -> bool:
        """``allocated + free == n_blocks`` with disjoint, alias-free sets
        and refcounts covering every outstanding stake."""
        if self.n_allocated + self.n_free != self._n_blocks:
            return False
        free = set(self._free)
        if len(free) != len(self._free) or free & set(self._refs):
            return False
        if any(refs < 1 for refs in self._refs.values()):
            return False
        if not set(self._owner) <= set(self._refs):
            return False
        per_owner = [b for blocks in self._owned.values() for b in blocks]
        return (len(per_owner) == len(set(per_owner))
                and set(per_owner) == set(self._owner))

    def stats(self) -> Dict[str, int]:
        return {
            "n_blocks": self._n_blocks,
            "block_tokens": self.block_tokens,
            "allocated": self.n_allocated,
            "free": self.n_free,
            "owners": len(self._owned),
            "shared_refs": self.n_shared_refs,
        }
