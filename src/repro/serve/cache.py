"""Prefix KV-cache pool: reuse attention state across requests that share a
prompt prefix.

ChipAlign-style deployments have *highly* shareable prefixes: every OpenROAD
QA prompt opens with the same grounding-instruction block, and RAG prompts
share the retrieved-context template.  Because a token's K/V state depends
only on the tokens before it, the cached KV of any stored prompt is valid
for **every** prefix of that prompt — so a lookup returns the longest stored
entry that prefixes the new prompt, truncated to the match length, and
prefill only has to process the unseen suffix.

Entries are bounded and evicted LRU.  Reused KV is copied into the new
sequence's growable caches, so pool entries are immutable and shared safely
between concurrent sequences.

Note on exactness: prefill of a suffix runs matmuls with different shapes
than a full-prompt prefill, so reused-prefix logits agree with the
from-scratch path to float tolerance (~1e-6), not bit-for-bit — the same
caveat batched serving systems such as vLLM document.  Run the server with
``prefix_cache=False`` when bitwise reproducibility matters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: One layer's cached state: ``(k, v)`` arrays of shape ``(H, T, Dh)``.
LayerKV = Tuple[np.ndarray, np.ndarray]


def common_prefix_length(a: Sequence[int], b: Sequence[int]) -> int:
    """Length of the longest common prefix of two token sequences."""
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


class PrefixCachePool:
    """LRU pool of prompt KV states keyed by their token ids.

    Parameters
    ----------
    max_entries:
        Entry cap; least-recently-used entries are evicted beyond it.
    min_match_tokens:
        Shortest reusable prefix.  Very short matches (a shared BOS token)
        are not worth the copy, so they count as misses.
    """

    def __init__(self, max_entries: int = 32, min_match_tokens: int = 8) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.min_match_tokens = min_match_tokens
        self._entries: Dict[Tuple[int, ...], List[LayerKV]] = {}
        self._clock = 0
        self._last_used: Dict[Tuple[int, ...], int] = {}
        # Lazily rebuilt padded key matrix backing the vectorized lookup
        # scan; invalidated whenever the entry set changes.
        self._key_matrix_cache: Optional[
            Tuple[List[Tuple[int, ...]], np.ndarray]] = None
        self.hits = 0
        self.misses = 0
        self.tokens_reused = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def lookup(self, prompt_ids: Sequence[int]) -> Tuple[int, Optional[List[LayerKV]]]:
        """Longest reusable prefix of ``prompt_ids``.

        Returns ``(match_len, kv)`` where ``kv`` is a list of per-layer
        ``(k, v)`` copies truncated to ``match_len`` positions, or
        ``(0, None)`` on a miss.  The match is capped at
        ``len(prompt_ids) - 1`` so at least one prompt token always runs
        through prefill (the model needs a forward pass to produce logits).
        """
        prompt = tuple(int(i) for i in prompt_ids)
        best_key, best_len = self._scan(prompt)
        if best_key is None or best_len < self.min_match_tokens:
            self.misses += 1
            return 0, None
        self.hits += 1
        self.tokens_reused += best_len
        self._clock += 1
        self._last_used[best_key] = self._clock
        kv = [(k[:, :best_len].copy(), v[:, :best_len].copy())
              for k, v in self._entries[best_key]]
        return best_len, kv

    def _scan(self, prompt: Tuple[int, ...]
              ) -> Tuple[Optional[Tuple[int, ...]], int]:
        """Longest-common-prefix scan over all entries, vectorized.

        One ``(entries, width)`` comparison against a padded key matrix
        replaces the per-entry Python loop, so fleet-scale prefill pays
        numpy time instead of O(entries · prompt_len) interpreter time.
        Bit-identical to :meth:`_scan_scalar` (asserted in tests),
        including the first-max-in-insertion-order tie-break.
        """
        limit = len(prompt) - 1
        if not self._entries or limit < 1:
            return None, 0
        keys, matrix = self._key_matrix()
        cmp_len = min(matrix.shape[1], limit)
        row = np.asarray(prompt[:cmp_len], dtype=np.int64)
        # Key padding is -1, which never equals a (non-negative) token id,
        # so a shorter key stops matching exactly at its own length.
        eq = matrix[:, :cmp_len] == row[None, :]
        matches = np.logical_and.accumulate(eq, axis=1).sum(axis=1)
        best_len = int(matches.max())
        if best_len == 0:
            return None, 0
        return keys[int(matches.argmax())], best_len

    def _scan_scalar(self, prompt: Tuple[int, ...]
                     ) -> Tuple[Optional[Tuple[int, ...]], int]:
        """Reference Python-loop scan kept as the parity oracle for
        :meth:`_scan`."""
        limit = len(prompt) - 1
        best_key: Optional[Tuple[int, ...]] = None
        best_len = 0
        for key in self._entries:
            match = min(common_prefix_length(key, prompt), limit)
            if match > best_len:
                best_key, best_len = key, match
        return best_key, best_len

    def _key_matrix(self) -> Tuple[List[Tuple[int, ...]], np.ndarray]:
        if self._key_matrix_cache is None:
            keys = list(self._entries)
            width = max(len(key) for key in keys)
            matrix = np.full((len(keys), width), -1, dtype=np.int64)
            for i, key in enumerate(keys):
                matrix[i, : len(key)] = key
            self._key_matrix_cache = (keys, matrix)
        return self._key_matrix_cache

    def insert(self, prompt_ids: Sequence[int], layer_kv: List[LayerKV]) -> None:
        """Store the KV state of a fully prefilled prompt.

        ``layer_kv`` arrays are copied, so callers may keep appending to the
        live sequence caches they exported from.
        """
        key = tuple(int(i) for i in prompt_ids)
        if len(key) < self.min_match_tokens:
            return
        if key in self._entries:
            self._clock += 1
            self._last_used[key] = self._clock
            return
        # A new entry that is a prefix of a stored one adds no information —
        # but the insert is still a use of the subsuming entry (it serves
        # every lookup the new key could), so refresh its LRU clock.  Hot
        # prefixes kept alive only via subsumed inserts must stay resident.
        for stored in self._entries:
            if len(stored) >= len(key) and stored[: len(key)] == key:
                self._clock += 1
                self._last_used[stored] = self._clock
                return
        # Conversely, stored entries that are strict prefixes of the new key
        # are subsumed by it (every lookup they could serve, it serves at
        # least as well) — prune them so they stop burning entry capacity
        # and lengthening the O(entries · len) lookup scan.
        subsumed = [stored for stored in self._entries
                    if len(stored) < len(key) and key[: len(stored)] == stored]
        for stored in subsumed:
            del self._entries[stored]
            del self._last_used[stored]
        self._entries[key] = [(k[:, : len(key)].copy(), v[:, : len(key)].copy())
                              for k, v in layer_kv]
        self._clock += 1
        self._last_used[key] = self._clock
        while len(self._entries) > self.max_entries:
            oldest = min(self._last_used, key=self._last_used.get)
            del self._entries[oldest]
            del self._last_used[oldest]
        self._key_matrix_cache = None

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "tokens_reused": self.tokens_reused,
        }


# ---------------------------------------------------------------------------
# paged-KV block allocator
# ---------------------------------------------------------------------------
class BlockPoolError(RuntimeError):
    """An allocation/free request violated the pool's ownership rules."""


class BlockPool:
    """Free-list allocator of fixed-size KV blocks shared across sequences.

    The dense engine sizes every batch slot for the longest sequence the
    engine has ever seen — ``max_batch × capacity`` tokens of K/V per layer,
    whatever each slot actually holds.  Paged allocation (the vLLM model)
    instead carves KV storage into blocks of ``block_tokens`` positions and
    hands them out on demand: a short chat turn holds one block while a
    long grounding prompt holds twenty, and freeing a sequence returns its
    blocks for immediate reuse.

    The pool manages only *ownership* — integer block ids against opaque
    owner tags (the engine uses its slot index).  Storage lives with the
    engine, which also zeroes a block's K/V on every :meth:`alloc` so a
    reused block can never leak a prior session's tail into a fresh
    sequence (the regression the dense path only masks; see DESIGN.md §11).

    Invariants, enforced here and property-tested with Hypothesis:

    * a block is owned by at most one owner at a time (no aliasing);
    * ``allocated + free == n_blocks`` after every operation (conservation);
    * every block is freed exactly once — double-free and foreign-free
      raise :class:`BlockPoolError` instead of corrupting the free list.
    """

    def __init__(self, n_blocks: int, block_tokens: int = 16) -> None:
        if n_blocks < 1:
            raise ValueError("n_blocks must be >= 1")
        if block_tokens < 1:
            raise ValueError("block_tokens must be >= 1")
        self.block_tokens = block_tokens
        self._n_blocks = n_blocks
        # LIFO free list, seeded so block 0 is handed out first — freshly
        # freed blocks are reused while still cache-warm.
        self._free = list(range(n_blocks - 1, -1, -1))
        self._owner: Dict[int, object] = {}
        self._owned: Dict[object, List[int]] = {}

    # ------------------------------------------------------------------
    @property
    def n_blocks(self) -> int:
        return self._n_blocks

    @property
    def n_free(self) -> int:
        return len(self._free)

    @property
    def n_allocated(self) -> int:
        return len(self._owner)

    def owner_blocks(self, owner) -> List[int]:
        """The blocks ``owner`` holds, in allocation order (a copy)."""
        return list(self._owned.get(owner, ()))

    # ------------------------------------------------------------------
    def alloc(self, owner) -> int:
        """Hand a free block to ``owner``; raises when the pool is empty
        (the engine grows storage and calls :meth:`grow` first)."""
        if not self._free:
            raise BlockPoolError(
                f"pool exhausted: all {self._n_blocks} blocks allocated")
        block = self._free.pop()
        self._owner[block] = owner
        self._owned.setdefault(owner, []).append(block)
        return block

    def free(self, block: int) -> None:
        """Return one block to the free list (must be allocated)."""
        owner = self._owner.pop(block, None)
        if owner is None:
            raise BlockPoolError(f"block {block} is not allocated")
        owned = self._owned[owner]
        owned.remove(block)
        if not owned:
            del self._owned[owner]
        self._free.append(block)

    def free_owner(self, owner) -> List[int]:
        """Release every block ``owner`` holds; returns them in allocation
        order.  Freeing an owner with no blocks is a no-op (a released
        exact-mode sequence never allocated any)."""
        blocks = self._owned.pop(owner, [])
        for block in blocks:
            del self._owner[block]
            self._free.append(block)
        return blocks

    def grow(self, extra: int) -> None:
        """Add ``extra`` fresh blocks (ids continue past the current range)."""
        if extra < 1:
            raise ValueError("extra must be >= 1")
        start = self._n_blocks
        self._n_blocks += extra
        self._free.extend(range(self._n_blocks - 1, start - 1, -1))

    # ------------------------------------------------------------------
    def conservation_ok(self) -> bool:
        """``allocated + free == n_blocks`` with disjoint, alias-free sets."""
        if self.n_allocated + self.n_free != self._n_blocks:
            return False
        free = set(self._free)
        if len(free) != len(self._free) or free & set(self._owner):
            return False
        per_owner = [b for blocks in self._owned.values() for b in blocks]
        return (len(per_owner) == len(set(per_owner))
                and set(per_owner) == set(self._owner))

    def stats(self) -> Dict[str, int]:
        return {
            "n_blocks": self._n_blocks,
            "block_tokens": self.block_tokens,
            "allocated": self.n_allocated,
            "free": self.n_free,
            "owners": len(self._owned),
        }
