"""Shared-memory tensor plane: publish numpy arrays once, read everywhere.

A :class:`TensorArena` copies arrays into ``multiprocessing.shared_memory``
segments and hands out a small, picklable :class:`ArenaHandle` describing
where each tensor lives (segment name, byte offset, shape, dtype).  Worker
processes :meth:`~ArenaHandle.attach` the handle and get **zero-copy,
read-only** numpy views — a full model state dict or a
:class:`~repro.core.merge_engine.MergePlan`'s stacked buffers cross the
process border as a few hundred bytes of metadata instead of tens of MB of
pickle per task.

Lifecycle contract: the publishing process owns the segments and must
:meth:`~TensorArena.close` them (``with`` blocks do); attached views only
unmap, never unlink.  ``TensorArena.live_segments()`` lists segments still
owned by this process — the leak check the benchmark and CI smoke assert
against.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

#: Byte alignment of every tensor inside a segment (cache-line friendly,
#: and keeps numpy views aligned for any dtype).
ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + ALIGN - 1) // ALIGN * ALIGN


@dataclass(frozen=True)
class TensorSpec:
    """Where one published tensor lives: picklable, a few dozen bytes."""

    segment: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class ArenaView:
    """Attached, read-only view of an arena (worker side).

    Opens each referenced segment lazily on first use and caches the
    mapping; :meth:`close` unmaps everything (it never unlinks — the
    publishing process owns segment lifetime).
    """

    def __init__(self, specs: Mapping[str, TensorSpec]) -> None:
        self._specs = dict(specs)
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._closed = False

    def _segment(self, name: str) -> shared_memory.SharedMemory:
        if self._closed:
            raise ValueError("arena view is closed")
        seg = self._segments.get(name)
        if seg is None:
            seg = self._segments[name] = shared_memory.SharedMemory(name=name)
        return seg

    def keys(self) -> List[str]:
        return list(self._specs)

    def get(self, name: str) -> np.ndarray:
        """Zero-copy read-only ndarray over the published bytes."""
        spec = self._specs.get(name)
        if spec is None:
            raise KeyError(f"tensor {name!r} not published in this arena")
        seg = self._segment(spec.segment)
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                          buffer=seg.buf, offset=spec.offset)
        view.flags.writeable = False
        return view

    def get_dict(self, prefix: str) -> "OrderedDict[str, np.ndarray]":
        """All tensors published under ``prefix.`` as an ordered dict
        (publication order), keys with the prefix stripped."""
        marker = prefix + "."
        out: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name in self._specs:
            if name.startswith(marker):
                out[name[len(marker):]] = self.get(name)
        if not out:
            raise KeyError(f"no tensors published under prefix {prefix!r}")
        return out

    def close(self) -> None:
        for seg in self._segments.values():
            seg.close()
        self._segments.clear()
        self._closed = True

    def __enter__(self) -> "ArenaView":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class ArenaHandle:
    """Picklable description of everything an arena has published.

    This is what crosses the process border (in a worker initializer or a
    task payload); :meth:`attach` turns it back into live views.
    """

    specs: Tuple[Tuple[str, TensorSpec], ...]

    def attach(self) -> ArenaView:
        return ArenaView(OrderedDict(self.specs))

    def __len__(self) -> int:
        return len(self.specs)


class TensorArena:
    """Owner side of the tensor plane: publish arrays, hand out handles.

    Notes
    -----
    Publishing copies the array once into shared memory (unavoidable — the
    source lives in private pages); every subsequent reader is zero-copy.
    Segments are unlinked in :meth:`close`; the class-level live-segment
    registry exists so tests and benchmarks can assert nothing leaked.
    """

    #: Names of segments created and not yet unlinked by this process.
    _LIVE: set = set()

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._specs: "OrderedDict[str, TensorSpec]" = OrderedDict()
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def live_segments(cls) -> List[str]:
        """Segment names this process still owns (leak check)."""
        return sorted(cls._LIVE)

    @property
    def nbytes(self) -> int:
        return sum(seg.size for seg in self._segments)

    def nbytes_for(self, prefix: str) -> int:
        """Payload bytes published under ``{prefix}.`` (alignment padding
        excluded) — the per-prefix resident-footprint number the λ-fleet
        memory gate reports."""
        marker = prefix + "."
        return sum(spec.nbytes for name, spec in self._specs.items()
                   if name.startswith(marker))

    def keys(self) -> List[str]:
        return list(self._specs)

    # ------------------------------------------------------------------
    def _new_segment(self, size: int) -> shared_memory.SharedMemory:
        if self._closed:
            raise ValueError("arena is closed")
        seg = shared_memory.SharedMemory(create=True, size=max(size, 1))
        self._segments.append(seg)
        TensorArena._LIVE.add(seg.name)
        return seg

    def _place(self, name: str, array: np.ndarray,
               seg: shared_memory.SharedMemory, offset: int) -> None:
        if name in self._specs:
            raise ValueError(f"tensor {name!r} already published")
        dest = np.ndarray(array.shape, dtype=array.dtype, buffer=seg.buf,
                          offset=offset)
        dest[...] = array
        self._specs[name] = TensorSpec(seg.name, offset, tuple(array.shape),
                                       array.dtype.str)

    def publish(self, name: str, array: np.ndarray) -> TensorSpec:
        """Copy one array into its own shared segment."""
        array = np.ascontiguousarray(array)
        seg = self._new_segment(array.nbytes)
        self._place(name, array, seg, 0)
        return self._specs[name]

    def publish_dict(self, prefix: str,
                     tensors: Mapping[str, np.ndarray]) -> List[str]:
        """Copy a whole mapping (e.g. a state dict) into one segment.

        Tensors land back-to-back (64-byte aligned) under keys
        ``{prefix}.{key}``; readers recover the mapping with
        :meth:`ArenaView.get_dict`.
        """
        if not tensors:
            raise ValueError("cannot publish an empty tensor dict")
        arrays = OrderedDict((key, np.ascontiguousarray(value))
                             for key, value in tensors.items())
        total = 0
        for array in arrays.values():
            total = _aligned(total) + array.nbytes
        seg = self._new_segment(total)
        offset = 0
        names = []
        for key, array in arrays.items():
            offset = _aligned(offset)
            name = f"{prefix}.{key}"
            self._place(name, array, seg, offset)
            names.append(name)
            offset += array.nbytes
        return names

    # ------------------------------------------------------------------
    def handle(self) -> ArenaHandle:
        """Picklable handle over everything published so far."""
        return ArenaHandle(tuple(self._specs.items()))

    def view(self) -> ArenaView:
        """An in-process reader view (same API the workers see)."""
        return self.handle().attach()

    def close(self) -> None:
        """Unmap and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:
                pass
            TensorArena._LIVE.discard(seg.name)
        self._segments = []
        self._specs = OrderedDict()

    def __enter__(self) -> "TensorArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
