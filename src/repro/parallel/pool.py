"""Fault-tolerant work-stealing process pool with deterministic results.

:class:`WorkerPool` fans a list of items out to forked worker processes as
chunked tasks.  Scheduling is pull-based: every idle worker asks for the
next pending chunk, so fast workers naturally steal load from slow ones —
the work-stealing property — while the parent keeps exact accounting of
which worker holds which task.  That accounting is what buys fault
tolerance:

* a worker that **dies** mid-task (OOM-killed, segfault, ``SIGKILL``) is
  detected by liveness polling; the pool respawns the slot and requeues
  its task;
* a task that exceeds its **timeout** gets its worker killed and the task
  requeued;
* both paths consume one of the task's bounded **retries** — a task that
  keeps failing raises :class:`ParallelTaskError` instead of hanging the
  map or silently dropping items;
* results are reassembled **by task index**, so the returned list is in
  input order no matter which worker finished when, and a retried task
  whose first result arrives late is discarded, not double-counted.

Observability rides along: each task executes against a fresh
:class:`~repro.obs.Observability` (reachable from task code via
:func:`worker_obs`) whose export is shipped back with the result and
absorbed — exactly once, keyed by registry uid — into the pool's parent
handle.  Serial fallbacks push the parent handle via :func:`task_obs`, so
item functions are written once and record correctly in both modes.

Large read-only inputs should not travel through task pickles: publish
them in a :class:`~repro.parallel.arena.TensorArena` (any start method) or
stage them in module globals under :func:`task_context` before the pool
forks (fork inheritance, zero-copy).
"""

from __future__ import annotations

import itertools
import math
import multiprocessing
import os
import queue as stdlib_queue
import signal
import time
import traceback
from collections import deque
from contextlib import contextmanager
from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

from ..obs import Observability

#: Seconds between scheduler wake-ups while waiting on workers.
POLL_INTERVAL = 0.02

#: Default extra attempts granted to a failing task.
MAX_RETRIES = 2


def parallel_available() -> bool:
    """Whether the process-parallel paths can run here (fork support)."""
    return hasattr(os, "fork")


def effective_workers(workers: Optional[int]) -> int:
    """Resolve a ``workers=`` knob: 0/None/no-fork all mean serial."""
    if not workers or workers <= 1 or not parallel_available():
        return 1
    return int(workers)


class ParallelTaskError(RuntimeError):
    """A task failed more times than its retry budget allows."""

    def __init__(self, message: str, task_index: Optional[int] = None,
                 cause: str = "") -> None:
        super().__init__(message)
        self.task_index = task_index
        self.cause = cause


# ---------------------------------------------------------------------------
# task-scoped state visible to item functions (both worker and serial modes)
# ---------------------------------------------------------------------------

#: Module-level staging area inherited by forked workers.  Set entries with
#: :func:`task_context` *before* constructing the pool; item functions read
#: them with :func:`get_task_context`.  Values never cross a pickle.
_TASK_CONTEXT: Dict[str, object] = {}

_WORKER_OBS: List[Observability] = []


def get_task_context() -> Dict[str, object]:
    """The staged task context (see :func:`task_context`)."""
    return _TASK_CONTEXT


@contextmanager
def task_context(**entries: object):
    """Stage fork-inherited state for item functions.

    Must wrap pool construction — workers fork at construction (and at
    respawn, which also happens inside the ``with``), inheriting whatever
    is staged here without any pickling::

        with task_context(answerer=answerer):
            with WorkerPool(4) as pool:
                pool.map_chunked(_item_fn, items)
    """
    saved = {key: _TASK_CONTEXT[key] for key in entries if key in _TASK_CONTEXT}
    _TASK_CONTEXT.update(entries)
    try:
        yield _TASK_CONTEXT
    finally:
        for key in entries:
            if key in saved:
                _TASK_CONTEXT[key] = saved[key]
            else:
                _TASK_CONTEXT.pop(key, None)


@contextmanager
def task_obs(obs: Observability):
    """Make ``obs`` the handle :func:`worker_obs` returns (serial mode)."""
    _WORKER_OBS.append(obs)
    try:
        yield obs
    finally:
        _WORKER_OBS.pop()


def worker_obs() -> Observability:
    """The Observability of the currently executing task.

    Inside a pool worker this is the per-task handle whose export ships
    back with the result; in a serial fallback it is whatever the caller
    pushed with :func:`task_obs` (typically the parent handle).  Outside
    both, a throwaway handle — recording is then a no-op by design.
    """
    if _WORKER_OBS:
        return _WORKER_OBS[-1]
    return Observability()


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------


def _maybe_export(obs: Observability) -> Optional[Dict[str, object]]:
    """Ship the task's obs only when something was recorded."""
    exported = obs.export()
    if not exported["metrics"]["counters"] and not exported["metrics"]["gauges"] \
            and not exported["metrics"]["histograms"] and not exported["spans"]:
        return None
    return exported


def _worker_main(worker_id: int, conn, result_q, initializer, initargs) -> None:
    try:
        if initializer is not None:
            initializer(*initargs)
        result_q.put(("ready", worker_id, os.getpid()))
        while True:
            try:
                task = conn.recv()
            except (EOFError, OSError):
                return
            if task is None:
                return
            task_id, attempt, fn, chunk = task
            obs = Observability()
            try:
                with task_obs(obs):
                    payload = [fn(item) for item in chunk]
            except Exception:
                result_q.put(("error", worker_id, task_id, attempt,
                              traceback.format_exc()))
            else:
                result_q.put(("done", worker_id, task_id, attempt,
                              payload, _maybe_export(obs)))
    except KeyboardInterrupt:
        pass


# ---------------------------------------------------------------------------
# process lifecycle (shared with the serve fleet)
# ---------------------------------------------------------------------------


class ProcessSupervisor:
    """Fork-process lifecycle shared by :class:`WorkerPool` and
    :class:`repro.serve.fleet.FleetServer`: pipe-oriented spawn, kill+join
    teardown, and counted respawn.

    :meth:`spawn` builds a one-way parent→child command pipe, starts a
    daemon process running ``target(proc_id, recv_end, *extra_args)``,
    closes the child's pipe end in the parent, and returns
    ``(process, send_conn)`` — the parent dispatches over ``send_conn``.
    """

    def __init__(self, obs: Optional[Observability] = None,
                 respawn_counter: str = "parallel.worker_respawns") -> None:
        if not parallel_available():
            raise RuntimeError("ProcessSupervisor requires os.fork")
        self.ctx = multiprocessing.get_context("fork")
        self.obs = obs if obs is not None else Observability()
        self.respawn_counter = respawn_counter

    def spawn(self, target: Callable, proc_id: int,
              extra_args: Tuple = ()) -> Tuple[object, object]:
        recv_end, send_end = self.ctx.Pipe(duplex=False)
        # Pipe(False) gives (recv, send): the child reads commands from
        # recv_end while the parent keeps send_end for dispatch.
        process = self.ctx.Process(
            target=target,
            args=(proc_id, recv_end) + tuple(extra_args),
            daemon=True)
        process.start()
        recv_end.close()  # parent keeps only the sending end
        return process, send_end

    def terminate(self, process, conn, join_timeout: float = 2.0) -> None:
        """Kill (if alive), join, and close the dispatch pipe."""
        if process.is_alive():
            process.kill()
        process.join(timeout=join_timeout)
        try:
            conn.close()
        except OSError:
            pass

    def respawn(self, target: Callable, proc_id: int, extra_args: Tuple,
                process, conn) -> Tuple[object, object]:
        """Tear the dead/hung process down and spawn a replacement."""
        self.terminate(process, conn)
        replacement = self.spawn(target, proc_id, extra_args)
        self.obs.registry.counter(self.respawn_counter).inc()
        return replacement


# ---------------------------------------------------------------------------
# parent-side pool
# ---------------------------------------------------------------------------

#: Monotonic pool ids making absorb keys unique across pools in a process.
_POOL_SEQ = itertools.count()


class _WorkerSlot:
    """One worker position: process + dispatch pipe + scheduling state."""

    __slots__ = ("process", "conn", "state", "task_id", "attempt",
                 "dispatched_at")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.state = "starting"  # starting -> idle <-> busy; closed at exit
        self.task_id: Optional[int] = None
        self.attempt = 0
        self.dispatched_at = 0.0


class _Task:
    """One chunk in flight through the pool."""

    __slots__ = ("task_id", "index", "fn", "chunk", "attempts")

    def __init__(self, task_id: int, index: int, fn, chunk) -> None:
        self.task_id = task_id
        self.index = index
        self.fn = fn
        self.chunk = chunk
        self.attempts = 0


class WorkerPool:
    """Forked process pool: work-stealing dispatch, respawn, retries.

    Parameters
    ----------
    n_workers:
        Worker process count (>= 1).
    initializer, initargs:
        Run once in every (re)spawned worker before it accepts tasks —
        e.g. attaching a :class:`~repro.parallel.arena.ArenaHandle`.
        Must be picklable (module-level function, plain-data args).
    task_timeout:
        Default per-task (per-chunk) wall-clock budget in seconds; a task
        over budget has its worker killed and is retried.  ``None`` waits
        forever.
    max_retries:
        Extra attempts granted to a task after its first failure (crash,
        timeout, or exception) before :class:`ParallelTaskError`.
    obs:
        Parent observability handle; receives pool counters
        (``parallel.*``), a span per map, and each accepted task's worker
        snapshot (absorbed exactly once).  Private when omitted.
    """

    def __init__(self, n_workers: int, *, initializer: Optional[Callable] = None,
                 initargs: Tuple = (), task_timeout: Optional[float] = None,
                 max_retries: int = MAX_RETRIES,
                 obs: Optional[Observability] = None) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if not parallel_available():
            raise RuntimeError("WorkerPool requires os.fork "
                               "(use the serial fallback on this platform)")
        self.n_workers = n_workers
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.obs = obs if obs is not None else Observability()
        self._supervisor = ProcessSupervisor(obs=self.obs)
        self._ctx = self._supervisor.ctx
        self._pool_uid = next(_POOL_SEQ)
        self._result_q = self._ctx.Queue()
        self._initializer = initializer
        self._initargs = initargs
        self._slots: List[_WorkerSlot] = []
        self._active: Dict[int, _Task] = {}
        self._next_task_id = 0
        self._closed = False
        for worker_id in range(n_workers):
            self._slots.append(self._spawn(worker_id))

    # ------------------------------------------------------------------
    def _worker_args(self) -> Tuple:
        return (self._result_q, self._initializer, self._initargs)

    def _spawn(self, worker_id: int) -> _WorkerSlot:
        process, send_end = self._supervisor.spawn(
            _worker_main, worker_id, self._worker_args())
        return _WorkerSlot(process, send_end)

    def _respawn(self, worker_id: int) -> None:
        slot = self._slots[worker_id]
        process, conn = self._supervisor.respawn(
            _worker_main, worker_id, self._worker_args(),
            slot.process, slot.conn)
        self._slots[worker_id] = _WorkerSlot(process, conn)

    # ------------------------------------------------------------------
    def map_chunked(self, fn: Callable, items: Sequence, *,
                    chunk_size: Optional[int] = None,
                    timeout: Optional[float] = None) -> List:
        """Apply ``fn`` to every item across the workers; ordered results.

        Items travel in chunks of ``chunk_size`` (default: ~4 chunks per
        worker) — the unit of dispatch, timeout, and retry.  ``fn`` must be
        a module-level (picklable) function of one item; big shared inputs
        belong in :func:`task_context` or a ``TensorArena``, not in items.
        The returned list is in input order regardless of completion order.
        """
        flat: List = []
        for _, part in self.imap_chunked(fn, items, chunk_size=chunk_size,
                                         timeout=timeout):
            flat.extend(part)
        return flat

    def imap_chunked(self, fn: Callable, items: Sequence, *,
                     chunk_size: Optional[int] = None,
                     timeout: Optional[float] = None,
                     ) -> Iterator[Tuple[int, List]]:
        """Like :meth:`map_chunked` but yields ``(chunk_index, results)``
        lazily, in chunk order, as chunks complete (ordered streaming)."""
        if self._closed:
            raise ValueError("pool is closed")
        items = list(items)
        if not items:
            return
        if chunk_size is None:
            chunk_size = max(1, math.ceil(len(items) / (self.n_workers * 4)))
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        timeout = self.task_timeout if timeout is None else timeout
        chunks = [items[start: start + chunk_size]
                  for start in range(0, len(items), chunk_size)]
        registry = self.obs.registry
        registry.counter("parallel.maps").inc()
        registry.counter("parallel.items").inc(len(items))
        registry.counter("parallel.tasks").inc(len(chunks))
        with self.obs.span("parallel.map", items=len(items),
                           chunks=len(chunks), workers=self.n_workers):
            yield from self._run(fn, chunks, timeout)

    # ------------------------------------------------------------------
    def _run(self, fn: Callable, chunks: List[List], timeout: Optional[float],
             ) -> Iterator[Tuple[int, List]]:
        pending: deque = deque()
        for index, chunk in enumerate(chunks):
            task = _Task(self._next_task_id, index, fn, chunk)
            self._next_task_id += 1
            pending.append(task)
            self._active[task.task_id] = task
        completed: Dict[int, List] = {}
        next_yield = 0
        respawn_budget = self.n_workers * (self.max_retries + 2)
        try:
            while next_yield < len(chunks):
                self._dispatch(pending)
                self._drain_results(pending, completed)
                respawn_budget = self._police_workers(
                    pending, timeout, respawn_budget)
                while next_yield in completed:
                    yield next_yield, completed.pop(next_yield)
                    next_yield += 1
        finally:
            # Abandoned/errored maps leave nothing behind: forget tasks so
            # stale completions from still-running workers are discarded.
            for task in pending:
                self._active.pop(task.task_id, None)
            for task_id in [t for t in self._active
                            if any(s.task_id == t for s in self._slots)]:
                self._active.pop(task_id, None)

    def _dispatch(self, pending: deque) -> None:
        for slot in self._slots:
            if not pending:
                return
            if slot.state != "idle":
                continue
            task = pending.popleft()
            task.attempts += 1
            try:
                slot.conn.send((task.task_id, task.attempts, task.fn,
                                task.chunk))
            except (OSError, BrokenPipeError):
                # Worker died between polls; put the task back, liveness
                # policing will respawn the slot and charge the attempt.
                task.attempts -= 1
                pending.appendleft(task)
                slot.state = "starting"
                continue
            slot.state = "busy"
            slot.task_id = task.task_id
            slot.attempt = task.attempts
            slot.dispatched_at = time.monotonic()

    def _drain_results(self, pending: deque, completed: Dict[int, List]) -> None:
        block = True
        while True:
            try:
                message = self._result_q.get(
                    timeout=POLL_INTERVAL if block else 0)
            except stdlib_queue.Empty:
                return
            block = False
            kind = message[0]
            if kind == "ready":
                _, worker_id, _pid = message
                slot = self._slots[worker_id]
                if slot.state == "starting":
                    slot.state = "idle"
                continue
            if kind == "done":
                _, worker_id, task_id, attempt, payload, exported = message
                self._release_slot(worker_id, task_id)
                task = self._active.get(task_id)
                if task is None or attempt != task.attempts:
                    # Stale: an earlier attempt of a retried task finished
                    # late (its worker was timed out or presumed dead).
                    # Only the live attempt's result and obs export count.
                    continue
                self._active.pop(task_id)
                try:
                    # Completed before its requeued retry was re-dispatched:
                    # drop the pending copy instead of running it again.
                    pending.remove(task)
                except ValueError:
                    pass
                completed[task.index] = payload
                self.obs.registry.counter("parallel.tasks_completed").inc()
                if exported is not None:
                    # Keyed by stable task identity, not the per-attempt
                    # registry uid — each attempt runs under a fresh
                    # registry, so uid keying would let two attempts of one
                    # task both land and double-count its metrics.
                    task_key = f"parallel.pool{self._pool_uid}.task{task_id}"
                    if self.obs.absorb(exported, key=task_key):
                        self.obs.registry.counter(
                            "parallel.snapshots_absorbed").inc()
                continue
            # kind == "error"
            _, worker_id, task_id, attempt, trace_text = message
            self._release_slot(worker_id, task_id)
            task = self._active.get(task_id)
            if task is None or attempt != task.attempts or task in pending:
                continue  # stale attempt, or the task is already requeued
            self.obs.registry.counter("parallel.task_errors").inc()
            self._retry_or_fail(task, pending, trace_text)

    def _release_slot(self, worker_id: int, task_id: int) -> None:
        slot = self._slots[worker_id]
        if slot.task_id == task_id:
            slot.state = "idle"
            slot.task_id = None

    def _police_workers(self, pending: deque, timeout: Optional[float],
                        respawn_budget: int) -> int:
        now = time.monotonic()
        for worker_id, slot in enumerate(self._slots):
            dead = not slot.process.is_alive()
            timed_out = (slot.state == "busy" and timeout is not None
                         and now - slot.dispatched_at > timeout)
            if not dead and not timed_out:
                continue
            if timed_out and not dead:
                self.obs.registry.counter("parallel.task_timeouts").inc()
            task = self._active.get(slot.task_id) if slot.task_id is not None \
                else None
            if respawn_budget <= 0:
                raise ParallelTaskError(
                    "workers keep dying faster than the pool may respawn "
                    f"them ({self.n_workers * (self.max_retries + 2)} "
                    "respawns exhausted)")
            self._respawn(worker_id)
            respawn_budget -= 1
            if task is not None:
                cause = "task timeout" if timed_out else "worker died"
                self._retry_or_fail(task, pending, cause)
        return respawn_budget

    def _retry_or_fail(self, task: _Task, pending: deque, cause: str) -> None:
        if task.attempts <= self.max_retries:
            self.obs.registry.counter("parallel.task_retries").inc()
            pending.appendleft(task)
            return
        self._active.pop(task.task_id, None)
        raise ParallelTaskError(
            f"task {task.index} failed {task.attempts} time(s), "
            f"retry budget ({self.max_retries}) exhausted:\n{cause}",
            task_index=task.index, cause=cause)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut every worker down (idempotent); the pool is unusable after."""
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            if slot.process.is_alive():
                try:
                    slot.conn.send(None)
                except (OSError, BrokenPipeError):
                    pass
        deadline = time.monotonic() + 2.0
        for slot in self._slots:
            slot.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join(timeout=1.0)
            try:
                slot.conn.close()
            except OSError:
                pass
        self._result_q.close()
        self._active.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
