"""Process-parallel execution layer: shared-memory tensors + worker pool.

Two halves, designed to be used together:

* :class:`TensorArena` — publish numpy arrays (model state dicts, merge-plan
  buffers) into ``multiprocessing.shared_memory`` once; workers attach the
  picklable :class:`ArenaHandle` and read zero-copy, read-only views.
* :class:`WorkerPool` — fork-based work-stealing pool with per-task
  timeouts, automatic respawn of dead workers, bounded retries, and
  deterministic (input-order) results; per-task observability snapshots
  ship back with each result and fold into the parent handle exactly once.

Every ``workers=`` knob in the repo (eval harness, merge-engine λ-sweeps,
model zoo, RAG indexing) resolves through :func:`effective_workers` and
falls back to the serial code path when parallelism is unavailable or not
requested — results are bit-identical either way.
"""

from .arena import ALIGN, ArenaHandle, ArenaView, TensorArena, TensorSpec
from .pool import (MAX_RETRIES, POLL_INTERVAL, ParallelTaskError,
                   ProcessSupervisor, WorkerPool, effective_workers,
                   get_task_context, parallel_available, task_context,
                   task_obs, worker_obs)

__all__ = [
    "ALIGN", "ArenaHandle", "ArenaView", "TensorArena", "TensorSpec",
    "MAX_RETRIES", "POLL_INTERVAL", "ParallelTaskError", "ProcessSupervisor",
    "WorkerPool", "effective_workers", "get_task_context",
    "parallel_available", "task_context", "task_obs", "worker_obs",
]
