"""Parallel-eval benchmark: WorkerPool fan-out vs the serial eval loop.

The acceptance workload from the parallel-layer design: the OpenROAD QA
benchmark on the ``grande`` backbone (the largest preset, playing
LLaMA2-70B's role) evaluated once through the serial item loop and once
through a :class:`~repro.parallel.WorkerPool`.  Both sides run the same
answerer over the same triplets, so every response — and hence every
ROUGE-L score — must be bit-identical; only wall-clock may differ.

Timing rounds are interleaved (parallel run, serial run, repeated) with
the min taken per side, which discards co-tenant load spikes without
favouring either arm — the same methodology as the training benchmark.

The headline target is a >= 2x speedup at 4 workers, but that is only
physically reachable when the machine actually has that many cores, so
the report records ``cpu_count`` and a ``target_applies`` flag and the
bench test gates its speedup assertion on it.  On starved machines the
run still validates parity, fault-free shutdown, and the absence of
leaked shared-memory segments.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional

from ..obs import Observability

#: The headline speedup floor, asserted only when ``target_applies``.
SPEEDUP_TARGET = 2.0


def _eval_workload(backbone: str, n_items: Optional[int],
                   max_new_tokens: int, seed: int):
    """Build the (answerer, triplets) pair both arms share."""
    from ..data.openroad_qa import eval_triplets
    from ..data.vocab import build_tokenizer
    from ..eval.harness import LMAnswerer
    from ..nn.transformer import TransformerLM, preset_config

    tokenizer = build_tokenizer()
    config = preset_config(backbone, vocab_size=tokenizer.vocab_size,
                           seed=seed)
    model = TransformerLM(config)
    model.eval()
    answerer = LMAnswerer(model, tokenizer, max_new_tokens=max_new_tokens,
                          name=f"{backbone}-bench")
    triplets = eval_triplets()
    if n_items is not None:
        if n_items < 1:
            raise ValueError(f"n_items must be >= 1, got {n_items}")
        triplets = triplets[:n_items]
    return answerer, triplets


def run_parallel_benchmark(backbone: str = "grande", workers: int = 4,
                           n_items: Optional[int] = None,
                           max_new_tokens: int = 24, repeats: int = 3,
                           seed: int = 0,
                           obs: Optional[Observability] = None
                           ) -> Dict[str, object]:
    """Time the OpenROAD QA eval with ``workers`` workers vs serially.

    Returns a JSON-serialisable report: per-side wall-clock and items/sec,
    the parallel-over-serial speedup, a bitwise parity verdict over
    responses and scores, the machine's core count with the derived
    ``target_applies`` flag, and the parallel run's metric-registry
    snapshot (pool counters included).
    """
    from ..eval.harness import run_openroad
    from . import TensorArena, effective_workers

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if effective_workers(workers) <= 1:
        raise ValueError(f"workers must enable a pool, got {workers}")
    obs = obs if obs is not None else Observability()
    answerer, triplets = _eval_workload(backbone, n_items, max_new_tokens,
                                        seed)

    # Parity pass (doubles as per-side warm-up: BLAS spin-up, mask/RoPE
    # caches, and one full pool lifecycle all settle before timing).
    parallel_report = run_openroad(answerer, triplets, obs=obs,
                                   workers=workers)
    serial_report = run_openroad(answerer, triplets)
    parity_ok = (parallel_report.responses == serial_report.responses
                 and parallel_report.by_category == serial_report.by_category
                 and parallel_report.overall == serial_report.overall)

    # Interleave the timed rounds (parallel run, then serial run, repeated)
    # so both sides sample the same machine conditions; min over rounds
    # discards load spikes.
    parallel = {"seconds": float("inf")}
    serial = {"seconds": float("inf")}
    for _ in range(repeats):
        started = time.perf_counter()
        run_openroad(answerer, triplets, workers=workers)
        parallel["seconds"] = min(parallel["seconds"],
                                  time.perf_counter() - started)
        started = time.perf_counter()
        run_openroad(answerer, triplets)
        serial["seconds"] = min(serial["seconds"],
                                time.perf_counter() - started)

    n = len(triplets)
    for side in (parallel, serial):
        side["ms_per_item"] = side["seconds"] * 1e3 / n
        side["items_per_sec"] = n / side["seconds"]
    cpu_count = os.cpu_count() or 1
    return {
        "backbone": backbone,
        "workers": workers,
        "cpu_count": cpu_count,
        "n_items": n,
        "max_new_tokens": max_new_tokens,
        "repeats": repeats,
        "serial": serial,
        "parallel": parallel,
        "speedup": serial["seconds"] / parallel["seconds"],
        "speedup_target": SPEEDUP_TARGET,
        "target_applies": cpu_count >= workers,
        "parity_ok": parity_ok,
        "leaked_segments": TensorArena.live_segments(),
        "registry": obs.registry.snapshot(),
    }


def format_parallel_report(result: Dict[str, object]) -> str:
    """Human-readable summary of :func:`run_parallel_benchmark`."""
    serial, parallel = result["serial"], result["parallel"]
    target = (f">= {result['speedup_target']:.1f}x target"
              if result["target_applies"] else
              f"target waived: {result['cpu_count']} core(s) < "
              f"{result['workers']} workers")
    lines = [
        f"workload : OpenROAD QA x {result['n_items']} items "
        f"({result['backbone']} backbone, {result['max_new_tokens']} new "
        f"tokens, best of {result['repeats']})",
        f"serial   : {serial['ms_per_item']:8.1f} ms/item  "
        f"{serial['items_per_sec']:6.2f} items/s",
        f"parallel : {parallel['ms_per_item']:8.1f} ms/item  "
        f"{parallel['items_per_sec']:6.2f} items/s  "
        f"({result['workers']} workers)",
        f"speedup  : {result['speedup']:8.2f}x  ({target})",
        f"parity   : responses and scores "
        f"{'bit-identical' if result['parity_ok'] else 'DIVERGED'}",
    ]
    return "\n".join(lines)


def write_snapshot(result: Dict[str, object], path) -> None:
    """Write the benchmark report as a JSON perf-trajectory snapshot."""
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
