"""Low-rank adaptation (LoRA) for the transformer substrate.

The paper's DAFT recipe fine-tunes with LoRA (rank 8, alpha 16) and then the
merged-weight model is what ChipAlign fuses.  This module provides:

* :class:`LoRALinear` — a :class:`~repro.nn.layers.Linear` augmented with a
  trainable low-rank delta ``scale * B A`` while the base weight is frozen.
* :func:`apply_lora` — wrap the attention and MLP projections of a
  :class:`~repro.nn.transformer.TransformerLM` in-place.
* :func:`merge_lora` — fold every adapter back into its base weight, restoring
  a plain model whose state dict is mergeable by :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .layers import Linear
from .module import Module, Parameter
from .tensor import Tensor
from .transformer import TransformerLM

DEFAULT_TARGETS = ("q_proj", "k_proj", "v_proj", "o_proj", "gate_proj", "up_proj", "down_proj")


class LoRALinear(Module):
    """A frozen linear layer plus a trainable low-rank update.

    Forward: ``y = x W^T + scale * (x A^T) B^T`` where ``A`` is ``(r, in)``
    and ``B`` is ``(out, r)``; ``B`` starts at zero so the wrapped layer is
    initially identical to the base layer.
    """

    def __init__(self, base: Linear, rank: int, alpha: float,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        if rank <= 0:
            raise ValueError(f"LoRA rank must be positive, got {rank}")
        self.base = base
        self.rank = rank
        self.alpha = alpha
        self.scale = alpha / rank
        base.weight.requires_grad = False
        if base.bias is not None:
            base.bias.requires_grad = False
        rng = np.random.default_rng(seed)
        self.lora_a = Parameter(rng.normal(0.0, 0.01, size=(rank, base.in_features)))
        self.lora_b = Parameter(np.zeros((base.out_features, rank)))

    def forward(self, x: Tensor) -> Tensor:
        out = self.base(x)
        delta = (x @ self.lora_a.swapaxes(0, 1)) @ self.lora_b.swapaxes(0, 1)
        return out + delta * self.scale

    def delta_weight(self) -> np.ndarray:
        """The dense weight update ``scale * B A`` this adapter represents."""
        return self.scale * (self.lora_b.data @ self.lora_a.data)


def _iter_target_parents(model: TransformerLM, targets: Sequence[str]):
    """Yield ``(parent_module, attr_name, linear)`` for each adaptable layer."""
    for _, module in model.named_modules():
        for attr in targets:
            child = getattr(module, attr, None)
            if isinstance(child, Linear):
                yield module, attr, child


def apply_lora(model: TransformerLM, rank: int = 8, alpha: float = 16.0,
               targets: Sequence[str] = DEFAULT_TARGETS, seed: int = 0) -> List[LoRALinear]:
    """Wrap matching linear layers of ``model`` with LoRA adapters, in place.

    All non-adapter parameters are frozen.  Returns the adapters created.
    """
    adapters: List[LoRALinear] = []
    rng = np.random.default_rng(seed)
    replacements: List[Tuple[Module, str, Linear]] = list(_iter_target_parents(model, targets))
    if not replacements:
        raise ValueError(f"no linear layers matched targets {list(targets)}")
    for p in model.parameters():
        p.requires_grad = False
    for parent, attr, linear in replacements:
        adapter = LoRALinear(linear, rank=rank, alpha=alpha,
                             seed=int(rng.integers(0, 2 ** 31 - 1)))
        setattr(parent, attr, adapter)
        adapters.append(adapter)
    return adapters


def merge_lora(model: TransformerLM) -> TransformerLM:
    """Fold all LoRA adapters of ``model`` into base weights, in place.

    After merging, every :class:`LoRALinear` is replaced by its base
    :class:`Linear` (with the delta added) and all parameters are trainable
    again.  Returns ``model`` for chaining.
    """
    for _, module in model.named_modules():
        for attr, child in list(module._modules.items()):
            if isinstance(child, LoRALinear):
                child.base.weight.data = child.base.weight.data + child.delta_weight()
                setattr(module, attr, child.base)
    # apply_lora froze every non-adapter parameter; the merged model is a
    # plain fully-trainable model again.
    for p in model.parameters():
        p.requires_grad = True
    return model


def lora_parameters(model: TransformerLM) -> List[Parameter]:
    """Return only the trainable adapter parameters of a LoRA-wrapped model."""
    params = [p for name, p in model.named_parameters()
              if p.requires_grad and ".lora_" in name]
    if not params:
        raise ValueError("model has no trainable LoRA parameters; call apply_lora first")
    return params
