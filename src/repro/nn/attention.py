"""Multi-head causal self-attention with rotary position embeddings."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .layers import Linear
from .module import Module
from .tensor import Tensor, cat


def causal_mask(seq_len: int) -> np.ndarray:
    """Boolean mask that is True at positions a query may NOT attend to."""
    return np.triu(np.ones((seq_len, seq_len), dtype=bool), k=1)


def rope_cache(seq_len: int, head_dim: int, base: float = 10000.0):
    """Precompute the RoPE cos/sin tables.

    Returns ``(cos, sin)`` of shape ``(seq_len, head_dim)`` using the
    rotate-half (GPT-NeoX / LLaMA) convention, where the second half of the
    head dimension pairs with the first.
    """
    if head_dim % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {head_dim}")
    half = head_dim // 2
    freqs = base ** (-np.arange(half, dtype=np.float64) / half)
    angles = np.outer(np.arange(seq_len, dtype=np.float64), freqs)  # (T, half)
    cos = np.concatenate([np.cos(angles), np.cos(angles)], axis=-1)
    sin = np.concatenate([np.sin(angles), np.sin(angles)], axis=-1)
    return cos, sin


def apply_rope(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    """Rotate query/key tensors of shape ``(B, H, T, Dh)`` by position.

    Implements ``x * cos + rotate_half(x) * sin`` with rotate_half being
    ``[-x2, x1]`` for ``x = [x1, x2]`` split along the head dimension.
    """
    head_dim = x.shape[-1]
    half = head_dim // 2
    x1 = x[..., :half]
    x2 = x[..., half:]
    rotated = cat([-x2, x1], axis=-1)
    return x * cos + rotated * sin


class MultiHeadSelfAttention(Module):
    """Scaled-dot-product self-attention with a causal mask and RoPE.

    Rotary embeddings (LLaMA-style) give the relative-position structure
    that induction/copying heads need; set ``rope=False`` for the plain
    absolute-position variant (positions must then come from an external
    positional embedding).  Projections are bias-free, matching the
    LLaMA-family architectures whose weights the paper merges.
    """

    def __init__(self, dim: int, n_heads: int, seed: Optional[int] = None,
                 rope: bool = True, max_seq_len: int = 4096) -> None:
        super().__init__()
        if dim % n_heads != 0:
            raise ValueError(f"dim={dim} must be divisible by n_heads={n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.rope = rope
        rng = np.random.default_rng(seed)
        seeds = rng.integers(0, 2 ** 31 - 1, size=4)
        self.q_proj = Linear(dim, dim, bias=False, seed=int(seeds[0]))
        self.k_proj = Linear(dim, dim, bias=False, seed=int(seeds[1]))
        self.v_proj = Linear(dim, dim, bias=False, seed=int(seeds[2]))
        self.o_proj = Linear(dim, dim, bias=False, seed=int(seeds[3]))
        if rope:
            self._cos, self._sin = rope_cache(max_seq_len, self.head_dim)
        else:
            self._cos = self._sin = None

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, T, D) -> (B, H, T, Dh)
        return x.reshape(batch, seq, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)

        if self.rope:
            if seq > self._cos.shape[0]:
                self._cos, self._sin = rope_cache(seq, self.head_dim)
            cos = self._cos[:seq].astype(q.data.dtype)
            sin = self._sin[:seq].astype(q.data.dtype)
            q = apply_rope(q, cos, sin)
            k = apply_rope(k, cos, sin)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        scores = F.masked_fill(scores, causal_mask(seq), -1e30)
        attn = F.softmax(scores, axis=-1)
        ctx = attn @ v  # (B, H, T, Dh)
        merged = ctx.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.o_proj(merged)
