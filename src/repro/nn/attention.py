"""Multi-head causal self-attention with rotary position embeddings."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from . import functional as F
from . import kernels
from .kernels import causal_mask  # re-exported; cached per seq length
from .layers import Linear
from .module import Module
from .tensor import Tensor, cat

__all__ = ["MultiHeadSelfAttention", "RopeTable", "apply_rope",
           "causal_mask", "rope_cache"]


def rope_cache(seq_len: int, head_dim: int, base: float = 10000.0):
    """Precompute the RoPE cos/sin tables.

    Returns ``(cos, sin)`` of shape ``(seq_len, head_dim)`` using the
    rotate-half (GPT-NeoX / LLaMA) convention, where the second half of the
    head dimension pairs with the first.
    """
    if head_dim % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {head_dim}")
    half = head_dim // 2
    freqs = base ** (-np.arange(half, dtype=np.float64) / half)
    angles = np.outer(np.arange(seq_len, dtype=np.float64), freqs)  # (T, half)
    cos = np.concatenate([np.cos(angles), np.cos(angles)], axis=-1)
    sin = np.concatenate([np.sin(angles), np.sin(angles)], axis=-1)
    return cos, sin


class RopeTable:
    """RoPE cos/sin tables grown geometrically with per-dtype cast caching.

    The float64 master tables cover the next power of two ``>= seq``, so a
    sequence one token longer than the last regrow does not rebuild the
    trigonometry again; repeated forwards at mixed lengths just slice.  Casts
    to the model dtype happen once per (dtype, capacity) rather than per
    forward.
    """

    def __init__(self, head_dim: int, base: float = 10000.0,
                 initial_len: int = 0) -> None:
        self.head_dim = head_dim
        self.base = base
        self.capacity = 0
        self._cos64: Optional[np.ndarray] = None
        self._sin64: Optional[np.ndarray] = None
        self._cast: Dict[np.dtype, Tuple[np.ndarray, np.ndarray]] = {}
        if initial_len:
            self._grow(initial_len)

    def _grow(self, needed: int) -> None:
        capacity = 1
        while capacity < needed:
            capacity *= 2
        self._cos64, self._sin64 = rope_cache(capacity, self.head_dim, self.base)
        self.capacity = capacity
        self._cast.clear()

    def get(self, seq_len: int, dtype) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(cos, sin)`` views of shape ``(seq_len, head_dim)``."""
        if seq_len > self.capacity:
            self._grow(seq_len)
        key = np.dtype(dtype)
        pair = self._cast.get(key)
        if pair is None:
            pair = (self._cos64.astype(key), self._sin64.astype(key))
            self._cast[key] = pair
        return pair[0][:seq_len], pair[1][:seq_len]


def apply_rope(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    """Rotate query/key tensors of shape ``(B, H, T, Dh)`` by position.

    Implements ``x * cos + rotate_half(x) * sin`` with rotate_half being
    ``[-x2, x1]`` for ``x = [x1, x2]`` split along the head dimension.
    """
    head_dim = x.shape[-1]
    half = head_dim // 2
    x1 = x[..., :half]
    x2 = x[..., half:]
    rotated = cat([-x2, x1], axis=-1)
    return x * cos + rotated * sin


class MultiHeadSelfAttention(Module):
    """Scaled-dot-product self-attention with a causal mask and RoPE.

    Rotary embeddings (LLaMA-style) give the relative-position structure
    that induction/copying heads need; set ``rope=False`` for the plain
    absolute-position variant (positions must then come from an external
    positional embedding).  Projections are bias-free, matching the
    LLaMA-family architectures whose weights the paper merges.

    With ``use_fused=True`` (the default) the RoPE rotation, head split,
    score/mask/softmax/@V chain and head merge run as a single autograd node
    (:func:`repro.nn.kernels.fused_attention`); ``use_fused=False`` keeps the
    composed-op graph, which the fused kernel is differentially tested
    against.
    """

    def __init__(self, dim: int, n_heads: int, seed: Optional[int] = None,
                 rope: bool = True, max_seq_len: int = 4096,
                 use_fused: bool = True) -> None:
        super().__init__()
        if dim % n_heads != 0:
            raise ValueError(f"dim={dim} must be divisible by n_heads={n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.rope = rope
        self.use_fused = use_fused
        rng = np.random.default_rng(seed)
        seeds = rng.integers(0, 2 ** 31 - 1, size=4)
        self.q_proj = Linear(dim, dim, bias=False, seed=int(seeds[0]),
                             use_fused=use_fused)
        self.k_proj = Linear(dim, dim, bias=False, seed=int(seeds[1]),
                             use_fused=use_fused)
        self.v_proj = Linear(dim, dim, bias=False, seed=int(seeds[2]),
                             use_fused=use_fused)
        self.o_proj = Linear(dim, dim, bias=False, seed=int(seeds[3]),
                             use_fused=use_fused)
        self._rope_table = (RopeTable(self.head_dim, initial_len=max_seq_len)
                            if rope else None)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        # (B, T, D) -> (B, H, T, Dh)
        return x.reshape(batch, seq, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _plain_qkv(self) -> bool:
        """Whether q/k/v are unwrapped bias-free Linears (packable weights)."""
        return all(type(p) is Linear and p.bias is None
                   for p in (self.q_proj, self.k_proj, self.v_proj))

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        cos = sin = None
        if self.rope:
            cos, sin = self._rope_table.get(seq, x.data.dtype)

        if self.use_fused and self._plain_qkv():
            # Projections and attention in one node: one packed QKV GEMM.
            ctx = kernels.fused_attention_qkv(
                x, self.q_proj.weight, self.k_proj.weight, self.v_proj.weight,
                self.n_heads, rope_cos=cos, rope_sin=sin)
            return self.o_proj(ctx)

        q = self.q_proj(x)
        k = self.k_proj(x)
        v = self.v_proj(x)

        if self.use_fused:
            # Wrapped projections (e.g. LoRA adapters): project through the
            # modules, keep the attention core fused.
            ctx = kernels.fused_attention(q, k, v, self.n_heads,
                                          rope_cos=cos, rope_sin=sin)
            return self.o_proj(ctx)

        # Composed reference path: every op is its own autograd node.
        q = self._split_heads(q, batch, seq)
        k = self._split_heads(k, batch, seq)
        v = self._split_heads(v, batch, seq)
        if self.rope:
            q = apply_rope(q, cos, sin)
            k = apply_rope(k, cos, sin)
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        scores = F.masked_fill(scores, causal_mask(seq), kernels.MASK_VALUE)
        attn = F.softmax(scores, axis=-1)
        ctx = attn @ v  # (B, H, T, Dh)
        merged = ctx.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.o_proj(merged)
