"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the :mod:`repro.nn` substrate.  It provides a
:class:`Tensor` wrapper around ``numpy.ndarray`` that records the operations
applied to it and can compute gradients of a scalar loss with respect to every
tensor created with ``requires_grad=True``.

The engine is intentionally small: it supports exactly the operations needed
by a decoder-only transformer language model (broadcasted arithmetic, matmul,
reductions, indexing, concatenation, common nonlinearities) plus a few
conveniences.  All gradients are dense numpy arrays of the same shape as the
tensor's data.

Example
-------
>>> import numpy as np
>>> from repro.nn.tensor import Tensor
>>> x = Tensor(np.ones((2, 3)), requires_grad=True)
>>> y = (x * 3.0 + 1.0).sum()
>>> y.backward()
>>> np.allclose(x.grad, 3.0)
True
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

Arrayish = Union["Tensor", np.ndarray, float, int, list, tuple]

_grad_enabled = True

# Models train in float32 for speed; numerical tests (finite-difference
# gradient checks) switch to float64 via set_default_dtype.
_default_dtype = np.float32


def set_default_dtype(dtype) -> None:
    """Set the dtype new tensors are created with (float32 or float64)."""
    global _default_dtype
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"unsupported default dtype {dtype}")
    _default_dtype = dtype.type


def get_default_dtype():
    """Return the dtype new tensors are created with."""
    return _default_dtype


class no_grad:
    """Context manager that disables gradient recording.

    Used during evaluation and text generation, where building the autograd
    graph would waste memory.
    """

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether autograd recording is currently active."""
    return _grad_enabled


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    When a tensor of shape ``shape`` was broadcast up to ``grad.shape`` in the
    forward pass, the correct gradient contribution is the sum over the
    broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a numpy float array.
    requires_grad:
        If True, gradients are accumulated into ``self.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op")

    def __init__(
        self,
        data: Arrayish,
        requires_grad: bool = False,
        _children: Sequence["Tensor"] = (),
        _op: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=_default_dtype)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self._backward: Callable[[], None] = lambda: None
        self._prev: Tuple[Tensor, ...] = tuple(_children) if _grad_enabled else ()
        self._op = _op

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_str = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_str})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # graph machinery
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Accumulate a gradient buffer the caller hands over.

        Skips :meth:`_accumulate`'s defensive copy, so it must only be called
        with freshly allocated arrays that nothing else aliases (the fused
        kernels' hand-derived backwards qualify; views of another tensor's
        ``.grad`` do not — a later in-place ``+=`` would corrupt them).
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            if grad.dtype != self.data.dtype:
                grad = grad.astype(self.data.dtype)
            self.grad = grad
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ones, which for a scalar loss is the
            conventional ``dL/dL = 1``.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for child in node._prev:
                if id(child) not in visited:
                    stack.append((child, False))
        self.grad = np.asarray(grad, dtype=self.data.dtype)
        for node in reversed(topo):
            node._backward()

    @staticmethod
    def _wrap(other: Arrayish) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def _make(self, data: np.ndarray, children: Sequence["Tensor"], op: str) -> "Tensor":
        requires = any(c.requires_grad for c in children)
        out = Tensor(data, requires_grad=requires, _children=children if requires else (), _op=op)
        return out

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Arrayish) -> "Tensor":
        other = self._wrap(other)
        out = self._make(self.data + other.data, (self, other), "add")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad, other.shape))

        out._backward = _backward
        return out

    def __mul__(self, other: Arrayish) -> "Tensor":
        other = self._wrap(other)
        out = self._make(self.data * other.data, (self, other), "mul")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        out._backward = _backward
        return out

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: Arrayish) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return self._wrap(other) + (-self)

    def __truediv__(self, other: Arrayish) -> "Tensor":
        other = self._wrap(other)
        return self * other ** -1.0

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return self._wrap(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor ** exponent supports Python scalars only")
        out = self._make(self.data ** exponent, (self,), "pow")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        out._backward = _backward
        return out

    __radd__ = __add__
    __rmul__ = __mul__

    # ------------------------------------------------------------------
    # matmul
    # ------------------------------------------------------------------
    def __matmul__(self, other: Arrayish) -> "Tensor":
        other = self._wrap(other)
        out = self._make(self.data @ other.data, (self, other), "matmul")

        def _backward() -> None:
            a, b = self.data, other.data
            g = out.grad
            if self.requires_grad:
                if b.ndim == 1:
                    ga = np.multiply.outer(g, b) if g.ndim else g * b
                else:
                    ga = g @ np.swapaxes(b, -1, -2)
                self._accumulate(_unbroadcast(ga, self.shape))
            if other.requires_grad:
                if a.ndim == 1:
                    gb = np.multiply.outer(a, g) if g.ndim else a * g
                else:
                    gb = np.swapaxes(a, -1, -2) @ g
                other._accumulate(_unbroadcast(gb, other.shape))

        out._backward = _backward
        return out

    def matmul(self, other: Arrayish) -> "Tensor":
        return self @ other

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out = self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), "sum")

        def _backward() -> None:
            if not self.requires_grad:
                return
            g = out.grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.ndim for a in axes)
                g = np.expand_dims(g, axis=tuple(sorted(axes)))
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        out._backward = _backward
        return out

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make(out_data, (self,), "max")

        def _backward() -> None:
            if not self.requires_grad:
                return
            g = out.grad
            full = out.data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                full = np.expand_dims(full, axis=axis)
            mask = (self.data == full).astype(self.data.dtype)
            # Split gradient evenly across ties for a well-defined subgradient.
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / denom)

        out._backward = _backward
        return out

    def var(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        sq = (self - mu) ** 2.0
        return sq.mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make(self.data.reshape(shape), (self,), "reshape")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.shape))

        out._backward = _backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out = self._make(self.data.transpose(axes), (self,), "transpose")
        inverse = np.argsort(axes)

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.transpose(inverse))

        out._backward = _backward
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, idx) -> "Tensor":
        out = self._make(self.data[idx], (self,), "getitem")

        def _backward() -> None:
            if self.requires_grad:
                g = np.zeros_like(self.data)
                np.add.at(g, idx, out.grad)
                self._accumulate(g)

        out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = self._make(np.exp(self.data), (self,), "exp")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data)

        out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make(np.log(self.data), (self,), "log")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad / self.data)

        out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out = self._make(np.tanh(self.data), (self,), "tanh")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - out.data ** 2))

        out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        out = self._make(np.maximum(self.data, 0.0), (self,), "relu")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (self.data > 0))

        out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        out = self._make(1.0 / (1.0 + np.exp(-self.data)), (self,), "sigmoid")

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data * (1.0 - out.data))

        out._backward = _backward
        return out


def cat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor._wrap(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _children=tuple(tensors) if requires else (), _op="cat")
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _backward() -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer = [slice(None)] * data.ndim
                slicer[axis] = slice(start, stop)
                t._accumulate(out.grad[tuple(slicer)])

    out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [Tensor._wrap(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _children=tuple(tensors) if requires else (), _op="stack")

    def _backward() -> None:
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(np.take(out.grad, i, axis=axis))

    out._backward = _backward
    return out


def where(mask: np.ndarray, a: Arrayish, b: Arrayish) -> Tensor:
    """Differentiable elementwise select; ``mask`` is a constant boolean array."""
    a = Tensor._wrap(a)
    b = Tensor._wrap(b)
    mask = np.asarray(mask, dtype=bool)
    data = np.where(mask, a.data, b.data)
    requires = a.requires_grad or b.requires_grad
    out = Tensor(data, requires_grad=requires, _children=(a, b) if requires else (), _op="where")

    def _backward() -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(out.grad * mask, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(out.grad * (~mask), b.shape))

    out._backward = _backward
    return out
