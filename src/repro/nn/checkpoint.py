"""Checkpoint persistence for models and tokenizers.

State dicts are saved as ``.npz`` archives plus a JSON sidecar holding the
model configuration, so a checkpoint is self-describing and can be reloaded
without knowing the architecture in advance.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from .transformer import TransformerConfig, TransformerLM


def save_state_dict(state: Dict[str, np.ndarray], path) -> None:
    """Save a flat name → array mapping to an ``.npz`` file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **{k: np.asarray(v) for k, v in state.items()})


def load_state_dict(path) -> "OrderedDict[str, np.ndarray]":
    """Load a state dict previously saved by :func:`save_state_dict`."""
    with np.load(Path(path)) as archive:
        return OrderedDict((k, archive[k]) for k in archive.files)


def save_model(model: TransformerLM, path, metadata: Optional[dict] = None) -> None:
    """Save a model's weights (``<path>.npz``) and config (``<path>.json``)."""
    path = Path(path)
    save_state_dict(model.state_dict(), path.with_suffix(".npz"))
    payload = {"config": model.config.to_dict(), "metadata": metadata or {}}
    path.with_suffix(".json").write_text(json.dumps(payload, indent=2))


def load_model(path) -> Tuple[TransformerLM, dict]:
    """Load a model saved by :func:`save_model`; returns ``(model, metadata)``."""
    path = Path(path)
    payload = json.loads(path.with_suffix(".json").read_text())
    config = TransformerConfig.from_dict(payload["config"])
    model = TransformerLM(config)
    model.load_state_dict(load_state_dict(path.with_suffix(".npz")))
    return model, payload.get("metadata", {})


def checkpoint_exists(path) -> bool:
    """True if both the weight archive and the config sidecar exist."""
    path = Path(path)
    return path.with_suffix(".npz").exists() and path.with_suffix(".json").exists()
