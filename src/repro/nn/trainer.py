"""Training loop utilities for the substrate language models.

The trainer consumes token-id sequences (optionally with per-token loss
masks so supervised fine-tuning can train only on answer spans), batches and
pads them, and runs AdamW with cosine decay and gradient clipping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs import Observability
from . import functional as F
from . import kernels
from .module import Parameter
from .optim import AdamW, CosineSchedule, clip_grad_norm
from .transformer import TransformerLM

IGNORE_INDEX = -100


@dataclass
class TrainConfig:
    """Hyperparameters for :class:`Trainer`."""

    lr: float = 2e-3
    epochs: int = 20
    batch_size: int = 8
    weight_decay: float = 0.01
    warmup_frac: float = 0.05
    grad_clip: float = 1.0
    seed: int = 0
    min_lr: float = 1e-5
    log_every: int = 0  # 0 disables progress printing
    # Group similar-length sequences into batches (minimises padding waste);
    # batch order is still shuffled every epoch.
    bucket_by_length: bool = True
    # Use the single-node fused cross-entropy kernel for the loss; False
    # keeps the composed reference implementation (differential testing).
    use_fused: bool = True


@dataclass
class TrainResult:
    """Loss trace returned by :meth:`Trainer.fit`."""

    losses: List[float] = field(default_factory=list)
    steps: int = 0

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no training steps were run")
        return self.losses[-1]


def pad_batch(sequences: Sequence[Sequence[int]], pad_id: int,
              masks: Optional[Sequence[Sequence[int]]] = None) -> Tuple[np.ndarray, np.ndarray]:
    """Pad variable-length sequences into inputs and shifted targets.

    Returns ``(inputs, targets)`` each of shape ``(batch, T-1)`` where
    ``targets`` uses :data:`IGNORE_INDEX` at padded positions and at positions
    masked out by ``masks`` (a 0/1 per-token array aligned with each sequence;
    a 0 means "do not train on predicting this token").
    """
    if not sequences:
        raise ValueError("empty batch")
    max_len = max(len(s) for s in sequences)
    if max_len < 2:
        raise ValueError("sequences must have at least 2 tokens to form targets")
    inputs = np.full((len(sequences), max_len - 1), pad_id, dtype=np.int64)
    targets = np.full((len(sequences), max_len - 1), IGNORE_INDEX, dtype=np.int64)
    for i, seq in enumerate(sequences):
        seq = np.asarray(seq, dtype=np.int64)
        inputs[i, : len(seq) - 1] = seq[:-1]
        tgt = seq[1:].copy()
        if masks is not None:
            m = np.asarray(masks[i], dtype=np.int64)
            if len(m) != len(seq):
                raise ValueError(
                    f"mask length {len(m)} != sequence length {len(seq)}"
                )
            tgt = np.where(m[1:] > 0, tgt, IGNORE_INDEX)
        targets[i, : len(tgt)] = tgt
    return inputs, targets


class Trainer:
    """Minimal next-token-prediction trainer.

    Parameters
    ----------
    model:
        The language model to train.
    pad_id:
        Padding token id used when batching.
    config:
        Optimisation hyperparameters.
    parameters:
        Optional explicit parameter list (used by LoRA fine-tuning to train
        only adapter weights); defaults to all model parameters.
    obs:
        Shared :class:`~repro.obs.Observability`; :meth:`fit` records
        ``train.fit``/``train.epoch`` spans plus per-epoch loss and
        throughput gauges into it.  Private when omitted.
    """

    def __init__(self, model: TransformerLM, pad_id: int,
                 config: Optional[TrainConfig] = None,
                 parameters: Optional[List[Parameter]] = None,
                 obs: Optional[Observability] = None) -> None:
        self.model = model
        self.pad_id = pad_id
        self.config = config or TrainConfig()
        self.obs = obs if obs is not None else Observability()
        params = parameters if parameters is not None else model.parameters()
        self.optimizer = AdamW(params, lr=self.config.lr,
                               weight_decay=self.config.weight_decay)

    def fit(self, sequences: Sequence[Sequence[int]],
            masks: Optional[Sequence[Sequence[int]]] = None) -> TrainResult:
        """Train for ``config.epochs`` epochs over ``sequences``.

        ``masks`` (optional) aligns with ``sequences``: per-token 0/1 flags,
        0 meaning the token is context and should not contribute loss.
        """
        cfg = self.config
        if masks is not None and len(masks) != len(sequences):
            raise ValueError("masks must align one-to-one with sequences")
        n = len(sequences)
        if n == 0:
            raise ValueError("no training sequences")
        rng = np.random.default_rng(cfg.seed)
        steps_per_epoch = (n + cfg.batch_size - 1) // cfg.batch_size
        total_steps = steps_per_epoch * cfg.epochs
        warmup = min(int(total_steps * cfg.warmup_frac), total_steps - 1)
        schedule = CosineSchedule(cfg.lr, total_steps, warmup_steps=max(0, warmup),
                                  min_lr=cfg.min_lr)
        result = TrainResult()
        self.model.train()
        lengths = np.array([len(s) for s in sequences])
        registry = self.obs.registry
        # Route fused-kernel spans and saved-bytes counters into this
        # trainer's observability for the duration of the fit.
        prev_kernel_obs = kernels.set_kernel_observability(self.obs)
        try:
            result = self._fit_epochs(sequences, masks, cfg, rng, schedule,
                                      lengths, registry, result, total_steps)
        finally:
            kernels.set_kernel_observability(prev_kernel_obs)
        self.model.eval()
        return result

    def _fit_epochs(self, sequences, masks, cfg, rng, schedule, lengths,
                    registry, result, total_steps) -> TrainResult:
        n = len(sequences)
        step = 0
        with self.obs.span("train.fit", epochs=cfg.epochs, sequences=n):
            for epoch in range(cfg.epochs):
                if cfg.bucket_by_length:
                    # Sort by length with random jitter, then shuffle whole
                    # batches.
                    jitter = rng.random(n) * 2.0
                    order = np.argsort(lengths + jitter, kind="stable")
                    starts = np.arange(0, n, cfg.batch_size)
                    rng.shuffle(starts)
                else:
                    order = rng.permutation(n)
                    starts = np.arange(0, n, cfg.batch_size)
                epoch_losses: List[float] = []
                epoch_tokens = 0
                epoch_started = self.obs.clock()
                with self.obs.span("train.epoch", epoch=epoch):
                    for start in starts:
                        idx = order[start: start + cfg.batch_size]
                        batch_seqs = [sequences[i] for i in idx]
                        batch_masks = ([masks[i] for i in idx]
                                       if masks is not None else None)
                        inputs, targets = pad_batch(batch_seqs, self.pad_id,
                                                    batch_masks)
                        n_tok = int((targets != IGNORE_INDEX).sum())
                        if n_tok == 0:
                            continue
                        schedule.apply(self.optimizer, step)
                        loss = self._loss(inputs, targets)
                        self.optimizer.zero_grad()
                        loss.backward()
                        clip_grad_norm(self.optimizer.params, cfg.grad_clip)
                        self.optimizer.step()
                        # One scalar pull per step; .item() is the kind of
                        # device-sync read that must not run three times.
                        loss_val = loss.item()
                        result.losses.append(loss_val)
                        epoch_losses.append(loss_val)
                        epoch_tokens += n_tok
                        step += 1
                        if cfg.log_every and step % cfg.log_every == 0:
                            print(f"epoch {epoch} step {step}/{total_steps} "
                                  f"loss {loss_val:.4f}")
                elapsed = self.obs.clock() - epoch_started
                registry.counter("train.steps").inc(len(epoch_losses))
                registry.counter("train.tokens").inc(epoch_tokens)
                registry.counter("train.epochs").inc()
                if epoch_losses:
                    registry.gauge("train.epoch_loss").set(
                        sum(epoch_losses) / len(epoch_losses))
                registry.gauge("train.tokens_per_second").set(
                    epoch_tokens / elapsed if elapsed > 0 else 0.0)
        result.steps = step
        return result

    def _loss(self, inputs: np.ndarray, targets: np.ndarray):
        """Batch loss through the fused whole-head node when available.

        With ``config.use_fused`` and a model exposing :meth:`loss` (e.g.
        :class:`TransformerLM`), the final norm, LM head and cross-entropy
        run as one autograd node; otherwise the logits are materialized and
        fed to the (fused or composed) cross-entropy.
        """
        if self.config.use_fused and hasattr(self.model, "loss"):
            return self.model.loss(inputs, targets, ignore_index=IGNORE_INDEX)
        logits = self.model(inputs)
        return F.cross_entropy(logits, targets, ignore_index=IGNORE_INDEX,
                               use_fused=self.config.use_fused)

    def evaluate_loss(self, sequences: Sequence[Sequence[int]],
                      masks: Optional[Sequence[Sequence[int]]] = None) -> float:
        """Mean cross-entropy over ``sequences`` without updating weights."""
        from .tensor import no_grad

        self.model.eval()
        total, count = 0.0, 0
        with no_grad():
            for start in range(0, len(sequences), self.config.batch_size):
                batch_seqs = list(sequences[start: start + self.config.batch_size])
                batch_masks = (list(masks[start: start + self.config.batch_size])
                               if masks is not None else None)
                inputs, targets = pad_batch(batch_seqs, self.pad_id, batch_masks)
                n_tok = int((targets != IGNORE_INDEX).sum())
                if n_tok == 0:
                    continue
                loss = self._loss(inputs, targets)
                total += loss.item() * n_tok
                count += n_tok
        if count == 0:
            raise ValueError("no unmasked tokens to evaluate")
        return total / count
