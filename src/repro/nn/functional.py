"""Functional neural-network operations built on the autograd :class:`Tensor`.

These are the composite operations a transformer needs — numerically stable
softmax and cross-entropy, GELU, embedding lookup, masking — expressed either
as custom autograd nodes (where a fused backward is much cheaper) or as
compositions of :class:`~repro.nn.tensor.Tensor` primitives.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, _unbroadcast


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` with a fused backward."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    probs = e / e.sum(axis=axis, keepdims=True)
    out = Tensor(probs, requires_grad=x.requires_grad, _children=(x,) if x.requires_grad else (), _op="softmax")

    def _backward() -> None:
        if not x.requires_grad:
            return
        g = out.grad
        dot = (g * probs).sum(axis=axis, keepdims=True)
        x._accumulate(probs * (g - dot))

    out._backward = _backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))`` with a fused backward."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    logp = shifted - logsumexp
    out = Tensor(logp, requires_grad=x.requires_grad, _children=(x,) if x.requires_grad else (), _op="log_softmax")

    def _backward() -> None:
        if not x.requires_grad:
            return
        g = out.grad
        x._accumulate(g - np.exp(logp) * g.sum(axis=axis, keepdims=True))

    out._backward = _backward
    return out


def gelu(x: Tensor) -> Tensor:
    """Gaussian Error Linear Unit (tanh approximation, as in GPT-2/LLaMA-era stacks)."""
    c = np.sqrt(2.0 / np.pi)
    inner = c * (x.data + 0.044715 * x.data ** 3)
    t = np.tanh(inner)
    out_data = 0.5 * x.data * (1.0 + t)
    out = Tensor(out_data, requires_grad=x.requires_grad, _children=(x,) if x.requires_grad else (), _op="gelu")

    def _backward() -> None:
        if not x.requires_grad:
            return
        dt = (1.0 - t ** 2) * c * (1.0 + 3 * 0.044715 * x.data ** 2)
        local = 0.5 * (1.0 + t) + 0.5 * x.data * dt
        x._accumulate(out.grad * local)

    out._backward = _backward
    return out


def silu(x: Tensor) -> Tensor:
    """SiLU / swish activation ``x * sigmoid(x)`` (used by LLaMA-style MLPs)."""
    sig = 1.0 / (1.0 + np.exp(-x.data))
    out = Tensor(x.data * sig, requires_grad=x.requires_grad, _children=(x,) if x.requires_grad else (), _op="silu")

    def _backward() -> None:
        if not x.requires_grad:
            return
        local = sig * (1.0 + x.data * (1.0 - sig))
        x._accumulate(out.grad * local)

    out._backward = _backward
    return out


def embedding(weight: Tensor, ids: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` by integer ``ids`` (any shape).

    Returns a tensor of shape ``ids.shape + (embedding_dim,)``; the backward
    pass scatter-adds gradients into the embedding matrix.
    """
    ids = np.asarray(ids, dtype=np.int64)
    out_data = weight.data[ids]
    out = Tensor(out_data, requires_grad=weight.requires_grad,
                 _children=(weight,) if weight.requires_grad else (), _op="embedding")

    def _backward() -> None:
        if not weight.requires_grad:
            return
        # Sort-and-segment scatter: ~3x faster than np.add.at's per-element
        # fallback at training batch sizes (gather + reduceat are vectorised).
        flat_ids = ids.reshape(-1)
        g2 = out.grad.reshape(-1, weight.data.shape[-1])
        order = np.argsort(flat_ids, kind="stable")
        sorted_ids = flat_ids[order]
        starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(sorted_ids)) + 1))
        g = np.zeros_like(weight.data)
        g[sorted_ids[starts]] = np.add.reduceat(g2[order], starts, axis=0)
        weight._accumulate_owned(g)

    out._backward = _backward
    return out


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  ignore_index: Optional[int] = None,
                  use_fused: bool = True) -> Tensor:
    """Mean token-level cross-entropy between ``logits`` and integer ``targets``.

    Parameters
    ----------
    logits:
        Shape ``(..., vocab)``.
    targets:
        Integer array of shape ``logits.shape[:-1]``.
    ignore_index:
        Target value whose positions contribute no loss (e.g. padding).
    use_fused:
        Route through :func:`repro.nn.kernels.fused_cross_entropy` (default),
        which saves only per-row logsumexp statistics for the backward.
        ``False`` keeps this module's reference implementation, which retains
        the full ``(N, vocab)`` log-probability matrix between forward and
        backward; the two are differentially tested against each other.
    """
    if use_fused:
        from .kernels import fused_cross_entropy
        return fused_cross_entropy(logits, targets, ignore_index=ignore_index)
    targets = np.asarray(targets, dtype=np.int64)
    vocab = logits.shape[-1]
    flat_logits = logits.data.reshape(-1, vocab)
    flat_targets = targets.reshape(-1)
    mask = np.ones_like(flat_targets, dtype=bool)
    if ignore_index is not None:
        mask = flat_targets != ignore_index
    safe_targets = np.where(mask, flat_targets, 0)

    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    logp = shifted - logsumexp
    picked = logp[np.arange(len(flat_targets)), safe_targets]
    count = max(int(mask.sum()), 1)
    loss_val = -(picked * mask).sum() / count

    out = Tensor(loss_val, requires_grad=logits.requires_grad,
                 _children=(logits,) if logits.requires_grad else (), _op="cross_entropy")

    def _backward() -> None:
        if not logits.requires_grad:
            return
        probs = np.exp(logp)
        probs[np.arange(len(flat_targets)), safe_targets] -= 1.0
        probs *= (mask / count)[:, None]
        logits._accumulate(out.grad * probs.reshape(logits.shape))

    out._backward = _backward
    return out


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Return ``x`` with positions where ``mask`` is True replaced by ``value``.

    Gradient flows only through unmasked positions.
    """
    mask = np.asarray(mask, dtype=bool)
    data = np.where(mask, value, x.data)
    out = Tensor(data, requires_grad=x.requires_grad, _children=(x,) if x.requires_grad else (), _op="masked_fill")

    def _backward() -> None:
        if x.requires_grad:
            x._accumulate(_unbroadcast(out.grad * (~mask), x.shape))

    out._backward = _backward
    return out


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: zero a fraction ``p`` of activations during training."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    rng = rng or np.random.default_rng()
    keep = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    out = Tensor(x.data * keep, requires_grad=x.requires_grad,
                 _children=(x,) if x.requires_grad else (), _op="dropout")

    def _backward() -> None:
        if x.requires_grad:
            x._accumulate(out.grad * keep)

    out._backward = _backward
    return out
