"""Tokenizers for the synthetic corpora.

Two tokenizers are provided:

* :class:`WordTokenizer` — whitespace word-level vocabulary with special
  tokens; this is what the experiment pipelines use, because the synthetic
  corpora have a small closed vocabulary.
* :class:`BPETokenizer` — a byte-pair-encoding tokenizer trained from a
  corpus, provided for users who bring open-vocabulary text.

Both share the same encode/decode interface and special-token conventions.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

PAD, BOS, EOS, UNK = "<pad>", "<bos>", "<eos>", "<unk>"
SPECIAL_TOKENS = [PAD, BOS, EOS, UNK]


class WordTokenizer:
    """Whitespace tokenizer over a fixed vocabulary.

    Unknown words map to ``<unk>``.  Token ids are stable across runs given
    the same vocabulary list, which keeps model checkpoints compatible.
    """

    def __init__(self, vocab: Sequence[str]) -> None:
        tokens = list(SPECIAL_TOKENS)
        seen = set(tokens)
        for w in vocab:
            if w not in seen:
                tokens.append(w)
                seen.add(w)
        self.id_to_token: List[str] = tokens
        self.token_to_id: Dict[str, int] = {t: i for i, t in enumerate(tokens)}

    # ------------------------------------------------------------------
    @classmethod
    def from_corpus(cls, texts: Iterable[str], min_count: int = 1,
                    max_vocab: Optional[int] = None) -> "WordTokenizer":
        """Build a vocabulary from whitespace-split corpus text."""
        counts = Counter()
        for text in texts:
            counts.update(text.split())
        items = [(w, c) for w, c in counts.items() if c >= min_count]
        items.sort(key=lambda wc: (-wc[1], wc[0]))
        if max_vocab is not None:
            items = items[: max_vocab]
        return cls([w for w, _ in items])

    # ------------------------------------------------------------------
    @property
    def vocab_size(self) -> int:
        return len(self.id_to_token)

    @property
    def pad_id(self) -> int:
        return self.token_to_id[PAD]

    @property
    def bos_id(self) -> int:
        return self.token_to_id[BOS]

    @property
    def eos_id(self) -> int:
        return self.token_to_id[EOS]

    @property
    def unk_id(self) -> int:
        return self.token_to_id[UNK]

    def encode(self, text: str, add_bos: bool = False, add_eos: bool = False) -> List[int]:
        """Encode whitespace-separated text into token ids."""
        ids = [self.token_to_id.get(w, self.unk_id) for w in text.split()]
        if add_bos:
            ids.insert(0, self.bos_id)
        if add_eos:
            ids.append(self.eos_id)
        return ids

    def decode(self, ids: Sequence[int], skip_special: bool = True) -> str:
        """Decode token ids back into a space-joined string."""
        words = []
        special = set(SPECIAL_TOKENS)
        for i in ids:
            tok = self.id_to_token[int(i)]
            if skip_special and tok in special:
                continue
            words.append(tok)
        return " ".join(words)

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist the vocabulary as JSON."""
        payload = {"type": "word", "tokens": self.id_to_token}
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path) -> "WordTokenizer":
        payload = json.loads(Path(path).read_text())
        if payload.get("type") != "word":
            raise ValueError(f"not a WordTokenizer file: {path}")
        tok = cls.__new__(cls)
        tok.id_to_token = list(payload["tokens"])
        tok.token_to_id = {t: i for i, t in enumerate(tok.id_to_token)}
        return tok


class BPETokenizer:
    """Minimal byte-pair-encoding tokenizer.

    Trains merge rules on a corpus of words (split on whitespace; an
    end-of-word marker keeps merges from crossing word boundaries).
    """

    EOW = "</w>"

    def __init__(self, merges: List[Tuple[str, str]], vocab: List[str]) -> None:
        self.merges = merges
        self.merge_ranks = {pair: i for i, pair in enumerate(merges)}
        tokens = list(SPECIAL_TOKENS) + [t for t in vocab if t not in SPECIAL_TOKENS]
        self.id_to_token = tokens
        self.token_to_id = {t: i for i, t in enumerate(tokens)}

    # ------------------------------------------------------------------
    @classmethod
    def train(cls, texts: Iterable[str], num_merges: int = 200) -> "BPETokenizer":
        """Learn ``num_merges`` BPE merge rules from the corpus."""
        word_counts = Counter()
        for text in texts:
            word_counts.update(text.split())
        # Each word is a tuple of symbols, initially characters + EOW.
        words: Dict[Tuple[str, ...], int] = {
            tuple(list(w) + [cls.EOW]): c for w, c in word_counts.items()
        }
        merges: List[Tuple[str, str]] = []
        for _ in range(num_merges):
            pair_counts: Counter = Counter()
            for symbols, count in words.items():
                for a, b in zip(symbols, symbols[1:]):
                    pair_counts[(a, b)] += count
            if not pair_counts:
                break
            best, best_count = pair_counts.most_common(1)[0]
            if best_count < 2:
                break
            merges.append(best)
            merged_sym = best[0] + best[1]
            new_words: Dict[Tuple[str, ...], int] = {}
            for symbols, count in words.items():
                out: List[str] = []
                i = 0
                while i < len(symbols):
                    if i + 1 < len(symbols) and (symbols[i], symbols[i + 1]) == best:
                        out.append(merged_sym)
                        i += 2
                    else:
                        out.append(symbols[i])
                        i += 1
                new_words[tuple(out)] = new_words.get(tuple(out), 0) + count
            words = new_words
        vocab = sorted({s for symbols in words for s in symbols})
        # Make sure single characters survive as fallbacks.
        chars = sorted({c for w in word_counts for c in w})
        vocab = sorted(set(vocab) | set(chars) | {cls.EOW})
        return cls(merges, vocab)

    # ------------------------------------------------------------------
    def _bpe_word(self, word: str) -> List[str]:
        symbols = list(word) + [self.EOW]
        while len(symbols) > 1:
            pairs = [(self.merge_ranks.get((a, b), float("inf")), i)
                     for i, (a, b) in enumerate(zip(symbols, symbols[1:]))]
            rank, idx = min(pairs)
            if rank == float("inf"):
                break
            symbols = symbols[:idx] + [symbols[idx] + symbols[idx + 1]] + symbols[idx + 2:]
        return symbols

    @property
    def vocab_size(self) -> int:
        return len(self.id_to_token)

    @property
    def pad_id(self) -> int:
        return self.token_to_id[PAD]

    @property
    def bos_id(self) -> int:
        return self.token_to_id[BOS]

    @property
    def eos_id(self) -> int:
        return self.token_to_id[EOS]

    @property
    def unk_id(self) -> int:
        return self.token_to_id[UNK]

    def encode(self, text: str, add_bos: bool = False, add_eos: bool = False) -> List[int]:
        ids: List[int] = []
        for word in text.split():
            for sym in self._bpe_word(word):
                ids.append(self.token_to_id.get(sym, self.unk_id))
        if add_bos:
            ids.insert(0, self.bos_id)
        if add_eos:
            ids.append(self.eos_id)
        return ids

    def decode(self, ids: Sequence[int], skip_special: bool = True) -> str:
        special = set(SPECIAL_TOKENS)
        pieces = []
        for i in ids:
            tok = self.id_to_token[int(i)]
            if skip_special and tok in special:
                continue
            pieces.append(tok)
        text = "".join(pieces).replace(self.EOW, " ")
        return re.sub(r"\s+", " ", text).strip()

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        payload = {
            "type": "bpe",
            "merges": [list(m) for m in self.merges],
            "tokens": self.id_to_token,
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path) -> "BPETokenizer":
        payload = json.loads(Path(path).read_text())
        if payload.get("type") != "bpe":
            raise ValueError(f"not a BPETokenizer file: {path}")
        merges = [tuple(m) for m in payload["merges"]]
        return cls(merges, payload["tokens"])
