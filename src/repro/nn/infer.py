"""Fast autoregressive inference with a KV cache.

The autograd :class:`~repro.nn.transformer.TransformerLM` recomputes the
whole prefix for every generated token.  :class:`InferenceEngine` reads the
model's weights once and runs a pure-numpy forward pass with per-layer
key/value caching, so each new token costs one incremental step — a ~20×
speed-up that the benchmark harness and examples rely on.

The engine is validated against the autograd model in the test suite: both
paths produce identical logits (up to float tolerance) for the same weights.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .attention import rope_cache
from .kernels import attention_nograd
from .sampling import sample_next, softmax as _softmax
from .transformer import TransformerLM


def _rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    ms = (x * x).mean(axis=-1, keepdims=True)
    return x / np.sqrt(ms + eps) * weight


def _silu(x: np.ndarray) -> np.ndarray:
    return x / (1.0 + np.exp(-x))


class _LayerCache:
    """Accumulated keys/values for one attention layer: ``(H, T, Dh)``.

    Storage is a preallocated buffer grown by amortised doubling, so
    appending one decoded token is an O(1) copy of that token's K/V rather
    than an O(T) re-concatenation of the whole history.  ``.k`` / ``.v``
    stay views of shape ``(H, T, Dh)``, as the old concatenating cache
    exposed.
    """

    __slots__ = ("_k", "_v", "_len")

    #: Initial buffer capacity (tokens); doubled whenever it runs out.
    INITIAL_CAPACITY = 64

    def __init__(self) -> None:
        self._k: Optional[np.ndarray] = None
        self._v: Optional[np.ndarray] = None
        self._len = 0

    def _ensure_capacity(self, extra: int, like: np.ndarray) -> None:
        needed = self._len + extra
        if self._k is None:
            cap = max(self.INITIAL_CAPACITY, needed)
            heads, _, head_dim = like.shape
            self._k = np.empty((heads, cap, head_dim), dtype=like.dtype)
            self._v = np.empty_like(self._k)
            return
        cap = self._k.shape[1]
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        grown_k = np.empty((self._k.shape[0], cap, self._k.shape[2]), dtype=self._k.dtype)
        grown_v = np.empty_like(grown_k)
        grown_k[:, : self._len] = self._k[:, : self._len]
        grown_v[:, : self._len] = self._v[:, : self._len]
        self._k, self._v = grown_k, grown_v

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        t = k_new.shape[1]
        self._ensure_capacity(t, k_new)
        self._k[:, self._len: self._len + t] = k_new
        self._v[:, self._len: self._len + t] = v_new
        self._len += t

    def preload(self, k: np.ndarray, v: np.ndarray) -> None:
        """Seed an *empty* cache with precomputed K/V (prefix reuse)."""
        if self._len:
            raise ValueError("preload requires an empty cache")
        self.append(k, v)

    def truncate(self, length: int) -> None:
        """Drop cached positions beyond ``length`` (speculative rollback).

        Only the logical length moves; the buffer keeps its capacity and the
        stale tail data stays in place until the next :meth:`append`
        overwrites it.  Every reader — ``.k`` / ``.v`` views,
        :meth:`snapshot`, :meth:`append`'s write offset — is gated on
        ``_len``, so shrink-then-regrow reuse cannot resurface the tail
        (pinned by a regression test in ``tests/test_decode.py``).
        """
        if length < 0 or length > self._len:
            raise ValueError(
                f"truncate length {length} outside [0, {self._len}]")
        self._len = length

    def snapshot(self, upto: Optional[int] = None):
        """Copies of the first ``upto`` cached positions (default: all)."""
        upto = self._len if upto is None else min(upto, self._len)
        return self._k[:, :upto].copy(), self._v[:, :upto].copy()

    @property
    def k(self) -> Optional[np.ndarray]:
        return None if self._k is None else self._k[:, : self._len]

    @property
    def v(self) -> Optional[np.ndarray]:
        return None if self._v is None else self._v[:, : self._len]

    @property
    def length(self) -> int:
        return self._len


class InferenceEngine:
    """Incremental decoder over a trained :class:`TransformerLM`.

    Weights are snapshotted at construction; mutate-and-rebuild if the model
    changes.  The engine processes one sequence at a time (the evaluation
    protocol is greedy single-sequence decoding, like the paper's
    temperature-0 setting).
    """

    def __init__(self, model: TransformerLM) -> None:
        config = model.config
        if config.pos_encoding != "rope":
            raise ValueError("InferenceEngine supports RoPE models only")
        self.config = config
        self.n_heads = config.n_heads
        self.head_dim = config.dim // config.n_heads
        state = model.state_dict()
        self.tok_emb = state["tok_emb.weight"]
        self.final_norm = state["final_norm.weight"]
        self.lm_head = state["lm_head.weight"]
        self.layers: List[Dict[str, np.ndarray]] = []
        for i in range(config.n_layers):
            prefix = f"blocks.{i}."
            self.layers.append({
                "attn_norm": state[prefix + "attn_norm.weight"],
                "q": state[prefix + "attn.q_proj.weight"],
                "k": state[prefix + "attn.k_proj.weight"],
                "v": state[prefix + "attn.v_proj.weight"],
                "o": state[prefix + "attn.o_proj.weight"],
                "mlp_norm": state[prefix + "mlp_norm.weight"],
                "gate": state[prefix + "mlp.gate_proj.weight"],
                "up": state[prefix + "mlp.up_proj.weight"],
                "down": state[prefix + "mlp.down_proj.weight"],
            })
        cos, sin = rope_cache(config.max_seq_len, self.head_dim)
        self._cos = cos.astype(self.tok_emb.dtype)
        self._sin = sin.astype(self.tok_emb.dtype)

    # ------------------------------------------------------------------
    def _apply_rope(self, x: np.ndarray, start: int) -> np.ndarray:
        # x: (H, T, Dh)
        t = x.shape[1]
        cos = self._cos[start: start + t]
        sin = self._sin[start: start + t]
        half = self.head_dim // 2
        rotated = np.concatenate([-x[..., half:], x[..., :half]], axis=-1)
        return x * cos + rotated * sin

    def _forward(self, ids: Sequence[int], caches: List[_LayerCache]) -> np.ndarray:
        """Run ``ids`` through the model, extending ``caches``; returns the
        logits of the final position."""
        ids = np.asarray(ids, dtype=np.int64)
        x = self.tok_emb[ids]  # (T, D)
        start = caches[0].length
        for layer, cache in zip(self.layers, caches):
            h = _rms_norm(x, layer["attn_norm"])
            t = h.shape[0]
            q = (h @ layer["q"].T).reshape(t, self.n_heads, self.head_dim).transpose(1, 0, 2)
            k = (h @ layer["k"].T).reshape(t, self.n_heads, self.head_dim).transpose(1, 0, 2)
            v = (h @ layer["v"].T).reshape(t, self.n_heads, self.head_dim).transpose(1, 0, 2)
            q = self._apply_rope(q, start)
            k = self._apply_rope(k, start)
            cache.append(k, v)
            # Fused no-grad attention: mask only the new block (the earlier
            # cache is fully visible), softmax in the scores buffer.
            ctx = attention_nograd(q, cache.k, cache.v,
                                   causal_tail=t).transpose(1, 0, 2).reshape(t, -1)
            x = x + ctx @ layer["o"].T
            h = _rms_norm(x, layer["mlp_norm"])
            x = x + (_silu(h @ layer["gate"].T) * (h @ layer["up"].T)) @ layer["down"].T
        x = _rms_norm(x[-1:], self.final_norm)
        return (x @ self.lm_head.T)[0]

    # ------------------------------------------------------------------
    def logits(self, ids: Sequence[int]) -> np.ndarray:
        """Next-token logits after consuming ``ids`` (fresh cache)."""
        caches = [_LayerCache() for _ in self.layers]
        return self._forward(list(ids), caches)

    def generate(self, prompt_ids: Sequence[int], max_new_tokens: int = 48,
                 temperature: float = 0.0, eos_id: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None,
                 top_k: Optional[int] = None,
                 top_p: Optional[float] = None) -> List[int]:
        """Greedy / sampled continuation of ``prompt_ids`` (KV-cached)."""
        if not prompt_ids:
            raise ValueError("prompt_ids must be non-empty")
        if temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {temperature}")
        rng = rng or np.random.default_rng(0)
        max_ctx = self.config.max_seq_len
        ids = [int(i) for i in prompt_ids][-max_ctx:]
        caches = [_LayerCache() for _ in self.layers]
        logits = self._forward(ids, caches)
        out: List[int] = []
        for _ in range(max_new_tokens):
            next_id = sample_next(logits, temperature=temperature, rng=rng,
                                  top_k=top_k, top_p=top_p)
            if eos_id is not None and next_id == eos_id:
                break
            out.append(next_id)
            if caches[0].length >= max_ctx:
                break  # context exhausted
            logits = self._forward([next_id], caches)
        return out


def generate_text_fast(engine: InferenceEngine, tokenizer, prompt: str,
                       max_new_tokens: int = 48, temperature: float = 0.0,
                       rng: Optional[np.random.Generator] = None) -> str:
    """Encode, generate with the engine, decode — the fast twin of
    :func:`repro.nn.generation.generate_text`."""
    ids = tokenizer.encode(prompt, add_bos=True)
    out = engine.generate(ids, max_new_tokens=max_new_tokens,
                          temperature=temperature, eos_id=tokenizer.eos_id, rng=rng)
    return tokenizer.decode(out)
