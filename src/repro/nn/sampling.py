"""Token sampling shared by every decoding path.

Both the autograd decoder (:mod:`repro.nn.generation`) and the KV-cached
engines (:mod:`repro.nn.infer`, :mod:`repro.serve`) pick the next token with
:func:`sample_next`, so greedy/temperature behaviour — and the exact RNG
consumption pattern — is identical everywhere.  The serving subsystem also
exposes the optional top-k / nucleus (top-p) filters as per-request knobs.

``temperature == 0.0`` is argmax (the paper's evaluation setting); positive
temperatures soften the distribution before sampling.  Filters are applied to
the temperature-scaled distribution: top-k keeps the ``k`` most likely
tokens, top-p keeps the smallest set whose cumulative probability reaches
``p`` (always at least the mode), and both renormalise before drawing.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Shared fallback generator for unseeded sampling.  A module-level stream
#: advances across calls; constructing ``default_rng(0)`` *per call* would
#: pin every draw to the same stream position (the same quantile each token
#: — heavily biased generations).  Pass an explicit ``rng`` for
#: reproducibility.
_SHARED_RNG = np.random.default_rng(0)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax (max-subtraction, matching the engines)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def filter_top_k(probs: np.ndarray, top_k: int) -> np.ndarray:
    """Zero out everything but exactly ``top_k`` tokens.

    Ties at the cutoff probability are broken deterministically by
    ``np.argpartition``'s introselect order (a fixed function of the input,
    not of token id), so exactly ``k`` tokens survive — a threshold
    comparison (``probs >= cutoff``) would keep *every* token tied at the
    cutoff and overshoot ``k``.
    """
    if top_k <= 0:
        raise ValueError(f"top_k must be positive, got {top_k}")
    if top_k >= probs.size:
        return probs
    keep = np.argpartition(probs, -top_k)[-top_k:]
    filtered = np.zeros_like(probs)
    filtered[keep] = probs[keep]
    return filtered / filtered.sum()


def filter_top_p(probs: np.ndarray, top_p: float) -> np.ndarray:
    """Nucleus filter: keep the smallest head of the sorted distribution whose
    mass reaches ``top_p`` (the mode always survives)."""
    if not 0.0 < top_p <= 1.0:
        raise ValueError(f"top_p must be in (0, 1], got {top_p}")
    if top_p == 1.0:
        return probs
    order = np.argsort(-probs, kind="stable")
    sorted_probs = probs[order]
    cum = np.cumsum(sorted_probs)
    # Index of the first token where cumulative mass reaches top_p; keep it.
    last = int(np.searchsorted(cum, top_p, side="left"))
    keep = order[: last + 1]
    filtered = np.zeros_like(probs)
    filtered[keep] = probs[keep]
    return filtered / filtered.sum()


def sample_next(logits: np.ndarray, temperature: float = 0.0,
                rng: Optional[np.random.Generator] = None,
                top_k: Optional[int] = None,
                top_p: Optional[float] = None) -> int:
    """Pick the next token id from unnormalised ``logits``.

    ``temperature=0.0`` returns the argmax (filters are irrelevant there).
    Positive temperatures draw from ``softmax(logits / temperature)`` after
    the optional top-k then top-p filters; the draw consumes exactly one
    ``rng.choice`` call so seeded streams stay reproducible.
    """
    if temperature < 0:
        raise ValueError(f"temperature must be >= 0, got {temperature}")
    if temperature == 0.0:
        return int(np.argmax(logits))
    probs = softmax(logits / temperature)
    if top_k is not None:
        probs = filter_top_k(probs, top_k)
    if top_p is not None:
        probs = filter_top_p(probs, top_p)
    if rng is None:
        rng = _SHARED_RNG
    return int(rng.choice(len(probs), p=probs))
