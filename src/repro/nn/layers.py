"""Core neural-network layers: linear, embedding, normalisation, dropout."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .module import Module, Parameter
from .tensor import Tensor


def _init_rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


class Linear(Module):
    """Affine map ``y = x W^T + b`` with Kaiming-style initialisation.

    The projection runs through :func:`repro.nn.kernels.fused_linear` — one
    autograd node whose weight gradient is a single batch-collapsed GEMM —
    unless ``use_fused=False`` selects the composed transpose/matmul/add
    reference graph the kernel is differentially tested against.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 seed: Optional[int] = None, use_fused: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.use_fused = use_fused
        rng = _init_rng(seed)
        scale = 1.0 / np.sqrt(in_features)
        self.weight = Parameter(rng.uniform(-scale, scale, size=(out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if self.use_fused:
            from .kernels import fused_linear
            return fused_linear(x, self.weight, self.bias)
        out = x @ self.weight.swapaxes(0, 1)
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-id → dense-vector lookup table."""

    def __init__(self, num_embeddings: int, embedding_dim: int, seed: Optional[int] = None) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        rng = _init_rng(seed)
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)))

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids)
        if ids.max(initial=0) >= self.num_embeddings or ids.min(initial=0) < 0:
            raise IndexError(
                f"token id out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        return F.embedding(self.weight, ids)


class LayerNorm(Module):
    """Layer normalisation over the last dimension with learned affine."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered ** 2.0).mean(axis=-1, keepdims=True)
        normed = centered * (var + self.eps) ** -0.5
        return normed * self.weight + self.bias


class RMSNorm(Module):
    """Root-mean-square normalisation (LLaMA-style; no mean subtraction).

    ``use_fused=True`` (default) computes the whole normalisation as a single
    autograd node (:func:`repro.nn.kernels.fused_rms_norm`) saving only the
    per-row inverse RMS; ``use_fused=False`` keeps the composed-op reference
    graph (~6 nodes) the kernel is differentially tested against.
    """

    def __init__(self, dim: int, eps: float = 1e-6, use_fused: bool = True) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.use_fused = use_fused
        self.weight = Parameter(np.ones(dim))

    def forward(self, x: Tensor) -> Tensor:
        if self.use_fused:
            from .kernels import fused_rms_norm
            return fused_rms_norm(x, self.weight, self.eps)
        ms = (x ** 2.0).mean(axis=-1, keepdims=True)
        return x * (ms + self.eps) ** -0.5 * self.weight


class Dropout(Module):
    """Inverted dropout layer; identity in eval mode."""

    def __init__(self, p: float = 0.0, seed: Optional[int] = None) -> None:
        super().__init__()
        self.p = p
        self._rng = _init_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)


class FeedForward(Module):
    """Gated MLP block (SwiGLU-style), matching LLaMA-family transformer blocks.

    ``use_fused=True`` (default) computes ``silu(gate) * up`` as a single
    autograd node (:func:`repro.nn.kernels.fused_swiglu`); the projections
    stay composed matmuls either way.
    """

    def __init__(self, dim: int, hidden_dim: int, seed: Optional[int] = None,
                 use_fused: bool = True) -> None:
        super().__init__()
        rng = _init_rng(seed)
        seeds = rng.integers(0, 2 ** 31 - 1, size=3)
        self.use_fused = use_fused
        self.gate_proj = Linear(dim, hidden_dim, bias=False, seed=int(seeds[0]),
                                use_fused=use_fused)
        self.up_proj = Linear(dim, hidden_dim, bias=False, seed=int(seeds[1]),
                              use_fused=use_fused)
        self.down_proj = Linear(hidden_dim, dim, bias=False, seed=int(seeds[2]),
                                use_fused=use_fused)

    def forward(self, x: Tensor) -> Tensor:
        if self.use_fused:
            gate, up = self.gate_proj, self.up_proj
            if type(gate) is Linear and gate.bias is None \
                    and type(up) is Linear and up.bias is None:
                # Plain projections: pack both into one GEMM + gate node.
                from .kernels import fused_gateup
                return self.down_proj(fused_gateup(x, gate.weight, up.weight))
            # Wrapped projections (e.g. LoRA): fuse only the gating.
            from .kernels import fused_swiglu
            return self.down_proj(fused_swiglu(gate(x), up(x)))
        return self.down_proj(F.silu(self.gate_proj(x)) * self.up_proj(x))
