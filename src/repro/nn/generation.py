"""Autoregressive decoding for :class:`~repro.nn.transformer.TransformerLM`.

The paper evaluates all models at temperature 0.0, i.e. greedy decoding;
:func:`generate` therefore treats ``temperature=0.0`` as argmax and positive
temperatures as softmax sampling.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .sampling import sample_next
from .tensor import no_grad
from .transformer import TransformerLM


def generate(
    model: TransformerLM,
    prompt_ids: Sequence[int],
    max_new_tokens: int = 48,
    temperature: float = 0.0,
    eos_id: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    top_k: Optional[int] = None,
    top_p: Optional[float] = None,
) -> List[int]:
    """Generate a continuation of ``prompt_ids``.

    Parameters
    ----------
    model:
        The language model (put into eval mode for the call).
    prompt_ids:
        Conditioning token ids; must fit within the model context.
    max_new_tokens:
        Upper bound on generated tokens.
    temperature:
        0.0 → greedy argmax; >0 → softmax sampling at that temperature
        (optionally filtered with ``top_k`` / nucleus ``top_p``, see
        :func:`repro.nn.sampling.sample_next`).
    eos_id:
        If given, generation stops after this token is emitted (the eos token
        itself is not included in the returned continuation).

    Returns
    -------
    list[int]
        Only the newly generated token ids (prompt excluded).
    """
    if temperature < 0:
        raise ValueError(f"temperature must be >= 0, got {temperature}")
    was_training = model.training
    model.eval()
    rng = rng or np.random.default_rng(0)
    ids = list(int(i) for i in prompt_ids)
    if not ids:
        raise ValueError("prompt_ids must be non-empty")
    generated: List[int] = []
    max_ctx = model.config.max_seq_len
    try:
        with no_grad():
            for _ in range(max_new_tokens):
                window = ids[-max_ctx:]
                logits = model(np.asarray(window, dtype=np.int64)[None, :]).data[0, -1]
                next_id = sample_next(logits, temperature=temperature, rng=rng,
                                      top_k=top_k, top_p=top_p)
                if eos_id is not None and next_id == eos_id:
                    break
                generated.append(next_id)
                ids.append(next_id)
    finally:
        if was_training:
            model.train()
    return generated


def generate_text(model: TransformerLM, tokenizer, prompt: str,
                  max_new_tokens: int = 48, temperature: float = 0.0,
                  rng: Optional[np.random.Generator] = None) -> str:
    """Convenience wrapper: encode prompt, generate, decode the continuation."""
    prompt_ids = tokenizer.encode(prompt, add_bos=True)
    out = generate(model, prompt_ids, max_new_tokens=max_new_tokens,
                   temperature=temperature, eos_id=tokenizer.eos_id, rng=rng)
    return tokenizer.decode(out)


def sequence_logprob(model: TransformerLM, ids: Sequence[int]) -> float:
    """Total log-probability the model assigns to ``ids`` (teacher-forced).

    Used by the multiple-choice evaluator: the chosen answer is the option
    with the highest conditional log-probability.
    """
    ids = np.asarray(list(ids), dtype=np.int64)
    if ids.size < 2:
        raise ValueError("need at least two tokens to score a sequence")
    with no_grad():
        logits = model(ids[None, :-1]).data[0]
    shifted = logits - logits.max(axis=-1, keepdims=True)
    logp = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    targets = ids[1:]
    return float(logp[np.arange(len(targets)), targets].sum())


def continuation_logprob(model: TransformerLM, prompt_ids: Sequence[int],
                         continuation_ids: Sequence[int]) -> float:
    """Log-probability of ``continuation_ids`` given ``prompt_ids``."""
    prompt_ids = list(prompt_ids)
    continuation_ids = list(continuation_ids)
    if not continuation_ids:
        raise ValueError("continuation must be non-empty")
    full = np.asarray(prompt_ids + continuation_ids, dtype=np.int64)
    with no_grad():
        logits = model(full[None, :-1]).data[0]
    shifted = logits - logits.max(axis=-1, keepdims=True)
    logp = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    start = len(prompt_ids) - 1
    targets = full[len(prompt_ids):]
    rows = np.arange(start, start + len(targets))
    return float(logp[rows, targets].sum())
